//! Strips-Soar robot planning, run on the PSM-E parallel match engine with
//! full instrumentation — queue spins, memory-line spins, tasks per cycle.
//!
//! ```sh
//! cargo run --release --example strips_robot
//! ```

use soar_psme::engine::{EngineConfig, Scheduler};
use soar_psme::tasks::{run_parallel, strips, RunMode, StripsConfig};

fn main() {
    let cfg = StripsConfig {
        rooms: 8,
        closed_doors: vec![2, 4],
        start: 0,
        target: 5,
        chords: false,
    };
    let task = strips(&cfg);
    println!(
        "world: {} rooms, target rm{}, closed doors {:?}; {} productions \
         (including the {}-CE monitor-strips-state of Figure 6-7)\n",
        cfg.rooms,
        cfg.target,
        cfg.closed_doors,
        task.production_count(),
        task.productions
            .iter()
            .find(|p| p.name == soar_psme::ops::intern("monitor-strips-state"))
            .map(|p| p.ce_count_flat())
            .unwrap_or(0),
    );

    for workers in [1usize, 2, 4] {
        let (report, engine) = run_parallel(
            &task,
            RunMode::DuringChunking,
            EngineConfig {
                workers,
                scheduler: Scheduler::MultiQueue,
                bucket_histograms: false,
                ..Default::default()
            },
        );
        let m = &engine.metrics;
        let tasks = m.total_tasks();
        let spins: u64 = m.cycles.iter().map(|c| c.queue.pop_spins + c.queue.push_spins).sum();
        let failed: u64 = m.cycles.iter().map(|c| c.queue.failed_pops).sum();
        println!(
            "{workers} match process(es): {:?}, decisions {}, chunks {}, tasks {}, \
             queue spins/task {:.2}, failed pops {}",
            report.stop,
            report.stats.decisions,
            report.stats.chunks_built,
            tasks,
            spins as f64 / tasks.max(1) as f64,
            failed,
        );
        if workers == 1 {
            println!("  route taken: {:?}", report.output);
        }
    }
    println!("\n(real threads on this host; the Multimax speedup curves come from");
    println!(" `cargo bench -p psme-bench` which replays traces on the simulator)");
}
