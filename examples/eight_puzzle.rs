//! Eight-puzzle-Soar in the paper's three run modes: without chunking,
//! during chunking (learning), and after chunking (using what was learned).
//!
//! ```sh
//! cargo run --release --example eight_puzzle
//! ```

use soar_psme::tasks::{eight_puzzle, run_serial, scrambled, RunMode};

fn main() {
    let board = scrambled(6, 2);
    println!("initial board (0 = blank):");
    for row in &board {
        println!("  {row:?}");
    }
    let task = eight_puzzle(&board);
    println!(
        "\ntask: {} productions, {} initial wmes\n",
        task.production_count(),
        task.init_wmes.len()
    );

    for (label, mode) in [
        ("without chunking", RunMode::WithoutChunking),
        ("during chunking ", RunMode::DuringChunking),
        ("after chunking  ", RunMode::AfterChunking),
    ] {
        let (report, engine) = run_serial(&task, mode, false);
        println!(
            "{label}: {:?} in {:>3} decisions | impasses {:>2} | chunks built {:>2} | \
             firings {:>4} | match tasks {:>6}",
            report.stop,
            report.stats.decisions,
            report.stats.impasses,
            report.stats.chunks_built,
            report.stats.firings,
            engine.total_tasks(),
        );
    }

    // Show one learned chunk: the compiled move-selection knowledge.
    let (report, _) = run_serial(&task, RunMode::DuringChunking, false);
    if let Some(chunk) = report.chunks.first() {
        println!("\nfirst learned chunk ({} conditions):", chunk.ce_count_flat());
        for ce in &chunk.ces {
            println!("   {ce}");
        }
    }
}
