//! Quickstart: parse OPS5 productions, match incrementally, add a
//! production at run time (the paper's §5 capability), and run the classic
//! recognize-act cycle.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use soar_psme::ops::{parse_production, parse_program, parse_wme, ClassRegistry};
use soar_psme::rete::{NetworkOrg, Ops5Runtime, ReteNetwork, SerialEngine};
use std::sync::Arc;

fn main() {
    // ---- 1. Declare classes and productions (the paper's Figure 2-1). ----
    let mut classes = ClassRegistry::new();
    let prods = parse_program(
        "(literalize block name color on state)
         (literalize hand state)

         (p blue-block-is-graspable
            (block ^name <b> ^color blue)
           -(block ^on <b>)
            (hand ^state free)
           -->
            (write block <b> is graspable))",
        &mut classes,
    )
    .expect("productions parse");

    // ---- 2. Compile into a Rete network and match incrementally. ----
    let mut net = ReteNetwork::new();
    for p in &prods {
        net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    }
    let mut engine = SerialEngine::new(net);

    let out = engine.apply_changes(
        vec![
            parse_wme("(block ^name b1 ^color blue)", &classes).unwrap(),
            parse_wme("(hand ^state free)", &classes).unwrap(),
        ],
        vec![],
    );
    println!("after adding two wmes: {} instantiation(s), {} match tasks", out.cs.added.len(), out.tasks);

    // Stack a block on b1: the negated condition retracts the match.
    let out = engine.apply_changes(
        vec![parse_wme("(block ^name b2 ^color red ^on b1)", &classes).unwrap()],
        vec![],
    );
    println!("after stacking b2 on b1: {} retraction(s)", out.cs.removed.len());

    // ---- 3. Add a production AT RUN TIME (the paper's §5.1/§5.2). ----
    let chunk = parse_production(
        "(p red-block-spotted (block ^name <b> ^color red) --> (write red block))",
        &mut classes,
    )
    .unwrap();
    let added = engine.add_production(Arc::new(chunk), NetworkOrg::Linear).unwrap();
    println!(
        "run-time addition: {} update tasks ran, found {} existing instantiation(s), \
         shared {} two-input node(s)",
        added.update_tasks,
        added.cs.added.len(),
        added.add.shared_two_input,
    );

    // ---- 4. The OPS5 recognize-act cycle (match–select–fire with LEX). ----
    let mut classes2 = ClassRegistry::new();
    let countdown = parse_program(
        "(literalize count n)
         (p decrement (count ^n { <x> > 0 }) -->
            (bind <m> (compute <x> - 1))
            (modify 1 ^n <m>))
         (p done (count ^n 0) --> (write liftoff) (halt))",
        &mut classes2,
    )
    .unwrap()
    .into_iter()
    .map(Arc::new)
    .collect();
    let mut rt = Ops5Runtime::new(countdown, classes2.clone()).unwrap();
    rt.make(vec![parse_wme("(count ^n 5)", &classes2).unwrap()]);
    let stop = rt.run(100);
    println!("countdown: fired {} productions, stopped {:?}, output {:?}", rt.fired(), stop, rt.output);
}
