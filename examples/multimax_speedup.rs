//! Reproduce the paper's headline experiment end to end: run a learning
//! Soar task, capture the match-task traces, and replay them on the
//! simulated Encore Multimax with 1–13 match processes under both task-queue
//! organizations (Figures 6-1 and 6-4 in miniature).
//!
//! ```sh
//! cargo run --release --example multimax_speedup
//! ```

use soar_psme::sim::{simulate_run, total_seconds, SimConfig, SimScheduler};
use soar_psme::tasks::{cypress_sub, run_serial, CypressConfig, RunMode};

fn main() {
    let task = cypress_sub(&CypressConfig { roots: 2 });
    println!("capturing match traces from a {} run…", task.name);
    let (report, engine) = run_serial(&task, RunMode::WithoutChunking, true);
    let cycles: Vec<_> = engine
        .trace
        .phase_cycles(soar_psme::rete::Phase::Match)
        .cloned()
        .collect();
    println!(
        "{:?}: {} decisions, {} elaboration cycles, {} match tasks\n",
        report.stop,
        report.stats.decisions,
        cycles.len(),
        engine.trace.total_tasks(),
    );

    for (label, sched) in [
        ("single shared task queue (Figure 6-1)", SimScheduler::Single),
        ("one queue per process  (Figure 6-4)", SimScheduler::Multi),
    ] {
        let uni = total_seconds(&simulate_run(&cycles, &SimConfig::new(1, sched)));
        println!("{label}: simulated uniprocessor time {uni:.1} s");
        for workers in [2usize, 4, 8, 13] {
            let t = total_seconds(&simulate_run(&cycles, &SimConfig::new(workers, sched)));
            let s = uni / t;
            println!("  {workers:>2} processes: {s:>5.2}x  {}", "#".repeat((s * 4.0) as usize));
        }
        println!();
    }
}
