//! The apps a server hosts: one frozen topology + one serving loop each.
//!
//! Every session multiplexed over a shared [`psme_rete::Topology`] must
//! carry the production set that topology was compiled from, so a server
//! cannot mix arbitrary tasks in one loop. Instead it hosts **apps**: each
//! app freezes one task's production set and serves sessions whose
//! instances differ only in ways the productions allow — the eight-puzzle
//! app scrambles its board by the wire request's seed (the production set
//! is scramble-invariant, proven by the `serve_isolation` gates), the
//! STRIPS and Cypress apps serve their fixed paper instances.

use psme_rete::Topology;
use psme_serve::build_topology;
use psme_soar::SoarTask;
use psme_tasks::{cypress_sub, eight_puzzle, scrambled, strips, CypressConfig, StripsConfig};
use std::sync::Arc;

/// One hosted app: a name, a frozen topology, and the task-instance
/// factory wire requests parameterize by seed.
pub struct AppDef {
    /// Name clients address in `OpenSession`.
    pub name: String,
    /// The shared match network every session of this app adopts.
    pub topo: Arc<Topology>,
    /// Build the task instance for a session (`seed` from the wire; apps
    /// with a fixed instance ignore it). The returned task's production
    /// set must equal the topology's.
    pub instance: Box<dyn Fn(u64) -> SoarTask + Send + Sync>,
}

impl AppDef {
    /// Define an app from an instance factory; the topology is compiled
    /// from the seed-0 instance.
    pub fn new(
        name: &str,
        instance: impl Fn(u64) -> SoarTask + Send + Sync + 'static,
    ) -> AppDef {
        let topo = build_topology(&instance(0));
        AppDef { name: name.to_string(), topo, instance: Box::new(instance) }
    }
}

/// Scramble depth for served eight-puzzle instances — shallow enough that
/// a session is milliseconds, deep enough to impasse and learn chunks.
pub const PUZZLE_MOVES: usize = 3;

/// The three paper tasks as served apps (instances sized like the bench
/// harness's, so serving benchmarks stay in seconds).
pub fn paper_apps() -> Vec<AppDef> {
    vec![
        AppDef::new("eight-puzzle", |seed| eight_puzzle(&scrambled(PUZZLE_MOVES, seed))),
        AppDef::new("strips", |_| {
            strips(&StripsConfig {
                rooms: 12,
                closed_doors: vec![2, 5, 8],
                start: 0,
                target: 6,
                chords: false,
            })
        }),
        AppDef::new("cypress-sub", |_| cypress_sub(&CypressConfig { roots: 2 })),
    ]
}
