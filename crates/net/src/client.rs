//! The client library: a framed connection with a background reader.
//!
//! Sends are synchronous writes through a shared handle (so a pacing
//! thread and a response-handling thread can both talk); receives come
//! off a channel fed by a reader thread, in server order. The protocol is
//! asynchronous by design — `Opened` replies arrive in request order per
//! connection, session notifications (`Stepped`/`Done`/`SessionShed`)
//! whenever the serve loop produces them.

use crate::wire::{read_frame, write_frame, Frame, WIRE_VERSION};
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A cloneable sending half — hand one to each thread that needs to talk.
#[derive(Clone)]
pub struct ClientHandle {
    tx: Arc<Mutex<TcpStream>>,
}

impl ClientHandle {
    /// Send one frame.
    pub fn send(&self, f: &Frame) -> std::io::Result<()> {
        let mut w = self.tx.lock().expect("client writer lock");
        write_frame(&mut *w, f)
    }
}

/// A connected client. Dropping it closes the socket and joins the reader.
pub struct Client {
    handle: ClientHandle,
    rx: Option<Receiver<Frame>>,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connect and start the background reader. Does not send `Hello`;
    /// call [`Client::hello`] to negotiate.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut read_half = stream.try_clone()?;
        let (tx, rx): (Sender<Frame>, Receiver<Frame>) = channel();
        let reader = std::thread::Builder::new()
            .name("psm-net-client".into())
            .spawn(move || {
                while let Ok(Some(f)) = read_frame(&mut read_half) {
                    if tx.send(f).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn client reader");
        Ok(Client {
            handle: ClientHandle { tx: Arc::new(Mutex::new(stream)) },
            rx: Some(rx),
            reader: Some(reader),
        })
    }

    /// A cloneable sending half.
    pub fn handle(&self) -> ClientHandle {
        self.handle.clone()
    }

    /// Send one frame.
    pub fn send(&self, f: &Frame) -> std::io::Result<()> {
        self.handle.send(f)
    }

    /// Negotiate: send `Hello`, wait for `HelloOk`, return the app list.
    /// Any other first frame (e.g. a version refusal) is an error.
    pub fn hello(&self, client_name: &str) -> std::io::Result<Vec<String>> {
        self.send(&Frame::Hello { proto: WIRE_VERSION, client: client_name.to_string() })?;
        match self.recv_timeout(Duration::from_secs(30)) {
            Some(Frame::HelloOk { apps, .. }) => Ok(apps),
            Some(Frame::Refused { reason, .. }) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                reason,
            )),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected HelloOk, got {other:?}"),
            )),
        }
    }

    /// Block for the next server frame; `None` when the connection closed.
    pub fn recv(&self) -> Option<Frame> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    /// Like [`Client::recv`] with a deadline; `None` on timeout or close.
    pub fn recv_timeout(&self, d: Duration) -> Option<Frame> {
        self.rx.as_ref().and_then(|rx| rx.recv_timeout(d).ok())
    }

    /// Move the receiving half out (for a dedicated response thread). The
    /// `Client` keeps sending; `recv` on it returns `None` afterwards.
    pub fn take_events(&mut self) -> Option<Receiver<Frame>> {
        self.rx.take()
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.send(&Frame::Bye);
        if let Ok(s) = self.handle.tx.lock() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}
