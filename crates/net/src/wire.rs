//! The framed wire format.
//!
//! Every frame on a connection is a 4-byte little-endian length followed
//! by that many bytes of sealed payload — the same magic + version +
//! checksum envelope the session snapshots use ([`psme_rete::seal_frame`]),
//! so a truncated, corrupted, or cross-version frame is a typed
//! [`SnapshotError`], never a panic and never a silently misparsed
//! request. Inside the envelope: a one-byte tag and the fields written
//! with the repo's [`ByteWriter`] primitives.
//!
//! | tag | frame          | direction | fields |
//! |----:|----------------|-----------|--------|
//! |   0 | `Hello`        | c → s     | proto `u32`, client `str` |
//! |   1 | `OpenSession`  | c → s     | app `str`, session `str`, seed `u64`, learning `bool`, grant `opt u64` |
//! |   2 | `Step`         | c → s     | id `u32`, n `u64` |
//! |   3 | `Learn`        | c → s     | id `u32`, enable `bool` |
//! |   4 | `CloseSession` | c → s     | id `u32` |
//! |   5 | `Bye`          | c → s     | — |
//! |  16 | `HelloOk`      | s → c     | proto `u32`, server `str`, apps `[str]` |
//! |  17 | `Opened`       | s → c     | id `u32` |
//! |  18 | `Refused`      | s → c     | session `str`, reason `str` |
//! |  19 | `Stepped`      | s → c     | id `u32`, decisions `u64` |
//! |  20 | `SessionShed`  | s → c     | id `u32` |
//! |  21 | `Done`         | s → c     | id `u32`, [`SessionSummary`] |
//!
//! Session ids are server-assigned, dense per app, composed as
//! `app_index << APP_SHIFT | per-app id` — clients treat them as opaque.

use psme_rete::snapshot::{ByteReader, ByteWriter};
use psme_rete::{open_frame, seal_frame, SnapshotError};
use psme_serve::SessionReport;
use psme_soar::{AgentStats, StopReason};

/// Wire-frame magic.
pub const WIRE_MAGIC: [u8; 4] = *b"PSMN";
/// Wire-format version; `Hello`/`HelloOk` carry it so both ends can
/// refuse a mismatch before any session state exists.
pub const WIRE_VERSION: u32 = 2;
/// Upper bound on a frame's sealed payload — a length prefix past this is
/// a protocol violation (or garbage), not a buffer to allocate.
pub const MAX_FRAME: usize = 1 << 20;
/// Bits of a session id holding the per-app id; the app index lives above.
pub const APP_SHIFT: u32 = 24;

/// A retired session's result, as carried by [`Frame::Done`]. Exactly the
/// fields the in-process serving report guarantees bit-for-bit against a
/// solo run (stop reason, agent counters, chunk names, `(write …)`
/// output) — no wall-clock telemetry, so the loopback differential can
/// compare encoded bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSummary {
    /// Session name.
    pub name: String,
    /// Stop reason ([`StopReason`] as a stable small code).
    pub stop: u8,
    /// Agent counters.
    pub stats: AgentStats,
    /// Chunks learned into the session's overlay, in build order.
    pub chunk_names: Vec<String>,
    /// `(write …)` output lines.
    pub output: Vec<String>,
}

/// Stable wire code for a stop reason.
pub fn stop_code(stop: StopReason) -> u8 {
    match stop {
        StopReason::Halted => 0,
        StopReason::Stuck => 1,
        StopReason::DecisionLimit => 2,
        StopReason::ElaborationRunaway => 3,
        StopReason::Closed => 4,
    }
}

impl SessionSummary {
    /// Build from a (non-shed) serving report.
    pub fn from_report(r: &SessionReport) -> SessionSummary {
        SessionSummary {
            name: r.name.clone(),
            stop: stop_code(r.stop.expect("shed sessions have no summary")),
            stats: r.stats,
            chunk_names: r.chunk_names.clone(),
            output: r.output.clone(),
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.str(&self.name);
        w.u8(self.stop);
        w.u64(self.stats.decisions);
        w.u64(self.stats.elaboration_cycles);
        w.u64(self.stats.impasses);
        w.u64(self.stats.chunks_built);
        w.u64(self.stats.firings);
        w.u64(self.stats.wme_adds);
        w.u64(self.stats.wme_removes);
        w.u64(self.stats.update_tasks);
        w.u64(self.stats.reorganizations);
        w.u64(self.chunk_names.len() as u64);
        for c in &self.chunk_names {
            w.str(c);
        }
        w.u64(self.output.len() as u64);
        for o in &self.output {
            w.str(o);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<SessionSummary, SnapshotError> {
        let name = r.str()?;
        let stop = r.u8()?;
        let stats = AgentStats {
            decisions: r.u64()?,
            elaboration_cycles: r.u64()?,
            impasses: r.u64()?,
            chunks_built: r.u64()?,
            firings: r.u64()?,
            wme_adds: r.u64()?,
            wme_removes: r.u64()?,
            update_tasks: r.u64()?,
            reorganizations: r.u64()?,
        };
        let mut chunk_names = Vec::new();
        for _ in 0..r.count()? {
            chunk_names.push(r.str()?);
        }
        let mut output = Vec::new();
        for _ in 0..r.count()? {
            output.push(r.str()?);
        }
        Ok(SessionSummary { name, stop, stats, chunk_names, output })
    }
}

/// Every frame either end can send. One enum so encode/decode stay in one
/// place and the proptest round-trip covers the whole protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client greeting; the server refuses a version mismatch.
    Hello {
        /// Client's wire version.
        proto: u32,
        /// Client identification, free-form.
        client: String,
    },
    /// Open a session on an app. `seed` parameterizes the app's task
    /// instance (the eight-puzzle app scrambles its board with it; fixed
    /// apps ignore it). `grant` is the initial decision credit (`None`
    /// auto-runs to completion).
    OpenSession {
        /// App name, from `HelloOk`.
        app: String,
        /// Session name, unique per app per server run.
        session: String,
        /// Task-instance seed.
        seed: u64,
        /// Learn chunks into the session's overlay.
        learning: bool,
        /// Initial decision credit.
        grant: Option<u64>,
    },
    /// Grant `n` more decisions to a credited session.
    Step {
        /// Session id from `Opened`.
        id: u32,
        /// Decisions to grant.
        n: u64,
    },
    /// Toggle chunk learning mid-run.
    Learn {
        /// Session id.
        id: u32,
        /// New learning state.
        enable: bool,
    },
    /// Close a session; it retires with a `Closed` stop and a `Done` frame.
    CloseSession {
        /// Session id.
        id: u32,
    },
    /// Client is leaving; the server drops the connection.
    Bye,
    /// Server greeting: its version and the apps it hosts.
    HelloOk {
        /// Server's wire version.
        proto: u32,
        /// Server identification.
        server: String,
        /// Hosted app names, open-able via `OpenSession`.
        apps: Vec<String>,
    },
    /// A session was admitted (or queued for admission) under this id.
    Opened {
        /// Server-assigned session id.
        id: u32,
    },
    /// An `OpenSession` was refused (unknown app, duplicate name, id
    /// space exhausted, server draining). Not a shed: the session never
    /// entered admission.
    Refused {
        /// The session name from the refused request.
        session: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A credited session consumed its grant and parked; `decisions` is
    /// its running total.
    Stepped {
        /// Session id.
        id: u32,
        /// Decisions executed so far.
        decisions: u64,
    },
    /// Admission backpressure shed this session (it had been accepted).
    SessionShed {
        /// Session id.
        id: u32,
    },
    /// A session retired; its summary.
    Done {
        /// Session id.
        id: u32,
        /// The result.
        summary: SessionSummary,
    },
}

impl Frame {
    /// Encode into a sealed, length-prefixed wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Frame::Hello { proto, client } => {
                w.u8(0);
                w.u32(*proto);
                w.str(client);
            }
            Frame::OpenSession { app, session, seed, learning, grant } => {
                w.u8(1);
                w.str(app);
                w.str(session);
                w.u64(*seed);
                w.bool(*learning);
                w.bool(grant.is_some());
                w.u64(grant.unwrap_or(0));
            }
            Frame::Step { id, n } => {
                w.u8(2);
                w.u32(*id);
                w.u64(*n);
            }
            Frame::Learn { id, enable } => {
                w.u8(3);
                w.u32(*id);
                w.bool(*enable);
            }
            Frame::CloseSession { id } => {
                w.u8(4);
                w.u32(*id);
            }
            Frame::Bye => {
                w.u8(5);
            }
            Frame::HelloOk { proto, server, apps } => {
                w.u8(16);
                w.u32(*proto);
                w.str(server);
                w.u64(apps.len() as u64);
                for a in apps {
                    w.str(a);
                }
            }
            Frame::Opened { id } => {
                w.u8(17);
                w.u32(*id);
            }
            Frame::Refused { session, reason } => {
                w.u8(18);
                w.str(session);
                w.str(reason);
            }
            Frame::Stepped { id, decisions } => {
                w.u8(19);
                w.u32(*id);
                w.u64(*decisions);
            }
            Frame::SessionShed { id } => {
                w.u8(20);
                w.u32(*id);
            }
            Frame::Done { id, summary } => {
                w.u8(21);
                w.u32(*id);
                summary.encode(&mut w);
            }
        }
        let sealed = seal_frame(WIRE_MAGIC, WIRE_VERSION, w.into_inner());
        let mut out = Vec::with_capacity(4 + sealed.len());
        out.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
        out.extend_from_slice(&sealed);
        out
    }

    /// Decode one sealed payload (the bytes after the length prefix).
    /// Every malformation — bad magic, wrong version, truncation, bit
    /// flips, unknown tag, trailing garbage — is a typed error.
    pub fn decode(sealed: &[u8]) -> Result<Frame, SnapshotError> {
        let payload = open_frame(sealed, WIRE_MAGIC, WIRE_VERSION)?;
        let mut r = ByteReader::new(payload);
        let frame = match r.u8()? {
            0 => Frame::Hello { proto: r.u32()?, client: r.str()? },
            1 => Frame::OpenSession {
                app: r.str()?,
                session: r.str()?,
                seed: r.u64()?,
                learning: r.bool()?,
                grant: {
                    let some = r.bool()?;
                    let v = r.u64()?;
                    some.then_some(v)
                },
            },
            2 => Frame::Step { id: r.u32()?, n: r.u64()? },
            3 => Frame::Learn { id: r.u32()?, enable: r.bool()? },
            4 => Frame::CloseSession { id: r.u32()? },
            5 => Frame::Bye,
            16 => Frame::HelloOk {
                proto: r.u32()?,
                server: r.str()?,
                apps: {
                    let mut apps = Vec::new();
                    for _ in 0..r.count()? {
                        apps.push(r.str()?);
                    }
                    apps
                },
            },
            17 => Frame::Opened { id: r.u32()? },
            18 => Frame::Refused { session: r.str()?, reason: r.str()? },
            19 => Frame::Stepped { id: r.u32()?, decisions: r.u64()? },
            20 => Frame::SessionShed { id: r.u32()? },
            21 => Frame::Done { id: r.u32()?, summary: SessionSummary::decode(&mut r)? },
            t => return Err(SnapshotError::Corrupt(format!("unknown frame tag {t}"))),
        };
        r.expect_done()?;
        Ok(frame)
    }
}

/// Read one frame from a byte stream: length prefix, bound check, sealed
/// payload, decode. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut len = [0u8; 4];
    // EOF before any length byte is a clean close; mid-prefix is not.
    match r.read(&mut len[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len[1..]).map_err(FrameError::Io)?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(FrameError::Oversized(n));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(FrameError::Io)?;
    Frame::decode(&buf).map(Some).map_err(FrameError::Wire)
}

/// Write one frame to a byte stream.
pub fn write_frame<W: std::io::Write>(w: &mut W, f: &Frame) -> std::io::Result<()> {
    w.write_all(&f.encode())?;
    w.flush()
}

/// Why reading a frame off a connection failed.
#[derive(Debug)]
pub enum FrameError {
    /// Socket error or mid-frame EOF.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The sealed payload failed to open or decode.
    Wire(SnapshotError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::Wire(e) => write!(f, "frame decode: {e:?}"),
        }
    }
}

impl std::error::Error for FrameError {}
