//! The TCP front-end: acceptor, per-connection readers, per-app routers.
//!
//! ## Threading model
//!
//! * **Acceptor** — one thread on a non-blocking listener; each accepted
//!   connection gets its own reader thread and a shared writer handle
//!   (`Arc<Mutex<TcpStream>>` — replies and notifications interleave at
//!   frame granularity).
//! * **Connection readers** — one thread per connection: blocking frame
//!   reads, `Hello` answered inline, everything else routed to the owning
//!   app's router by session id (`app_index << APP_SHIFT | local id`).
//! * **App routers** — one thread per hosted app, the only owner of that
//!   app's [`OpenServe`] loop. It consumes a single command channel
//!   carrying both wire requests and the serve loop's own notifications
//!   (a forwarder thread funnels [`ServeEvent`]s into the same channel),
//!   so per-app decisions — submissions, credit grants, shed and retire
//!   notifications — are totally ordered without locks, and an `Opened`
//!   reply always precedes that session's `Stepped`/`Done`/`SessionShed`.
//! * **Serve workers** — each `OpenServe` runs `shards × workers` worker
//!   threads (the same pools as batch serving).
//!
//! Responses carry exactly what in-process serving reports — the loopback
//! differential test proves the `Done` summary bytes equal an in-process
//! [`psme_serve::serve`] run's, field for field.

use crate::apps::AppDef;
use crate::wire::{read_frame, write_frame, Frame, SessionSummary, APP_SHIFT, WIRE_VERSION};
use psme_serve::{OpenServe, ServeConfig, ServeEvent, ServeReport, SessionSpec};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Writer = Arc<Mutex<TcpStream>>;

/// One command on an app router's totally ordered queue.
enum Cmd {
    /// The acceptor took a connection (trace only).
    Accepted { conn: u32 },
    /// A decoded `OpenSession` for this app.
    Open {
        session: String,
        seed: u64,
        learning: bool,
        grant: Option<u64>,
        writer: Writer,
    },
    Step { local: u32, n: u64 },
    Learn { local: u32, enable: bool },
    Close { local: u32 },
    /// A serve-loop notification, funneled in by the forwarder.
    Event(ServeEvent),
    /// The forwarder drained the serve loop's event stream (sent after
    /// the loop finalized) — the router can reply to `Finish` and exit.
    EventsDone,
    /// Stop the app: finish the serve loop and report.
    Finish { reply: Sender<ServeReport> },
}

struct AppHandle {
    name: String,
    tx: Sender<Cmd>,
    router: JoinHandle<()>,
    forwarder: JoinHandle<()>,
}

/// The running server. [`NetServer::finish`] stops accepting, drains the
/// serve loops, and returns one [`ServeReport`] per app — the same report
/// type as batch serving, so wire-fed runs produce comparable artifacts.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    apps: Vec<AppHandle>,
}

fn send_to(writer: &Writer, frame: &Frame) {
    // A dead connection just loses its notification; sessions it opened
    // finish server-side regardless.
    let mut w = writer.lock().expect("writer lock");
    let _ = write_frame(&mut *w, frame);
}

/// The app router: sole owner of one app's serve loop. See module docs.
fn app_router(app: AppDef, app_idx: u32, opens: OpenServe, rx: Receiver<Cmd>) {
    let gid = |local: u32| (app_idx << APP_SHIFT) | local;
    let mut writers: Vec<Option<Writer>> = Vec::new();
    let mut opens = Some(opens);
    let mut final_report: Option<ServeReport> = None;
    let mut finish_reply: Option<Sender<ServeReport>> = None;
    for cmd in rx {
        match cmd {
            Cmd::Accepted { conn } => {
                if let Some(o) = &opens {
                    o.note_accepted(conn);
                }
            }
            Cmd::Open { session, seed, learning, grant, writer } => {
                let Some(o) = &opens else {
                    send_to(
                        &writer,
                        &Frame::Refused { session, reason: "server draining".into() },
                    );
                    continue;
                };
                let spec = SessionSpec {
                    name: session.clone(),
                    task: (app.instance)(seed),
                    learning,
                };
                match o.submit(spec, grant) {
                    Ok(local) => {
                        if writers.len() <= local as usize {
                            writers.resize(local as usize + 1, None);
                        }
                        writers[local as usize] = Some(writer.clone());
                        send_to(&writer, &Frame::Opened { id: gid(local) });
                    }
                    Err(e) => {
                        send_to(&writer, &Frame::Refused { session, reason: e.to_string() });
                    }
                }
            }
            Cmd::Step { local, n } => {
                if let Some(o) = &opens {
                    o.step(local, n);
                }
            }
            Cmd::Learn { local, enable } => {
                if let Some(o) = &opens {
                    o.set_learning(local, enable);
                }
            }
            Cmd::Close { local } => {
                if let Some(o) = &opens {
                    o.close_session(local);
                }
            }
            Cmd::Event(ev) => {
                let writer_of = |ws: &[Option<Writer>], local: u32| {
                    ws.get(local as usize).and_then(|w| w.clone())
                };
                match ev {
                    ServeEvent::Parked { id, decisions } => {
                        if let Some(w) = writer_of(&writers, id) {
                            send_to(&w, &Frame::Stepped { id: gid(id), decisions });
                        }
                    }
                    ServeEvent::Shed { id } => {
                        if let Some(w) = writer_of(&writers, id) {
                            send_to(&w, &Frame::SessionShed { id: gid(id) });
                        }
                    }
                    ServeEvent::Retired { id } => {
                        // Reports come from the live loop before Finish,
                        // from the finalized report during the drain.
                        let summary = match (&opens, &final_report) {
                            (Some(o), _) => o
                                .report(id)
                                .map(|r| SessionSummary::from_report(&r)),
                            (None, Some(rep)) => rep
                                .sessions
                                .get(id as usize)
                                .filter(|r| !r.was_shed())
                                .map(SessionSummary::from_report),
                            (None, None) => None,
                        };
                        if let (Some(w), Some(s)) = (writer_of(&writers, id), summary) {
                            send_to(&w, &Frame::Done { id: gid(id), summary: s });
                        }
                    }
                }
            }
            Cmd::Finish { reply } => {
                if let Some(o) = opens.take() {
                    final_report = Some(o.finish());
                }
                finish_reply = Some(reply);
            }
            Cmd::EventsDone => break,
        }
    }
    if let (Some(reply), Some(rep)) = (finish_reply, final_report) {
        let _ = reply.send(rep);
    }
}

/// One connection's read loop: decode frames, answer `Hello`, route the
/// rest. Exits on `Bye`, EOF, or any read/decode error (a malformed frame
/// kills the connection, never the server).
fn conn_loop(
    stream: TcpStream,
    writer: Writer,
    app_names: Arc<Vec<String>>,
    app_txs: Arc<Vec<Sender<Cmd>>>,
) {
    let mut reader = stream;
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        match frame {
            Frame::Hello { proto, .. } => {
                if proto != WIRE_VERSION {
                    send_to(
                        &writer,
                        &Frame::Refused {
                            session: String::new(),
                            reason: format!(
                                "wire version mismatch: client {proto}, server {WIRE_VERSION}"
                            ),
                        },
                    );
                    break;
                }
                send_to(
                    &writer,
                    &Frame::HelloOk {
                        proto: WIRE_VERSION,
                        server: "psme-net".into(),
                        apps: app_names.as_ref().clone(),
                    },
                );
            }
            Frame::OpenSession { app, session, seed, learning, grant } => {
                match app_names.iter().position(|n| n == &app) {
                    Some(i) => {
                        let _ = app_txs[i].send(Cmd::Open {
                            session,
                            seed,
                            learning,
                            grant,
                            writer: writer.clone(),
                        });
                    }
                    None => send_to(
                        &writer,
                        &Frame::Refused { session, reason: format!("unknown app {app:?}") },
                    ),
                }
            }
            Frame::Step { id, n } => {
                if let Some(tx) = app_txs.get((id >> APP_SHIFT) as usize) {
                    let _ = tx.send(Cmd::Step { local: id & ((1 << APP_SHIFT) - 1), n });
                }
            }
            Frame::Learn { id, enable } => {
                if let Some(tx) = app_txs.get((id >> APP_SHIFT) as usize) {
                    let _ = tx.send(Cmd::Learn { local: id & ((1 << APP_SHIFT) - 1), enable });
                }
            }
            Frame::CloseSession { id } => {
                if let Some(tx) = app_txs.get((id >> APP_SHIFT) as usize) {
                    let _ = tx.send(Cmd::Close { local: id & ((1 << APP_SHIFT) - 1) });
                }
            }
            Frame::Bye => break,
            // Server-to-client frames arriving at the server are a
            // protocol violation; drop the connection.
            _ => break,
        }
    }
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), start
    /// one serving loop per app with `cfg` (so `shards × workers` threads
    /// per app — size accordingly), and start accepting.
    /// `max_sessions_per_app` bounds each app's id space; it must fit in
    /// [`APP_SHIFT`] bits.
    pub fn start(
        addr: &str,
        cfg: &ServeConfig,
        apps: Vec<AppDef>,
        max_sessions_per_app: usize,
    ) -> std::io::Result<NetServer> {
        assert!(
            max_sessions_per_app < (1 << APP_SHIFT),
            "session id space exceeds the wire id layout"
        );
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::with_capacity(apps.len());
        let mut names = Vec::with_capacity(apps.len());
        let mut txs = Vec::with_capacity(apps.len());
        for (i, app) in apps.into_iter().enumerate() {
            let (opens, events) = OpenServe::start(app.topo.clone(), cfg.clone(), max_sessions_per_app);
            let (tx, rx) = channel::<Cmd>();
            let fwd_tx = tx.clone();
            let forwarder = std::thread::Builder::new()
                .name(format!("psm-net-fwd-{i}"))
                .spawn(move || {
                    for ev in events {
                        if fwd_tx.send(Cmd::Event(ev)).is_err() {
                            return;
                        }
                    }
                    let _ = fwd_tx.send(Cmd::EventsDone);
                })
                .expect("spawn event forwarder");
            let name = app.name.clone();
            let router = std::thread::Builder::new()
                .name(format!("psm-net-app-{i}"))
                .spawn(move || app_router(app, i as u32, opens, rx))
                .expect("spawn app router");
            names.push(name.clone());
            txs.push(tx.clone());
            handles.push(AppHandle { name, tx, router, forwarder });
        }
        let app_names = Arc::new(names);
        let app_txs = Arc::new(txs);

        let acceptor = {
            let stop = Arc::clone(&stop);
            let app_names = Arc::clone(&app_names);
            let app_txs = Arc::clone(&app_txs);
            std::thread::Builder::new()
                .name("psm-net-accept".into())
                .spawn(move || {
                    let next_conn = AtomicU32::new(0);
                    loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                                let _ = stream.set_nodelay(true);
                                for tx in app_txs.iter() {
                                    let _ = tx.send(Cmd::Accepted { conn });
                                }
                                let writer = match stream.try_clone() {
                                    Ok(w) => Arc::new(Mutex::new(w)),
                                    Err(_) => continue,
                                };
                                let names = Arc::clone(&app_names);
                                let txs = Arc::clone(&app_txs);
                                let _ = std::thread::Builder::new()
                                    .name(format!("psm-net-conn-{conn}"))
                                    .spawn(move || conn_loop(stream, writer, names, txs));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                if stop.load(Ordering::Acquire) {
                                    return;
                                }
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            Err(_) => return,
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(NetServer { addr: local, stop, acceptor: Some(acceptor), apps: handles })
    }

    /// The bound address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain every app's serve loop (open sessions retire
    /// with a `Closed` stop), and return `(app name, report)` pairs in
    /// app order.
    pub fn finish(mut self) -> Vec<(String, ServeReport)> {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor panicked");
        }
        let mut out = Vec::with_capacity(self.apps.len());
        for app in self.apps.drain(..) {
            let (reply_tx, reply_rx) = channel();
            app.tx
                .send(Cmd::Finish { reply: reply_tx })
                .expect("app router alive until Finish");
            let report = reply_rx.recv().expect("app router reports before exit");
            app.forwarder.join().expect("forwarder panicked");
            app.router.join().expect("app router panicked");
            out.push((app.name, report));
        }
        out
    }
}
