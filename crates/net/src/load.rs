//! Open-loop load generation: seed-reproducible Poisson arrivals.
//!
//! **Closed-loop** load (N clients, each waiting for its response before
//! the next request) self-throttles at saturation — throughput plateaus,
//! latency looks flat, and the server never sees overload. **Open-loop**
//! load fixes the *arrival process* instead: session open requests fire
//! at exponentially distributed inter-arrival times (a Poisson stream of
//! a configured rate) regardless of how the server is doing. Past
//! saturation the backlog grows, tail latency explodes, and admission
//! sheds — exactly the regime the serving layer's backpressure exists
//! for, and the regime closed-loop benchmarks cannot reach.
//!
//! Arrival schedules are drawn by inverse-CDF sampling over a splitmix64
//! stream, so a (seed, rate, n) triple always produces the same schedule
//! — offered-load sweeps are reproducible run to run; only service times
//! vary with the host.

use crate::client::Client;
use crate::wire::Frame;
use psme_obs::{Json, Quantiles};
use std::collections::HashMap;
use std::sync::mpsc::RecvTimeoutError;
use std::time::{Duration, Instant};

/// One step of the splitmix64 generator — the generator's only source of
/// randomness, fully determined by the seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from one splitmix64 draw (53 mantissa bits).
pub fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential inter-arrival sample for a Poisson process of `rate`
/// events/second (inverse CDF; `u` in `[0, 1)`).
pub fn exp_interarrival(rate: f64, u: f64) -> f64 {
    -(1.0 - u).ln() / rate
}

/// Cumulative arrival times (seconds) for `n` Poisson arrivals at `rate`
/// per second, deterministic in `seed`.
pub fn poisson_arrivals(rate: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = seed;
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += exp_interarrival(rate, u01(&mut rng));
            t
        })
        .collect()
}

/// One entry of the session mix.
#[derive(Clone, Debug)]
pub struct MixEntry {
    /// App to open the session on.
    pub app: String,
    /// Relative weight in the mix.
    pub weight: f64,
    /// Open with learning on.
    pub learning: bool,
    /// Initial decision credit; `None` auto-runs. Credited sessions are
    /// driven interactively: each `Stepped` (park) notification is
    /// answered with another grant of the same size until the session
    /// retires.
    pub grant: Option<u64>,
    /// On the session's first park, toggle learning **on** over the wire
    /// before re-granting — exercises mid-run chunk learning through the
    /// `Learn` frame.
    pub learn_on_first_park: bool,
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Offered load, session opens per second.
    pub rate: f64,
    /// Sessions to offer.
    pub sessions: usize,
    /// Schedule + mix seed.
    pub seed: u64,
    /// Session mix (weights need not sum to 1).
    pub mix: Vec<MixEntry>,
    /// Prefix for generated session names (must differ between runs
    /// against the same server — names are unique per app per run).
    pub name_prefix: String,
}

/// What one open-loop run observed.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Configured offered rate (sessions/second).
    pub offered_rate: f64,
    /// Sessions offered.
    pub offered: usize,
    /// Opens the server refused outright (no admission entry).
    pub refused: usize,
    /// Sessions shed by admission backpressure after acceptance.
    pub shed: usize,
    /// Sessions that retired with a result.
    pub completed: usize,
    /// Wall seconds from first open to last resolution.
    pub wall_seconds: f64,
    /// Completed sessions per wall second.
    pub sessions_per_sec: f64,
    /// Shed fraction of offered sessions.
    pub shed_rate: f64,
    /// Per-session sojourn (open sent → `Done` received), nanoseconds.
    pub sojourn_ns: Quantiles,
}

impl LoadReport {
    /// Serialize for artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("offered_rate", Json::float(self.offered_rate)),
            ("offered", Json::from(self.offered as u64)),
            ("refused", Json::from(self.refused as u64)),
            ("shed", Json::from(self.shed as u64)),
            ("completed", Json::from(self.completed as u64)),
            ("wall_seconds", Json::float(self.wall_seconds)),
            ("sessions_per_sec", Json::float(self.sessions_per_sec)),
            ("shed_rate", Json::float(self.shed_rate)),
            ("sojourn_ns", self.sojourn_ns.to_json()),
        ])
    }
}

/// Drive one open-loop run against a server at `addr`.
///
/// The caller's thread paces the Poisson schedule (sleeping until each
/// arrival, then sending `OpenSession` — never waiting for responses); a
/// response thread matches `Opened` replies to sends in FIFO order,
/// answers `Stepped` parks with more credit (and the mix's mid-run
/// learning toggle), and records sojourn on `Done`. Returns when every
/// offered session resolved (completed, shed, or refused).
pub fn run_open_loop(addr: &str, cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    assert!(!cfg.mix.is_empty(), "load mix must have at least one entry");
    assert!(cfg.rate > 0.0, "offered rate must be positive");
    let mut client = Client::connect(addr)?;
    client.hello("psme-load")?;
    let events = client.take_events().expect("fresh client has its receiver");
    let handle = client.handle();

    // Deterministic schedule: arrival offsets and mix picks.
    let arrivals = poisson_arrivals(cfg.rate, cfg.sessions, cfg.seed);
    let total_w: f64 = cfg.mix.iter().map(|m| m.weight).sum();
    let mut rng = cfg.seed ^ 0x9e37_79b9;
    let picks: Vec<usize> = (0..cfg.sessions)
        .map(|_| {
            let mut r = u01(&mut rng) * total_w;
            for (i, m) in cfg.mix.iter().enumerate() {
                r -= m.weight;
                if r <= 0.0 {
                    return i;
                }
            }
            cfg.mix.len() - 1
        })
        .collect();
    let seeds: Vec<u64> = (0..cfg.sessions).map(|_| splitmix64(&mut rng)).collect();

    // Sends and responses share the in-flight ledger: FIFO of opens not
    // yet answered, and per-id state for opened sessions.
    struct Pending {
        sent: Instant,
        mix: usize,
    }
    struct Open {
        sent: Instant,
        mix: usize,
        parks: u64,
    }
    let n = cfg.sessions;
    let mix = cfg.mix.clone();
    let t0 = Instant::now();
    let (fifo_tx, fifo_rx) = std::sync::mpsc::channel::<Pending>();

    let collector = std::thread::Builder::new()
        .name("psm-load-recv".into())
        .spawn({
            let handle = handle.clone();
            move || {
                let mut open: HashMap<u32, Open> = HashMap::new();
                let mut sojourn: Vec<f64> = Vec::new();
                let (mut refused, mut shed, mut completed) = (0usize, 0usize, 0usize);
                let mut last = Instant::now();
                while refused + shed + completed < n {
                    let f = match events.recv_timeout(Duration::from_secs(120)) {
                        Ok(f) => f,
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                    };
                    match f {
                        Frame::Opened { id } => {
                            let p = fifo_rx.recv().expect("an Opened per open sent");
                            open.insert(id, Open { sent: p.sent, mix: p.mix, parks: 0 });
                        }
                        Frame::Refused { .. } => {
                            let _ = fifo_rx.recv().expect("a reply per open sent");
                            refused += 1;
                            last = Instant::now();
                        }
                        Frame::Stepped { id, .. } => {
                            if let Some(o) = open.get_mut(&id) {
                                o.parks += 1;
                                let m = &mix[o.mix];
                                if m.learn_on_first_park && o.parks == 1 {
                                    let _ = handle.send(&Frame::Learn { id, enable: true });
                                }
                                let grant = m.grant.unwrap_or(8).max(1);
                                let _ = handle.send(&Frame::Step { id, n: grant });
                            }
                        }
                        Frame::SessionShed { id } if open.remove(&id).is_some() => {
                            shed += 1;
                            last = Instant::now();
                        }
                        Frame::Done { id, .. } => {
                            if let Some(o) = open.remove(&id) {
                                sojourn.push(o.sent.elapsed().as_nanos() as f64);
                                completed += 1;
                                last = Instant::now();
                            }
                        }
                        _ => {}
                    }
                }
                (refused, shed, completed, sojourn, last)
            }
        })
        .expect("spawn load collector");

    // The open loop proper: fire each open at its scheduled time, never
    // waiting for the server.
    for (i, &at) in arrivals.iter().enumerate() {
        let target = t0 + Duration::from_secs_f64(at);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let m = &cfg.mix[picks[i]];
        fifo_tx.send(Pending { sent: Instant::now(), mix: picks[i] }).expect("collector alive");
        handle.send(&Frame::OpenSession {
            app: m.app.clone(),
            session: format!("{}-{i}", cfg.name_prefix),
            seed: seeds[i],
            learning: m.learning,
            grant: m.grant,
        })?;
    }

    let (refused, shed, completed, sojourn, last) =
        collector.join().expect("load collector panicked");
    let wall_seconds = (last - t0).as_secs_f64().max(f64::EPSILON);
    Ok(LoadReport {
        offered_rate: cfg.rate,
        offered: n,
        refused,
        shed,
        completed,
        wall_seconds,
        sessions_per_sec: completed as f64 / wall_seconds,
        shed_rate: shed as f64 / n.max(1) as f64,
        sojourn_ns: Quantiles::from_samples(&sojourn),
    })
}
