//! # psme-net — a framed TCP front-end for the serving layer
//!
//! The serving layer (`psme-serve`) admits, schedules, shards, and sheds —
//! but until this crate, every caller was in-process and every throughput
//! number closed-loop. `psme-net` puts a wire in front of it:
//!
//! * [`wire`] — a hand-rolled, versioned, length-prefixed frame format
//!   over the repo's sealed-frame envelope (magic + version + checksum;
//!   corrupt bytes are typed errors, never panics). No tokio, no serde:
//!   `std::net` blocking sockets and threads, matching the repo's
//!   no-heavy-deps style.
//! * [`server`] — [`server::NetServer`] hosts one [`apps::AppDef`] per
//!   paper task (one frozen topology each) and feeds decoded requests
//!   through the same sharded admission path as in-process serving
//!   ([`psme_serve::OpenServe`]); responses carry summaries the loopback
//!   differential proves bit-for-bit equal to batch [`psme_serve::serve`].
//! * [`client`] — a small blocking client with a background reader.
//! * [`load`] — seed-reproducible **open-loop** Poisson load generation
//!   and offered-load sweeps: sessions/sec, sojourn quantiles, and shed
//!   rate past saturation (see DESIGN.md §9 for the methodology).

pub mod apps;
pub mod client;
pub mod load;
pub mod server;
pub mod wire;

pub use apps::{paper_apps, AppDef, PUZZLE_MOVES};
pub use client::{Client, ClientHandle};
pub use load::{
    exp_interarrival, poisson_arrivals, run_open_loop, splitmix64, u01, LoadConfig, LoadReport,
    MixEntry,
};
pub use server::NetServer;
pub use wire::{
    read_frame, stop_code, write_frame, Frame, FrameError, SessionSummary, APP_SHIFT, MAX_FRAME,
    WIRE_MAGIC, WIRE_VERSION,
};
