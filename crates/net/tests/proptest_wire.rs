//! Wire-format robustness gates.
//!
//! Encode → decode is identity for every frame type, and every way the
//! bytes can go wrong on a real socket — truncation at any offset, any
//! single-byte corruption, oversized length prefixes, unknown tags — is
//! a typed error. The decoder must never panic and never misparse.

use proptest::prelude::*;
use psme_net::{read_frame, Frame, FrameError, SessionSummary, MAX_FRAME};
use psme_soar::AgentStats;

/// A strategy covering every frame variant in the protocol.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0usize..12,
        "[a-z0-9-]{0,12}",
        "[a-zA-Z0-9 _.-]{0,20}",
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        prop::collection::vec("[a-z0-9*=-]{0,16}", 0..4),
        prop::collection::vec(any::<u64>(), 9..10),
    )
        .prop_map(|(tag, name, text, n, id, flag, strs, nums)| match tag {
            0 => Frame::Hello { proto: n as u32, client: text },
            1 => Frame::OpenSession {
                app: name,
                session: text,
                seed: n,
                learning: flag,
                grant: flag.then_some(n / 2),
            },
            2 => Frame::Step { id, n },
            3 => Frame::Learn { id, enable: flag },
            4 => Frame::CloseSession { id },
            5 => Frame::Bye,
            6 => Frame::HelloOk { proto: n as u32, server: text, apps: strs },
            7 => Frame::Opened { id },
            8 => Frame::Refused { session: name, reason: text },
            9 => Frame::Stepped { id, decisions: n },
            10 => Frame::SessionShed { id },
            _ => Frame::Done {
                id,
                summary: SessionSummary {
                    name,
                    stop: (n % 5) as u8,
                    stats: AgentStats {
                        decisions: nums[0],
                        elaboration_cycles: nums[1],
                        impasses: nums[2],
                        chunks_built: nums[3],
                        firings: nums[4],
                        wme_adds: nums[5],
                        wme_removes: nums[6],
                        update_tasks: nums[7],
                        reorganizations: nums[8],
                    },
                    chunk_names: strs,
                    output: vec![text],
                },
            },
        })
}

/// Sealed payload of a frame (the bytes after the length prefix).
fn sealed(f: &Frame) -> Vec<u8> {
    f.encode()[4..].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Encode/decode identity, through the full length-prefixed path.
    #[test]
    fn round_trip_is_identity(f in frame_strategy()) {
        let bytes = f.encode();
        prop_assert_eq!(
            u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize,
            bytes.len() - 4,
            "length prefix covers the sealed payload"
        );
        let back = Frame::decode(&bytes[4..]).expect("own encoding decodes");
        prop_assert_eq!(back, f.clone());
        // And through the stream reader.
        let mut cursor = std::io::Cursor::new(bytes);
        let got = read_frame(&mut cursor).expect("stream decodes").expect("one frame");
        prop_assert_eq!(got, f);
    }

    /// Truncation at every offset is an error, never a panic, never a
    /// frame.
    #[test]
    fn truncated_frames_are_rejected(f in frame_strategy(), cut_seed in any::<u64>()) {
        let s = sealed(&f);
        let cut = (cut_seed as usize) % s.len();
        prop_assert!(Frame::decode(&s[..cut]).is_err(), "cut at {cut}/{} decoded", s.len());
    }

    /// Any single-byte corruption is caught (the checksum envelope), and
    /// decoding corrupted bytes never panics.
    #[test]
    fn corrupt_frames_are_rejected(
        f in frame_strategy(),
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let mut s = sealed(&f);
        let pos = (pos_seed as usize) % s.len();
        s[pos] ^= mask;
        prop_assert!(Frame::decode(&s).is_err(), "flip {mask:#x} at {pos} decoded");
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u64>(), 0..64)) {
        let raw: Vec<u8> = bytes.iter().flat_map(|b| b.to_le_bytes()).collect();
        let _ = Frame::decode(&raw);
    }
}

/// A length prefix past the frame bound is refused before allocation.
#[test]
fn oversized_length_prefix_is_refused() {
    let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 16]);
    let mut cursor = std::io::Cursor::new(bytes);
    match read_frame(&mut cursor) {
        Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

/// Clean EOF at a frame boundary is `Ok(None)`; EOF mid-frame is an error.
#[test]
fn eof_semantics() {
    let mut empty = std::io::Cursor::new(Vec::<u8>::new());
    assert!(matches!(read_frame(&mut empty), Ok(None)));
    let bytes = Frame::Bye.encode();
    let mut cut = std::io::Cursor::new(bytes[..bytes.len() - 1].to_vec());
    assert!(matches!(read_frame(&mut cut), Err(FrameError::Io(_))));
}
