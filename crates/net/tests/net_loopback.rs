//! Loopback gates: the wire adds a transport, not semantics.
//!
//! The flagship test is the **differential**: the same seeded session
//! batch served (a) in-process through batch [`serve`] and (b) over
//! loopback TCP through the framed protocol must produce bit-for-bit
//! identical results — the `Done` summaries (stop reason, every agent
//! counter, chunk names, `(write …)` output) compare equal both as
//! structs and as encoded wire bytes, under all three schedulers. The
//! rest cover the interactive protocol: hello negotiation, refusals,
//! credited stepping with mid-run learning toggles, closes, and
//! deterministic shed notifications.

use psme_core::Scheduler;
use psme_net::{AppDef, Client, Frame, NetServer, SessionSummary};
use psme_serve::{build_topology, serve, ServeConfig, SessionSpec};
use psme_tasks::{eight_puzzle, scrambled};
use std::collections::HashMap;
use std::time::Duration;

const MOVES: usize = 3;

fn puzzle_app() -> AppDef {
    AppDef::new("eight-puzzle", |seed| eight_puzzle(&scrambled(MOVES, seed)))
}

fn recv(client: &Client) -> Frame {
    client.recv_timeout(Duration::from_secs(120)).expect("server responds in time")
}

/// Serve the same seeded batch in-process and over TCP; every summary
/// must match bit-for-bit.
fn differential(scheduler: Scheduler) {
    let n = 6usize;
    let cfg = ServeConfig {
        workers: 2,
        scheduler,
        table_capacity: 4,
        admission_depth: 16,
        ..Default::default()
    };
    let mk_spec = |i: usize| SessionSpec {
        name: format!("diff-{i}"),
        task: eight_puzzle(&scrambled(MOVES, i as u64 * 17 + 3)),
        learning: i.is_multiple_of(2),
    };
    let specs: Vec<SessionSpec> = (0..n).map(mk_spec).collect();
    let topo = build_topology(&specs[0].task);
    let reference = serve(topo, specs, cfg.clone());
    assert_eq!(reference.shed, 0, "the differential batch must not shed");

    let server =
        NetServer::start("127.0.0.1:0", &cfg, vec![puzzle_app()], 64).expect("bind loopback");
    let client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let apps = client.hello("differential").expect("hello");
    assert_eq!(apps, vec!["eight-puzzle".to_string()]);
    for i in 0..n {
        client
            .send(&Frame::OpenSession {
                app: "eight-puzzle".into(),
                session: format!("diff-{i}"),
                seed: i as u64 * 17 + 3,
                learning: i.is_multiple_of(2),
                grant: None,
            })
            .expect("send open");
    }
    // Opened replies come back in request order; Done frames in
    // completion order.
    let mut ids: HashMap<u32, usize> = HashMap::new();
    let mut summaries: HashMap<usize, SessionSummary> = HashMap::new();
    let mut opened = 0usize;
    while summaries.len() < n {
        match recv(&client) {
            Frame::Opened { id } => {
                ids.insert(id, opened);
                opened += 1;
            }
            Frame::Done { id, summary } => {
                let i = ids[&id];
                summaries.insert(i, summary);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    for (i, wire) in &summaries {
        let local = SessionSummary::from_report(&reference.sessions[*i]);
        assert_eq!(wire, &local, "session {i} under {scheduler:?}");
        // Bit-for-bit: identical encodings, not just struct equality.
        let a = Frame::Done { id: 0, summary: wire.clone() }.encode();
        let b = Frame::Done { id: 0, summary: local }.encode();
        assert_eq!(a, b, "session {i} wire bytes under {scheduler:?}");
    }
    drop(client);
    let reports = server.finish();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].1.sessions.len(), n);
    assert_eq!(reports[0].1.shed, 0);
}

#[test]
fn tcp_matches_in_process_single_queue() {
    differential(Scheduler::SingleQueue);
}

#[test]
fn tcp_matches_in_process_multi_queue() {
    differential(Scheduler::MultiQueue);
}

#[test]
fn tcp_matches_in_process_work_stealing() {
    differential(Scheduler::WorkStealing);
}

/// Credited sessions park for more credit; `Learn` toggles chunking
/// mid-run over the wire; `CloseSession` retires with the `Closed` stop.
#[test]
fn credited_stepping_learning_toggle_and_close() {
    let cfg = ServeConfig { workers: 1, table_capacity: 4, ..Default::default() };
    let server =
        NetServer::start("127.0.0.1:0", &cfg, vec![puzzle_app()], 16).expect("bind loopback");
    let client = Client::connect(&server.local_addr().to_string()).expect("connect");
    client.hello("stepper").expect("hello");

    // Session A: stepped to completion with learning toggled on after the
    // first park.
    client
        .send(&Frame::OpenSession {
            app: "eight-puzzle".into(),
            session: "stepped".into(),
            seed: 5,
            learning: false,
            grant: Some(2),
        })
        .expect("open A");
    let a = match recv(&client) {
        Frame::Opened { id } => id,
        f => panic!("expected Opened, got {f:?}"),
    };
    let mut parks = 0u32;
    let mut last_decisions = 0u64;
    let summary = loop {
        match recv(&client) {
            Frame::Stepped { id, decisions } => {
                assert_eq!(id, a);
                assert!(
                    decisions > last_decisions,
                    "credit grants make progress: {decisions} after {last_decisions}"
                );
                last_decisions = decisions;
                parks += 1;
                if parks == 1 {
                    client.send(&Frame::Learn { id, enable: true }).expect("learn");
                }
                client.send(&Frame::Step { id, n: 8 }).expect("step");
            }
            Frame::Done { id, summary } => {
                assert_eq!(id, a);
                break summary;
            }
            f => panic!("unexpected frame {f:?}"),
        }
    };
    assert!(parks >= 1, "a 2-decision grant must park at least once");
    assert!(summary.stats.decisions > 2, "the session ran past its first grant");
    assert_ne!(summary.stop, psme_net::stop_code(psme_soar::StopReason::Closed));

    // Session B: parked, then closed — retires with the Closed stop.
    client
        .send(&Frame::OpenSession {
            app: "eight-puzzle".into(),
            session: "closed".into(),
            seed: 6,
            learning: false,
            grant: Some(1),
        })
        .expect("open B");
    let b = match recv(&client) {
        Frame::Opened { id } => id,
        f => panic!("expected Opened, got {f:?}"),
    };
    match recv(&client) {
        Frame::Stepped { id, .. } => assert_eq!(id, b),
        f => panic!("expected Stepped, got {f:?}"),
    }
    client.send(&Frame::CloseSession { id: b }).expect("close");
    match recv(&client) {
        Frame::Done { id, summary } => {
            assert_eq!(id, b);
            assert_eq!(summary.stop, psme_net::stop_code(psme_soar::StopReason::Closed));
        }
        f => panic!("expected Done, got {f:?}"),
    }
    drop(client);
    server.finish();
}

/// Admission backpressure over the wire: a parked session pins the only
/// table seat, the second arrival waits, and the third displaces it —
/// the client hears `SessionShed` for the oldest waiting session.
#[test]
fn shed_notification_reaches_the_client() {
    let cfg = ServeConfig {
        workers: 1,
        table_capacity: 1,
        admission_depth: 1,
        ..Default::default()
    };
    let server =
        NetServer::start("127.0.0.1:0", &cfg, vec![puzzle_app()], 16).expect("bind loopback");
    let client = Client::connect(&server.local_addr().to_string()).expect("connect");
    client.hello("shedder").expect("hello");
    let open = |name: &str, grant: Option<u64>| {
        client
            .send(&Frame::OpenSession {
                app: "eight-puzzle".into(),
                session: name.into(),
                seed: 1,
                learning: false,
                grant,
            })
            .expect("open");
        match recv(&client) {
            Frame::Opened { id } => id,
            f => panic!("expected Opened, got {f:?}"),
        }
    };
    // A takes the seat and parks (holding it).
    let a = open("seat-holder", Some(1));
    match recv(&client) {
        Frame::Stepped { id, .. } => assert_eq!(id, a),
        f => panic!("expected Stepped, got {f:?}"),
    }
    // B waits; C overflows the depth-1 backlog and displaces B.
    let b = open("waiter", None);
    let c = open("displacer", None);
    match recv(&client) {
        Frame::SessionShed { id } => assert_eq!(id, b, "shed-oldest displaces the first waiter"),
        f => panic!("expected SessionShed, got {f:?}"),
    }
    // Release A; it completes, then C is admitted and completes.
    client.send(&Frame::Step { id: a, n: 1000 }).expect("step");
    let mut done = Vec::new();
    while done.len() < 2 {
        match recv(&client) {
            Frame::Done { id, .. } => done.push(id),
            Frame::Stepped { id, .. } => {
                client.send(&Frame::Step { id, n: 1000 }).expect("re-step");
            }
            f => panic!("unexpected frame {f:?}"),
        }
    }
    assert!(done.contains(&a) && done.contains(&c));
    drop(client);
    let reports = server.finish();
    assert_eq!(reports[0].1.shed, 1);
}

/// Refusals: version mismatch at hello, unknown app, duplicate name.
#[test]
fn refusals() {
    let cfg = ServeConfig { workers: 1, ..Default::default() };
    let server =
        NetServer::start("127.0.0.1:0", &cfg, vec![puzzle_app()], 16).expect("bind loopback");
    let addr = server.local_addr().to_string();

    // Wrong wire version: refused, connection dropped.
    let bad = Client::connect(&addr).expect("connect");
    bad.send(&Frame::Hello { proto: 999, client: "old".into() }).expect("send");
    match recv(&bad) {
        Frame::Refused { reason, .. } => assert!(reason.contains("version")),
        f => panic!("expected Refused, got {f:?}"),
    }
    drop(bad);

    let client = Client::connect(&addr).expect("connect");
    client.hello("refusals").expect("hello");
    client
        .send(&Frame::OpenSession {
            app: "no-such-app".into(),
            session: "x".into(),
            seed: 0,
            learning: false,
            grant: None,
        })
        .expect("send");
    match recv(&client) {
        Frame::Refused { session, reason } => {
            assert_eq!(session, "x");
            assert!(reason.contains("unknown app"));
        }
        f => panic!("expected Refused, got {f:?}"),
    }
    let mut opened = false;
    for _ in 0..2 {
        client
            .send(&Frame::OpenSession {
                app: "eight-puzzle".into(),
                session: "dup".into(),
                seed: 0,
                learning: false,
                grant: None,
            })
            .expect("send");
    }
    let mut refused = false;
    let mut pending = 2;
    while pending > 0 {
        match recv(&client) {
            Frame::Opened { .. } => {
                opened = true;
                pending -= 1;
            }
            Frame::Refused { session, reason } => {
                assert_eq!(session, "dup");
                assert!(reason.contains("duplicate"));
                refused = true;
                pending -= 1;
            }
            Frame::Done { .. } => {}
            f => panic!("unexpected frame {f:?}"),
        }
    }
    assert!(opened && refused, "one dup admitted, one refused");
    drop(client);
    server.finish();
}
