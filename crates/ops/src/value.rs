//! Attribute values.

use crate::symbol::{intern, Symbol};
use std::fmt;

/// The value stored in one field (attribute position) of a wme.
///
/// OPS5 attributes hold symbols or numbers; an unset attribute is `Nil`
/// (OPS5's `nil`). Floats are deliberately unsupported: none of the paper's
/// tasks use them and exact equality is what the hashed memories rely on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// Unset field / OPS5 `nil`.
    #[default]
    Nil,
    /// A symbolic constant.
    Sym(Symbol),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// `true` if this is `Nil`.
    pub fn is_nil(self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Symbol payload, if any.
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Convenience constructor interning a symbol name.
    pub fn sym(name: &str) -> Value {
        Value::Sym(intern(name))
    }

    /// Total order used by the relational predicates `< <= > >=`.
    ///
    /// OPS5 defines relational tests on numbers; on mixed or symbolic
    /// operands the relational predicates simply fail (return `None`),
    /// mirroring OPS5's behaviour of not matching.
    pub fn num_cmp(self, other: Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(&b)),
            _ => None,
        }
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_default() {
        assert_eq!(Value::default(), Value::Nil);
        assert!(Value::Nil.is_nil());
        assert!(!Value::Int(0).is_nil());
    }

    #[test]
    fn num_cmp_only_on_ints() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).num_cmp(Value::Int(2)), Some(Less));
        assert_eq!(Value::Int(2).num_cmp(Value::Int(2)), Some(Equal));
        assert_eq!(Value::Int(3).num_cmp(Value::Int(2)), Some(Greater));
        assert_eq!(Value::sym("a").num_cmp(Value::Int(2)), None);
        assert_eq!(Value::sym("a").num_cmp(Value::sym("b")), None);
        assert_eq!(Value::Nil.num_cmp(Value::Nil), None);
    }

    #[test]
    fn conversions() {
        let s = intern("blue");
        assert_eq!(Value::from(s), Value::Sym(s));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::sym("blue"), Value::Sym(s));
        assert_eq!(Value::Sym(s).as_sym(), Some(s));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Nil.as_sym(), None);
        assert_eq!(Value::Nil.as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Value::Nil), "nil");
        assert_eq!(format!("{}", Value::sym("free")), "free");
        assert_eq!(format!("{}", Value::Int(-4)), "-4");
    }
}
