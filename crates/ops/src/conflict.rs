//! The conflict set and OPS5 conflict resolution.
//!
//! "OPS5 uses a selection procedure called conflict resolution to choose a
//! single production's instantiation from the CS, which is then fired"
//! (§2.1). Soar instead fires *all* instantiations in parallel (§3); the
//! Soar side therefore only uses [`ConflictSet`] as a set with add/remove
//! deltas, while OPS5 mode uses [`Strategy::Lex`].

use crate::production::Instantiation;
use crate::wme::TimeTag;
use std::collections::HashSet;

/// Conflict-resolution strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// OPS5 LEX: refractoriness, recency (descending time tags compared
    /// lexicographically), then specificity (number of attribute tests).
    #[default]
    Lex,
    /// Fire-all (Soar's elaboration semantics): `select` is not used.
    FireAll,
}

/// The conflict set: the instantiations currently matched.
///
/// Tracks refraction (instantiations already fired are not re-fired even if
/// they re-enter after a remove/add of identical wme ids is *not* possible
/// since wme ids are never reused; refraction is therefore just "fired and
/// still present").
#[derive(Debug, Default)]
pub struct ConflictSet {
    present: Vec<(Instantiation, usize)>, // (inst, specificity)
    fired: HashSet<Instantiation>,
}

impl ConflictSet {
    /// Empty conflict set.
    pub fn new() -> ConflictSet {
        ConflictSet::default()
    }

    /// Add an instantiation (with its production's test count for
    /// specificity ordering).
    pub fn add(&mut self, inst: Instantiation, specificity: usize) {
        self.present.push((inst, specificity));
    }

    /// Remove an instantiation (when its support disappears). Also clears
    /// its refraction record. Returns `true` if it was present.
    pub fn remove(&mut self, inst: &Instantiation) -> bool {
        if let Some(i) = self.present.iter().position(|(p, _)| p == inst) {
            self.present.swap_remove(i);
            self.fired.remove(inst);
            true
        } else {
            false
        }
    }

    /// All currently present instantiations.
    pub fn iter(&self) -> impl Iterator<Item = &Instantiation> {
        self.present.iter().map(|(i, _)| i)
    }

    /// Number of instantiations present.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// `true` when no instantiation is present.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Instantiations present and not yet fired (Soar fires all of these in
    /// one elaboration cycle). Marks them fired.
    pub fn take_unfired(&mut self) -> Vec<Instantiation> {
        let mut out = Vec::new();
        for (inst, _) in &self.present {
            if self.fired.insert(inst.clone()) {
                out.push(inst.clone());
            }
        }
        out
    }

    /// Present entries in insertion order, each with its specificity and
    /// whether it has already fired. Insertion order matters: it is the
    /// order [`Self::take_unfired`] fires in, so a snapshot must preserve
    /// it to keep a restored agent's firing (and gensym) order identical.
    pub fn entries(&self) -> impl Iterator<Item = (&Instantiation, usize, bool)> {
        self.present.iter().map(|(i, s)| (i, *s, self.fired.contains(i)))
    }

    /// Re-append one entry recorded by [`Self::entries`] (snapshot restore).
    /// Call in recorded order.
    pub fn restore_entry(&mut self, inst: Instantiation, specificity: usize, fired: bool) {
        if fired {
            self.fired.insert(inst.clone());
        }
        self.present.push((inst, specificity));
    }

    /// OPS5 LEX selection: choose the dominant unfired instantiation, mark
    /// it fired, and return it. `None` when every instantiation has fired.
    pub fn select_lex(&mut self) -> Option<Instantiation> {
        let mut best: Option<(&Instantiation, Vec<TimeTag>, usize)> = None;
        for (inst, spec) in &self.present {
            if self.fired.contains(inst) {
                continue;
            }
            let key = inst.recency_key();
            let better = match &best {
                None => true,
                Some((_, bkey, bspec)) => match key.cmp(bkey) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => spec > bspec,
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((inst, key, *spec));
            }
        }
        let chosen = best.map(|(i, _, _)| i.clone())?;
        self.fired.insert(chosen.clone());
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::intern;
    use crate::wme::WmeId;

    fn inst(prod: &str, tags: &[u64]) -> Instantiation {
        Instantiation {
            prod: intern(prod),
            wmes: tags.iter().map(|&t| WmeId(t as u32)).collect(),
            tags: tags.iter().map(|&t| TimeTag(t)).collect(),
        }
    }

    #[test]
    fn lex_prefers_recency() {
        let mut cs = ConflictSet::new();
        cs.add(inst("old", &[1, 2]), 5);
        cs.add(inst("new", &[1, 9]), 2);
        assert_eq!(cs.select_lex().unwrap().prod, intern("new"));
        // refraction: next selection picks the other one
        assert_eq!(cs.select_lex().unwrap().prod, intern("old"));
        assert!(cs.select_lex().is_none());
    }

    #[test]
    fn lex_ties_break_on_specificity() {
        let mut cs = ConflictSet::new();
        cs.add(inst("loose", &[7]), 1);
        cs.add(inst("tight", &[7]), 9);
        assert_eq!(cs.select_lex().unwrap().prod, intern("tight"));
    }

    #[test]
    fn remove_clears_refraction() {
        let mut cs = ConflictSet::new();
        let i = inst("p", &[3]);
        cs.add(i.clone(), 1);
        assert!(cs.select_lex().is_some());
        assert!(cs.remove(&i));
        assert!(!cs.remove(&i));
        // re-added: fires again (support went away and came back)
        cs.add(i.clone(), 1);
        assert!(cs.select_lex().is_some());
    }

    #[test]
    fn take_unfired_marks_all() {
        let mut cs = ConflictSet::new();
        cs.add(inst("a", &[1]), 1);
        cs.add(inst("b", &[2]), 1);
        assert_eq!(cs.take_unfired().len(), 2);
        assert_eq!(cs.take_unfired().len(), 0);
        cs.add(inst("c", &[3]), 1);
        let third = cs.take_unfired();
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].prod, intern("c"));
    }

    #[test]
    fn recency_key_longer_wins_on_prefix_tie() {
        // LEX compares sorted tag vectors lexicographically; [9,3] > [9].
        let mut cs = ConflictSet::new();
        cs.add(inst("short", &[9]), 1);
        cs.add(inst("long", &[3, 9]), 1);
        assert_eq!(cs.select_lex().unwrap().prod, intern("long"));
    }
}
