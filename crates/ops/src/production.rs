//! Productions (condition-action rules) and instantiations.

use crate::action::{Action, RhsBind, RhsExpr, RhsTerm};
use crate::cond::{CondElem, Pred};
use crate::symbol::Symbol;
use crate::value::Value;
use crate::wme::{TimeTag, Wme, WmeId};
use std::collections::HashMap;
use std::fmt;

/// Index into a production's variable table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u16);

/// Where a variable receives its binding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BindSite {
    /// Bound by an `Eq` test in the `pos_idx`-th *positive* CE at `field`.
    Pos {
        /// Positive-CE index (0-based, counting positive CEs only).
        pos_idx: u16,
        /// Field index within that CE's wme.
        field: u16,
    },
    /// Local to a negated CE / NCC (never visible outside that condition
    /// element; `ce` is the index of the defining element in `ces`).
    NegLocal {
        /// Index of the defining condition element.
        ce: u16,
    },
    /// Bound on the RHS by `bind`.
    Rhs,
}

/// A compiled production: named LHS (condition elements) plus RHS.
///
/// Construct through [`Production::new`], which performs the variable
/// analysis OPS5 does at compile time (binding-site determination and
/// use-before-bind checking).
#[derive(Clone, Debug)]
pub struct Production {
    /// Production name.
    pub name: Symbol,
    /// Condition elements in source order.
    pub ces: Vec<CondElem>,
    /// Variable names (`VarId` → name).
    pub var_names: Vec<Symbol>,
    /// Binding site per variable.
    pub bind_sites: Vec<BindSite>,
    /// RHS `bind` forms, evaluated in order before the actions.
    pub rhs_binds: Vec<RhsBind>,
    /// RHS actions.
    pub actions: Vec<Action>,
    /// Number of positive CEs.
    pub num_pos: u16,
}

/// A concrete action produced by evaluating a production's RHS against an
/// instantiation's bindings. The engine applies these to working memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConcreteAction {
    /// Add a wme of `class` with the given `(field, value)` pairs set.
    Make(Symbol, Vec<(u16, Value)>),
    /// Remove the wme bound to the 1-based positive CE.
    RemoveCe(u16),
    /// Modify (remove + re-make) the wme bound to the 1-based positive CE.
    ModifyCe(u16, Vec<(u16, Value)>),
    /// Output line.
    Write(String),
    /// Stop the recognize-act cycle.
    Halt,
}

impl Production {
    /// Build and validate a production.
    ///
    /// Checks performed (mirroring the OPS5 compiler):
    /// - a variable's first occurrence must be an `Eq` test (relational
    ///   predicates cannot bind);
    /// - variables used in negated CEs / NCCs either refer to earlier
    ///   positive bindings or are local to that negation;
    /// - RHS terms only reference bound or RHS-`bind`-defined variables;
    /// - `remove`/`modify` CE indices refer to existing positive CEs;
    /// - the first CE must be positive (OPS5 restriction).
    pub fn new(
        name: Symbol,
        ces: Vec<CondElem>,
        var_names: Vec<Symbol>,
        rhs_binds: Vec<RhsBind>,
        actions: Vec<Action>,
    ) -> Result<Production, String> {
        if ces.is_empty() {
            return Err(format!("{name}: production has no condition elements"));
        }
        if !ces[0].is_pos() {
            return Err(format!("{name}: first condition element must be positive"));
        }
        let nvars = var_names.len();
        let mut bind_sites = vec![None::<BindSite>; nvars];
        let mut num_pos: u16 = 0;
        for (ce_idx, ce) in ces.iter().enumerate() {
            let ce_idx = ce_idx as u16;
            // A variable whose binding site is local to a negation may not be
            // referenced from any other condition element — Rete evaluates
            // negations as self-contained filters, so a cross-element
            // reference would have no well-defined binding.
            let check_local = |sites: &[Option<BindSite>], var: VarId| -> Result<(), String> {
                if let Some(BindSite::NegLocal { ce }) = sites[var.0 as usize] {
                    if ce != ce_idx {
                        return Err(format!(
                            "{name}: variable <{}> is local to a negation and cannot be used elsewhere",
                            var_names[var.0 as usize]
                        ));
                    }
                }
                Ok(())
            };
            match ce {
                CondElem::Pos(c) => {
                    for (field, pred, var) in c.var_tests() {
                        check_local(&bind_sites, var)?;
                        let slot = bind_sites
                            .get_mut(var.0 as usize)
                            .ok_or_else(|| format!("{name}: variable id out of range"))?;
                        if slot.is_none() {
                            if pred != Pred::Eq {
                                return Err(format!(
                                    "{name}: first occurrence of <{}> uses a non-binding predicate",
                                    var_names[var.0 as usize]
                                ));
                            }
                            *slot = Some(BindSite::Pos { pos_idx: num_pos, field });
                        }
                    }
                    num_pos += 1;
                }
                CondElem::Neg(_) | CondElem::Ncc(_) => {
                    for c in ce.conds() {
                        for (_, pred, var) in c.var_tests() {
                            check_local(&bind_sites, var)?;
                            let slot = &mut bind_sites[var.0 as usize];
                            if slot.is_none() {
                                if pred != Pred::Eq {
                                    return Err(format!(
                                        "{name}: first occurrence of <{}> (in a negation) uses a non-binding predicate",
                                        var_names[var.0 as usize]
                                    ));
                                }
                                *slot = Some(BindSite::NegLocal { ce: ce_idx });
                            }
                        }
                    }
                }
            }
        }
        // RHS binds.
        for b in &rhs_binds {
            let slot = &mut bind_sites[b.var.0 as usize];
            match slot {
                None => *slot = Some(BindSite::Rhs),
                Some(BindSite::Pos { .. }) => {
                    return Err(format!(
                        "{name}: RHS bind shadows LHS variable <{}>",
                        var_names[b.var.0 as usize]
                    ))
                }
                Some(BindSite::NegLocal { .. }) => {
                    return Err(format!(
                        "{name}: RHS bind reuses negation-local variable <{}>",
                        var_names[b.var.0 as usize]
                    ))
                }
                Some(BindSite::Rhs) => {
                    return Err(format!(
                        "{name}: variable <{}> bound twice on the RHS",
                        var_names[b.var.0 as usize]
                    ))
                }
            }
        }
        let check_term = |t: &RhsTerm, ctx: &str| -> Result<(), String> {
            if let RhsTerm::Var(v) = t {
                match bind_sites[v.0 as usize] {
                    Some(BindSite::Pos { .. }) | Some(BindSite::Rhs) => Ok(()),
                    _ => Err(format!(
                        "{name}: {ctx} references unbound variable <{}>",
                        var_names[v.0 as usize]
                    )),
                }
            } else {
                Ok(())
            }
        };
        for b in &rhs_binds {
            match &b.expr {
                RhsExpr::Genatom => {}
                RhsExpr::Term(t) => check_term(t, "bind")?,
                RhsExpr::Add(a, c) | RhsExpr::Sub(a, c) => {
                    check_term(a, "bind")?;
                    check_term(c, "bind")?;
                }
            }
        }
        for a in &actions {
            match a {
                Action::Make { fields, .. } => {
                    for (_, t) in fields {
                        check_term(t, "make")?;
                    }
                }
                Action::Modify { ce, fields } => {
                    if *ce == 0 || *ce > num_pos {
                        return Err(format!("{name}: modify references CE {ce} (have {num_pos} positive CEs)"));
                    }
                    for (_, t) in fields {
                        check_term(t, "modify")?;
                    }
                }
                Action::Remove { ce } => {
                    if *ce == 0 || *ce > num_pos {
                        return Err(format!("{name}: remove references CE {ce} (have {num_pos} positive CEs)"));
                    }
                }
                Action::Write(ts) => {
                    for t in ts {
                        check_term(t, "write")?;
                    }
                }
                Action::Halt => {}
            }
        }
        // Any variable never given a site is an internal error of the parser.
        let bind_sites = bind_sites
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.ok_or_else(|| format!("{name}: variable <{}> never occurs", var_names[i])))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Production { name, ces, var_names, bind_sites, rhs_binds, actions, num_pos })
    }

    /// Total number of condition elements (counting each NCC as one, as the
    /// paper's CE counts do — Figure 6-7 counts its NCC groups' members, so
    /// see [`Production::ce_count_flat`] for that accounting).
    pub fn ce_count(&self) -> usize {
        self.ces.len()
    }

    /// Number of simple conditions, flattening NCC groups (the accounting
    /// used by Table 5-1 of the paper).
    pub fn ce_count_flat(&self) -> usize {
        self.ces.iter().map(|ce| ce.conds().len()).sum()
    }

    /// Total number of attribute tests across all CEs (specificity measure
    /// used by LEX conflict resolution).
    pub fn test_count(&self) -> usize {
        self.ces
            .iter()
            .flat_map(|ce| ce.conds())
            .map(|c| c.tests.len() + 1) // +1 for the class test
            .sum()
    }

    /// Extract the variable bindings from the wmes matched by the positive
    /// CEs (in positive-CE order). Negation-local and RHS variables are Nil.
    pub fn bindings_of(&self, pos_wmes: &[&Wme]) -> Vec<Value> {
        debug_assert_eq!(pos_wmes.len(), self.num_pos as usize);
        self.bind_sites
            .iter()
            .map(|s| match *s {
                BindSite::Pos { pos_idx, field } => pos_wmes[pos_idx as usize].field(field),
                _ => Value::Nil,
            })
            .collect()
    }

    /// Evaluate the RHS against bindings, minting fresh symbols through
    /// `gensym`. Returns the concrete actions in order.
    pub fn eval_rhs(
        &self,
        bindings: &mut [Value],
        gensym: &mut dyn FnMut() -> Symbol,
    ) -> Vec<ConcreteAction> {
        let term = |bindings: &[Value], t: &RhsTerm| -> Value {
            match *t {
                RhsTerm::Const(v) => v,
                RhsTerm::Var(v) => bindings[v.0 as usize],
            }
        };
        for b in &self.rhs_binds {
            let v = match &b.expr {
                RhsExpr::Genatom => Value::Sym(gensym()),
                RhsExpr::Term(t) => term(bindings, t),
                RhsExpr::Add(a, c) => match (term(bindings, a), term(bindings, c)) {
                    (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
                    _ => Value::Nil,
                },
                RhsExpr::Sub(a, c) => match (term(bindings, a), term(bindings, c)) {
                    (Value::Int(x), Value::Int(y)) => Value::Int(x - y),
                    _ => Value::Nil,
                },
            };
            bindings[b.var.0 as usize] = v;
        }
        self.actions
            .iter()
            .map(|a| match a {
                Action::Make { class, fields } => ConcreteAction::Make(
                    *class,
                    fields.iter().map(|(f, t)| (*f, term(bindings, t))).collect(),
                ),
                Action::Remove { ce } => ConcreteAction::RemoveCe(*ce),
                Action::Modify { ce, fields } => ConcreteAction::ModifyCe(
                    *ce,
                    fields.iter().map(|(f, t)| (*f, term(bindings, t))).collect(),
                ),
                Action::Write(ts) => ConcreteAction::Write(
                    ts.iter()
                        .map(|t| term(bindings, t).to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
                Action::Halt => ConcreteAction::Halt,
            })
            .collect()
    }

    /// Look up a variable id by name (test helper).
    pub fn var_by_name(&self, name: Symbol) -> Option<VarId> {
        self.var_names.iter().position(|&n| n == name).map(|i| VarId(i as u16))
    }
}

impl fmt::Display for Production {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "(p {}", self.name)?;
        for ce in &self.ces {
            writeln!(f, "   {ce}")?;
        }
        write!(f, "  --> {} actions)", self.actions.len())
    }
}

/// A production instantiation: "the list of the matching wmes" (§2.1), one
/// per positive CE, plus their time tags for conflict resolution.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instantiation {
    /// The matched production's name.
    pub prod: Symbol,
    /// Matched wme ids, in positive-CE order.
    pub wmes: Vec<WmeId>,
    /// Time tags of those wmes (parallel to `wmes`).
    pub tags: Vec<TimeTag>,
}

impl Instantiation {
    /// Recency key for LEX: time tags sorted descending.
    pub fn recency_key(&self) -> Vec<TimeTag> {
        let mut t = self.tags.clone();
        t.sort_unstable_by(|a, b| b.cmp(a));
        t
    }
}

/// An environment mapping variable names to ids while building productions
/// programmatically (used by the parser and by task generators).
#[derive(Default, Debug)]
pub struct VarTable {
    names: Vec<Symbol>,
    index: HashMap<Symbol, VarId>,
}

impl VarTable {
    /// Empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Get-or-create the id for a variable name.
    pub fn var(&mut self, name: Symbol) -> VarId {
        if let Some(&v) = self.index.get(&name) {
            return v;
        }
        let v = VarId(self.names.len() as u16);
        self.names.push(name);
        self.index.insert(name, v);
        v
    }

    /// Finish, returning the name table.
    pub fn into_names(self) -> Vec<Symbol> {
        self.names
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::{Cond, FieldTest};
    use crate::symbol::intern;

    fn cond(class: &str, tests: Vec<FieldTest>) -> Cond {
        Cond { class: intern(class), tests }
    }

    #[test]
    fn binding_site_analysis() {
        // (p t (a ^0 <x>) -(b ^0 <x> ^1 <y>) --> (make c ^0 <x>))
        let mut vt = VarTable::new();
        let x = vt.var(intern("x"));
        let y = vt.var(intern("y"));
        let p = Production::new(
            intern("t"),
            vec![
                CondElem::Pos(cond("a", vec![FieldTest::Var { field: 0, pred: Pred::Eq, var: x }])),
                CondElem::Neg(cond(
                    "b",
                    vec![
                        FieldTest::Var { field: 0, pred: Pred::Eq, var: x },
                        FieldTest::Var { field: 1, pred: Pred::Eq, var: y },
                    ],
                )),
            ],
            vt.into_names(),
            vec![],
            vec![Action::Make { class: intern("c"), fields: vec![(0, RhsTerm::Var(x))] }],
        )
        .unwrap();
        assert_eq!(p.bind_sites[x.0 as usize], BindSite::Pos { pos_idx: 0, field: 0 });
        assert_eq!(p.bind_sites[y.0 as usize], BindSite::NegLocal { ce: 1 });
        assert_eq!(p.num_pos, 1);
    }

    #[test]
    fn rhs_cannot_use_neg_local() {
        let mut vt = VarTable::new();
        let y = vt.var(intern("y"));
        let err = Production::new(
            intern("t"),
            vec![
                CondElem::Pos(cond("a", vec![])),
                CondElem::Neg(cond("b", vec![FieldTest::Var { field: 0, pred: Pred::Eq, var: y }])),
            ],
            vt.into_names(),
            vec![],
            vec![Action::Make { class: intern("c"), fields: vec![(0, RhsTerm::Var(y))] }],
        )
        .unwrap_err();
        assert!(err.contains("unbound"), "{err}");
    }

    #[test]
    fn first_ce_must_be_positive() {
        let err = Production::new(
            intern("t"),
            vec![CondElem::Neg(cond("a", vec![]))],
            vec![],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.contains("first condition"), "{err}");
    }

    #[test]
    fn nonbinding_first_occurrence_rejected() {
        let mut vt = VarTable::new();
        let x = vt.var(intern("x"));
        let err = Production::new(
            intern("t"),
            vec![CondElem::Pos(cond("a", vec![FieldTest::Var { field: 0, pred: Pred::Gt, var: x }]))],
            vt.into_names(),
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.contains("non-binding"), "{err}");
    }

    #[test]
    fn modify_out_of_range_rejected() {
        let err = Production::new(
            intern("t"),
            vec![CondElem::Pos(cond("a", vec![]))],
            vec![],
            vec![],
            vec![Action::Modify { ce: 2, fields: vec![] }],
        )
        .unwrap_err();
        assert!(err.contains("modify references CE 2"), "{err}");
    }

    #[test]
    fn eval_rhs_binds_and_actions() {
        let mut vt = VarTable::new();
        let x = vt.var(intern("x"));
        let g = vt.var(intern("g"));
        let n = vt.var(intern("n"));
        let p = Production::new(
            intern("t"),
            vec![CondElem::Pos(cond("a", vec![FieldTest::Var { field: 0, pred: Pred::Eq, var: x }]))],
            vt.into_names(),
            vec![
                RhsBind { var: g, expr: RhsExpr::Genatom },
                RhsBind { var: n, expr: RhsExpr::Add(RhsTerm::Var(x), RhsTerm::Const(Value::Int(1))) },
            ],
            vec![Action::Make {
                class: intern("c"),
                fields: vec![(0, RhsTerm::Var(g)), (1, RhsTerm::Var(n))],
            }],
        )
        .unwrap();
        let mut bindings = vec![Value::Int(41), Value::Nil, Value::Nil];
        let fresh = intern("g*test");
        let acts = p.eval_rhs(&mut bindings, &mut || fresh);
        assert_eq!(
            acts,
            vec![ConcreteAction::Make(
                intern("c"),
                vec![(0, Value::Sym(fresh)), (1, Value::Int(42))]
            )]
        );
    }

    #[test]
    fn counts() {
        let mut vt = VarTable::new();
        let x = vt.var(intern("x"));
        let p = Production::new(
            intern("t"),
            vec![
                CondElem::Pos(cond("a", vec![FieldTest::Var { field: 0, pred: Pred::Eq, var: x }])),
                CondElem::Ncc(vec![cond("b", vec![]), cond("c", vec![])]),
            ],
            vt.into_names(),
            vec![],
            vec![],
        )
        .unwrap();
        assert_eq!(p.ce_count(), 2);
        assert_eq!(p.ce_count_flat(), 3);
        assert_eq!(p.test_count(), 4); // class tests (3) + var test (1)
    }

    #[test]
    fn recency_key_sorts_descending() {
        let i = Instantiation {
            prod: intern("t"),
            wmes: vec![WmeId(0), WmeId(1)],
            tags: vec![TimeTag(3), TimeTag(9)],
        };
        assert_eq!(i.recency_key(), vec![TimeTag(9), TimeTag(3)]);
    }
}
