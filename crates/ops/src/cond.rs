//! Condition elements: the left-hand side of a production.
//!
//! A CE is "a pattern that tests for the existence, or absence, of a wme"
//! (§2.1). Tests are *constant* (attribute holds a constant) or *equality*
//! (variable binding / consistency); OPS5 additionally allows relational
//! predicates. Soar extends OPS5 with *conjunctive negations* — negated
//! groups of CEs testing the absence of a conjunction of wmes (§3).

use crate::production::VarId;
use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// Test predicate. `Eq` on a variable's first occurrence *binds* it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Pred {
    /// `=` (the default, written by juxtaposition in OPS5 syntax).
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Pred {
    /// Evaluate `lhs PRED rhs`. Relational predicates only succeed on
    /// integer pairs (mirroring OPS5 failing to match otherwise).
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Pred::Eq => lhs == rhs,
            Pred::Ne => lhs != rhs,
            Pred::Lt => lhs.num_cmp(rhs) == Some(Less),
            Pred::Le => matches!(lhs.num_cmp(rhs), Some(Less | Equal)),
            Pred::Gt => lhs.num_cmp(rhs) == Some(Greater),
            Pred::Ge => matches!(lhs.num_cmp(rhs), Some(Greater | Equal)),
        }
    }

    /// Render as OPS5 operator text.
    pub fn op_str(self) -> &'static str {
        match self {
            Pred::Eq => "",
            Pred::Ne => "<>",
            Pred::Lt => "<",
            Pred::Le => "<=",
            Pred::Gt => ">",
            Pred::Ge => ">=",
        }
    }
}

/// One attribute test inside a CE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldTest {
    /// Test `wme.field PRED constant`.
    Const {
        /// Field index within the class record.
        field: u16,
        /// Predicate.
        pred: Pred,
        /// Constant operand.
        value: Value,
    },
    /// Test `wme.field PRED variable` (binds on first `Eq` occurrence).
    Var {
        /// Field index within the class record.
        field: u16,
        /// Predicate.
        pred: Pred,
        /// Production-scope variable.
        var: VarId,
    },
}

impl FieldTest {
    /// Field index this test applies to.
    pub fn field(&self) -> u16 {
        match *self {
            FieldTest::Const { field, .. } | FieldTest::Var { field, .. } => field,
        }
    }

    /// Predicate of this test.
    pub fn pred(&self) -> Pred {
        match *self {
            FieldTest::Const { pred, .. } | FieldTest::Var { pred, .. } => pred,
        }
    }
}

/// A single pattern over one wme: class plus attribute tests.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cond {
    /// Required wme class.
    pub class: Symbol,
    /// Attribute tests, in source order.
    pub tests: Vec<FieldTest>,
}

impl Cond {
    /// `true` if `wme_fields` (of the right class, checked by caller)
    /// passes every *constant* test. Variable tests need a binding
    /// environment and are evaluated by the matcher.
    pub fn const_tests_pass(&self, wme_fields: &[Value]) -> bool {
        self.tests.iter().all(|t| match *t {
            FieldTest::Const { field, pred, value } => {
                pred.eval(wme_fields.get(field as usize).copied().unwrap_or(Value::Nil), value)
            }
            FieldTest::Var { .. } => true,
        })
    }

    /// Iterate the variable tests.
    pub fn var_tests(&self) -> impl Iterator<Item = (u16, Pred, VarId)> + '_ {
        self.tests.iter().filter_map(|t| match *t {
            FieldTest::Var { field, pred, var } => Some((field, pred, var)),
            _ => None,
        })
    }
}

/// A condition element of a production LHS.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CondElem {
    /// Positive CE: some wme must match.
    Pos(Cond),
    /// Negated CE: no wme may match (given the bindings so far).
    Neg(Cond),
    /// Soar conjunctive negation: no *conjunction* of wmes may match.
    Ncc(Vec<Cond>),
}

impl CondElem {
    /// The positive pattern, if this is a positive CE.
    pub fn as_pos(&self) -> Option<&Cond> {
        match self {
            CondElem::Pos(c) => Some(c),
            _ => None,
        }
    }

    /// `true` for `Pos`.
    pub fn is_pos(&self) -> bool {
        matches!(self, CondElem::Pos(_))
    }

    /// All simple conditions contained (1 for Pos/Neg, n for Ncc).
    pub fn conds(&self) -> &[Cond] {
        match self {
            CondElem::Pos(c) | CondElem::Neg(c) => std::slice::from_ref(c),
            CondElem::Ncc(cs) => cs,
        }
    }
}

impl fmt::Display for CondElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn one(f: &mut fmt::Formatter<'_>, c: &Cond) -> fmt::Result {
            write!(f, "({}", c.class)?;
            for t in &c.tests {
                match *t {
                    FieldTest::Const { field, pred, value } => {
                        write!(f, " ^{field} {}{}{value}", pred.op_str(), if pred == Pred::Eq { "" } else { " " })?
                    }
                    FieldTest::Var { field, pred, var } => {
                        write!(f, " ^{field} {}{}<v{}>", pred.op_str(), if pred == Pred::Eq { "" } else { " " }, var.0)?
                    }
                }
            }
            write!(f, ")")
        }
        match self {
            CondElem::Pos(c) => one(f, c),
            CondElem::Neg(c) => {
                write!(f, "-")?;
                one(f, c)
            }
            CondElem::Ncc(cs) => {
                write!(f, "-{{")?;
                for c in cs {
                    write!(f, " ")?;
                    one(f, c)?;
                }
                write!(f, " }}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::intern;

    #[test]
    fn pred_eval_semantics() {
        let a = Value::sym("a");
        let b = Value::sym("b");
        assert!(Pred::Eq.eval(a, a));
        assert!(!Pred::Eq.eval(a, b));
        assert!(Pred::Ne.eval(a, b));
        assert!(!Pred::Ne.eval(a, a));
        assert!(Pred::Lt.eval(Value::Int(1), Value::Int(2)));
        assert!(Pred::Le.eval(Value::Int(2), Value::Int(2)));
        assert!(Pred::Gt.eval(Value::Int(3), Value::Int(2)));
        assert!(Pred::Ge.eval(Value::Int(2), Value::Int(2)));
        // relational on symbols never matches
        assert!(!Pred::Lt.eval(a, b));
        assert!(!Pred::Ge.eval(a, a));
        // Ne on nil vs value
        assert!(Pred::Ne.eval(Value::Nil, a));
    }

    #[test]
    fn const_tests_pass_checks_only_constants() {
        let c = Cond {
            class: intern("block"),
            tests: vec![
                FieldTest::Const { field: 1, pred: Pred::Eq, value: Value::sym("blue") },
                FieldTest::Var { field: 0, pred: Pred::Eq, var: VarId(0) },
            ],
        };
        let pass = [Value::sym("b1"), Value::sym("blue")];
        let fail = [Value::sym("b1"), Value::sym("red")];
        assert!(c.const_tests_pass(&pass));
        assert!(!c.const_tests_pass(&fail));
        // short wme: missing fields read as Nil
        assert!(!c.const_tests_pass(&[]));
    }

    #[test]
    fn cond_elem_accessors() {
        let c = Cond { class: intern("x"), tests: vec![] };
        let pos = CondElem::Pos(c.clone());
        let neg = CondElem::Neg(c.clone());
        let ncc = CondElem::Ncc(vec![c.clone(), c.clone()]);
        assert!(pos.is_pos());
        assert!(!neg.is_pos());
        assert_eq!(pos.conds().len(), 1);
        assert_eq!(ncc.conds().len(), 2);
        assert!(pos.as_pos().is_some());
        assert!(ncc.as_pos().is_none());
    }
}
