//! Parser for the textual OPS5/Soar syntax.
//!
//! Supported forms:
//!
//! ```text
//! (literalize class attr1 attr2 …)
//! (p name
//!    (class ^attr value ^attr <x> ^attr { <> <x> > 3 } …)
//!   -(class …)                       ; negated CE
//!   -{ (class …) (class …) }         ; Soar conjunctive negation
//!   -->
//!    (make class ^attr term …)
//!    (remove 1)  (modify 2 ^attr term …)
//!    (bind <g> (genatom))  (bind <n> (compute <x> + 1))
//!    (write term …)  (halt))
//! ```
//!
//! Comments run from `;` to end of line. Values are symbols or integers;
//! `<name>` is a variable; `<> < <= > >=` are predicates prefixing a value.

use crate::action::{Action, RhsBind, RhsExpr, RhsTerm};
use crate::cond::{Cond, CondElem, FieldTest, Pred};
use crate::production::{Production, VarTable};
use crate::symbol::{intern, Symbol};
use crate::value::Value;
use crate::wme::{ClassDecl, ClassRegistry, Wme};
use std::fmt;

/// A parse error with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    LBrace,
    RBrace,
    Dash,
    Arrow,
    Attr(String),
    Var(String),
    Int(i64),
    Sym(String),
    Pred(Pred),
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ParseError> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                toks.push((Tok::LParen, line));
                chars.next();
            }
            ')' => {
                toks.push((Tok::RParen, line));
                chars.next();
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                chars.next();
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || "(){};".contains(c) {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                toks.push((classify_word(&word, line)?, line));
            }
        }
    }
    Ok(toks)
}

fn classify_word(word: &str, line: u32) -> Result<Tok, ParseError> {
    Ok(match word {
        "-" => Tok::Dash,
        "-->" => Tok::Arrow,
        "<>" => Tok::Pred(Pred::Ne),
        "<" => Tok::Pred(Pred::Lt),
        "<=" => Tok::Pred(Pred::Le),
        ">" => Tok::Pred(Pred::Gt),
        ">=" => Tok::Pred(Pred::Ge),
        "=" => Tok::Pred(Pred::Eq),
        _ => {
            if let Some(attr) = word.strip_prefix('^') {
                if attr.is_empty() {
                    return Err(ParseError { line, msg: "empty attribute after ^".into() });
                }
                Tok::Attr(attr.to_string())
            } else if word.starts_with('<') && word.ends_with('>') && word.len() > 2 {
                Tok::Var(word[1..word.len() - 1].to_string())
            } else if let Ok(i) = word.parse::<i64>() {
                Tok::Int(i)
            } else {
                Tok::Sym(word.to_string())
            }
        }
    })
}

struct Parser<'a> {
    toks: Vec<(Tok, u32)>,
    pos: usize,
    classes: &'a mut ClassRegistry,
    /// Classes of the positive CEs of the production being parsed, used to
    /// resolve attribute names in `modify` actions.
    pending_pos_classes: Vec<Symbol>,
}

impl<'a> Parser<'a> {
    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.1)
            .unwrap_or(0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), msg: msg.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => self.err(format!("expected {want:?}, found {other:?}")),
        }
    }

    fn expect_sym(&mut self) -> Result<Symbol, ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) => Ok(intern(&s)),
            other => self.err(format!("expected symbol, found {other:?}")),
        }
    }

    fn program(&mut self) -> Result<Vec<Production>, ParseError> {
        let mut prods = Vec::new();
        while self.peek().is_some() {
            self.expect(Tok::LParen)?;
            match self.next() {
                Some(Tok::Sym(head)) if head == "literalize" => {
                    let name = self.expect_sym()?;
                    let mut attrs = Vec::new();
                    loop {
                        match self.next() {
                            Some(Tok::Sym(a)) => attrs.push(intern(&a)),
                            Some(Tok::RParen) => break,
                            other => return self.err(format!("in literalize: unexpected {other:?}")),
                        }
                    }
                    let decl = ClassDecl::new(name, attrs)
                        .map_err(|e| ParseError { line: self.line(), msg: e })?;
                    self.classes
                        .declare(decl)
                        .map_err(|e| ParseError { line: self.line(), msg: e })?;
                }
                Some(Tok::Sym(head)) if head == "p" => {
                    prods.push(self.production()?);
                }
                other => return self.err(format!("expected literalize or p, found {other:?}")),
            }
        }
        Ok(prods)
    }

    fn production(&mut self) -> Result<Production, ParseError> {
        let name = self.expect_sym()?;
        let mut vars = VarTable::new();
        let mut ces = Vec::new();
        self.pending_pos_classes.clear();
        loop {
            match self.peek() {
                Some(Tok::Arrow) => {
                    self.next();
                    break;
                }
                Some(Tok::LParen) => {
                    let c = self.cond(&mut vars)?;
                    self.pending_pos_classes.push(c.class);
                    ces.push(CondElem::Pos(c));
                }
                Some(Tok::Dash) => {
                    self.next();
                    match self.peek() {
                        Some(Tok::LParen) => {
                            let c = self.cond(&mut vars)?;
                            ces.push(CondElem::Neg(c));
                        }
                        Some(Tok::LBrace) => {
                            self.next();
                            let mut group = Vec::new();
                            while self.peek() == Some(&Tok::LParen) {
                                group.push(self.cond(&mut vars)?);
                            }
                            self.expect(Tok::RBrace)?;
                            if group.is_empty() {
                                return self.err("empty conjunctive negation");
                            }
                            ces.push(CondElem::Ncc(group));
                        }
                        other => return self.err(format!("after '-': expected CE, found {other:?}")),
                    }
                }
                other => return self.err(format!("in LHS: unexpected {other:?}")),
            }
        }
        let mut binds = Vec::new();
        let mut actions = Vec::new();
        while self.peek() == Some(&Tok::LParen) {
            self.next();
            self.action(&mut vars, &mut binds, &mut actions)?;
        }
        self.expect(Tok::RParen)?;
        Production::new(name, ces, vars.into_names(), binds, actions)
            .map_err(|e| ParseError { line: self.line(), msg: e })
    }

    fn class_of(&mut self, name: Symbol) -> Result<std::sync::Arc<ClassDecl>, ParseError> {
        match self.classes.get(name) {
            Some(d) => Ok(d.clone()),
            None => self.err(format!("class {name} not literalized")),
        }
    }

    fn cond(&mut self, vars: &mut VarTable) -> Result<Cond, ParseError> {
        self.expect(Tok::LParen)?;
        let class = self.expect_sym()?;
        let decl = self.class_of(class)?;
        let mut tests = Vec::new();
        loop {
            match self.next() {
                Some(Tok::RParen) => break,
                Some(Tok::Attr(a)) => {
                    let field = match decl.field_of(intern(&a)) {
                        Some(f) => f,
                        None => return self.err(format!("class {class} has no attribute ^{a}")),
                    };
                    if self.peek() == Some(&Tok::LBrace) {
                        self.next();
                        while self.peek() != Some(&Tok::RBrace) {
                            tests.push(self.one_test(field, vars)?);
                        }
                        self.next();
                    } else {
                        tests.push(self.one_test(field, vars)?);
                    }
                }
                other => return self.err(format!("in condition: unexpected {other:?}")),
            }
        }
        Ok(Cond { class, tests })
    }

    fn one_test(&mut self, field: u16, vars: &mut VarTable) -> Result<FieldTest, ParseError> {
        let pred = if let Some(Tok::Pred(p)) = self.peek() {
            let p = *p;
            self.next();
            p
        } else {
            Pred::Eq
        };
        match self.next() {
            Some(Tok::Sym(s)) => {
                let v = if s == "nil" { Value::Nil } else { Value::sym(&s) };
                Ok(FieldTest::Const { field, pred, value: v })
            }
            Some(Tok::Int(i)) => Ok(FieldTest::Const { field, pred, value: Value::Int(i) }),
            Some(Tok::Var(n)) => Ok(FieldTest::Var { field, pred, var: vars.var(intern(&n)) }),
            other => self.err(format!("expected test value, found {other:?}")),
        }
    }

    fn term(&mut self, vars: &mut VarTable) -> Result<RhsTerm, ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) => Ok(RhsTerm::Const(if s == "nil" { Value::Nil } else { Value::sym(&s) })),
            Some(Tok::Int(i)) => Ok(RhsTerm::Const(Value::Int(i))),
            Some(Tok::Var(n)) => Ok(RhsTerm::Var(vars.var(intern(&n)))),
            other => self.err(format!("expected term, found {other:?}")),
        }
    }

    fn field_terms(
        &mut self,
        decl: &ClassDecl,
        vars: &mut VarTable,
    ) -> Result<Vec<(u16, RhsTerm)>, ParseError> {
        let mut fields = Vec::new();
        loop {
            match self.next() {
                Some(Tok::RParen) => break,
                Some(Tok::Attr(a)) => {
                    let f = match decl.field_of(intern(&a)) {
                        Some(f) => f,
                        None => return self.err(format!("class {} has no attribute ^{a}", decl.name)),
                    };
                    fields.push((f, self.term(vars)?));
                }
                other => return self.err(format!("expected ^attr, found {other:?}")),
            }
        }
        Ok(fields)
    }

    fn action(
        &mut self,
        vars: &mut VarTable,
        binds: &mut Vec<RhsBind>,
        actions: &mut Vec<Action>,
    ) -> Result<(), ParseError> {
        let head = self.expect_sym()?;
        match &*crate::symbol::sym_name(head) {
            "make" => {
                let class = self.expect_sym()?;
                let decl = self.class_of(class)?;
                let fields = self.field_terms(&decl, vars)?;
                actions.push(Action::Make { class, fields });
            }
            "remove" => loop {
                match self.next() {
                    Some(Tok::Int(i)) if i > 0 => actions.push(Action::Remove { ce: i as u16 }),
                    Some(Tok::RParen) => break,
                    other => return self.err(format!("in remove: unexpected {other:?}")),
                }
            },
            "modify" => {
                let ce = match self.next() {
                    Some(Tok::Int(i)) if i > 0 => i as u16,
                    other => return self.err(format!("modify expects CE number, found {other:?}")),
                };
                return self.modify_action(ce, vars, actions);
            }
            "write" => {
                let mut ts = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    ts.push(self.term(vars)?);
                }
                self.next();
                actions.push(Action::Write(ts));
            }
            "halt" => {
                self.expect(Tok::RParen)?;
                actions.push(Action::Halt);
            }
            "bind" => {
                let var = match self.next() {
                    Some(Tok::Var(n)) => vars.var(intern(&n)),
                    other => return self.err(format!("bind expects variable, found {other:?}")),
                };
                let expr = match self.peek() {
                    Some(Tok::LParen) => {
                        self.next();
                        let h = self.expect_sym()?;
                        match &*crate::symbol::sym_name(h) {
                            "genatom" => {
                                self.expect(Tok::RParen)?;
                                RhsExpr::Genatom
                            }
                            "compute" => {
                                let a = self.term(vars)?;
                                let op = self.next();
                                let b = self.term(vars)?;
                                self.expect(Tok::RParen)?;
                                match op {
                                    Some(Tok::Sym(ref s)) if s == "+" => RhsExpr::Add(a, b),
                                    Some(Tok::Sym(ref s)) if s == "-" => RhsExpr::Sub(a, b),
                                    Some(Tok::Dash) => RhsExpr::Sub(a, b),
                                    other => return self.err(format!("compute expects + or -, found {other:?}")),
                                }
                            }
                            other => return self.err(format!("unknown bind expression ({other} …)")),
                        }
                    }
                    _ => RhsExpr::Term(self.term(vars)?),
                };
                self.expect(Tok::RParen)?;
                binds.push(RhsBind { var, expr });
            }
            other => return self.err(format!("unknown action ({other} …)")),
        }
        Ok(())
    }

    /// `modify` resolves its attribute names against the class of the
    /// referenced positive CE, recorded by the LHS pass.
    fn modify_action(
        &mut self,
        ce: u16,
        vars: &mut VarTable,
        actions: &mut Vec<Action>,
    ) -> Result<(), ParseError> {
        // Resolve against the class recorded for this CE index by the LHS
        // pass (stored in self.pending_pos_classes).
        let class = match self.pending_pos_classes.get(ce as usize - 1) {
            Some(&c) => c,
            None => return self.err(format!("modify references CE {ce} but LHS has fewer positive CEs")),
        };
        let decl = self.class_of(class)?;
        let fields = self.field_terms(&decl, vars)?;
        actions.push(Action::Modify { ce, fields });
        Ok(())
    }
}

impl<'a> Parser<'a> {
    fn new(toks: Vec<(Tok, u32)>, classes: &'a mut ClassRegistry) -> Parser<'a> {
        Parser { toks, pos: 0, classes, pending_pos_classes: Vec::new() }
    }
}

/// Parse a whole program (literalize declarations + productions).
pub fn parse_program(src: &str, classes: &mut ClassRegistry) -> Result<Vec<Production>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks, classes);
    p.program()
}

/// Parse a single production (declarations must already be registered).
pub fn parse_production(src: &str, classes: &mut ClassRegistry) -> Result<Production, ParseError> {
    let prods = parse_program(src, classes)?;
    match prods.len() {
        1 => Ok(prods.into_iter().next().unwrap()),
        n => Err(ParseError { line: 0, msg: format!("expected exactly one production, found {n}") }),
    }
}

/// Parse a ground wme like `(block ^name b1 ^color blue)`.
pub fn parse_wme(src: &str, classes: &ClassRegistry) -> Result<Wme, ParseError> {
    let toks = lex(src)?;
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Option<Tok> {
        let t = toks.get(*pos).map(|t| t.0.clone());
        if t.is_some() {
            *pos += 1;
        }
        t
    };
    let fail = |msg: &str| ParseError { line: 1, msg: msg.to_string() };
    if next(&mut pos) != Some(Tok::LParen) {
        return Err(fail("expected ("));
    }
    let class = match next(&mut pos) {
        Some(Tok::Sym(s)) => intern(&s),
        _ => return Err(fail("expected class symbol")),
    };
    let decl = classes
        .get(class)
        .ok_or_else(|| fail(&format!("class {class} not literalized")))?
        .clone();
    let mut w = Wme::empty(&decl);
    loop {
        match next(&mut pos) {
            Some(Tok::RParen) => break,
            Some(Tok::Attr(a)) => {
                let f = decl
                    .field_of(intern(&a))
                    .ok_or_else(|| fail(&format!("class {class} has no attribute ^{a}")))?;
                let v = match next(&mut pos) {
                    Some(Tok::Sym(s)) => {
                        if s == "nil" {
                            Value::Nil
                        } else {
                            Value::sym(&s)
                        }
                    }
                    Some(Tok::Int(i)) => Value::Int(i),
                    other => return Err(fail(&format!("expected ground value, found {other:?}"))),
                };
                w.fields[f as usize] = v;
            }
            other => return Err(fail(&format!("unexpected {other:?} in wme"))),
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("block", &["name", "color", "on", "state"]);
        r.declare_str("hand", &["state", "name"]);
        r.declare_str("count", &["n"]);
        r
    }

    #[test]
    fn parse_paper_production() {
        let mut r = reg();
        let p = parse_production(
            "(p blue-block-is-graspable
                (block ^name <b> ^color blue)
               -(block ^on <b>)
                (hand ^state free)
               -->
                (modify 1 ^state graspable))",
            &mut r,
        )
        .unwrap();
        assert_eq!(&*crate::sym_name(p.name), "blue-block-is-graspable");
        assert_eq!(p.ces.len(), 3);
        assert_eq!(p.num_pos, 2);
        assert!(matches!(p.ces[1], CondElem::Neg(_)));
        assert_eq!(p.actions.len(), 1);
        match &p.actions[0] {
            Action::Modify { ce, fields } => {
                assert_eq!(*ce, 1);
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0, 3); // ^state is field 3 of block
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn parse_predicates_and_conjunctive_tests() {
        let mut r = reg();
        let p = parse_production
            ("(p preds (count ^n <m>) (count ^n { > 3 <= 10 <> <m> }) --> (halt))", &mut r)
            .unwrap();
        let c = p.ces[1].as_pos().unwrap();
        assert_eq!(c.tests.len(), 3);
        assert_eq!(c.tests[0].pred(), Pred::Gt);
        assert_eq!(c.tests[1].pred(), Pred::Le);
        assert_eq!(c.tests[2].pred(), Pred::Ne);
    }

    #[test]
    fn parse_ncc() {
        let mut r = reg();
        let p = parse_production(
            "(p ncc (block ^name <b>)
                -{ (block ^on <b>) (hand ^name <b>) }
               --> (halt))",
            &mut r,
        )
        .unwrap();
        assert_eq!(p.ces.len(), 2);
        match &p.ces[1] {
            CondElem::Ncc(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected NCC, got {other:?}"),
        }
    }

    #[test]
    fn parse_bind_genatom_and_compute() {
        let mut r = reg();
        let p = parse_production(
            "(p mk (count ^n <n>)
               -->
                (bind <g> (genatom))
                (bind <m> (compute <n> + 1))
                (make count ^n <m>)
                (make block ^name <g>))",
            &mut r,
        )
        .unwrap();
        assert_eq!(p.rhs_binds.len(), 2);
        assert!(matches!(p.rhs_binds[0].expr, RhsExpr::Genatom));
        assert!(matches!(p.rhs_binds[1].expr, RhsExpr::Add(..)));
    }

    #[test]
    fn parse_program_with_literalize_and_comments() {
        let mut r = ClassRegistry::new();
        let prods = parse_program(
            "; a comment
             (literalize goal id status) ; trailing comment
             (p done (goal ^status satisfied) --> (write done) (halt))",
            &mut r,
        )
        .unwrap();
        assert_eq!(prods.len(), 1);
        assert!(r.get(intern("goal")).is_some());
    }

    #[test]
    fn parse_wme_ground() {
        let r = reg();
        let w = parse_wme("(block ^name b1 ^color blue ^state nil)", &r).unwrap();
        assert_eq!(w.class, intern("block"));
        assert_eq!(w.field(0), Value::sym("b1"));
        assert_eq!(w.field(1), Value::sym("blue"));
        assert_eq!(w.field(3), Value::Nil);
    }

    #[test]
    fn error_unknown_attribute() {
        let mut r = reg();
        let e = parse_production("(p bad (block ^height 3) --> (halt))", &mut r).unwrap_err();
        assert!(e.msg.contains("no attribute"), "{e}");
    }

    #[test]
    fn error_unknown_class() {
        let mut r = reg();
        let e = parse_production("(p bad (rocket ^name x) --> (halt))", &mut r).unwrap_err();
        assert!(e.msg.contains("not literalized"), "{e}");
    }

    #[test]
    fn error_reports_line_number() {
        let mut r = reg();
        let e = parse_production("(p bad\n (block ^name x)\n (block ^oops y)\n --> (halt))", &mut r)
            .unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn negative_integers_lex_correctly() {
        let mut r = reg();
        let p = parse_production("(p neg (count ^n -4) --> (make count ^n -8))", &mut r).unwrap();
        match p.ces[0].as_pos().unwrap().tests[0] {
            FieldTest::Const { value, .. } => assert_eq!(value, Value::Int(-4)),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_multiple_ces() {
        let mut r = reg();
        let p = parse_production("(p rm (block) (hand) --> (remove 1 2))", &mut r).unwrap();
        assert_eq!(
            p.actions,
            vec![Action::Remove { ce: 1 }, Action::Remove { ce: 2 }]
        );
    }

    #[test]
    fn variables_shared_across_ces_get_one_id() {
        let mut r = reg();
        let p = parse_production(
            "(p share (block ^name <b>) (block ^on <b>) --> (halt))",
            &mut r,
        )
        .unwrap();
        assert_eq!(p.var_names.len(), 1);
    }
}
