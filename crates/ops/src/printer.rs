//! Render productions and wmes back to OPS5 source text.
//!
//! The output re-parses to a structurally identical production (the
//! round-trip property is enforced in `tests/proptest_ops.rs`), which makes
//! the printer useful both for debugging learned chunks and as a test
//! oracle for the parser.

use crate::action::{Action, RhsExpr, RhsTerm};
use crate::cond::{Cond, CondElem, FieldTest, Pred};
use crate::production::Production;
use crate::symbol::sym_name;
use crate::value::Value;
use crate::wme::ClassRegistry;
use std::fmt::Write;

fn pred_prefix(p: Pred) -> &'static str {
    match p {
        Pred::Eq => "",
        Pred::Ne => "<> ",
        Pred::Lt => "< ",
        Pred::Le => "<= ",
        Pred::Gt => "> ",
        Pred::Ge => ">= ",
    }
}

fn value_text(v: Value) -> String {
    match v {
        Value::Nil => "nil".into(),
        Value::Sym(s) => sym_name(s).to_string(),
        Value::Int(i) => i.to_string(),
    }
}

fn attr_name(reg: &ClassRegistry, class: crate::Symbol, field: u16) -> String {
    reg.get(class)
        .and_then(|d| d.attrs.get(field as usize).copied())
        .map(|a| sym_name(a).to_string())
        .unwrap_or_else(|| format!("f{field}"))
}

fn cond_text(c: &Cond, p: &Production, reg: &ClassRegistry) -> String {
    let mut s = format!("({}", c.class);
    // Group consecutive tests on the same field into { … } blocks.
    let mut i = 0;
    while i < c.tests.len() {
        let field = c.tests[i].field();
        let mut j = i;
        while j < c.tests.len() && c.tests[j].field() == field {
            j += 1;
        }
        let attr = attr_name(reg, c.class, field);
        let one = |t: &FieldTest| -> String {
            match *t {
                FieldTest::Const { pred, value, .. } => {
                    format!("{}{}", pred_prefix(pred), value_text(value))
                }
                FieldTest::Var { pred, var, .. } => {
                    format!("{}<{}>", pred_prefix(pred), sym_name(p.var_names[var.0 as usize]))
                }
            }
        };
        if j - i == 1 {
            write!(s, " ^{attr} {}", one(&c.tests[i])).unwrap();
        } else {
            let parts: Vec<String> = c.tests[i..j].iter().map(one).collect();
            write!(s, " ^{attr} {{ {} }}", parts.join(" ")).unwrap();
        }
        i = j;
    }
    s.push(')');
    s
}

fn term_text(t: &RhsTerm, p: &Production) -> String {
    match *t {
        RhsTerm::Const(v) => value_text(v),
        RhsTerm::Var(v) => format!("<{}>", sym_name(p.var_names[v.0 as usize])),
    }
}

/// Render a production as parseable OPS5 source.
pub fn production_text(p: &Production, reg: &ClassRegistry) -> String {
    let mut s = format!("(p {}\n", p.name);
    for ce in &p.ces {
        match ce {
            CondElem::Pos(c) => writeln!(s, "   {}", cond_text(c, p, reg)).unwrap(),
            CondElem::Neg(c) => writeln!(s, "  -{}", cond_text(c, p, reg)).unwrap(),
            CondElem::Ncc(cs) => {
                write!(s, "  -{{").unwrap();
                for c in cs {
                    write!(s, " {}", cond_text(c, p, reg)).unwrap();
                }
                writeln!(s, " }}").unwrap();
            }
        }
    }
    s.push_str("  -->\n");
    for b in &p.rhs_binds {
        let var = format!("<{}>", sym_name(p.var_names[b.var.0 as usize]));
        match &b.expr {
            RhsExpr::Genatom => writeln!(s, "   (bind {var} (genatom))").unwrap(),
            RhsExpr::Term(t) => writeln!(s, "   (bind {var} {})", term_text(t, p)).unwrap(),
            RhsExpr::Add(a, c) => {
                writeln!(s, "   (bind {var} (compute {} + {}))", term_text(a, p), term_text(c, p))
                    .unwrap()
            }
            RhsExpr::Sub(a, c) => {
                writeln!(s, "   (bind {var} (compute {} - {}))", term_text(a, p), term_text(c, p))
                    .unwrap()
            }
        }
    }
    for a in &p.actions {
        match a {
            Action::Make { class, fields } => {
                write!(s, "   (make {class}").unwrap();
                for (f, t) in fields {
                    write!(s, " ^{} {}", attr_name(reg, *class, *f), term_text(t, p)).unwrap();
                }
                writeln!(s, ")").unwrap();
            }
            Action::Remove { ce } => writeln!(s, "   (remove {ce})").unwrap(),
            Action::Modify { ce, fields } => {
                write!(s, "   (modify {ce}").unwrap();
                // The CE's class determines the attribute names.
                let class = p
                    .ces
                    .iter()
                    .filter(|c| c.is_pos())
                    .nth(*ce as usize - 1)
                    .and_then(|c| c.as_pos())
                    .map(|c| c.class);
                for (f, t) in fields {
                    let attr = class
                        .map(|cl| attr_name(reg, cl, *f))
                        .unwrap_or_else(|| format!("f{f}"));
                    write!(s, " ^{attr} {}", term_text(t, p)).unwrap();
                }
                writeln!(s, ")").unwrap();
            }
            Action::Write(ts) => {
                write!(s, "   (write").unwrap();
                for t in ts {
                    write!(s, " {}", term_text(t, p)).unwrap();
                }
                writeln!(s, ")").unwrap();
            }
            Action::Halt => writeln!(s, "   (halt)").unwrap(),
        }
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_production, parse_program};

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("block", &["name", "color", "on", "state"]);
        r.declare_str("hand", &["state"]);
        r.declare_str("count", &["n"]);
        r
    }

    #[test]
    fn paper_production_round_trips() {
        let mut r = reg();
        let src = "(p blue-block-is-graspable
            (block ^name <b> ^color blue)
           -(block ^on <b>)
            (hand ^state free)
           -->
            (modify 1 ^state graspable))";
        let p1 = parse_production(src, &mut r).unwrap();
        let text = production_text(&p1, &r);
        let p2 = parse_production(&text, &mut r).unwrap();
        assert_eq!(p1.ces, p2.ces);
        assert_eq!(p1.actions, p2.actions);
        assert_eq!(p1.num_pos, p2.num_pos);
    }

    #[test]
    fn ncc_and_binds_round_trip() {
        let mut r = reg();
        let src = "(p tricky
            (count ^n <x>)
           -{ (block ^name <b> ^on <b2>) (block ^name <b2>) }
           -(count ^n { > <x> <> 9 })
           -->
            (bind <g> (genatom))
            (bind <m> (compute <x> - 1))
            (make count ^n <m>)
            (make block ^name <g>)
            (write done <x>)
            (halt))";
        let p1 = parse_production(src, &mut r).unwrap();
        let text = production_text(&p1, &r);
        let p2 = parse_production(&text, &mut r).unwrap();
        assert_eq!(p1.ces, p2.ces);
        assert_eq!(p1.rhs_binds, p2.rhs_binds);
        assert_eq!(p1.actions, p2.actions);
    }

    #[test]
    fn learned_chunk_names_survive() {
        // Chunk variable names contain '*': the printer must emit text the
        // lexer tokenizes back into the same variables.
        let mut r = reg();
        let p = parse_production(
            "(p chunk-1 (block ^name <v*0007>) --> (make hand ^state <v*0007>))",
            &mut r,
        )
        .unwrap();
        let text = production_text(&p, &r);
        let p2 = parse_production(&text, &mut r).unwrap();
        assert_eq!(p.ces, p2.ces);
    }

    #[test]
    fn program_of_several_productions() {
        let mut r = reg();
        let prods = parse_program(
            "(p a (block ^color blue) --> (remove 1))
             (p b (hand ^state <s>) (block ^state <s>) --> (write match))",
            &mut r,
        )
        .unwrap();
        for p in &prods {
            let text = production_text(p, &r);
            let p2 = parse_production(&text, &mut r).unwrap();
            assert_eq!(p.ces, p2.ces, "{text}");
        }
    }
}
