//! Interned symbols.
//!
//! OPS5 and Soar manipulate symbolic constants (`block`, `blue`, `free`) and
//! generated identifiers (`g00017`). All symbols are interned into a global
//! table so that equality tests — the dominant operation of the matcher — are
//! single integer comparisons, and so that wmes and tokens stay `Copy`-cheap.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// An interned symbol. Two symbols are equal iff their names are equal.
///
/// Ordering is by intern id (creation order), which is stable within a
/// process run; OPS5 semantics never depend on symbol *name* ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

struct Interner {
    map: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern `name`, returning its unique [`Symbol`].
pub fn intern(name: &str) -> Symbol {
    {
        let g = interner().read();
        if let Some(&id) = g.map.get(name) {
            return Symbol(id);
        }
    }
    let mut g = interner().write();
    if let Some(&id) = g.map.get(name) {
        return Symbol(id);
    }
    let id = g.names.len() as u32;
    let arc: Arc<str> = Arc::from(name);
    g.names.push(arc.clone());
    g.map.insert(arc, id);
    Symbol(id)
}

/// Return the name of an interned symbol.
pub fn sym_name(sym: Symbol) -> Arc<str> {
    interner().read().names[sym.0 as usize].clone()
}

/// Generate a fresh, never-before-interned symbol with the given prefix.
///
/// This is the process-global analogue of OPS5's `genatom`. Soar agents use
/// their own per-agent counters (see `psme-soar`) so that runs are
/// deterministic; `gensym` is a convenience for tests and ad-hoc use.
pub fn gensym(prefix: &str) -> Symbol {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let name = format!("{prefix}*{n:05}");
        if interner().read().map.contains_key(name.as_str()) {
            continue;
        }
        return intern(&name);
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", sym_name(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", sym_name(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("blue");
        let b = intern("blue");
        assert_eq!(a, b);
        assert_eq!(&*sym_name(a), "blue");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(intern("left"), intern("right"));
    }

    #[test]
    fn gensym_is_fresh() {
        let g1 = gensym("g");
        let g2 = gensym("g");
        assert_ne!(g1, g2);
        // A gensym never collides with an already-interned name.
        let pre = intern("x*99999");
        let g3 = gensym("x");
        assert_ne!(g3, pre);
    }

    #[test]
    fn symbols_are_display() {
        let s = intern("eight-puzzle");
        assert_eq!(format!("{s}"), "eight-puzzle");
        assert_eq!(format!("{s:?}"), "eight-puzzle");
    }

    #[test]
    fn intern_many_threads() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| intern(&format!("sym-{}", (i + t) % 100)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All threads must agree on the ids.
        for w in &results[1..] {
            for (a, b) in results[0].iter().zip(w.iter()) {
                assert_eq!(!sym_name(*a).is_empty(), !sym_name(*b).is_empty());
            }
        }
        assert_eq!(intern("sym-0"), intern("sym-0"));
    }
}
