//! Right-hand-side actions.
//!
//! "Actions add or remove wmes and perform input/output" (§2.1). Terms may
//! reference LHS variable bindings; `bind … (genatom)` creates a fresh
//! identifier symbol per firing (used pervasively by Soar tasks to mint new
//! object identifiers).

use crate::production::VarId;
use crate::symbol::Symbol;
use crate::value::Value;

/// A term evaluated at firing time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RhsTerm {
    /// A literal constant.
    Const(Value),
    /// The value bound to an LHS variable (or an RHS `bind`).
    Var(VarId),
}

/// An expression for RHS `bind`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RhsExpr {
    /// `(genatom)` — a fresh identifier symbol.
    Genatom,
    /// A plain term.
    Term(RhsTerm),
    /// `(compute a + b)` — integer arithmetic.
    Add(RhsTerm, RhsTerm),
    /// `(compute a - b)`.
    Sub(RhsTerm, RhsTerm),
}

/// RHS variable binding, evaluated in order before the actions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RhsBind {
    /// Variable being bound (must not shadow an LHS-bound variable).
    pub var: VarId,
    /// Expression producing the value.
    pub expr: RhsExpr,
}

/// One RHS action.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// `(make class ^attr term …)` — add a wme.
    Make {
        /// Class of the new wme.
        class: Symbol,
        /// `(field, term)` pairs.
        fields: Vec<(u16, RhsTerm)>,
    },
    /// `(remove k)` — remove the wme matching the k-th positive CE
    /// (1-based, counting positive CEs only, as in OPS5).
    Remove {
        /// 1-based positive-CE index.
        ce: u16,
    },
    /// `(modify k ^attr term …)` — remove + re-make with changed fields.
    Modify {
        /// 1-based positive-CE index.
        ce: u16,
        /// `(field, term)` pairs to overwrite.
        fields: Vec<(u16, RhsTerm)>,
    },
    /// `(write …)` — print terms (captured by the runtime, not stdout).
    Write(Vec<RhsTerm>),
    /// `(halt)` — stop the recognize-act cycle.
    Halt,
}

impl Action {
    /// `true` if the action changes working memory.
    pub fn mutates_wm(&self) -> bool {
        matches!(self, Action::Make { .. } | Action::Remove { .. } | Action::Modify { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutates_wm_classification() {
        assert!(Action::Make { class: crate::intern("c"), fields: vec![] }.mutates_wm());
        assert!(Action::Remove { ce: 1 }.mutates_wm());
        assert!(Action::Modify { ce: 1, fields: vec![] }.mutates_wm());
        assert!(!Action::Write(vec![]).mutates_wm());
        assert!(!Action::Halt.mutates_wm());
    }
}
