//! # psme-ops — the OPS5/Soar production-system language
//!
//! This crate implements the language layer of the Soar/PSM-E reproduction
//! (Tambe et al., PPoPP 1988): interned symbols, working-memory elements
//! (wmes), class declarations (`literalize`), condition elements with
//! constant / variable-equality / predicate tests, negated condition elements
//! and Soar's *conjunctive negations*, right-hand-side actions, a parser for
//! the textual OPS5 syntax, and OPS5's LEX conflict-resolution strategy.
//!
//! The match network itself lives in `psme-rete`; the parallel engine in
//! `psme-core`; the Soar architecture (decide + chunking) in `psme-soar`.
//!
//! ## Quick example
//!
//! ```
//! use psme_ops::{parse_program, ClassRegistry};
//!
//! let mut classes = ClassRegistry::new();
//! let prods = parse_program(
//!     "(literalize block name color on state)
//!      (literalize hand state)
//!      (p blue-block-is-graspable
//!         (block ^name <b> ^color blue)
//!        -(block ^on <b>)
//!         (hand ^state free)
//!        -->
//!         (modify 1 ^state graspable))",
//!     &mut classes,
//! ).unwrap();
//! assert_eq!(prods.len(), 1);
//! assert_eq!(prods[0].ces.len(), 3);
//! ```

pub mod action;
pub mod conflict;
pub mod cond;
pub mod parser;
pub mod printer;
pub mod production;
pub mod symbol;
pub mod value;
pub mod wme;

pub use action::{Action, RhsBind, RhsExpr, RhsTerm};
pub use conflict::{ConflictSet, Strategy};
pub use cond::{Cond, CondElem, FieldTest, Pred};
pub use parser::{parse_production, parse_program, parse_wme, ParseError};
pub use printer::production_text;
pub use production::{BindSite, ConcreteAction, Instantiation, Production, VarId, VarTable};
pub use symbol::{gensym, intern, sym_name, Symbol};
pub use value::Value;
pub use wme::{ClassDecl, ClassRegistry, TimeTag, Wme, WmeId};
