//! Working-memory elements and class declarations.
//!
//! OPS5 wmes are record structures "with a fixed set of named access
//! functions, called attributes, much like Pascal records" (§2.1). A class is
//! declared with `(literalize class attr…)`; a wme of that class has one
//! field slot per declared attribute.

use crate::symbol::{intern, Symbol};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a wme inside a working memory (dense, never reused within a run).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WmeId(pub u32);

/// OPS5 time tag: monotonically increasing stamp assigned when a wme enters
/// working memory; recency drives LEX conflict resolution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct TimeTag(pub u64);

/// A `literalize` declaration: the ordered attribute list of a class.
#[derive(Clone, Debug)]
pub struct ClassDecl {
    /// Class name.
    pub name: Symbol,
    /// Attribute names in field order.
    pub attrs: Vec<Symbol>,
    index: HashMap<Symbol, u16>,
}

impl ClassDecl {
    /// Build a declaration; attribute names must be distinct.
    pub fn new(name: Symbol, attrs: Vec<Symbol>) -> Result<ClassDecl, String> {
        let mut index = HashMap::with_capacity(attrs.len());
        for (i, &a) in attrs.iter().enumerate() {
            if index.insert(a, i as u16).is_some() {
                return Err(format!("duplicate attribute {a} in class {name}"));
            }
        }
        Ok(ClassDecl { name, attrs, index })
    }

    /// Field index of an attribute.
    pub fn field_of(&self, attr: Symbol) -> Option<u16> {
        self.index.get(&attr).copied()
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

/// Registry of all declared classes for one production system.
#[derive(Clone, Debug, Default)]
pub struct ClassRegistry {
    classes: HashMap<Symbol, Arc<ClassDecl>>,
}

impl ClassRegistry {
    /// Empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Declare a class (errors on redeclaration with a different attribute
    /// list; identical redeclaration is a no-op, as in OPS5 reloads).
    pub fn declare(&mut self, decl: ClassDecl) -> Result<Arc<ClassDecl>, String> {
        if let Some(existing) = self.classes.get(&decl.name) {
            if existing.attrs == decl.attrs {
                return Ok(existing.clone());
            }
            return Err(format!("class {} redeclared with different attributes", decl.name));
        }
        let arc = Arc::new(decl);
        self.classes.insert(arc.name, arc.clone());
        Ok(arc)
    }

    /// Convenience: declare from string names.
    pub fn declare_str(&mut self, name: &str, attrs: &[&str]) -> Arc<ClassDecl> {
        let decl = ClassDecl::new(intern(name), attrs.iter().map(|a| intern(a)).collect())
            .expect("distinct attributes");
        self.declare(decl).expect("consistent redeclaration")
    }

    /// Look up a class declaration.
    pub fn get(&self, name: Symbol) -> Option<&Arc<ClassDecl>> {
        self.classes.get(&name)
    }

    /// Iterate over all declarations.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ClassDecl>> {
        self.classes.values()
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if no class is declared.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// A working-memory element: a class plus one value per declared attribute.
///
/// Wmes are immutable once created (OPS5 `modify` is remove + make). They are
/// shared by `Arc` between working memory, Rete memories and instantiations.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Wme {
    /// The class (record type) of this element.
    pub class: Symbol,
    /// Field values, indexed per the class declaration.
    pub fields: Box<[Value]>,
}

impl Wme {
    /// Create a wme with all fields `Nil`.
    pub fn empty(decl: &ClassDecl) -> Wme {
        Wme {
            class: decl.name,
            fields: vec![Value::Nil; decl.arity()].into_boxed_slice(),
        }
    }

    /// Create a wme setting the given `(field, value)` pairs.
    pub fn with_fields(decl: &ClassDecl, pairs: &[(u16, Value)]) -> Wme {
        let mut w = Wme::empty(decl);
        for &(f, v) in pairs {
            w.fields[f as usize] = v;
        }
        w
    }

    /// Value of a field (Nil when out of range, which cannot happen for
    /// wmes built against their declaration).
    pub fn field(&self, f: u16) -> Value {
        self.fields.get(f as usize).copied().unwrap_or(Value::Nil)
    }

    /// Render against the declaration, e.g. `(block ^name b1 ^color blue)`.
    pub fn display(&self, decl: &ClassDecl) -> String {
        let mut s = format!("({}", self.class);
        for (i, &attr) in decl.attrs.iter().enumerate() {
            let v = self.fields[i];
            if !v.is_nil() {
                s.push_str(&format!(" ^{attr} {v}"));
            }
        }
        s.push(')');
        s
    }
}

impl fmt::Debug for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.class)?;
        for (i, v) in self.fields.iter().enumerate() {
            if !v.is_nil() {
                write!(f, " ^{i} {v}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut reg = ClassRegistry::new();
        let d = reg.declare_str("block", &["name", "color", "on"]);
        assert_eq!(d.arity(), 3);
        assert_eq!(d.field_of(intern("color")), Some(1));
        assert_eq!(d.field_of(intern("absent")), None);
        assert!(reg.get(intern("block")).is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_attr_rejected() {
        assert!(ClassDecl::new(intern("c"), vec![intern("a"), intern("a")]).is_err());
    }

    #[test]
    fn redeclaration_rules() {
        let mut reg = ClassRegistry::new();
        reg.declare_str("hand", &["state"]);
        // identical: ok
        reg.declare_str("hand", &["state"]);
        // different: error
        let bad = ClassDecl::new(intern("hand"), vec![intern("state"), intern("x")]).unwrap();
        assert!(reg.declare(bad).is_err());
    }

    #[test]
    fn wme_fields_and_display() {
        let mut reg = ClassRegistry::new();
        let d = reg.declare_str("block", &["name", "color", "on"]);
        let w = Wme::with_fields(
            &d,
            &[(0, Value::sym("b1")), (1, Value::sym("blue"))],
        );
        assert_eq!(w.field(0), Value::sym("b1"));
        assert_eq!(w.field(2), Value::Nil);
        assert_eq!(w.display(&d), "(block ^name b1 ^color blue)");
    }

    #[test]
    fn wme_equality_is_structural() {
        let mut reg = ClassRegistry::new();
        let d = reg.declare_str("p", &["x", "y"]);
        let a = Wme::with_fields(&d, &[(0, Value::Int(1))]);
        let b = Wme::with_fields(&d, &[(0, Value::Int(1))]);
        let c = Wme::with_fields(&d, &[(0, Value::Int(2))]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
