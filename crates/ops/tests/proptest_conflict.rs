//! Property tests for LEX conflict resolution and lexer/parser totality.

use proptest::prelude::*;
use psme_ops::{intern, ConflictSet, Instantiation, TimeTag, WmeId};

fn inst_strategy() -> impl Strategy<Value = (Instantiation, usize)> {
    (0u8..8, prop::collection::vec(0u64..50, 1..5), 0usize..10).prop_map(|(p, tags, spec)| {
        (
            Instantiation {
                prod: intern(&format!("p{p}")),
                wmes: tags.iter().map(|&t| WmeId(t as u32)).collect(),
                tags: tags.iter().map(|&t| TimeTag(t)).collect(),
            },
            spec,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// select_lex returns the dominant instantiation: no other unfired
    /// instantiation has a lexicographically greater recency key.
    #[test]
    fn lex_selects_the_dominant(insts in prop::collection::vec(inst_strategy(), 1..12)) {
        let mut cs = ConflictSet::new();
        for (i, spec) in &insts {
            cs.add(i.clone(), *spec);
        }
        let chosen = cs.select_lex().expect("non-empty");
        let ckey = chosen.recency_key();
        for (i, _) in &insts {
            prop_assert!(i.recency_key() <= ckey, "{:?} beats chosen {:?}", i, chosen);
        }
    }

    /// Repeated selection enumerates every distinct instantiation exactly
    /// once (refraction), in non-increasing recency order.
    #[test]
    fn lex_enumerates_each_once_in_order(insts in prop::collection::vec(inst_strategy(), 1..12)) {
        let mut cs = ConflictSet::new();
        let mut distinct = std::collections::HashSet::new();
        for (i, spec) in &insts {
            if distinct.insert(i.clone()) {
                cs.add(i.clone(), *spec);
            }
        }
        let mut fired = Vec::new();
        while let Some(i) = cs.select_lex() {
            fired.push(i);
            prop_assert!(fired.len() <= distinct.len() + insts.len(), "terminates");
        }
        // Duplicated additions may fire per copy; distinct ones at least once.
        prop_assert!(fired.len() >= distinct.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].recency_key() >= w[1].recency_key());
        }
    }

    /// take_unfired never returns an instantiation twice.
    #[test]
    fn take_unfired_is_exactly_once(insts in prop::collection::vec(inst_strategy(), 1..12)) {
        let mut cs = ConflictSet::new();
        let mut seen = std::collections::HashSet::new();
        for (i, spec) in &insts {
            if seen.insert(i.clone()) {
                cs.add(i.clone(), *spec);
            }
        }
        let first = cs.take_unfired();
        prop_assert_eq!(first.len(), seen.len());
        prop_assert!(cs.take_unfired().is_empty());
    }

    /// The lexer/parser never panic on arbitrary input — they return errors.
    #[test]
    fn parser_is_total(src in "[ -~\\n]{0,200}") {
        let mut reg = psme_ops::ClassRegistry::new();
        let _ = psme_ops::parse_program(&src, &mut reg);
        let _ = psme_ops::parse_wme(&src, &reg);
    }

    /// Any production built from the paper-like grammar fragment parses or
    /// errors cleanly, and successful parses re-print and re-parse.
    #[test]
    fn structured_sources_round_trip(
        class in "[a-z]{1,6}",
        attr in "[a-z]{1,6}",
        val in 0i64..100,
    ) {
        let mut reg = psme_ops::ClassRegistry::new();
        let src = format!(
            "(literalize {class} {attr})
             (p gen ({class} ^{attr} {val}) -({class} ^{attr} <v>) --> (make {class} ^{attr} <v>))"
        );
        // <v> is negation-local and used on the RHS: must be rejected.
        let r = psme_ops::parse_program(&src, &mut reg);
        prop_assert!(r.is_err());
        let src_ok = format!(
            "(p gen2 ({class} ^{attr} <v>) -({class} ^{attr} {val}) --> (make {class} ^{attr} <v>))"
        );
        let p = psme_ops::parse_production(&src_ok, &mut reg).unwrap();
        let text = psme_ops::production_text(&p, &reg);
        let p2 = psme_ops::parse_production(&text, &mut reg).unwrap();
        prop_assert_eq!(p.ces, p2.ces);
    }
}
