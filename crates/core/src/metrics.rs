//! Match-phase instrumentation (the measurements behind §6).

use crate::queue::QueueStats;
use psme_obs::{CounterSet, Json};
use psme_rete::Phase;

/// Everything measured about one cycle (match or update phase).
#[derive(Clone, Debug, Default)]
pub struct CycleMetrics {
    /// Cycle ordinal.
    pub cycle: u64,
    /// Phase this cycle belonged to.
    pub phase: Option<Phase>,
    /// Tasks executed (node activations, including alpha tasks).
    pub tasks: u64,
    /// Wall-clock duration of the cycle on this host.
    pub wall_ns: u64,
    /// Aggregated queue counters across workers.
    pub queue: QueueStats,
    /// Spins on memory-line locks.
    pub mem_spins: u64,
    /// Opposite-memory entries scanned.
    pub scanned: u64,
    /// Per-line left-token access counts (only when histogram collection is
    /// on — Figure 6-2).
    pub left_bucket_accesses: Vec<u64>,
    /// Per-line right-token access counts.
    pub right_bucket_accesses: Vec<u64>,
    /// Merged worker counter sets (task mix, null activations, …).
    pub counters: CounterSet,
}

impl CycleMetrics {
    /// Queue-lock spins per task — the paper's Figure 6-3 metric.
    pub fn spins_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            (self.queue.pop_spins + self.queue.push_spins) as f64 / self.tasks as f64
        }
    }

    /// Memory-line lock spins per task — the §6.1 memory-contention
    /// companion to [`Self::spins_per_task`] (which covers the queue
    /// locks). High values mean workers are colliding on token memory
    /// lines rather than on the scheduler.
    pub fn contention_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.mem_spins as f64 / self.tasks as f64
        }
    }

    /// Fold one worker's per-cycle stats in at the barrier. All counters
    /// saturate: a worker that clamped at `u64::MAX` (or a sum that would
    /// overflow) must report `u64::MAX`, never a small wrapped value that
    /// would read as "almost no work done".
    pub fn absorb_worker(&mut self, ws: &WorkerStats) {
        self.queue.merge(&ws.queue);
        self.tasks = self.tasks.saturating_add(ws.tasks);
        self.mem_spins = self.mem_spins.saturating_add(ws.mem_spins);
        self.scanned = self.scanned.saturating_add(ws.scanned);
        self.counters.merge(&ws.counters);
    }

    /// As a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cycle".to_string(), Json::from(self.cycle)),
            (
                "phase".to_string(),
                match self.phase {
                    Some(Phase::Match) => Json::from("match"),
                    Some(Phase::Update) => Json::from("update"),
                    None => Json::Null,
                },
            ),
            ("tasks".to_string(), Json::from(self.tasks)),
            ("wall_ns".to_string(), Json::from(self.wall_ns)),
            ("pushes".to_string(), Json::from(self.queue.pushes)),
            ("pops".to_string(), Json::from(self.queue.pops)),
            ("failed_pops".to_string(), Json::from(self.queue.failed_pops)),
            ("push_spins".to_string(), Json::from(self.queue.push_spins)),
            ("pop_spins".to_string(), Json::from(self.queue.pop_spins)),
            ("steals".to_string(), Json::from(self.queue.steals)),
            ("steal_fails".to_string(), Json::from(self.queue.steal_fails)),
            ("batches".to_string(), Json::from(self.queue.batches)),
            ("mem_spins".to_string(), Json::from(self.mem_spins)),
            ("scanned".to_string(), Json::from(self.scanned)),
            ("spins_per_task".to_string(), Json::float(self.spins_per_task())),
            ("contention_per_task".to_string(), Json::float(self.contention_per_task())),
        ];
        if !self.counters.is_empty() {
            fields.push(("counters".to_string(), self.counters.to_json()));
        }
        Json::Obj(fields)
    }
}

/// Per-worker accumulation for the cycle in flight.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Queue counters.
    pub queue: QueueStats,
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Memory-line lock spins.
    pub mem_spins: u64,
    /// Opposite entries scanned.
    pub scanned: u64,
    /// Observability counters (task mix, null activations, …), kept on the
    /// worker's stack and merged at the cycle barrier — no hot-path locks.
    pub counters: CounterSet,
}

impl WorkerStats {
    /// Reset for a new cycle.
    pub fn reset(&mut self) {
        *self = WorkerStats::default();
    }
}

/// A run's metrics log.
#[derive(Clone, Debug, Default)]
pub struct MetricsLog {
    /// One entry per cycle, in order.
    pub cycles: Vec<CycleMetrics>,
}

impl MetricsLog {
    /// Total tasks over the run.
    pub fn total_tasks(&self) -> u64 {
        self.cycles.iter().map(|c| c.tasks).sum()
    }

    /// Total wall time over the run.
    pub fn total_wall_ns(&self) -> u64 {
        self.cycles.iter().map(|c| c.wall_ns).sum()
    }

    /// Histogram of tasks/cycle with the given bucket width (Figures 6-11
    /// and 6-12): returns `(bucket_start, percent_of_cycles)` pairs.
    pub fn tasks_per_cycle_histogram(&self, bucket: u64) -> Vec<(u64, f64)> {
        assert!(bucket > 0);
        if self.cycles.is_empty() {
            return vec![];
        }
        let max = self.cycles.iter().map(|c| c.tasks).max().unwrap_or(0);
        let nb = (max / bucket + 1) as usize;
        let mut counts = vec![0u64; nb];
        for c in &self.cycles {
            counts[(c.tasks / bucket) as usize] += 1;
        }
        let total = self.cycles.len() as f64;
        counts
            .into_iter()
            .enumerate()
            .map(|(i, n)| (i as u64 * bucket, 100.0 * n as f64 / total))
            .collect()
    }

    /// Distribution of left-token accesses per bucket per cycle
    /// (Figure 6-2): for each access count ≥ 1, the percentage of
    /// (bucket, cycle) observations with that count.
    pub fn left_access_distribution(&self) -> Vec<(u64, f64)> {
        self.access_distribution(|c| &c.left_bucket_accesses)
    }

    /// The right-memory companion of [`Self::left_access_distribution`].
    /// The paper's Figure 6-2 plots both: right memories (wme-keyed) hash
    /// more uniformly than left memories (token-keyed), so this
    /// distribution should sit closer to 1 access/bucket.
    pub fn right_access_distribution(&self) -> Vec<(u64, f64)> {
        self.access_distribution(|c| &c.right_bucket_accesses)
    }

    fn access_distribution(&self, side: impl Fn(&CycleMetrics) -> &Vec<u64>) -> Vec<(u64, f64)> {
        let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut total = 0u64;
        for c in &self.cycles {
            for &a in side(c) {
                if a > 0 {
                    *counts.entry(a).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        counts
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total.max(1) as f64))
            .collect()
    }

    /// Merged counters over the whole run.
    pub fn total_counters(&self) -> CounterSet {
        let mut all = CounterSet::new();
        for c in &self.cycles {
            all.merge(&c.counters);
        }
        all
    }

    /// The whole log as a JSON object: run totals plus the per-cycle array.
    pub fn to_json(&self) -> Json {
        let totals = self.total_counters();
        let mut fields = vec![
            ("cycles".to_string(), Json::from(self.cycles.len() as u64)),
            ("total_tasks".to_string(), Json::from(self.total_tasks())),
            ("total_wall_ns".to_string(), Json::from(self.total_wall_ns())),
        ];
        if !totals.is_empty() {
            fields.push(("counters".to_string(), totals.to_json()));
        }
        fields.push((
            "per_cycle".to_string(),
            Json::arr(self.cycles.iter().map(CycleMetrics::to_json)),
        ));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spins_per_task() {
        let mut m = CycleMetrics { tasks: 10, ..Default::default() };
        m.queue.pop_spins = 25;
        m.queue.push_spins = 5;
        assert!((m.spins_per_task() - 3.0).abs() < 1e-9);
        let empty = CycleMetrics::default();
        assert_eq!(empty.spins_per_task(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut log = MetricsLog::default();
        for t in [10u64, 20, 40, 260, 270, 1100] {
            log.cycles.push(CycleMetrics { tasks: t, ..Default::default() });
        }
        let h = log.tasks_per_cycle_histogram(25);
        // bucket 0 holds 10 and 20 → 2/6 of cycles.
        assert!((h[0].1 - 33.333).abs() < 0.01);
        assert_eq!(h[0].0, 0);
        // last bucket holds 1100.
        assert!(h.last().unwrap().1 > 0.0);
        assert_eq!(log.total_tasks(), 1700);
    }

    #[test]
    fn access_distribution_ignores_untouched_buckets() {
        let mut log = MetricsLog::default();
        log.cycles.push(CycleMetrics {
            left_bucket_accesses: vec![0, 1, 1, 4],
            right_bucket_accesses: vec![1, 1, 1, 0],
            ..Default::default()
        });
        let d = log.left_access_distribution();
        assert_eq!(d, vec![(1, 100.0 * 2.0 / 3.0), (4, 100.0 / 3.0)]);
        // The right-side companion uses the same accounting over the other
        // access vector.
        assert_eq!(log.right_access_distribution(), vec![(1, 100.0)]);
    }

    #[test]
    fn contention_per_task_tracks_mem_spins() {
        let m = CycleMetrics { tasks: 8, mem_spins: 4, ..Default::default() };
        assert!((m.contention_per_task() - 0.5).abs() < 1e-12);
        assert_eq!(CycleMetrics::default().contention_per_task(), 0.0);
    }

    #[test]
    fn merge_saturates_on_overflow() {
        // Regression: the barrier merge used plain `+=`, which wraps in
        // release builds — a worker reporting huge counters would fold into
        // a tiny total. Every merge path must saturate at u64::MAX.
        let mut cm = CycleMetrics { tasks: u64::MAX - 5, ..Default::default() };
        cm.queue.pop_spins = u64::MAX;
        cm.mem_spins = 10;
        let mut ws = WorkerStats { tasks: 100, mem_spins: u64::MAX, ..Default::default() };
        ws.queue.pop_spins = 3;
        ws.queue.pushes = 42;
        ws.counters.add(psme_obs::Counter::Tasks, u64::MAX);
        ws.counters.add(psme_obs::Counter::Steals, 7);
        cm.absorb_worker(&ws);
        assert_eq!(cm.tasks, u64::MAX, "tasks saturate");
        assert_eq!(cm.queue.pop_spins, u64::MAX, "queue counters saturate");
        assert_eq!(cm.mem_spins, u64::MAX, "mem spins saturate");
        assert_eq!(cm.queue.pushes, 42, "non-overflowing fields stay exact");
        assert_eq!(cm.counters.get(psme_obs::Counter::Tasks), u64::MAX);
        // A second merge on an already-saturated set stays put.
        let mut again = WorkerStats::default();
        again.counters.add(psme_obs::Counter::Tasks, 1);
        again.tasks = 1;
        cm.absorb_worker(&again);
        assert_eq!(cm.tasks, u64::MAX);
        assert_eq!(cm.counters.get(psme_obs::Counter::Tasks), u64::MAX);
        assert_eq!(cm.counters.get(psme_obs::Counter::Steals), 7);
    }

    #[test]
    fn metrics_log_serializes_to_json() {
        use psme_obs::Counter;
        let mut log = MetricsLog::default();
        let mut c = CycleMetrics { cycle: 0, tasks: 12, wall_ns: 3400, mem_spins: 6, ..Default::default() };
        c.phase = Some(Phase::Match);
        c.queue.pushes = 12;
        c.counters.add(Counter::Tasks, 12);
        c.counters.add(Counter::NullActivations, 5);
        log.cycles.push(c);
        let j = log.to_json();
        assert_eq!(j.get("total_tasks").and_then(|v| v.as_u64()), Some(12));
        let cyc = j.get("per_cycle").unwrap().at(0).unwrap();
        assert_eq!(cyc.get("phase").and_then(|v| v.as_str()), Some("match"));
        assert_eq!(
            cyc.get("counters").and_then(|c| c.get("null_activations")).and_then(|v| v.as_u64()),
            Some(5)
        );
        assert!((cyc.get("contention_per_task").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
        // And the document round-trips through the writer/parser.
        let back = psme_obs::Json::parse(&j.pretty()).unwrap();
        assert_eq!(back.get("total_wall_ns").and_then(|v| v.as_u64()), Some(3400));
    }
}
