//! The parallel match engine: one control thread (the caller) plus N match
//! processes (§2.3, §4).
//!
//! "PSM-E consists of one control process that selects and then fires an
//! instantiation and one or more match processes that actually perform the
//! RETE match. … Each individual match process performs match by picking up
//! a task from one of these queues, processing the task and, if any new
//! tasks are generated, pushing them onto one of the queues. When the task
//! queues becomes empty, one production system cycle ends."
//!
//! Quiescence detection uses an outstanding-task counter: a worker
//! increments it for every child it pushes *before* decrementing it for the
//! task it finished, so the counter reaches zero exactly at quiescence.
//! Workers park between cycles on an epoch condvar; the control thread owns
//! the network/store write locks between cycles (run-time chunk addition,
//! wme changes) and never mutates them while a cycle is in flight.

use crate::metrics::{CycleMetrics, MetricsLog, WorkerStats};
use crate::queue::{QueueStats, Scheduler, Task, TaskQueues};
use parking_lot::{Condvar, Mutex, RwLock};
use psme_obs::{ControlPhase, Counter, Recorder, TraceKind, TraceRing, SESSION_NONE};
use psme_ops::{Instantiation, Production, Wme, WmeId};
use psme_rete::{
    instantiations_from_memories, plan_beta, process_beta_batch, process_wme_change, seed_update,
    AddOutcome, BetaScratch, BuildError, CsFold, CycleOutcome, MemoryTable, NetworkOrg, NodeId,
    NodeKind, Phase, PlannedBeta, ReteNetwork, WmeStore,
};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the parallel engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of match processes (the paper sweeps 1–13).
    pub workers: usize,
    /// Task-queue organization.
    pub scheduler: Scheduler,
    /// Memory-table lines.
    pub memory_lines: usize,
    /// Collect per-line bucket access histograms each cycle (Figure 6-2).
    pub bucket_histograms: bool,
    /// Line-lock batching: a worker drains up to this many tasks from its
    /// queue per round, groups the beta activations by destination memory
    /// line, and processes each group under a single lock acquisition
    /// (`Counter::LineLockAcquisitions` records the paid acquisitions).
    /// 1 disables batching — one acquisition per activation, the paper's
    /// discipline.
    pub line_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            scheduler: Scheduler::MultiQueue,
            memory_lines: 4096,
            bucket_histograms: false,
            line_batch: 8,
        }
    }
}

struct Shared {
    net: RwLock<ReteNetwork>,
    store: RwLock<WmeStore>,
    mem: MemoryTable,
    queues: TaskQueues,
    outstanding: AtomicI64,
    min_node: AtomicU32,
    epoch: Mutex<u64>,
    epoch_cv: Condvar,
    done: Mutex<()>,
    done_cv: Condvar,
    workers_active: AtomicI64,
    shutdown: AtomicBool,
    /// Per-emission-folded conflict-set delta: workers fold locally and
    /// merge their maps here at the cycle barrier, so the control thread
    /// sorts only the net nonzero entries instead of re-keying a raw
    /// change vector every cycle.
    cs_fold: Mutex<CsFold>,
    worker_stats: Vec<Mutex<WorkerStats>>,
    line_batch: usize,
    /// Adaptive-reorg cost profiling: when armed, workers accumulate
    /// per-node activation costs locally and merge them here at the cycle
    /// barrier (one lock acquisition per worker per cycle, zero hot-loop
    /// sharing).
    profile_costs: AtomicBool,
    node_costs: Mutex<Vec<u64>>,
}

fn worker_loop(shared: Arc<Shared>, wid: usize) {
    let mut seen_epoch = 0u64;
    // Per-worker reusable beta-scan scratch: survives across tasks and
    // cycles, so the steady state allocates nothing per activation.
    let mut scratch = BetaScratch::default();
    // Per-worker cost vector for the adaptive-reorg detector; merged at the
    // cycle barrier when profiling is armed.
    let mut costs: Vec<u64> = Vec::new();
    loop {
        {
            let mut e = shared.epoch.lock();
            while *e == seen_epoch && !shared.shutdown.load(Ordering::Acquire) {
                shared.epoch_cv.wait(&mut e);
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            seen_epoch = *e;
        }
        shared.workers_active.fetch_add(1, Ordering::AcqRel);
        let profiling = shared.profile_costs.load(Ordering::Relaxed);
        let net = shared.net.read();
        let store = shared.store.read();
        let mut ws = WorkerStats::default();
        let mut local_cs = CsFold::default();
        let mut cs_emitted = 0u64;
        let mut pending: Vec<Task> = Vec::new();
        let mut local: Vec<Task> = Vec::new();
        let mut planned: Vec<PlannedBeta> = Vec::new();
        loop {
            match shared.queues.pop(wid, &mut ws.queue) {
                Some(task) => {
                    pending.clear();
                    // Loaded per round, *after* the pop: the queue lock's
                    // release/acquire pairing guarantees a popped task sees
                    // the `min_node` the control thread stored before
                    // pushing it, even for a worker that woke late and is
                    // still in the previous cycle's work loop.
                    let min_node: NodeId = shared.min_node.load(Ordering::Relaxed);
                    // Drain up to `line_batch` tasks; the popped-but-not-yet
                    // retired tasks keep `outstanding` positive, so no other
                    // worker can observe premature quiescence.
                    local.clear();
                    local.push(task);
                    while local.len() < shared.line_batch {
                        match shared.queues.pop(wid, &mut ws.queue) {
                            Some(t) => local.push(t),
                            None => break,
                        }
                    }
                    let popped = local.len() as i64;
                    ws.tasks += popped as u64;
                    ws.counters.add(Counter::Tasks, popped as u64);
                    let cs_round = cs_emitted;
                    planned.clear();
                    for task in local.drain(..) {
                        match task {
                            Task::Alpha(w, d) => {
                                let before = pending.len();
                                let (alpha, _) =
                                    process_wme_change(&*net, &store, w, d, min_node, &mut |a| {
                                        pending.push(Task::Beta(a))
                                    });
                                ws.counters.add(Counter::AlphaTasks, 1);
                                ws.counters.add(Counter::Scanned, alpha.tests_run as u64);
                                ws.counters
                                    .add(Counter::Emitted, (pending.len() - before) as u64);
                                ws.counters.add(Counter::AlphaProbes, alpha.probes as u64);
                                ws.counters.add(Counter::AlphaCandidates, alpha.candidates as u64);
                                ws.counters
                                    .add(Counter::AlphaTestsSaved, alpha.tests_saved as u64);
                            }
                            Task::Beta(a) => {
                                planned.push(plan_beta(&*net, &shared.mem, &store, a));
                            }
                        }
                    }
                    // Group the betas by destination line (stable sort keeps
                    // pop order within a group) and drain each group under a
                    // single acquisition. Signed counting memories make the
                    // within-round reordering commutative, so the quiescent
                    // state is unchanged.
                    planned.sort_by_key(|p| p.line);
                    let mut i = 0;
                    while i < planned.len() {
                        let mut j = i + 1;
                        while j < planned.len() && planned[j].line == planned[i].line {
                            j += 1;
                        }
                        process_beta_batch(
                            &*net,
                            &shared.mem,
                            &store,
                            &planned[i..j],
                            min_node,
                            &mut scratch,
                            &mut |child| pending.push(Task::Beta(child)),
                            &mut |c| {
                                cs_emitted += 1;
                                local_cs.add(c);
                            },
                            &mut |a, stats| {
                                if profiling {
                                    let node = a.node as usize;
                                    if costs.len() <= node {
                                        costs.resize(node + 1, 0);
                                    }
                                    costs[node] += 1 + stats.scanned as u64 + stats.emitted as u64;
                                }
                                ws.mem_spins += stats.spins;
                                ws.scanned += stats.scanned as u64;
                                ws.counters.add(Counter::BetaTasks, 1);
                                ws.counters.add(Counter::Scanned, stats.scanned as u64);
                                ws.counters.add(Counter::HashRejects, stats.hash_rejects as u64);
                                ws.counters.add(Counter::EntriesSkipped, stats.skipped as u64);
                                ws.counters.add(Counter::Emitted, stats.emitted as u64);
                                ws.counters.add(Counter::MemSpins, stats.spins);
                                ws.counters
                                    .add(Counter::LineLockAcquisitions, stats.acquires as u64);
                                // A childless two-input activation is a null
                                // activation in the paper's accounting.
                                if stats.emitted == 0
                                    && matches!(
                                        net.node(a.node).kind,
                                        NodeKind::Join | NodeKind::Neg
                                    )
                                {
                                    ws.counters.add(Counter::NullActivations, 1);
                                }
                            },
                        );
                        i = j;
                    }
                    ws.counters.add(Counter::CsChanges, cs_emitted - cs_round);
                    // Children first, then retire the round: the counter can
                    // only reach zero at true quiescence. Under
                    // `WorkStealing` the whole brood is published with one
                    // release store; the locked schedulers push
                    // one-at-a-time, exactly as the paper's configurations
                    // do.
                    if !pending.is_empty() {
                        shared.outstanding.fetch_add(pending.len() as i64, Ordering::AcqRel);
                        shared.queues.push_batch(wid, &mut pending, &mut ws.queue);
                    }
                    if shared.outstanding.fetch_sub(popped, Ordering::AcqRel) == popped {
                        let _g = shared.done.lock();
                        shared.done_cv.notify_all();
                    }
                }
                None => {
                    if shared.outstanding.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        drop(store);
        drop(net);
        if !local_cs.is_empty() {
            shared.cs_fold.lock().merge(local_cs);
        }
        if profiling && !costs.is_empty() {
            let mut merged = shared.node_costs.lock();
            if merged.len() < costs.len() {
                merged.resize(costs.len(), 0);
            }
            for (m, c) in merged.iter_mut().zip(&costs) {
                *m += c;
            }
            costs.clear();
        }
        // Mirror the scheduler counters into the observability set so the
        // psme-obs JSON export carries them (zero under the paper
        // schedulers, omitted from JSON).
        ws.counters.add(Counter::Steals, ws.queue.steals);
        ws.counters.add(Counter::StealFails, ws.queue.steal_fails);
        ws.counters.add(Counter::Batches, ws.queue.batches);
        *shared.worker_stats[wid].lock() = ws;
        if shared.workers_active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = shared.done.lock();
            shared.done_cv.notify_all();
        }
    }
}

/// The PSM-E parallel match engine.
pub struct ParallelEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    config: EngineConfig,
    /// Per-cycle metrics log.
    pub metrics: MetricsLog,
    /// Control-thread span recorder (match / §5.1 surgery / §5.2 update
    /// phases; the embedding layer adds its own decide/chunk spans).
    pub recorder: Recorder,
    /// Cycle-phase boundary events (PhaseBegin/PhaseEnd), same taxonomy
    /// as the serve trace — drain into a `TraceLog` to merge engine and
    /// serving timelines.
    pub trace: TraceRing,
    cycle_count: u64,
}

impl ParallelEngine {
    /// Spawn the match processes over a compiled network.
    pub fn new(net: ReteNetwork, config: EngineConfig) -> ParallelEngine {
        ParallelEngine::with_state(net, psme_rete::MatchState::new(), config)
    }

    /// Spawn the match processes adopting an externally owned
    /// [`psme_rete::MatchState`] (working memory + token memories), e.g. a
    /// session's state handed over by the serving layer. `config.memory_lines`
    /// is ignored — the adopted state's table is used as-is.
    pub fn with_state(
        net: ReteNetwork,
        state: psme_rete::MatchState,
        config: EngineConfig,
    ) -> ParallelEngine {
        let psme_rete::MatchState { mem, store } = state;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            net: RwLock::new(net),
            store: RwLock::new(store),
            mem,
            queues: TaskQueues::new(config.scheduler, workers),
            outstanding: AtomicI64::new(0),
            min_node: AtomicU32::new(0),
            epoch: Mutex::new(0),
            epoch_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            workers_active: AtomicI64::new(0),
            shutdown: AtomicBool::new(false),
            cs_fold: Mutex::new(CsFold::default()),
            worker_stats: (0..workers).map(|_| Mutex::new(WorkerStats::default())).collect(),
            line_batch: config.line_batch.max(1),
            profile_costs: AtomicBool::new(false),
            node_costs: Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|wid| {
                let s = shared.clone();
                std::thread::Builder::new()
                    .name(format!("psm-match-{wid}"))
                    .spawn(move || worker_loop(s, wid))
                    .expect("spawn match process")
            })
            .collect();
        let recorder = Recorder::new();
        // The control thread emits phase boundaries; its ring id is one
        // past the last match process's.
        let trace = TraceRing::new(workers as u32, 4096, recorder.origin());
        ParallelEngine {
            shared,
            handles,
            config,
            metrics: MetricsLog::default(),
            recorder,
            trace,
            cycle_count: 0,
        }
    }

    /// Number of match processes.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run a set of seed tasks to quiescence and harvest metrics + CS delta.
    fn run_tasks(&mut self, seeds: Vec<Task>, min_node: NodeId, phase: Phase) -> CycleOutcome {
        let s = &self.shared;
        s.min_node.store(min_node, Ordering::Relaxed);
        s.outstanding.store(seeds.len() as i64, Ordering::Release);
        let mut seed_stats = QueueStats::default();
        for (i, t) in seeds.into_iter().enumerate() {
            // Round-robin across queues for the paper schedulers; the
            // work-stealing injector for `WorkStealing` (the control thread
            // must never touch a deque's owner end).
            s.queues.push_seed(i, t, &mut seed_stats);
        }
        let cphase = match phase {
            Phase::Match => ControlPhase::Match,
            Phase::Update => ControlPhase::StateUpdate,
        };
        let span = self.recorder.start(cphase);
        self.trace.emit(
            TraceKind::PhaseBegin(cphase),
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            0,
        );
        let start = Instant::now();
        {
            let mut e = s.epoch.lock();
            *e += 1;
            s.epoch_cv.notify_all();
        }
        {
            let mut g = s.done.lock();
            while s.outstanding.load(Ordering::Acquire) != 0
                || s.workers_active.load(Ordering::Acquire) != 0
            {
                s.done_cv.wait(&mut g);
            }
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        self.recorder.finish_seq(span, self.cycle_count);
        self.trace.emit(
            TraceKind::PhaseEnd(cphase),
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            wall_ns,
        );
        debug_assert!(s.queues.all_empty());

        // Harvest.
        let mut cm = CycleMetrics {
            cycle: self.cycle_count,
            phase: Some(phase),
            wall_ns,
            ..Default::default()
        };
        cm.queue.merge(&seed_stats);
        for w in &s.worker_stats {
            let mut ws = w.lock();
            cm.absorb_worker(&ws);
            ws.reset();
        }
        if self.config.bucket_histograms {
            // Per-cycle histograms (Figure 6-2): the incremental `end_cycle`
            // below zeroed every line written last cycle, so the counts
            // harvested here are this cycle's alone.
            let counts = s.mem.access_counts();
            cm.left_bucket_accesses = counts.iter().map(|&(l, _)| l).collect();
            cm.right_bucket_accesses = counts.iter().map(|&(_, r)| r).collect();
        }
        let fold = std::mem::take(&mut *s.cs_fold.lock());
        let net = s.net.read();
        let store = s.store.read();
        let cs = fold.into_delta(&*net, &store);
        drop(store);
        drop(net);
        #[cfg(debug_assertions)]
        s.mem.assert_quiescent();
        // Incremental quiescent housekeeping: compact + counter-reset only
        // the lines this cycle dirtied (after the histogram harvest).
        cm.counters.add(Counter::LinesCompacted, s.mem.end_cycle());
        let tasks = cm.tasks;
        self.metrics.cycles.push(cm);
        self.cycle_count += 1;
        CycleOutcome { cs, tasks }
    }

    /// Add wmes / remove wme ids, then match to quiescence in parallel.
    pub fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        let mut changes = Vec::with_capacity(adds.len() + removes.len());
        {
            let mut store = self.shared.store.write();
            for w in adds {
                let (id, _) = store.add(w);
                changes.push((id, 1));
            }
            for id in removes {
                if store.remove(id).is_some() {
                    changes.push((id, -1));
                }
            }
        }
        self.run_changes(changes)
    }

    /// Match a batch of pre-applied wme changes.
    pub fn run_changes(&mut self, changes: Vec<(WmeId, i32)>) -> CycleOutcome {
        // Straggler barrier: a worker that woke late for the previous cycle
        // may still hold the store read lock with a stale `min_node`.
        // Acquiring the write lock forces it to finish and park before the
        // new cycle's tasks become visible.
        drop(self.shared.store.write());
        let seeds = changes.into_iter().map(|(w, d)| Task::Alpha(w, d)).collect();
        self.run_tasks(seeds, 0, Phase::Match)
    }

    /// Mutate the working-memory store between cycles (the Soar layer adds
    /// and garbage-collects wmes itself and then calls [`Self::run_changes`]).
    pub fn store_mut<R>(&mut self, f: impl FnOnce(&mut WmeStore) -> R) -> R {
        f(&mut self.shared.store.write())
    }

    /// Compile a production at run time and run the §5.2 state update — in
    /// parallel, which is what Figure 6-9 measures.
    pub fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        let surgery = self.recorder.start(ControlPhase::NetworkSurgery);
        self.trace.emit(
            TraceKind::PhaseBegin(ControlPhase::NetworkSurgery),
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            0,
        );
        let (add, mut seeds) = {
            let mut net = self.shared.net.write();
            let add = net.add_production(prod, org)?;
            let seeds: Vec<Task> = seed_update(&*net, &self.shared.mem, add.first_new)
                .into_iter()
                .map(Task::Beta)
                .collect();
            (add, seeds)
        };
        let surgery_ns = self.recorder.finish_seq(surgery, self.cycle_count);
        self.trace.emit(
            TraceKind::PhaseEnd(ControlPhase::NetworkSurgery),
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            surgery_ns,
        );
        {
            let store = self.shared.store.read();
            for (id, _) in store.iter_alive() {
                seeds.push(Task::Alpha(id, 1));
            }
        }
        let out = self.run_tasks(seeds, add.first_new, Phase::Update);
        Ok(AddOutcome { add, update_tasks: out.tasks, cs: out.cs })
    }

    /// Arm or disarm per-node cost profiling for the adaptive-reorg
    /// detector. Disarming clears the accumulated window.
    pub fn set_cost_profiling(&mut self, on: bool) {
        self.shared.profile_costs.store(on, Ordering::Relaxed);
        if !on {
            self.shared.node_costs.lock().clear();
        }
    }

    /// Feed the merged per-node cost window to the chain detector and reset
    /// it. Call between cycles (the merge happens at cycle barriers, so the
    /// window is complete and stable here).
    pub fn poll_reorg(
        &mut self,
        det: &mut psme_rete::ChainDetector,
    ) -> Option<psme_rete::ReorgDecision> {
        let mut costs = self.shared.node_costs.lock();
        let net = self.shared.net.read();
        let d = det.observe(&costs, &*net);
        costs.iter_mut().for_each(|c| *c = 0);
        d
    }

    /// Rebuild an existing production under a new organization: §5.1
    /// surgery beside the live chain, a parallel §5.2 state update of the
    /// new subnetwork (same machinery Figure 6-9 measures), then an atomic
    /// swap that retires the old chain. The update's conflict-set delta is
    /// discarded — a reorganization is observationally invisible.
    pub fn reorganize_production(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<psme_rete::ReorgOutcome, BuildError> {
        let surgery = self.recorder.start(ControlPhase::NetworkSurgery);
        self.trace.emit(
            TraceKind::PhaseBegin(ControlPhase::NetworkSurgery),
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            0,
        );
        self.trace.emit(
            TraceKind::ReorgPlanned,
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            u64::from(prod_idx),
        );
        let built = {
            let mut net = self.shared.net.write();
            match net.reorg_build(prod_idx, org) {
                Ok(rb) => {
                    let seeds: Vec<Task> = seed_update(&*net, &self.shared.mem, rb.first_new)
                        .into_iter()
                        .map(Task::Beta)
                        .collect();
                    Ok((rb, seeds))
                }
                Err(e) => Err(e),
            }
        };
        let (rb, mut seeds) = match built {
            Ok(v) => v,
            Err(e) => {
                // Rolled back inside reorg_build: the live chain is intact.
                let ns = self.recorder.finish_seq(surgery, self.cycle_count);
                self.trace.emit(
                    TraceKind::ReorgRolledBack,
                    SESSION_NONE,
                    self.cycle_count,
                    self.cycle_count,
                    u64::from(prod_idx),
                );
                self.trace.emit(
                    TraceKind::PhaseEnd(ControlPhase::NetworkSurgery),
                    SESSION_NONE,
                    self.cycle_count,
                    self.cycle_count,
                    ns,
                );
                return Err(e);
            }
        };
        let surgery_ns = self.recorder.finish_seq(surgery, self.cycle_count);
        self.trace.emit(
            TraceKind::PhaseEnd(ControlPhase::NetworkSurgery),
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            surgery_ns,
        );
        {
            let store = self.shared.store.read();
            for (id, _) in store.iter_alive() {
                seeds.push(Task::Alpha(id, 1));
            }
        }
        let first_new = rb.first_new;
        let p_node = rb.p_node;
        let out = self.run_tasks(seeds, first_new, Phase::Update);
        let retired = {
            let mut net = self.shared.net.write();
            net.reorg_commit(rb)
        };
        self.shared.mem.purge_nodes(&retired);
        self.trace.emit(
            TraceKind::ReorgCommitted,
            SESSION_NONE,
            self.cycle_count,
            self.cycle_count,
            u64::from(prod_idx),
        );
        if let Some(cm) = self.metrics.cycles.last_mut() {
            cm.counters.add(Counter::Reorganizations, 1);
        }
        Ok(psme_rete::ReorgOutcome {
            prod_idx,
            first_new,
            p_node,
            update_tasks: out.tasks,
            retired: retired.len(),
        })
    }

    /// Run a closure against the working-memory store.
    pub fn with_store<R>(&self, f: impl FnOnce(&WmeStore) -> R) -> R {
        f(&self.shared.store.read())
    }

    /// Run a closure against the network.
    pub fn with_net<R>(&self, f: impl FnOnce(&ReteNetwork) -> R) -> R {
        f(&self.shared.net.read())
    }

    /// All current instantiations (quiescent-time verification helper).
    pub fn current_instantiations(&self) -> Vec<Instantiation> {
        let net = self.shared.net.read();
        let store = self.shared.store.read();
        instantiations_from_memories(&*net, &store, &self.shared.mem)
    }

    /// Metrics for the most recent cycle.
    pub fn last_cycle_metrics(&self) -> Option<&CycleMetrics> {
        self.metrics.cycles.last()
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut e = self.shared.epoch.lock();
            *e += 1;
            self.shared.epoch_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ParallelEngine({} workers, {:?}, {} cycles)",
            self.handles.len(),
            self.shared.queues.scheduler(),
            self.cycle_count
        )
    }
}
