//! A common façade over the serial and parallel engines, so the Soar
//! architecture (and the task suites) can run on either interchangeably.

use crate::engine::ParallelEngine;
use psme_ops::{Instantiation, Production, TimeTag, Wme, WmeId};
use psme_rete::{
    AddOutcome, BuildError, ChainDetector, CycleOutcome, JournaledSession, NetworkOrg, Phase,
    ReorgDecision, ReorgOutcome, ReteBuild, SerialEngine, WmeStore,
};
use std::sync::Arc;

/// Unified match-engine interface.
pub trait MatchEngine {
    /// Add wmes / remove wme ids, then match to quiescence.
    fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome;

    /// Register a wme in the store without matching yet (the Soar layer
    /// batches a whole elaboration cycle's changes before matching).
    fn add_wme(&mut self, w: Wme) -> (WmeId, TimeTag);

    /// Mark a wme dead without matching yet. Returns false if already dead.
    fn remove_wme(&mut self, id: WmeId) -> bool;

    /// Match a batch of pre-registered changes to quiescence.
    fn run_changes(&mut self, changes: Vec<(WmeId, i32)>) -> CycleOutcome;

    /// Compile a production at run time and update its state (§5.1/§5.2).
    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError>;

    /// Read access to the working-memory store.
    fn with_store<R>(&self, f: impl FnOnce(&WmeStore) -> R) -> R;

    /// Number of beta nodes in the engine's network view (monolithic, or
    /// shared base + session overlay).
    fn num_net_nodes(&self) -> usize;

    /// All current instantiations (quiescent-time helper).
    fn current_instantiations(&self) -> Vec<Instantiation>;

    /// The engine's own control-thread span recorder, when it keeps one
    /// (the parallel engine records match / §5.1 surgery / §5.2 state-update
    /// spans; the serial engine records nothing).
    fn recorder(&self) -> Option<&psme_obs::Recorder> {
        None
    }

    /// The engine's per-cycle metrics log, when it keeps one.
    fn metrics(&self) -> Option<&crate::metrics::MetricsLog> {
        None
    }

    /// Arm or disarm per-node cost profiling for the adaptive-reorg
    /// detector. Default: unsupported, silently off.
    fn set_cost_profiling(&mut self, _on: bool) {}

    /// Feed the accumulated cost window to the chain detector at a
    /// quiescent boundary. Default: no window kept, never a decision.
    fn poll_reorg(&mut self, _det: &mut ChainDetector) -> Option<ReorgDecision> {
        None
    }

    /// Rebuild an existing production under a new organization mid-run
    /// (§5.1 surgery + §5.2 update + atomic swap). Default: unsupported.
    fn reorganize_production(
        &mut self,
        _prod_idx: u32,
        _org: NetworkOrg,
    ) -> Result<ReorgOutcome, BuildError> {
        Err(BuildError("this engine does not support reorganization".into()))
    }
}

impl<N: ReteBuild> MatchEngine for SerialEngine<N> {
    fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        SerialEngine::apply_changes(self, adds, removes)
    }

    fn add_wme(&mut self, w: Wme) -> (WmeId, TimeTag) {
        self.state.store.add(w)
    }

    fn remove_wme(&mut self, id: WmeId) -> bool {
        self.state.store.remove(id).is_some()
    }

    fn run_changes(&mut self, changes: Vec<(WmeId, i32)>) -> CycleOutcome {
        self.run_cycle(changes, Phase::Match)
    }

    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        SerialEngine::add_production(self, prod, org)
    }

    fn with_store<R>(&self, f: impl FnOnce(&WmeStore) -> R) -> R {
        f(&self.state.store)
    }

    fn num_net_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn current_instantiations(&self) -> Vec<Instantiation> {
        SerialEngine::current_instantiations(self)
    }

    fn set_cost_profiling(&mut self, on: bool) {
        SerialEngine::set_cost_profiling(self, on)
    }

    fn poll_reorg(&mut self, det: &mut ChainDetector) -> Option<ReorgDecision> {
        SerialEngine::poll_reorg(self, det)
    }

    fn reorganize_production(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<ReorgOutcome, BuildError> {
        SerialEngine::reorganize_production(self, prod_idx, org)
    }
}

impl MatchEngine for JournaledSession {
    fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        JournaledSession::apply_changes(self, adds, removes)
    }

    fn add_wme(&mut self, w: Wme) -> (WmeId, TimeTag) {
        JournaledSession::add_wme(self, w)
    }

    fn remove_wme(&mut self, id: WmeId) -> bool {
        JournaledSession::remove_wme(self, id)
    }

    fn run_changes(&mut self, changes: Vec<(WmeId, i32)>) -> CycleOutcome {
        JournaledSession::run_changes(self, changes)
    }

    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        JournaledSession::add_production(self, prod, org)
    }

    fn with_store<R>(&self, f: impl FnOnce(&WmeStore) -> R) -> R {
        f(&self.eng.state.store)
    }

    fn num_net_nodes(&self) -> usize {
        use psme_rete::ReteView;
        self.eng.net.num_nodes()
    }

    fn current_instantiations(&self) -> Vec<Instantiation> {
        self.eng.current_instantiations()
    }

    fn set_cost_profiling(&mut self, on: bool) {
        self.eng.set_cost_profiling(on)
    }

    fn poll_reorg(&mut self, det: &mut ChainDetector) -> Option<ReorgDecision> {
        self.eng.poll_reorg(det)
    }

    fn reorganize_production(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<ReorgOutcome, BuildError> {
        JournaledSession::reorganize_production(self, prod_idx, org)
    }
}

impl MatchEngine for ParallelEngine {
    fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        ParallelEngine::apply_changes(self, adds, removes)
    }

    fn add_wme(&mut self, w: Wme) -> (WmeId, TimeTag) {
        self.store_mut(|s| s.add(w))
    }

    fn remove_wme(&mut self, id: WmeId) -> bool {
        self.store_mut(|s| s.remove(id).is_some())
    }

    fn run_changes(&mut self, changes: Vec<(WmeId, i32)>) -> CycleOutcome {
        ParallelEngine::run_changes(self, changes)
    }

    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        ParallelEngine::add_production(self, prod, org)
    }

    fn with_store<R>(&self, f: impl FnOnce(&WmeStore) -> R) -> R {
        ParallelEngine::with_store(self, f)
    }

    fn num_net_nodes(&self) -> usize {
        ParallelEngine::with_net(self, |n| n.num_nodes())
    }

    fn current_instantiations(&self) -> Vec<Instantiation> {
        ParallelEngine::current_instantiations(self)
    }

    fn recorder(&self) -> Option<&psme_obs::Recorder> {
        Some(&self.recorder)
    }

    fn metrics(&self) -> Option<&crate::metrics::MetricsLog> {
        Some(&self.metrics)
    }

    fn set_cost_profiling(&mut self, on: bool) {
        ParallelEngine::set_cost_profiling(self, on)
    }

    fn poll_reorg(&mut self, det: &mut ChainDetector) -> Option<ReorgDecision> {
        ParallelEngine::poll_reorg(self, det)
    }

    fn reorganize_production(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<ReorgOutcome, BuildError> {
        ParallelEngine::reorganize_production(self, prod_idx, org)
    }
}
