//! Chase–Lev work-stealing deque (hand-rolled atomics, no dependencies).
//!
//! The paper's multi-queue scheduler still serializes every cross-process
//! "steal" on the victim's spin lock (§6.1: idle processes "cycle through
//! the other processes' task queues", taking each lock as they go). The
//! modern fix is a per-worker deque where the owner pushes and pops the
//! bottom with plain loads/stores and thieves race a single CAS on the top:
//!
//! * D. Chase, Y. Lev, *Dynamic Circular Work-Stealing Deque*, SPAA 2005;
//! * N. M. Lê, A. Pop, A. Cohen, F. Zappa Nardelli, *Correct and Efficient
//!   Work-Stealing for Weak Memory Models*, PPoPP 2013 — the C11 port whose
//!   fence placement this implementation follows.
//!
//! Owner operations ([`WsDeque::push`], [`WsDeque::push_batch`],
//! [`WsDeque::pop`]) are `unsafe fn`s: the algorithm is only correct when at
//! most one thread at a time acts as the owner. [`WsDeque::steal`] is safe
//! and may be called from any number of threads concurrently.
//!
//! Two deliberate simplicity trade-offs versus a production library:
//!
//! * **Retired buffers are kept until drop.** When the ring grows, thieves
//!   may still hold the old buffer pointer, so it cannot be freed
//!   immediately. Instead of epoch reclamation the deque stashes old
//!   buffers and frees them in `Drop` — growth doubles, so total stash
//!   memory is at most ~2× the peak ring size.
//! * **The speculative steal read** copies the slot *before* the CAS that
//!   claims it and `mem::forget`s the copy when the CAS fails, exactly as
//!   crossbeam-deque does. A thief that loses the race may read bytes the
//!   owner is concurrently overwriting; the copy is discarded without being
//!   interpreted, which every practical implementation of this algorithm
//!   relies on.

use psme_rete::SpinLock;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicI64, AtomicPtr, Ordering};

/// Initial ring capacity (power of two).
const MIN_CAP: usize = 64;

/// Growable ring buffer. Slots hold bitwise copies; ownership of the value
/// at logical index `i` belongs to whoever wins `i` via the top CAS (thief)
/// or the bottom protocol (owner) — each index is consumed exactly once.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: i64,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            slots: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
            mask: cap as i64 - 1,
        }))
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Write the slot for logical index `i`.
    ///
    /// # Safety
    /// Caller must own index `i` (owner thread, `i == bottom`).
    unsafe fn write(&self, i: i64, v: T) {
        (*self.slots[(i & self.mask) as usize].get()).write(v);
    }

    /// Read a bitwise copy of the slot for logical index `i`.
    ///
    /// # Safety
    /// Caller must either own index `i` or discard the copy with
    /// `mem::forget` if its claim fails (steal path).
    unsafe fn read(&self, i: i64) -> T {
        (*self.slots[(i & self.mask) as usize].get()).assume_init_read()
    }
}

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost the race against the owner or another thief; retrying may
    /// succeed.
    Retry,
    /// One task, now owned by the caller.
    Success(T),
}

impl<T> Steal<T> {
    /// `true` for [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

/// The work-stealing deque.
pub struct WsDeque<T> {
    /// Next index a thief will claim.
    top: AtomicI64,
    /// Next index the owner will push at.
    bottom: AtomicI64,
    /// Current ring.
    buf: AtomicPtr<Buffer<T>>,
    /// Rings retired by growth; freed on drop (see module docs). Only the
    /// owner pushes here and growth is rare, so a spin lock is fine.
    retired: SpinLock<Vec<*mut Buffer<T>>>,
}

// SAFETY: the deque hands each value to exactly one consumer; `T: Send`
// suffices because values cross threads but are never aliased.
unsafe impl<T: Send> Send for WsDeque<T> {}
unsafe impl<T: Send> Sync for WsDeque<T> {}

impl<T> Default for WsDeque<T> {
    fn default() -> WsDeque<T> {
        WsDeque::new()
    }
}

impl<T> WsDeque<T> {
    /// New empty deque.
    pub fn new() -> WsDeque<T> {
        WsDeque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            buf: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
            retired: SpinLock::new(Vec::new()),
        }
    }

    /// Double the ring until `need` entries fit, copying live indices
    /// `[t, b)` over. Owner-only; returns the new buffer.
    ///
    /// # Safety
    /// Caller is the owner; `t`/`b` are the currently loaded top/bottom.
    unsafe fn grow(&self, mut a: *mut Buffer<T>, t: i64, b: i64, need: i64) -> *mut Buffer<T> {
        loop {
            let new = Buffer::alloc((*a).cap() * 2);
            for i in t..b {
                // Bitwise copy: both rings now hold the bytes, but logical
                // index `i` is still consumed exactly once (thieves that
                // loaded the old ring read the same bytes).
                (*new).write(i, (*a).read(i));
            }
            self.buf.store(new, Ordering::Release);
            self.retired.lock().0.push(a);
            a = new;
            if b + need - t <= (*a).cap() as i64 {
                return a;
            }
        }
    }

    /// Push one task at the bottom.
    ///
    /// # Safety
    /// Must only be called by the deque's owner (at most one thread at a
    /// time performs owner operations).
    pub unsafe fn push(&self, v: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut a = self.buf.load(Ordering::Relaxed);
        if b - t >= (*a).cap() as i64 {
            a = self.grow(a, t, b, 1);
        }
        (*a).write(b, v);
        // Publish: a thief that observes bottom = b+1 also observes the
        // slot write.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Push a batch at the bottom with a single publication: all slots are
    /// written first, then one release store of `bottom` makes the whole
    /// batch visible — one atomic op and one fence however large the batch.
    ///
    /// # Safety
    /// Owner-only, as [`Self::push`].
    pub unsafe fn push_batch(&self, vs: &mut Vec<T>) {
        let k = vs.len() as i64;
        if k == 0 {
            return;
        }
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut a = self.buf.load(Ordering::Relaxed);
        if b + k - t > (*a).cap() as i64 {
            a = self.grow(a, t, b, k);
        }
        for (i, v) in vs.drain(..).enumerate() {
            (*a).write(b + i as i64, v);
        }
        self.bottom.store(b + k, Ordering::Release);
    }

    /// Pop from the bottom (LIFO).
    ///
    /// # Safety
    /// Owner-only, as [`Self::push`].
    pub unsafe fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let a = self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the bottom store before the top load
        // against the mirrored pair in `steal` — the crux of the algorithm.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        match t.cmp(&b) {
            std::cmp::Ordering::Less => Some((*a).read(b)),
            std::cmp::Ordering::Equal => {
                // Last element: race thieves for it via the top CAS.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some((*a).read(b))
                } else {
                    None
                }
            }
            std::cmp::Ordering::Greater => {
                // Was empty; restore.
                self.bottom.store(b + 1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Steal from the top (FIFO). Safe from any thread.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let a = self.buf.load(Ordering::Acquire);
        // SAFETY: speculative copy; forgotten below if the claim fails.
        let v = unsafe { (*a).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(v);
            return Steal::Retry;
        }
        Steal::Success(v)
    }

    /// Racy size estimate (never negative). Exact when the deque is
    /// quiescent — which is when callers use it (cycle barrier asserts).
    pub fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Racy emptiness check (see [`Self::len_hint`]).
    pub fn is_empty_hint(&self) -> bool {
        self.len_hint() == 0
    }
}

impl<T> Drop for WsDeque<T> {
    fn drop(&mut self) {
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let a = *self.buf.get_mut();
        // SAFETY: `&mut self` means no other thread holds a reference; the
        // unconsumed indices [t, b) are dropped exactly once, then every
        // ring (current + retired) is freed.
        unsafe {
            for i in t..b {
                drop((*a).read(i));
            }
            drop(Box::from_raw(a));
            for p in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

impl<T> std::fmt::Debug for WsDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WsDeque(len≈{})", self.len_hint())
    }
}
