//! Shared task queues (§2.3, §6.1) plus a modern work-stealing scheduler.
//!
//! PSM-E holds node activations in "one or more shared task queues. Each
//! individual match process performs match by picking up a task from one of
//! these queues, processing the task and, if any new tasks are generated,
//! pushing them onto one of the queues."
//!
//! Three schedulers — the paper's two configurations, reproduced exactly,
//! plus one the 1988 hardware could not express:
//!
//! * [`Scheduler::SingleQueue`] — one central queue whose lock is the
//!   system's contention hot spot (Figures 6-1, 6-3);
//! * [`Scheduler::MultiQueue`] — one queue per match process; a process
//!   pushes/pops its own queue and, when empty, "cycles through the other
//!   processes' task queues, searching for a new task" (Figure 6-4);
//! * [`Scheduler::WorkStealing`] — per-worker Chase–Lev deques
//!   ([`crate::deque`]): the owner pushes and pops its own bottom without
//!   locks, idle workers steal from a randomized victim's top with a single
//!   CAS, and activations move in small batches (batched bottom publication,
//!   batched injector drains, steal bursts) to amortize queue traffic and
//!   cache misses. Seeds from the control thread enter through a spin-locked
//!   *injector* queue, since only the owning worker may touch a deque's
//!   bottom.
//!
//! The paper schedulers' locks are instrumented TTAS spin locks so
//! spins-per-access — the paper's contention metric — is measured, not
//! inferred. The work-stealing scheduler instead reports steal/steal-fail/
//! batch counters.
//!
//! **Thread discipline** (matters only for `WorkStealing`): for a given
//! worker index `w`, [`TaskQueues::push`], [`TaskQueues::push_batch`] and
//! [`TaskQueues::pop`] must not be called from two threads concurrently —
//! the engine guarantees this by construction (worker `w` is one OS
//! thread), and single-threaded tests satisfy it trivially.
//! [`TaskQueues::push_seed`] is the control thread's entry point and is
//! safe concurrently with everything.

use crate::deque::{Steal, WsDeque};
use psme_ops::WmeId;
use psme_rete::{Activation, SpinLock};
use std::collections::VecDeque;

/// One unit of work for a match process.
#[derive(Clone, Debug)]
pub enum Task {
    /// Push a wme change through the constant-test network.
    Alpha(WmeId, i32),
    /// A beta node activation.
    Beta(Activation),
}

/// Scheduling policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduler {
    /// One shared central queue.
    SingleQueue,
    /// Per-process queues with cycling search.
    #[default]
    MultiQueue,
    /// Per-process Chase–Lev deques with randomized stealing and batched
    /// activation transfer.
    WorkStealing,
}

/// Max tasks moved per batched operation (injector drain or steal burst).
/// Small enough to keep work spread across workers, large enough to
/// amortize the per-transfer atomics.
pub const TASK_BATCH: usize = 8;

/// Counters a worker accumulates against the queues.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Spins while acquiring a queue lock to push.
    pub push_spins: u64,
    /// Spins while acquiring a queue lock to pop.
    pub pop_spins: u64,
    /// Successful pops (tasks handed out for execution).
    pub pops: u64,
    /// Pushes (seeds, children, and batch-moved tasks).
    pub pushes: u64,
    /// Lock acquisitions that found an empty queue ("failed pop
    /// operations", §6.1); for `WorkStealing`, pop calls that found no
    /// work anywhere.
    pub failed_pops: u64,
    /// Tasks obtained from another worker's deque (`WorkStealing` only).
    pub steals: u64,
    /// Steal attempts that found the victim empty or lost the top CAS
    /// race (`WorkStealing` only).
    pub steal_fails: u64,
    /// Batched operations that moved ≥ 2 tasks at once: batched bottom
    /// publications, injector drains, steal bursts (`WorkStealing` only).
    pub batches: u64,
}

impl QueueStats {
    /// Merge another worker's counters into this one. Saturates instead of
    /// wrapping: a long run must clamp at `u64::MAX`, not report tiny
    /// wrapped totals (see `metrics::tests::merge_saturates_on_overflow`).
    pub fn merge(&mut self, o: &QueueStats) {
        self.push_spins = self.push_spins.saturating_add(o.push_spins);
        self.pop_spins = self.pop_spins.saturating_add(o.pop_spins);
        self.pops = self.pops.saturating_add(o.pops);
        self.pushes = self.pushes.saturating_add(o.pushes);
        self.failed_pops = self.failed_pops.saturating_add(o.failed_pops);
        self.steals = self.steals.saturating_add(o.steals);
        self.steal_fails = self.steal_fails.saturating_add(o.steal_fails);
        self.batches = self.batches.saturating_add(o.batches);
    }
}

enum Queues<T> {
    /// Spin-locked FIFO queues: 1 (single) or `workers` (multi).
    Locked(Vec<SpinLock<VecDeque<T>>>),
    /// One Chase–Lev deque per worker plus the control-side injector.
    Stealing { injector: SpinLock<VecDeque<T>>, deques: Vec<WsDeque<T>> },
}

/// The task-queue set for one engine.
///
/// Generic over the work item: the match engine schedules [`Task`]s (the
/// default), the serving layer schedules session ids through the same three
/// policies.
pub struct TaskQueues<T = Task> {
    q: Queues<T>,
    scheduler: Scheduler,
}

/// splitmix64 — cheap stateless mix for victim randomization.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<T> TaskQueues<T> {
    /// Build for `workers` match processes.
    pub fn new(scheduler: Scheduler, workers: usize) -> TaskQueues<T> {
        let workers = workers.max(1);
        let q = match scheduler {
            Scheduler::SingleQueue => Queues::Locked(vec![SpinLock::new(VecDeque::new())]),
            Scheduler::MultiQueue => {
                Queues::Locked((0..workers).map(|_| SpinLock::new(VecDeque::new())).collect())
            }
            Scheduler::WorkStealing => Queues::Stealing {
                injector: SpinLock::new(VecDeque::new()),
                deques: (0..workers).map(|_| WsDeque::new()).collect(),
            },
        };
        TaskQueues { q, scheduler }
    }

    /// The scheduler in use.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Number of physical worker queues (the work-stealing injector is not
    /// counted).
    pub fn num_queues(&self) -> usize {
        match &self.q {
            Queues::Locked(v) => v.len(),
            Queues::Stealing { deques, .. } => deques.len(),
        }
    }

    #[inline]
    fn home(&self, worker: usize) -> usize {
        worker % self.num_queues()
    }

    /// Seed a task from the control thread. For the locked schedulers this
    /// is exactly a [`Self::push`] as worker `worker` (preserving the
    /// paper configurations' round-robin seeding); for `WorkStealing` the
    /// seed goes to the injector, because the control thread must never
    /// touch a deque's owner end.
    pub fn push_seed(&self, worker: usize, task: T, stats: &mut QueueStats) {
        match &self.q {
            Queues::Locked(_) => self.push(worker, task, stats),
            Queues::Stealing { injector, .. } => {
                let (mut g, spins) = injector.lock();
                stats.push_spins += spins;
                stats.pushes += 1;
                g.push_back(task);
            }
        }
    }

    /// Push a task from `worker` (to its own queue/deque except under
    /// `SingleQueue`).
    pub fn push(&self, worker: usize, task: T, stats: &mut QueueStats) {
        match &self.q {
            Queues::Locked(queues) => {
                let (mut g, spins) = queues[self.home(worker)].lock();
                stats.push_spins += spins;
                stats.pushes += 1;
                g.push_back(task);
            }
            Queues::Stealing { deques, .. } => {
                // SAFETY: worker `worker` is a single thread (module-level
                // thread discipline).
                unsafe { deques[self.home(worker)].push(task) };
                stats.pushes += 1;
            }
        }
    }

    /// Push a batch of tasks from `worker`. For the locked schedulers this
    /// is a plain push loop — bit-identical behaviour and accounting to the
    /// paper configurations. For `WorkStealing` the whole batch is written
    /// and published with a single release store of the deque bottom.
    pub fn push_batch(&self, worker: usize, tasks: &mut Vec<T>, stats: &mut QueueStats) {
        match &self.q {
            Queues::Locked(_) => {
                for t in tasks.drain(..) {
                    self.push(worker, t, stats);
                }
            }
            Queues::Stealing { deques, .. } => {
                let k = tasks.len() as u64;
                if k == 0 {
                    return;
                }
                if k >= 2 {
                    stats.batches += 1;
                }
                stats.pushes += k;
                // SAFETY: thread discipline as in `push`.
                unsafe { deques[self.home(worker)].push_batch(tasks) };
            }
        }
    }

    /// Pop a task for `worker`.
    ///
    /// * Locked schedulers: own queue first, then cycle the others (§6.1).
    /// * `WorkStealing`: own deque bottom, then a batched injector drain,
    ///   then a steal burst from a randomized victim; every task beyond the
    ///   first moved by a batch lands in `worker`'s own deque.
    pub fn pop(&self, worker: usize, stats: &mut QueueStats) -> Option<T> {
        match &self.q {
            Queues::Locked(queues) => {
                let n = queues.len();
                let home = self.home(worker);
                for i in 0..n {
                    let qi = (home + i) % n;
                    let (mut g, spins) = queues[qi].lock();
                    stats.pop_spins += spins;
                    if let Some(t) = g.pop_front() {
                        stats.pops += 1;
                        return Some(t);
                    }
                    stats.failed_pops += 1;
                }
                None
            }
            Queues::Stealing { injector, deques } => {
                let home = self.home(worker);
                // 1. Own deque (lock-free LIFO).
                // SAFETY: thread discipline as in `push`.
                if let Some(t) = unsafe { deques[home].pop() } {
                    stats.pops += 1;
                    return Some(t);
                }
                // 2. Injector: drain a small batch under one lock
                //    acquisition; execute the first, keep the rest local.
                let mut moved: Vec<T> = Vec::new();
                let first = {
                    let (mut g, spins) = injector.lock();
                    stats.pop_spins += spins;
                    let first = g.pop_front();
                    if first.is_some() {
                        while moved.len() + 1 < TASK_BATCH {
                            match g.pop_front() {
                                Some(t) => moved.push(t),
                                None => break,
                            }
                        }
                    }
                    first
                };
                if let Some(t) = first {
                    if !moved.is_empty() {
                        stats.batches += 1;
                        stats.pushes += moved.len() as u64;
                        // SAFETY: thread discipline as in `push`.
                        unsafe { deques[home].push_batch(&mut moved) };
                    }
                    stats.pops += 1;
                    return Some(t);
                }
                // 3. Steal burst from a randomized victim. The mix of the
                //    worker id with its own traffic counters gives a cheap
                //    per-call pseudo-random starting point without shared
                //    RNG state.
                let n = deques.len();
                if n > 1 {
                    let r = mix64(
                        (home as u64) ^ stats.pops.rotate_left(17) ^ stats.steal_fails.rotate_left(41),
                    ) as usize;
                    for i in 0..n - 1 {
                        let victim = {
                            let v = (r + i) % (n - 1);
                            if v >= home {
                                v + 1
                            } else {
                                v
                            }
                        };
                        match deques[victim].steal() {
                            Steal::Success(first) => {
                                stats.steals += 1;
                                debug_assert!(moved.is_empty());
                                while moved.len() + 1 < TASK_BATCH {
                                    match deques[victim].steal() {
                                        Steal::Success(t) => {
                                            stats.steals += 1;
                                            moved.push(t);
                                        }
                                        _ => break,
                                    }
                                }
                                if !moved.is_empty() {
                                    stats.batches += 1;
                                    stats.pushes += moved.len() as u64;
                                    // SAFETY: thread discipline as in `push`.
                                    unsafe { deques[home].push_batch(&mut moved) };
                                }
                                stats.pops += 1;
                                return Some(first);
                            }
                            Steal::Retry | Steal::Empty => stats.steal_fails += 1,
                        }
                    }
                }
                stats.failed_pops += 1;
                None
            }
        }
    }

    /// Steal one task from this queue set on behalf of a *foreign* worker —
    /// one that owns no queue here (a worker from another shard's pool).
    ///
    /// Safe from any thread: the locked schedulers pop under their spin
    /// locks, and `WorkStealing` uses only the injector lock and the
    /// thief side of the Chase–Lev deques (never an owner end), so the
    /// module-level thread discipline is untouched. Counted as a steal in
    /// `stats` on success, a steal failure per empty source otherwise.
    pub fn steal_foreign(&self, stats: &mut QueueStats) -> Option<T> {
        match &self.q {
            Queues::Locked(queues) => {
                for q in queues {
                    let (mut g, spins) = q.lock();
                    stats.pop_spins += spins;
                    if let Some(t) = g.pop_front() {
                        stats.pops += 1;
                        stats.steals += 1;
                        return Some(t);
                    }
                    stats.steal_fails += 1;
                }
                None
            }
            Queues::Stealing { injector, deques } => {
                {
                    let (mut g, spins) = injector.lock();
                    stats.pop_spins += spins;
                    if let Some(t) = g.pop_front() {
                        stats.pops += 1;
                        stats.steals += 1;
                        return Some(t);
                    }
                }
                stats.steal_fails += 1;
                for d in deques {
                    match d.steal() {
                        Steal::Success(t) => {
                            stats.pops += 1;
                            stats.steals += 1;
                            return Some(t);
                        }
                        Steal::Retry | Steal::Empty => stats.steal_fails += 1,
                    }
                }
                None
            }
        }
    }

    /// Are all queues empty? (Control-side check; racy by nature, callers
    /// rely on the outstanding-task counter for the real barrier.)
    pub fn all_empty(&self) -> bool {
        match &self.q {
            Queues::Locked(queues) => queues.iter().all(|q| {
                let (g, _) = q.lock();
                g.is_empty()
            }),
            Queues::Stealing { injector, deques } => {
                injector.lock().0.is_empty() && deques.iter().all(|d| d.is_empty_hint())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::Side;

    fn beta(n: u32) -> Task {
        Task::Beta(Activation {
            node: n,
            side: Side::Left,
            token: psme_rete::Token::empty(),
            delta: 1,
        })
    }

    fn node_of(t: Option<Task>) -> u32 {
        match t {
            Some(Task::Beta(a)) => a.node,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_queue_is_fifo() {
        let q = TaskQueues::new(Scheduler::SingleQueue, 4);
        assert_eq!(q.num_queues(), 1);
        let mut s = QueueStats::default();
        q.push(0, beta(1), &mut s);
        q.push(3, beta(2), &mut s);
        assert_eq!(node_of(q.pop(2, &mut s)), 1);
        assert_eq!(node_of(q.pop(1, &mut s)), 2);
        assert!(q.pop(0, &mut s).is_none());
        assert_eq!(s.pops, 2);
        assert_eq!(s.pushes, 2);
        assert!(s.failed_pops >= 1);
    }

    #[test]
    fn multi_queue_prefers_own_then_steals() {
        let q = TaskQueues::new(Scheduler::MultiQueue, 3);
        assert_eq!(q.num_queues(), 3);
        let mut s = QueueStats::default();
        q.push(0, beta(10), &mut s);
        q.push(1, beta(11), &mut s);
        // Worker 1 pops its own first.
        assert_eq!(node_of(q.pop(1, &mut s)), 11);
        // Worker 1's queue now empty: steals worker 0's task.
        assert_eq!(node_of(q.pop(1, &mut s)), 10);
        assert!(q.all_empty());
    }

    #[test]
    fn failed_pops_count_per_queue_scanned() {
        let q: TaskQueues = TaskQueues::new(Scheduler::MultiQueue, 4);
        let mut s = QueueStats::default();
        assert!(q.pop(0, &mut s).is_none());
        assert_eq!(s.failed_pops, 4, "scanned all four empty queues");
    }

    #[test]
    fn work_stealing_own_deque_is_lifo() {
        let q = TaskQueues::new(Scheduler::WorkStealing, 4);
        assert_eq!(q.num_queues(), 4);
        let mut s = QueueStats::default();
        q.push(2, beta(1), &mut s);
        q.push(2, beta(2), &mut s);
        assert_eq!(node_of(q.pop(2, &mut s)), 2, "owner pops the bottom");
        assert_eq!(node_of(q.pop(2, &mut s)), 1);
        assert!(q.pop(2, &mut s).is_none());
        assert_eq!(s.pops, 2);
        assert_eq!(s.pushes, 2);
        assert_eq!(s.failed_pops, 1);
        assert!(q.all_empty());
    }

    #[test]
    fn work_stealing_steals_from_victims_and_counts() {
        let q = TaskQueues::new(Scheduler::WorkStealing, 3);
        let mut s0 = QueueStats::default();
        for i in 0..20 {
            q.push(0, beta(i), &mut s0);
        }
        // Worker 1 has nothing: must steal from worker 0 (FIFO from the
        // top), bringing a burst into its own deque.
        let mut s1 = QueueStats::default();
        assert_eq!(node_of(q.pop(1, &mut s1)), 0, "steals the oldest task");
        assert!(s1.steals >= 1, "steal counted");
        assert!(s1.batches >= 1, "burst moved as a batch");
        // Everything is popped exactly once across both workers.
        let mut seen = vec![0u32; 20];
        seen[0] += 1;
        loop {
            let before = seen.iter().sum::<u32>();
            if let Some(t) = q.pop(1, &mut s1) {
                seen[node_of(Some(t)) as usize] += 1;
            }
            if let Some(t) = q.pop(0, &mut s0) {
                seen[node_of(Some(t)) as usize] += 1;
            }
            if seen.iter().sum::<u32>() == before {
                break;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        assert_eq!(s0.pops + s1.pops, 20);
        assert!(q.all_empty());
    }

    #[test]
    fn work_stealing_seeds_flow_through_injector_in_batches() {
        let q = TaskQueues::new(Scheduler::WorkStealing, 2);
        let mut cs = QueueStats::default();
        for i in 0..TASK_BATCH as u32 + 3 {
            q.push_seed(i as usize, beta(i), &mut cs);
        }
        assert_eq!(cs.pushes, TASK_BATCH as u64 + 3);
        let mut s = QueueStats::default();
        // First pop drains a batch: one executed, TASK_BATCH-1 moved local.
        assert!(q.pop(0, &mut s).is_some());
        assert_eq!(s.batches, 1);
        assert_eq!(s.pushes, TASK_BATCH as u64 - 1);
        let mut n = 1;
        while q.pop(0, &mut s).is_some() {
            n += 1;
        }
        assert_eq!(n, TASK_BATCH + 3);
        assert_eq!(s.pops, n as u64);
        assert!(q.all_empty());
    }

    #[test]
    fn push_batch_publishes_all_tasks() {
        for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
            let q = TaskQueues::new(sched, 3);
            let mut s = QueueStats::default();
            let mut batch: Vec<Task> = (0..10).map(beta).collect();
            q.push_batch(1, &mut batch, &mut s);
            assert!(batch.is_empty());
            assert_eq!(s.pushes, 10);
            let mut n = 0;
            while q.pop(1, &mut s).is_some() {
                n += 1;
            }
            assert_eq!(n, 10, "{sched:?}");
            if sched == Scheduler::WorkStealing {
                assert_eq!(s.batches, 1, "one batched publication");
            } else {
                assert_eq!(s.batches, 0, "paper schedulers unchanged");
            }
        }
    }

    #[test]
    fn foreign_steals_drain_every_scheduler_exactly_once() {
        for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
            let q = TaskQueues::new(sched, 3);
            let mut s = QueueStats::default();
            for i in 0..12 {
                // Mix owner pushes and control-side seeds so both the
                // deques and the injector hold work under `WorkStealing`.
                if i % 2 == 0 {
                    q.push(i as usize % 3, beta(i), &mut s);
                } else {
                    q.push_seed(i as usize, beta(i), &mut s);
                }
            }
            let mut thief = QueueStats::default();
            let mut seen = vec![0u32; 12];
            while let Some(t) = q.steal_foreign(&mut thief) {
                seen[node_of(Some(t)) as usize] += 1;
            }
            assert!(seen.iter().all(|&c| c == 1), "{sched:?}: {seen:?}");
            assert_eq!(thief.steals, 12, "{sched:?}");
            assert_eq!(thief.pops, 12, "{sched:?}");
            assert!(q.all_empty(), "{sched:?}");
            assert!(q.pop(0, &mut s).is_none(), "{sched:?}");
        }
    }

    #[test]
    fn queue_stats_merge_saturates() {
        let mut a = QueueStats { pushes: u64::MAX - 1, steals: u64::MAX, ..Default::default() };
        let b = QueueStats { pushes: 10, steals: 3, pops: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.pushes, u64::MAX, "saturates, never wraps");
        assert_eq!(a.steals, u64::MAX);
        assert_eq!(a.pops, 7);
    }

    #[test]
    fn concurrent_producers_consumers_preserve_tasks() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        for sched in [Scheduler::MultiQueue, Scheduler::WorkStealing] {
            let q = Arc::new(TaskQueues::new(sched, 4));
            let done = Arc::new(AtomicU64::new(0));
            let popped = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for w in 0..2 {
                let q = q.clone();
                let done = done.clone();
                handles.push(std::thread::spawn(move || {
                    let mut s = QueueStats::default();
                    for i in 0..5_000 {
                        q.push(w, beta(i), &mut s);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for w in 2..4 {
                let q = q.clone();
                let done = done.clone();
                let popped = popped.clone();
                handles.push(std::thread::spawn(move || {
                    let mut s = QueueStats::default();
                    loop {
                        if q.pop(w, &mut s).is_some() {
                            popped.fetch_add(1, Ordering::SeqCst);
                        } else if done.load(Ordering::SeqCst) == 2 {
                            // The failed pop above may predate the last
                            // pushes; re-check now that all pushes are
                            // visible. The re-pop must count its task, not
                            // discard it.
                            match q.pop(w, &mut s) {
                                Some(_) => {
                                    popped.fetch_add(1, Ordering::SeqCst);
                                }
                                None => break,
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(popped.load(Ordering::SeqCst), 10_000, "{sched:?}");
        }
    }
}
