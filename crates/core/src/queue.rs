//! Shared task queues (§2.3, §6.1).
//!
//! PSM-E holds node activations in "one or more shared task queues. Each
//! individual match process performs match by picking up a task from one of
//! these queues, processing the task and, if any new tasks are generated,
//! pushing them onto one of the queues."
//!
//! Two schedulers, matching the paper's two configurations:
//!
//! * [`Scheduler::SingleQueue`] — one central queue whose lock is the
//!   system's contention hot spot (Figures 6-1, 6-3);
//! * [`Scheduler::MultiQueue`] — one queue per match process; a process
//!   pushes/pops its own queue and, when empty, "cycles through the other
//!   processes' task queues, searching for a new task" (Figure 6-4).
//!
//! All locks are instrumented TTAS spin locks so spins-per-access — the
//! paper's contention metric — is measured, not inferred.

use psme_ops::WmeId;
use psme_rete::{Activation, SpinLock};
use std::collections::VecDeque;

/// One unit of work for a match process.
#[derive(Clone, Debug)]
pub enum Task {
    /// Push a wme change through the constant-test network.
    Alpha(WmeId, i32),
    /// A beta node activation.
    Beta(Activation),
}

/// Scheduling policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduler {
    /// One shared central queue.
    SingleQueue,
    /// Per-process queues with cycling search.
    #[default]
    MultiQueue,
}

/// Counters a worker accumulates against the queues.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Spins while acquiring a queue lock to push.
    pub push_spins: u64,
    /// Spins while acquiring a queue lock to pop.
    pub pop_spins: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes.
    pub pushes: u64,
    /// Lock acquisitions that found an empty queue ("failed pop
    /// operations", §6.1).
    pub failed_pops: u64,
}

impl QueueStats {
    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, o: &QueueStats) {
        self.push_spins += o.push_spins;
        self.pop_spins += o.pop_spins;
        self.pops += o.pops;
        self.pushes += o.pushes;
        self.failed_pops += o.failed_pops;
    }
}

/// The task-queue set: 1 (single) or `workers` (multi) spin-locked deques.
pub struct TaskQueues {
    queues: Vec<SpinLock<VecDeque<Task>>>,
    scheduler: Scheduler,
}

impl TaskQueues {
    /// Build for `workers` match processes.
    pub fn new(scheduler: Scheduler, workers: usize) -> TaskQueues {
        let n = match scheduler {
            Scheduler::SingleQueue => 1,
            Scheduler::MultiQueue => workers.max(1),
        };
        TaskQueues {
            queues: (0..n).map(|_| SpinLock::new(VecDeque::new())).collect(),
            scheduler,
        }
    }

    /// The scheduler in use.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Number of physical queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    #[inline]
    fn home(&self, worker: usize) -> usize {
        match self.scheduler {
            Scheduler::SingleQueue => 0,
            Scheduler::MultiQueue => worker % self.queues.len(),
        }
    }

    /// Push a task from `worker` (to its own queue under `MultiQueue`).
    pub fn push(&self, worker: usize, task: Task, stats: &mut QueueStats) {
        let (mut g, spins) = self.queues[self.home(worker)].lock();
        stats.push_spins += spins;
        stats.pushes += 1;
        g.push_back(task);
    }

    /// Pop a task for `worker`: own queue first, then cycle the others.
    pub fn pop(&self, worker: usize, stats: &mut QueueStats) -> Option<Task> {
        let n = self.queues.len();
        let home = self.home(worker);
        for i in 0..n {
            let qi = (home + i) % n;
            let (mut g, spins) = self.queues[qi].lock();
            stats.pop_spins += spins;
            if let Some(t) = g.pop_front() {
                stats.pops += 1;
                return Some(t);
            }
            stats.failed_pops += 1;
        }
        None
    }

    /// Are all queues empty? (Control-side check; racy by nature, callers
    /// rely on the outstanding-task counter for the real barrier.)
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| {
            let (g, _) = q.lock();
            g.is_empty()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::Side;

    fn beta(n: u32) -> Task {
        Task::Beta(Activation {
            node: n,
            side: Side::Left,
            token: psme_rete::Token::empty(),
            delta: 1,
        })
    }

    #[test]
    fn single_queue_is_fifo() {
        let q = TaskQueues::new(Scheduler::SingleQueue, 4);
        assert_eq!(q.num_queues(), 1);
        let mut s = QueueStats::default();
        q.push(0, beta(1), &mut s);
        q.push(3, beta(2), &mut s);
        match q.pop(2, &mut s) {
            Some(Task::Beta(a)) => assert_eq!(a.node, 1),
            other => panic!("{other:?}"),
        }
        match q.pop(1, &mut s) {
            Some(Task::Beta(a)) => assert_eq!(a.node, 2),
            other => panic!("{other:?}"),
        }
        assert!(q.pop(0, &mut s).is_none());
        assert_eq!(s.pops, 2);
        assert_eq!(s.pushes, 2);
        assert!(s.failed_pops >= 1);
    }

    #[test]
    fn multi_queue_prefers_own_then_steals() {
        let q = TaskQueues::new(Scheduler::MultiQueue, 3);
        assert_eq!(q.num_queues(), 3);
        let mut s = QueueStats::default();
        q.push(0, beta(10), &mut s);
        q.push(1, beta(11), &mut s);
        // Worker 1 pops its own first.
        match q.pop(1, &mut s) {
            Some(Task::Beta(a)) => assert_eq!(a.node, 11),
            other => panic!("{other:?}"),
        }
        // Worker 1's queue now empty: steals worker 0's task.
        match q.pop(1, &mut s) {
            Some(Task::Beta(a)) => assert_eq!(a.node, 10),
            other => panic!("{other:?}"),
        }
        assert!(q.all_empty());
    }

    #[test]
    fn failed_pops_count_per_queue_scanned() {
        let q = TaskQueues::new(Scheduler::MultiQueue, 4);
        let mut s = QueueStats::default();
        assert!(q.pop(0, &mut s).is_none());
        assert_eq!(s.failed_pops, 4, "scanned all four empty queues");
    }

    #[test]
    fn concurrent_producers_consumers_preserve_tasks() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let q = Arc::new(TaskQueues::new(Scheduler::MultiQueue, 4));
        let done = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..2 {
            let q = q.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut s = QueueStats::default();
                for i in 0..5_000 {
                    q.push(w, beta(i), &mut s);
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for w in 2..4 {
            let q = q.clone();
            let done = done.clone();
            let popped = popped.clone();
            handles.push(std::thread::spawn(move || {
                let mut s = QueueStats::default();
                loop {
                    if q.pop(w, &mut s).is_some() {
                        popped.fetch_add(1, Ordering::SeqCst);
                    } else if done.load(Ordering::SeqCst) == 2 {
                        // The failed pop above may predate the last pushes;
                        // re-check now that all pushes are visible. The
                        // re-pop must count its task, not discard it.
                        match q.pop(w, &mut s) {
                            Some(_) => {
                                popped.fetch_add(1, Ordering::SeqCst);
                            }
                            None => break,
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(popped.load(Ordering::SeqCst), 10_000);
    }
}
