//! # psme-core — the PSM-E parallel match engine
//!
//! The paper's primary contribution: a parallel production-system matcher
//! exploiting parallelism "at the granularity of node activations" (§2.3),
//! with
//!
//! * instrumented **task queues** — one shared central queue, one queue
//!   per match process with cycling search, or per-worker Chase–Lev
//!   work-stealing deques with batched activation transfer
//!   ([`queue`], [`deque`]),
//! * long-lived **match processes** coordinated with the control thread by
//!   an outstanding-task counter and epoch condvars ([`engine`]),
//! * hashed memories with per-line locks (from `psme-rete`), so
//!   simultaneous left/right activations at a node are linearizable,
//! * **parallel run-time production addition**: the §5.1 compile followed
//!   by the §5.2 state update executed through the same task queues
//!   (Figure 6-9 measures exactly this),
//! * full **instrumentation**: spins per queue access, failed pops, memory
//!   lock spins, bucket-access histograms, tasks/cycle ([`metrics`]).
//!
//! The engine is validated differentially: for any workload the conflict
//! set must equal both the serial engine's and the brute-force oracle's
//! (see `tests/parallel_differential.rs`).
//!
//! ```
//! use psme_core::{EngineConfig, ParallelEngine, Scheduler};
//! use psme_ops::{parse_program, parse_wme, ClassRegistry};
//! use psme_rete::{NetworkOrg, ReteNetwork};
//! use std::sync::Arc;
//!
//! let mut classes = ClassRegistry::new();
//! let prods = parse_program(
//!     "(literalize block color) (literalize hand state)
//!      (p ready (block ^color blue) (hand ^state free) --> (halt))",
//!     &mut classes,
//! ).unwrap();
//! let mut net = ReteNetwork::new();
//! for p in prods {
//!     net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
//! }
//! let mut engine = ParallelEngine::new(net, EngineConfig {
//!     workers: 3,
//!     scheduler: Scheduler::MultiQueue,
//!     ..Default::default()
//! });
//! let out = engine.apply_changes(
//!     vec![
//!         parse_wme("(block ^color blue)", &classes).unwrap(),
//!         parse_wme("(hand ^state free)", &classes).unwrap(),
//!     ],
//!     vec![],
//! );
//! assert_eq!(out.cs.added.len(), 1);
//! ```

pub mod deque;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod traits;

pub use deque::{Steal, WsDeque};
pub use engine::{EngineConfig, ParallelEngine};
pub use metrics::{CycleMetrics, MetricsLog, WorkerStats};
pub use queue::{QueueStats, Scheduler, Task, TaskQueues, TASK_BATCH};
pub use traits::MatchEngine;
