//! Differential testing of the parallel engine: for any workload, worker
//! count, scheduler, and memory-table size, the conflict set after every
//! cycle must equal the serial engine's and the brute-force oracle's.

use psme_core::{EngineConfig, MatchEngine, ParallelEngine, Scheduler};
use psme_ops::{Instantiation, WmeId};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{naive, NetworkOrg, ReteNetwork, SerialEngine};
use std::collections::HashSet;
use std::sync::Arc;

fn inst_set(v: Vec<Instantiation>) -> HashSet<Instantiation> {
    v.into_iter().collect()
}

fn build_net(sys: &psme_rete::testgen::GeneratedSystem) -> ReteNetwork {
    let mut net = ReteNetwork::new();
    for p in &sys.productions {
        net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    }
    net
}

fn stream_test(seed: u64, cfg: EngineConfig, batches: usize) {
    let gen_cfg = GenConfig::default();
    let sys = random_system(seed, gen_cfg);
    let mut par = ParallelEngine::new(build_net(&sys), cfg);
    let mut ser = SerialEngine::new(build_net(&sys));
    let mut rng = XorShift::new(seed ^ 0xAB_CDEF);
    for batch in 0..batches {
        let n_add = rng.below(5) + 1;
        let adds: Vec<_> = (0..n_add).map(|_| sys.random_wme(&mut rng)).collect();
        let alive: Vec<WmeId> = ser.state.store.iter_alive().map(|(id, _)| id).collect();
        let mut removes = Vec::new();
        if !alive.is_empty() && rng.chance(55) {
            removes.push(alive[rng.below(alive.len())]);
        }
        let po = par.apply_changes(adds.clone(), removes.clone());
        let so = ser.apply_changes(adds, removes);
        assert_eq!(
            inst_set(po.cs.added.clone()),
            inst_set(so.cs.added.clone()),
            "added diverged: seed {seed} batch {batch} ({cfg:?})"
        );
        assert_eq!(
            inst_set(po.cs.removed.clone()),
            inst_set(so.cs.removed.clone()),
            "removed diverged: seed {seed} batch {batch} ({cfg:?})"
        );
        let expected = naive::match_all(sys.productions.iter(), &ser.state.store);
        assert_eq!(
            inst_set(par.current_instantiations()),
            expected,
            "oracle diverged: seed {seed} batch {batch} ({cfg:?})"
        );
    }
}

#[test]
fn multi_queue_matches_serial_and_oracle() {
    for seed in 0..12 {
        stream_test(
            seed,
            EngineConfig { workers: 4, scheduler: Scheduler::MultiQueue, ..Default::default() },
            6,
        );
    }
}

#[test]
fn single_queue_matches_serial_and_oracle() {
    for seed in 20..30 {
        stream_test(
            seed,
            EngineConfig { workers: 4, scheduler: Scheduler::SingleQueue, ..Default::default() },
            6,
        );
    }
}

#[test]
fn one_line_memory_maximum_contention() {
    // Every token in one memory line: the line lock serializes everything
    // but results must be identical.
    for seed in 40..46 {
        stream_test(
            seed,
            EngineConfig {
                workers: 4,
                scheduler: Scheduler::MultiQueue,
                memory_lines: 1,
                ..Default::default()
            },
            5,
        );
    }
}

#[test]
fn worker_counts_sweep() {
    for &workers in &[1usize, 2, 3, 8, 13] {
        stream_test(
            100 + workers as u64,
            EngineConfig { workers, scheduler: Scheduler::MultiQueue, ..Default::default() },
            4,
        );
    }
}

#[test]
fn parallel_runtime_addition_matches_serial() {
    for seed in 200..210 {
        let sys = random_system(seed, GenConfig::default());
        let (first, second) = sys.productions.split_at(sys.productions.len() / 2);

        let mut net_p = ReteNetwork::new();
        let mut net_s = ReteNetwork::new();
        for p in first {
            net_p.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            net_s.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut par = ParallelEngine::new(
            net_p,
            EngineConfig { workers: 3, scheduler: Scheduler::MultiQueue, ..Default::default() },
        );
        let mut ser = SerialEngine::new(net_s);

        let mut rng = XorShift::new(seed ^ 0x77);
        for _ in 0..3 {
            let adds: Vec<_> = (0..4).map(|_| sys.random_wme(&mut rng)).collect();
            par.apply_changes(adds.clone(), vec![]);
            ser.apply_changes(adds, vec![]);
        }
        // The update phase runs through the parallel task queues.
        for p in second {
            let po = par.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            let so = ser.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            assert_eq!(
                inst_set(po.cs.added.clone()),
                inst_set(so.cs.added.clone()),
                "update-phase CS diverged at seed {seed}"
            );
        }
        let expected = naive::match_all(sys.productions.iter(), &ser.state.store);
        assert_eq!(inst_set(par.current_instantiations()), expected, "seed {seed}");

        // Further cycles stay consistent.
        for _ in 0..3 {
            let adds: Vec<_> = (0..2).map(|_| sys.random_wme(&mut rng)).collect();
            let alive: Vec<WmeId> = ser.state.store.iter_alive().map(|(id, _)| id).collect();
            let removes = vec![alive[rng.below(alive.len())]];
            par.apply_changes(adds.clone(), removes.clone());
            ser.apply_changes(adds, removes);
            let expected = naive::match_all(sys.productions.iter(), &ser.state.store);
            assert_eq!(inst_set(par.current_instantiations()), expected, "seed {seed} post");
        }
    }
}

#[test]
fn metrics_are_collected() {
    let sys = random_system(7, GenConfig::default());
    let mut par = ParallelEngine::new(
        build_net(&sys),
        EngineConfig {
            workers: 2,
            scheduler: Scheduler::SingleQueue,
            bucket_histograms: true,
            ..Default::default()
        },
    );
    let mut rng = XorShift::new(9);
    let adds: Vec<_> = (0..6).map(|_| sys.random_wme(&mut rng)).collect();
    let out = par.apply_changes(adds, vec![]);
    let m = par.last_cycle_metrics().unwrap();
    assert_eq!(m.tasks, out.tasks);
    assert!(m.tasks >= 6, "at least the alpha tasks run");
    assert!(m.wall_ns > 0);
    assert!(!m.left_bucket_accesses.is_empty());
    assert!(m.queue.pushes >= m.tasks, "every task was pushed");
    assert_eq!(m.queue.pops, m.tasks);
}

#[test]
fn engine_drops_cleanly_mid_workload() {
    let sys = random_system(3, GenConfig::default());
    let mut par = ParallelEngine::new(
        build_net(&sys),
        EngineConfig { workers: 4, ..Default::default() },
    );
    let mut rng = XorShift::new(1);
    let adds: Vec<_> = (0..5).map(|_| sys.random_wme(&mut rng)).collect();
    par.apply_changes(adds, vec![]);
    drop(par); // must join all workers without hanging
}

#[test]
fn match_engine_trait_is_interchangeable() {
    fn drive<E: MatchEngine>(e: &mut E, sys: &psme_rete::testgen::GeneratedSystem) -> usize {
        let mut rng = XorShift::new(42);
        let adds: Vec<_> = (0..6).map(|_| sys.random_wme(&mut rng)).collect();
        e.apply_changes(adds, vec![]);
        e.with_store(|s| assert_eq!(s.live_count(), 6));
        assert!(e.num_net_nodes() > 1);
        e.current_instantiations().len()
    }
    let sys = random_system(11, GenConfig::default());
    let mut ser = SerialEngine::new(build_net(&sys));
    let mut par = ParallelEngine::new(
        build_net(&sys),
        EngineConfig { workers: 2, ..Default::default() },
    );
    assert_eq!(drive(&mut ser, &sys), drive(&mut par, &sys));
}
