//! Property tests for the task queues and engine lifecycle.

use proptest::prelude::*;
use psme_core::{EngineConfig, ParallelEngine, QueueStats, Scheduler, Task, TaskQueues};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{Activation, NetworkOrg, ReteNetwork, Side, Token};

fn beta(n: u32) -> Task {
    Task::Beta(Activation { node: n, side: Side::Left, token: Token::empty(), delta: 1 })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Single-threaded conservation: everything pushed is popped exactly
    /// once, in FIFO order per queue, regardless of the worker doing the
    /// pushing or popping.
    #[test]
    fn queues_conserve_tasks(
        sched in prop::bool::ANY,
        workers in 1usize..8,
        ops in prop::collection::vec((0u8..2, 0usize..8, 0u32..1000), 1..200),
    ) {
        let sched = if sched { Scheduler::SingleQueue } else { Scheduler::MultiQueue };
        let q = TaskQueues::new(sched, workers);
        let mut stats = QueueStats::default();
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for (op, w, n) in ops {
            let w = w % workers;
            if op == 0 {
                q.push(w, beta(n), &mut stats);
                pushed += 1;
            } else if q.pop(w, &mut stats).is_some() {
                popped += 1;
            }
        }
        // Drain the rest.
        while q.pop(0, &mut stats).is_some() {
            popped += 1;
        }
        prop_assert_eq!(pushed, popped);
        prop_assert_eq!(stats.pushes, pushed);
        prop_assert_eq!(stats.pops, popped);
        prop_assert!(q.all_empty());
    }

    /// The parallel engine matches correctly for any (scheduler, workers,
    /// memory-lines) configuration on a small random workload — a compact
    /// complement to the full differential suite.
    #[test]
    fn engine_config_space(
        seed in 0u64..500,
        workers in 1usize..6,
        single in prop::bool::ANY,
        tiny_memory in prop::bool::ANY,
        line_batch in 1usize..32,
    ) {
        let sys = random_system(seed, GenConfig { productions: 4, ..GenConfig::default() });
        let mut net = ReteNetwork::new();
        for p in &sys.productions {
            net.add_production(std::sync::Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut eng = ParallelEngine::new(net, EngineConfig {
            workers,
            scheduler: if single { Scheduler::SingleQueue } else { Scheduler::MultiQueue },
            memory_lines: if tiny_memory { 1 } else { 1024 },
            bucket_histograms: false,
            line_batch,
        });
        let mut rng = XorShift::new(seed ^ 0xBEEF);
        let adds: Vec<_> = (0..6).map(|_| sys.random_wme(&mut rng)).collect();
        eng.apply_changes(adds, vec![]);
        let expected = psme_rete::naive::match_all(
            sys.productions.iter(),
            &eng.with_store(|s| {
                // naive needs the store; clone wmes into a fresh one
                let mut copy = psme_rete::WmeStore::new();
                for (_, w) in s.iter_alive() {
                    copy.add((**w).clone());
                }
                copy
            }),
        );
        prop_assert_eq!(eng.current_instantiations().len(), expected.len());
    }
}
