//! Property tests for the Chase–Lev work-stealing deque.
//!
//! Two angles: (1) a single-owner op sequence must behave exactly like a
//! `VecDeque` model (pop is LIFO at the bottom, steal is FIFO at the top),
//! and (2) a multi-thread stress over randomized interleavings must hand
//! out every pushed value exactly once — no loss, no duplication — across
//! the owner and concurrent stealers.

use proptest::prelude::*;
use psme_core::{Steal, WsDeque};
use psme_rete::testgen::XorShift;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    PushBatch(Vec<u64>),
    Pop,
    StealSelf,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, any::<u64>(), prop::collection::vec(any::<u64>(), 0..12)).prop_map(
        |(sel, v, batch)| match sel {
            0..=2 => Op::Push(v),
            3 => Op::PushBatch(batch),
            4..=6 => Op::Pop,
            _ => Op::StealSelf,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// With a single owner thread (steals issued from the same thread are
    /// safe), any op sequence matches the VecDeque model: push/push_batch
    /// append at the bottom, pop takes from the bottom, steal takes from
    /// the top. With no concurrency, steal must never report `Retry`.
    #[test]
    fn single_owner_matches_vecdeque_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let d: WsDeque<u64> = WsDeque::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    // Safety: this test thread is the only owner.
                    unsafe { d.push(v) };
                    model.push_back(v);
                }
                Op::PushBatch(vs) => {
                    let mut batch = vs.clone();
                    // Safety: single owner thread.
                    unsafe { d.push_batch(&mut batch) };
                    prop_assert!(batch.is_empty(), "push_batch drains its input");
                    model.extend(vs);
                }
                Op::Pop => {
                    // Safety: single owner thread.
                    let got = unsafe { d.pop() };
                    prop_assert_eq!(got, model.pop_back());
                }
                Op::StealSelf => match d.steal() {
                    Steal::Success(v) => prop_assert_eq!(Some(v), model.pop_front()),
                    Steal::Empty => prop_assert!(model.is_empty()),
                    Steal::Retry => prop_assert!(false, "Retry without concurrency"),
                },
            }
            prop_assert_eq!(d.is_empty_hint(), model.is_empty());
        }
        // Drain what's left from the bottom: exact reverse of the model.
        let mut rest = Vec::new();
        // Safety: single owner thread.
        while let Some(v) = unsafe { d.pop() } {
            rest.push(v);
        }
        let expected: Vec<u64> = model.iter().rev().copied().collect();
        prop_assert_eq!(rest, expected);
    }
}

/// Pushing far past the initial capacity forces ring growth mid-stream;
/// order must survive the buffer swap, including with a consumed prefix.
#[test]
fn growth_preserves_order() {
    let d: WsDeque<u64> = WsDeque::new();
    // Consume a prefix first so the live region wraps the ring.
    for i in 0..40u64 {
        unsafe { d.push(i) };
    }
    for i in 0..40u64 {
        assert_eq!(d.steal(), Steal::Success(i));
    }
    for i in 0..5000u64 {
        unsafe { d.push(i) };
    }
    assert_eq!(d.len_hint(), 5000);
    for i in (2500..5000).rev() {
        assert_eq!(unsafe { d.pop() }, Some(i));
    }
    for i in 0..2500 {
        assert_eq!(d.steal(), Steal::Success(i));
    }
    assert!(d.is_empty_hint());
}

/// Unconsumed elements are dropped exactly once when the deque is dropped
/// (exercises the retired-buffer reclamation path after growth).
#[test]
fn drop_runs_once_per_live_element() {
    use std::sync::atomic::AtomicU64;
    static DROPS: AtomicU64 = AtomicU64::new(0);
    struct D;
    impl Drop for D {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    {
        let d: WsDeque<D> = WsDeque::new();
        for _ in 0..300 {
            unsafe { d.push(D) };
        }
        for _ in 0..100 {
            drop(unsafe { d.pop() });
        }
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), 300);
}

/// The core linearizability claim, brute-forced: one owner interleaving
/// pushes (single and batched) with pops while stealers hammer the top.
/// Every pushed value must surface exactly once somewhere. 1000 seeded
/// iterations vary the op mix, sizes, and thread timing.
#[test]
fn concurrent_steals_take_each_task_exactly_once() {
    const ITERS: u64 = 1000;
    for iter in 0..ITERS {
        let mut rng = XorShift::new(0xD00D_5EED ^ iter);
        let total = 16 + rng.below(112) as u64; // 16..128 values
        let stealers = 1 + rng.below(3); // 1..=3 stealer threads
        let d: WsDeque<u64> = WsDeque::new();
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..stealers {
                handles.push(s.spawn({
                    let d = &d;
                    let done = &done;
                    move || {
                        let mut got = Vec::new();
                        let mut lrng = XorShift::new(iter.rotate_left(17) ^ t as u64);
                        loop {
                            match d.steal() {
                                Steal::Success(v) => got.push(v),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => {
                                    if done.load(Ordering::Acquire) && d.is_empty_hint() {
                                        break;
                                    }
                                    // Back off a little, randomly.
                                    for _ in 0..lrng.below(8) {
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                        got
                    }
                }));
            }

            // Owner: push everything in randomized chunks, interleaving pops.
            let mut owner_got = Vec::new();
            let mut next = 0u64;
            while next < total {
                if rng.chance(30) {
                    let k = (1 + rng.below(7)) as u64;
                    let mut batch: Vec<u64> =
                        (next..(next + k).min(total)).collect();
                    next += batch.len() as u64;
                    // Safety: this closure body is the sole owner thread.
                    unsafe { d.push_batch(&mut batch) };
                } else {
                    // Safety: sole owner thread.
                    unsafe { d.push(next) };
                    next += 1;
                }
                if rng.chance(35) {
                    // Safety: sole owner thread.
                    if let Some(v) = unsafe { d.pop() } {
                        owner_got.push(v);
                    }
                }
            }
            // Drain the remainder from the owner end.
            // Safety: sole owner thread.
            while let Some(v) = unsafe { d.pop() } {
                owner_got.push(v);
            }
            done.store(true, Ordering::Release);

            let mut all = owner_got;
            for h in handles {
                all.extend(h.join().unwrap());
            }
            all.sort_unstable();
            let expected: Vec<u64> = (0..total).collect();
            assert_eq!(
                all, expected,
                "iteration {iter}: lost or duplicated tasks (total {total}, {stealers} stealers)"
            );
        });
    }
}
