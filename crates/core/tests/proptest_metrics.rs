//! Property tests for the metrics log and its JSON export.

use proptest::prelude::*;
use psme_core::{CycleMetrics, MetricsLog};
use psme_obs::Json;

fn log_of(task_counts: &[u64]) -> MetricsLog {
    let mut log = MetricsLog::default();
    for (i, &t) in task_counts.iter().enumerate() {
        log.cycles.push(CycleMetrics { cycle: i as u64, tasks: t, ..Default::default() });
    }
    log
}

#[test]
fn empty_log_exports_cleanly() {
    let log = MetricsLog::default();
    assert!(log.tasks_per_cycle_histogram(100).is_empty());
    assert!(log.left_access_distribution().is_empty());
    assert!(log.right_access_distribution().is_empty());
    let j = log.to_json();
    assert_eq!(j.get("total_tasks").and_then(|v| v.as_u64()), Some(0));
    // Round-trips through the strict parser even with nothing in it.
    let back = Json::parse(&j.pretty()).unwrap();
    assert_eq!(back.get("per_cycle").and_then(|a| a.as_arr()).map(|a| a.len()), Some(0));
}

#[test]
fn json_strings_with_quotes_and_backslashes_survive() {
    // Production names can contain arbitrary characters (chunks are
    // gensym'd; OPS5 symbols allow almost anything) — the writer must
    // escape and the parser must restore them exactly.
    for name in [r#"p*"quoted""#, r"back\slash", "tab\there", "newline\nend", "unit\u{1f}sep"] {
        let doc = Json::obj([("name", Json::from(name))]);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back.get("name").and_then(|v| v.as_str()), Some(name));
        let back_pretty = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(back_pretty.get("name").and_then(|v| v.as_str()), Some(name));
    }
}

#[test]
fn float_metrics_never_emit_nan() {
    // Ratios are 0/0-prone; the exporter must map non-finite to null, so
    // the artifact stays machine-parseable.
    let text = Json::obj([
        ("a", Json::float(1.5)),
        ("b", Json::float(f64::NAN)),
        ("c", Json::float(f64::INFINITY)),
    ])
    .to_string();
    assert!(!text.to_lowercase().contains("nan") && !text.contains("inf"), "{text}");
    assert_eq!(text.matches("null").count(), 2, "{text}");
    assert!(Json::parse(&text).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Figures 6-11/6-12 histograms are percentages of cycles: for any
    /// non-empty log the bucket percentages must account for every cycle,
    /// i.e. sum to ~100.
    #[test]
    fn histogram_percentages_sum_to_100(
        tasks in prop::collection::vec(0u64..5_000, 1..200),
        bucket in 1u64..600,
    ) {
        let log = log_of(&tasks);
        let hist = log.tasks_per_cycle_histogram(bucket);
        let total: f64 = hist.iter().map(|&(_, pct)| pct).sum();
        prop_assert!((total - 100.0).abs() < 1e-6, "bucket percentages sum to {total}");
        // Bucket starts are aligned and strictly increasing.
        for w in hist.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for &(start, _) in &hist {
            prop_assert_eq!(start % bucket, 0);
        }
    }

    /// The access distributions are percentages of touched buckets — same
    /// invariant, either side.
    #[test]
    fn access_distributions_sum_to_100(
        accesses in prop::collection::vec(0u64..12, 1..64),
    ) {
        let mut log = MetricsLog::default();
        log.cycles.push(CycleMetrics {
            left_bucket_accesses: accesses.clone(),
            right_bucket_accesses: accesses.clone(),
            ..Default::default()
        });
        for dist in [log.left_access_distribution(), log.right_access_distribution()] {
            let total: f64 = dist.iter().map(|&(_, pct)| pct).sum();
            if accesses.iter().any(|&a| a > 0) {
                prop_assert!((total - 100.0).abs() < 1e-6);
            } else {
                prop_assert!(dist.is_empty());
            }
        }
    }
}
