//! Cross-scheduler differential suite: the gate for any scheduler change.
//!
//! For a grid of `testgen::random_system` seeds × every [`Scheduler`]
//! variant × {1, 2, 4, 8} workers, the conflict set after **every** cycle
//! must be identical to the serial reference engine's, and the full
//! instantiation set must match the brute-force naive-matcher oracle. A
//! scheduler is free to reorder tasks arbitrarily (the work-stealing owner
//! end is even LIFO); it is never free to change what matches.

use psme_core::{EngineConfig, ParallelEngine, Scheduler};
use psme_ops::{Instantiation, WmeId};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{naive, NetworkOrg, ReteNetwork, SerialEngine};
use std::collections::HashSet;
use std::sync::Arc;

const ALL_SCHEDULERS: [Scheduler; 3] =
    [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing];
const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn inst_set(v: Vec<Instantiation>) -> HashSet<Instantiation> {
    v.into_iter().collect()
}

fn build_net(sys: &psme_rete::testgen::GeneratedSystem) -> ReteNetwork {
    let mut net = ReteNetwork::new();
    for p in &sys.productions {
        net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    }
    net
}

/// Stream random wme batches through a parallel engine and the serial
/// reference, checking the per-cycle CS delta and the oracle after every
/// cycle.
fn stream_test(seed: u64, cfg: EngineConfig, batches: usize) {
    let sys = random_system(seed, GenConfig::default());
    let mut par = ParallelEngine::new(build_net(&sys), cfg);
    let mut ser = SerialEngine::new(build_net(&sys));
    let mut rng = XorShift::new(seed ^ 0x5C4E_D01E);
    for batch in 0..batches {
        let n_add = rng.below(5) + 1;
        let adds: Vec<_> = (0..n_add).map(|_| sys.random_wme(&mut rng)).collect();
        let alive: Vec<WmeId> = ser.state.store.iter_alive().map(|(id, _)| id).collect();
        let mut removes = Vec::new();
        if !alive.is_empty() && rng.chance(55) {
            removes.push(alive[rng.below(alive.len())]);
        }
        let po = par.apply_changes(adds.clone(), removes.clone());
        let so = ser.apply_changes(adds, removes);
        assert_eq!(
            inst_set(po.cs.added.clone()),
            inst_set(so.cs.added.clone()),
            "added diverged: seed {seed} batch {batch} ({cfg:?})"
        );
        assert_eq!(
            inst_set(po.cs.removed.clone()),
            inst_set(so.cs.removed.clone()),
            "removed diverged: seed {seed} batch {batch} ({cfg:?})"
        );
        let expected = naive::match_all(sys.productions.iter(), &ser.state.store);
        assert_eq!(
            inst_set(par.current_instantiations()),
            expected,
            "oracle diverged: seed {seed} batch {batch} ({cfg:?})"
        );
    }
}

fn grid_for(scheduler: Scheduler, seed_base: u64) {
    for (i, &workers) in WORKER_GRID.iter().enumerate() {
        for s in 0..3u64 {
            stream_test(
                seed_base + 10 * i as u64 + s,
                EngineConfig { workers, scheduler, ..Default::default() },
                4,
            );
        }
    }
}

#[test]
fn single_queue_grid_matches_serial_and_oracle() {
    grid_for(Scheduler::SingleQueue, 1_000);
}

#[test]
fn multi_queue_grid_matches_serial_and_oracle() {
    grid_for(Scheduler::MultiQueue, 2_000);
}

#[test]
fn work_stealing_grid_matches_serial_and_oracle() {
    grid_for(Scheduler::WorkStealing, 3_000);
}

/// Same seeds across all three schedulers: every scheduler must agree with
/// the serial engine, hence (transitively) with each other — checked
/// directly here so a divergence names the scheduler pair.
#[test]
fn schedulers_agree_with_each_other() {
    for seed in [7u64, 42, 4_711] {
        let sys = random_system(seed, GenConfig::default());
        let mut engines: Vec<ParallelEngine> = ALL_SCHEDULERS
            .iter()
            .map(|&scheduler| {
                ParallelEngine::new(
                    build_net(&sys),
                    EngineConfig { workers: 4, scheduler, ..Default::default() },
                )
            })
            .collect();
        let mut rng = XorShift::new(seed ^ 0x00DD_5EED);
        for _ in 0..4 {
            let adds: Vec<_> = (0..3).map(|_| sys.random_wme(&mut rng)).collect();
            let outs: Vec<_> =
                engines.iter_mut().map(|e| e.apply_changes(adds.clone(), vec![])).collect();
            for (sched, o) in ALL_SCHEDULERS.iter().zip(&outs).skip(1) {
                assert_eq!(
                    inst_set(o.cs.added.clone()),
                    inst_set(outs[0].cs.added.clone()),
                    "{sched:?} vs {:?} (seed {seed})",
                    ALL_SCHEDULERS[0]
                );
            }
        }
    }
}

/// Mid-run production addition (§5.1 network surgery + §5.2 parallel state
/// update) under work stealing: the engine compiles new productions while
/// live tokens exist, runs the update phase through the deques, and must
/// land on the same conflict set as the serial engine.
#[test]
fn work_stealing_runtime_addition_matches_serial() {
    for seed in 300..306 {
        let sys = random_system(seed, GenConfig::default());
        let (first, second) = sys.productions.split_at(sys.productions.len() / 2);

        let mut net_p = ReteNetwork::new();
        let mut net_s = ReteNetwork::new();
        for p in first {
            net_p.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            net_s.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut par = ParallelEngine::new(
            net_p,
            EngineConfig { workers: 4, scheduler: Scheduler::WorkStealing, ..Default::default() },
        );
        let mut ser = SerialEngine::new(net_s);

        let mut rng = XorShift::new(seed ^ 0x77);
        for _ in 0..3 {
            let adds: Vec<_> = (0..4).map(|_| sys.random_wme(&mut rng)).collect();
            par.apply_changes(adds.clone(), vec![]);
            ser.apply_changes(adds, vec![]);
        }
        for p in second {
            let po = par.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            let so = ser.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            assert_eq!(
                inst_set(po.cs.added.clone()),
                inst_set(so.cs.added.clone()),
                "update-phase CS diverged at seed {seed}"
            );
        }
        let expected = naive::match_all(sys.productions.iter(), &ser.state.store);
        assert_eq!(inst_set(par.current_instantiations()), expected, "seed {seed}");

        // Further cycles stay consistent after the surgery.
        for _ in 0..3 {
            let adds: Vec<_> = (0..2).map(|_| sys.random_wme(&mut rng)).collect();
            let alive: Vec<WmeId> = ser.state.store.iter_alive().map(|(id, _)| id).collect();
            let removes = vec![alive[rng.below(alive.len())]];
            par.apply_changes(adds.clone(), removes.clone());
            ser.apply_changes(adds, removes);
            let expected = naive::match_all(sys.productions.iter(), &ser.state.store);
            assert_eq!(inst_set(par.current_instantiations()), expected, "seed {seed} post");
        }
    }
}

/// Steal counters surface through the metrics pipeline: zero under the
/// paper schedulers, live under work stealing once real contention for
/// tasks exists.
#[test]
fn steal_counters_flow_into_metrics() {
    let sys = random_system(11, GenConfig::default());
    let mut rng = XorShift::new(13);
    let adds: Vec<_> = (0..8).map(|_| sys.random_wme(&mut rng)).collect();

    let mut multi = ParallelEngine::new(
        build_net(&sys),
        EngineConfig { workers: 4, scheduler: Scheduler::MultiQueue, ..Default::default() },
    );
    multi.apply_changes(adds.clone(), vec![]);
    let m = multi.last_cycle_metrics().unwrap();
    assert_eq!(m.queue.steals, 0, "paper scheduler never reports steals");
    assert_eq!(m.queue.batches, 0, "paper scheduler never batches");
    assert_eq!(m.counters.get(psme_obs::Counter::Steals), 0);

    let mut ws = ParallelEngine::new(
        build_net(&sys),
        EngineConfig { workers: 4, scheduler: Scheduler::WorkStealing, ..Default::default() },
    );
    let out = ws.apply_changes(adds, vec![]);
    let m = ws.last_cycle_metrics().unwrap();
    assert_eq!(m.queue.pops, m.tasks, "every task was handed out exactly once");
    assert_eq!(m.tasks, out.tasks);
    assert!(m.queue.pushes >= m.tasks, "seeds + children + batch moves");
    assert!(m.queue.batches >= 1, "seed batch drained through the injector");
    assert_eq!(
        m.counters.get(psme_obs::Counter::Steals),
        m.queue.steals,
        "obs counters mirror queue stats"
    );
    assert_eq!(m.counters.get(psme_obs::Counter::Batches), m.queue.batches);
    // JSON export carries the new fields.
    let j = m.to_json();
    assert_eq!(j.get("steals").and_then(|v| v.as_u64()), Some(m.queue.steals));
    assert_eq!(j.get("batches").and_then(|v| v.as_u64()), Some(m.queue.batches));
}
