//! # psme-bench — harnesses regenerating every table and figure of §5/§6
//!
//! Each table/figure is a `harness = false` bench target (run them all with
//! `cargo bench`, or one with `cargo bench -p psme-bench --bench fig_6_1`).
//! Shared machinery lives here: the benchmark task instances, trace capture
//! through the serial engine, simulator sweeps over 1–13 match processes,
//! and plain-text table rendering. Paper reference values are printed next
//! to the measured ones; EXPERIMENTS.md records both.

use psme_obs::Json;
use psme_rete::{CycleTrace, Phase, RunTrace, SerialEngine};
use psme_sim::{simulate_run, total_seconds, SimConfig, SimScheduler};
use psme_soar::SoarTask;
use psme_tasks::{
    cypress_sub, eight_puzzle, run_serial, scrambled, strips, CypressConfig, RunMode, RunReport,
    StripsConfig,
};

/// The process counts the paper sweeps.
pub const WORKER_SWEEP: &[usize] = &[1, 2, 3, 4, 6, 8, 9, 10, 11, 12, 13];

/// The three benchmark task instances (sized so a full bench run stays in
/// seconds; relative magnitudes follow the paper: Cypress ≫ the others).
pub fn paper_tasks() -> Vec<(&'static str, SoarTask)> {
    vec![
        ("eight-puzzle", eight_puzzle(&scrambled(8, 1))),
        (
            "strips",
            strips(&StripsConfig {
                rooms: 12,
                closed_doors: vec![2, 5, 8],
                start: 0,
                target: 6,
                chords: false,
            }),
        ),
        ("cypress-sub", cypress_sub(&CypressConfig { roots: 2 })),
    ]
}

/// Run a task in a mode on the serial engine with trace capture.
pub fn capture(task: &SoarTask, mode: RunMode) -> (RunReport, RunTrace) {
    let (report, engine) = run_serial(task, mode, true);
    (report, engine.trace)
}

/// Like [`capture`], but keep the whole engine — callers that profile
/// per-node need the network to resolve production names.
pub fn capture_engine(task: &SoarTask, mode: RunMode) -> (RunReport, SerialEngine) {
    run_serial(task, mode, true)
}

/// Match-phase cycles of a run trace.
pub fn match_cycles(trace: &RunTrace) -> Vec<CycleTrace> {
    trace.phase_cycles(Phase::Match).cloned().collect()
}

/// Update-phase cycles of a run trace.
pub fn update_cycles(trace: &RunTrace) -> Vec<CycleTrace> {
    trace.phase_cycles(Phase::Update).cloned().collect()
}

/// Simulated uniprocessor seconds for a cycle set.
pub fn uniproc_seconds(cycles: &[CycleTrace]) -> f64 {
    total_seconds(&simulate_run(cycles, &SimConfig::new(1, SimScheduler::Multi)))
}

/// Speedups across the worker sweep for a cycle set.
pub fn speedup_sweep(cycles: &[CycleTrace], sched: SimScheduler) -> Vec<(usize, f64)> {
    let uni = total_seconds(&simulate_run(cycles, &SimConfig::new(1, sched)));
    WORKER_SWEEP
        .iter()
        .map(|&w| {
            let t = total_seconds(&simulate_run(cycles, &SimConfig::new(w, sched)));
            (w, uni / t.max(1e-12))
        })
        .collect()
}

/// Queue-lock spins per task across the sweep (Figure 6-3's metric).
pub fn spins_sweep(cycles: &[CycleTrace], sched: SimScheduler) -> Vec<(usize, f64)> {
    WORKER_SWEEP
        .iter()
        .map(|&w| {
            let rs = simulate_run(cycles, &SimConfig::new(w, sched));
            let tasks: u64 = rs.iter().map(|r| r.tasks).sum();
            let spins: u64 = rs.iter().map(|r| r.queue_spins).sum();
            (w, spins as f64 / tasks.max(1) as f64)
        })
        .collect()
}

/// Render a plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let s: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>width$}", width = w)).collect();
        println!("  {}", s.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Render an ASCII curve `(x, y)` with a caption.
pub fn print_curve(title: &str, points: &[(usize, f64)], y_label: &str) {
    println!("\n== {title} ==");
    let max = points.iter().map(|&(_, y)| y).fold(1.0f64, f64::max);
    for &(x, y) in points {
        let bar = "#".repeat(((y / max) * 40.0).round() as usize);
        println!("  {x:>3} | {bar} {y:.2} {y_label}");
    }
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// A `(workers, value)` sweep as a JSON array of objects.
pub fn sweep_json(sweep: &[(usize, f64)], value_key: &str) -> Json {
    Json::arr(sweep.iter().map(|&(w, v)| {
        Json::obj([("workers", Json::from(w as u64)), (value_key, Json::float(v))])
    }))
}

/// Write `BENCH_<name>.json` (under `$PSME_BENCH_DIR` or the current
/// directory) and report where it went. Artifact failures must never sink
/// a bench run, so errors are printed rather than propagated.
pub fn emit_artifact(name: &str, doc: &Json) {
    match psme_obs::write_artifact(name, doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nartifact {name}: write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_serializes_and_parses_back() {
        let doc = Json::obj([
            ("figure", Json::from("6-1")),
            ("speedups", sweep_json(&[(1, 1.0), (13, 7.25)], "speedup")),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).expect("exporter output must be well-formed JSON");
        let arr = back.get("speedups").unwrap();
        assert_eq!(arr.at(0).unwrap().get("workers").unwrap().as_u64(), Some(1));
        assert_eq!(arr.at(1).unwrap().get("speedup").unwrap().as_f64(), Some(7.25));
    }
}
