//! Figure 6-6: tasks in the system over time within one large cycle.

use psme_bench::*;
use psme_sim::{simulate_cycle, SimConfig, SimScheduler};
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-6: Eight-puzzle — tasks in system vs time (one large cycle, 11 procs)");
    println!("paper: an early burst (peak ≈140 at t=100) then a long 1–5-task tail (long chain)");
    let (_, task) = paper_tasks().remove(0);
    let (_, trace) = capture(&task, RunMode::WithoutChunking);
    let cycles = match_cycles(&trace);
    let big = cycles.iter().max_by_key(|c| c.len()).expect("has cycles");
    println!("chosen cycle: {} tasks", big.len());
    let mut cfg = SimConfig::new(11, SimScheduler::Multi);
    cfg.timeline = true;
    let r = simulate_cycle(big, &cfg);
    println!("makespan {:.0} µs; timeline (100 µs units, capped at 25 as in the paper):", r.makespan_us);
    let step = (r.timeline.len() / 40).max(1);
    for chunk in r.timeline.chunks(step) {
        let (t, _) = chunk[0];
        let level = chunk.iter().map(|&(_, n)| n).max().unwrap_or(0).min(25);
        println!("  {:>6.0} | {}", t / 100.0, "*".repeat(level as usize));
    }
}
