//! Offered-load sweeps under **open-loop** arrivals: throughput, tail
//! latency, and shed rate as the arrival rate crosses saturation.
//!
//! Closed-loop serving benchmarks (`serve_throughput`, `shard_scaling`)
//! self-throttle: every in-flight session is one the server already
//! admitted, so overload never happens and the shed path never fires.
//! This harness fixes the *arrival process* instead — Poisson session
//! opens at a configured rate, fired whether or not the server keeps up —
//! and sweeps that rate through the saturation knee. Two parts, one
//! artifact (`BENCH_open_loop.json`):
//!
//! * **DES sweep (the gated curve)** — per-session decision-cycle service
//!   times from real captured eight-puzzle traces (costed on the NS32032
//!   model, as in `shard_scaling`), run through
//!   [`psme_serve::simulate_serve_open`]: deterministic Poisson arrivals
//!   plus deterministic jitter into the sharded admission model. The
//!   serving capacity is **calibrated** from the workload
//!   (`workers_total / mean_session_seconds`) and the sweep offers
//!   multiples of it. Expected open-loop shape, asserted here and
//!   re-gated by `scripts/check.sh` from the committed artifact: no
//!   shedding well below the knee, shed rate monotone non-decreasing
//!   past it (and strictly positive at 3x), throughput plateauing at
//!   capacity, p99 sojourn at the knee within a calibrated bound.
//! * **Host loopback measurement** — a real [`psme_net::NetServer`] on
//!   `127.0.0.1` driven by [`psme_net::run_open_loop`] with the paper
//!   session mix (eight-puzzle auto-run, STRIPS with learning on, and
//!   credited Cypress sessions that toggle chunking on mid-run over the
//!   `Learn` frame), at a rate below and far above saturation. Wall-clock
//!   numbers on a shared host are noise; only accounting identities are
//!   asserted (every offered session resolves exactly once), the curves
//!   are recorded for inspection.

use psme_bench::*;
use psme_core::Scheduler;
use psme_net::{
    paper_apps, poisson_arrivals, run_open_loop, LoadConfig, LoadReport, MixEntry, NetServer,
};
use psme_obs::{Json, Quantiles};
use psme_serve::{simulate_serve_open, DesConfig, DesOpenConfig, ServeConfig, ShardConfig};
use psme_sim::{simulate_cycle, SimConfig, SimScheduler};
use psme_tasks::{eight_puzzle, scrambled, RunMode};

/// Sessions offered per DES sweep point (tiled over 8 workloads).
const DES_SESSIONS: usize = 160;

/// Offered load as multiples of the calibrated capacity; 1.0 is the knee.
const MULTIPLES: [f64; 7] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

/// Dispatch overhead as a fraction of the mean cycle (below the bus-knee
/// regime: admission, not the bus, is what saturates here).
const OVERHEAD_FRACTION: f64 = 0.25;

/// p99 sojourn bound at the knee, in units of the mean *session* service
/// time. The admission queue is bounded (table + depth per shard), so
/// even at saturation a completed session waits at most the backlog ahead
/// of it: (table_capacity + admission_depth) sessions across
/// `shards * workers` servers, ~8 service times here. 12x leaves margin
/// for the burst the Poisson schedule actually dealt.
const KNEE_P99_BOUND_MULT: f64 = 12.0;

/// DES admission geometry (global bounds, ceil-split across shards).
const SHARDS: usize = 2;
const WORKERS_PER_SHARD: usize = 2;
const TABLE_CAPACITY: usize = 16;
const ADMISSION_DEPTH: usize = 16;

/// Per-cycle service seconds for one session workload (captured trace,
/// costed at one match process under work stealing).
fn service_vector(seed: u64, learning: bool) -> Vec<f64> {
    let task = eight_puzzle(&scrambled(3, seed));
    let mode = if learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
    let (_, trace) = capture(&task, mode);
    trace
        .cycles
        .iter()
        .map(|c| simulate_cycle(c, &SimConfig::new(1, SimScheduler::WorkStealing)).makespan_us * 1e-6)
        .collect()
}

fn host_run(addr: &str, rate: f64, sessions: usize, seed: u64, prefix: &str) -> LoadReport {
    let cfg = LoadConfig {
        rate,
        sessions,
        seed,
        mix: vec![
            MixEntry {
                app: "eight-puzzle".into(),
                weight: 0.5,
                learning: false,
                grant: None,
                learn_on_first_park: false,
            },
            MixEntry {
                app: "strips".into(),
                weight: 0.3,
                learning: true,
                grant: None,
                learn_on_first_park: false,
            },
            // Credited sessions driven over the wire, chunking toggled on
            // at the first park — mid-run learning through `Learn` frames.
            MixEntry {
                app: "cypress-sub".into(),
                weight: 0.2,
                learning: false,
                grant: Some(6),
                learn_on_first_park: true,
            },
        ],
        name_prefix: prefix.to_string(),
    };
    let r = run_open_loop(addr, &cfg).expect("open-loop run against loopback server");
    assert_eq!(
        r.completed + r.shed + r.refused,
        r.offered,
        "every offered session resolves exactly once at rate {rate}"
    );
    assert!(r.completed > 0, "some sessions complete at rate {rate}");
    println!(
        "host {rate:>7.1}/s offered: {} completed, {} shed ({:.1}%), {} refused, \
         {:.1} sessions/s, sojourn p50 {:.2} ms p99 {:.2} ms",
        r.completed,
        r.shed,
        r.shed_rate * 100.0,
        r.refused,
        r.sessions_per_sec,
        r.sojourn_ns.p50 * 1e-6,
        r.sojourn_ns.p99 * 1e-6,
    );
    r
}

fn main() {
    println!("open_loop: offered-load sweeps across the saturation knee");

    // ---- Part 1: the deterministic DES sweep. ----
    let workloads: Vec<Vec<f64>> = (0..8).map(|seed| service_vector(seed, seed % 4 == 0)).collect();
    let mean_cycle =
        workloads.iter().flatten().sum::<f64>() / workloads.iter().map(Vec::len).sum::<usize>() as f64;
    let overhead = mean_cycle * OVERHEAD_FRACTION;
    let sessions: Vec<Vec<f64>> =
        (0..DES_SESSIONS).map(|i| workloads[i % workloads.len()].clone()).collect();
    // Calibrated capacity: total service (cycles + dispatch overhead)
    // spread over every worker in the fleet.
    let mean_session: f64 = sessions
        .iter()
        .map(|s| s.iter().sum::<f64>() + s.len() as f64 * overhead)
        .sum::<f64>()
        / DES_SESSIONS as f64;
    let capacity = (SHARDS * WORKERS_PER_SHARD) as f64 / mean_session;
    println!(
        "calibration: mean session {:.2} ms -> capacity {:.1} sessions/s \
         ({SHARDS} shards x {WORKERS_PER_SHARD} workers)",
        mean_session * 1e3,
        capacity
    );

    let cfg = DesConfig { workers: WORKERS_PER_SHARD, slice: 1, dispatch_overhead: overhead };
    let mut sweep_points: Vec<Json> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut shed_curve: Vec<(f64, f64)> = Vec::new();
    let mut knee_p99 = 0.0f64;
    let mut plateau = (0.0f64, 0.0f64); // sessions/sec at 1.5x and 3x
    for &m in &MULTIPLES {
        let rate = capacity * m;
        let arrivals = poisson_arrivals(rate, DES_SESSIONS, 0xA11CE ^ m.to_bits());
        let r = simulate_serve_open(
            &sessions,
            &arrivals,
            &cfg,
            &DesOpenConfig {
                shards: SHARDS,
                steal: true,
                table_capacity: TABLE_CAPACITY,
                admission_depth: ADMISSION_DEPTH,
                jitter: mean_cycle,
                seed: 0xBEEF,
            },
        );
        let q = Quantiles::from_samples(&r.sojourn);
        let shed_rate = r.shed as f64 / DES_SESSIONS as f64;
        if m == 1.0 {
            knee_p99 = q.p99;
        }
        if m == 1.5 {
            plateau.0 = r.sessions_per_sec;
        }
        if m == 3.0 {
            plateau.1 = r.sessions_per_sec;
        }
        shed_curve.push((m, shed_rate));
        rows.push(vec![
            format!("{m:.2}x"),
            f2(rate),
            f2(r.sessions_per_sec),
            r.completed.to_string(),
            r.shed.to_string(),
            format!("{:.1}%", shed_rate * 100.0),
            format!("{:.2}", q.p50 * 1e3),
            format!("{:.2}", q.p99 * 1e3),
            format!("{:.2}", q.p999 * 1e3),
        ]);
        sweep_points.push(Json::obj([
            ("offered_multiple", Json::float(m)),
            ("offered_rate", Json::float(rate)),
            ("sessions_per_sec", Json::float(r.sessions_per_sec)),
            ("completed", Json::from(r.completed as u64)),
            ("shed", Json::from(r.shed as u64)),
            ("shed_rate", Json::float(shed_rate)),
            ("sojourn_p50_s", Json::float(q.p50)),
            ("sojourn_p99_s", Json::float(q.p99)),
            ("sojourn_p999_s", Json::float(q.p999)),
            ("cross_shard_steals", Json::from(r.cross_shard_steals)),
        ]));
    }
    print_table(
        "DES offered-load sweep (160 sessions, 2 shards x 2 workers)",
        &["offered", "rate/s", "done/s", "done", "shed", "shed%", "p50 ms", "p99 ms", "p999 ms"],
        &rows,
    );

    // Gates (all deterministic; check.sh re-checks them from the JSON).
    assert_eq!(shed_curve[0].1, 0.0, "no shedding at 0.25x capacity");
    for w in shed_curve.windows(2) {
        if w[0].0 >= 1.0 {
            assert!(
                w[1].1 >= w[0].1,
                "shed rate must be monotone past the knee: {:.3} at {:.2}x -> {:.3} at {:.2}x",
                w[0].1,
                w[0].0,
                w[1].1,
                w[1].0
            );
        }
    }
    let last = shed_curve.last().unwrap();
    assert!(last.1 > 0.0, "open-loop overload at 3x capacity must shed");
    assert!(
        plateau.1 <= plateau.0 * 1.25,
        "throughput must plateau past saturation: {:.2}/s at 1.5x vs {:.2}/s at 3x",
        plateau.0,
        plateau.1
    );
    let knee_bound = mean_session * KNEE_P99_BOUND_MULT;
    println!(
        "\ngate: knee p99 sojourn {:.2} ms (bound {:.2} ms = {KNEE_P99_BOUND_MULT}x mean session); \
         shed {:.1}% at 3x",
        knee_p99 * 1e3,
        knee_bound * 1e3,
        last.1 * 100.0
    );
    assert!(
        knee_p99 <= knee_bound,
        "p99 sojourn at the calibrated knee ({:.4}s) must stay under {KNEE_P99_BOUND_MULT}x \
         the mean session time ({:.4}s)",
        knee_p99,
        knee_bound
    );

    // ---- Part 2: the host loopback measurement. ----
    let serve_cfg = ServeConfig {
        workers: 2,
        scheduler: Scheduler::WorkStealing,
        table_capacity: 8,
        admission_depth: 8,
        shard: ShardConfig { shards: 2, ..Default::default() },
        ..Default::default()
    };
    let server = NetServer::start("127.0.0.1:0", &serve_cfg, paper_apps(), 1 << 16)
        .expect("bind loopback server");
    let addr = server.local_addr().to_string();
    let below = host_run(&addr, 60.0, 48, 7, "lo");
    let above = host_run(&addr, 1500.0, 48, 11, "hi");
    let reports = server.finish();
    let served: usize = reports.iter().map(|(_, r)| r.sessions.len()).sum();
    assert_eq!(
        served,
        below.completed + below.shed + above.completed + above.shed,
        "server-side session reports match the client-side ledger"
    );

    emit_artifact(
        "open_loop",
        &Json::obj([
            ("figure", Json::from("open-loop")),
            (
                "title",
                Json::from("Open-loop offered-load sweep: throughput, tail latency, shed rate"),
            ),
            (
                "des",
                Json::obj([
                    ("sessions", Json::from(DES_SESSIONS as u64)),
                    ("shards", Json::from(SHARDS as u64)),
                    ("workers_per_shard", Json::from(WORKERS_PER_SHARD as u64)),
                    ("table_capacity", Json::from(TABLE_CAPACITY as u64)),
                    ("admission_depth", Json::from(ADMISSION_DEPTH as u64)),
                    ("mean_session_s", Json::float(mean_session)),
                    ("capacity_sessions_per_sec", Json::float(capacity)),
                    ("knee_multiple", Json::float(1.0)),
                    ("sweep", Json::arr(sweep_points)),
                    (
                        "gate",
                        Json::obj([
                            ("knee_p99_s", Json::float(knee_p99)),
                            ("knee_p99_bound_s", Json::float(knee_bound)),
                            ("shed_rate_at_max", Json::float(last.1)),
                            ("monotone_from_multiple", Json::float(1.0)),
                        ]),
                    ),
                ]),
            ),
            (
                "host",
                Json::obj([
                    (
                        "mix",
                        Json::from(
                            "eight-puzzle 0.5 auto; strips 0.3 learning; \
                             cypress-sub 0.2 credited, learn-on-first-park",
                        ),
                    ),
                    (
                        "runs",
                        Json::arr([below, above].iter().map(LoadReport::to_json)),
                    ),
                ]),
            ),
        ]),
    );
}
