//! Ablation: hashed memories vs a single memory line (the paper's §6.1
//! motivation for hashing the token memories — "hashing the contents of the
//! associated memory nodes, instead of storing them in linear lists,
//! reduces the number of comparisons performed during a node-activation").

use psme_bench::*;
use psme_rete::{ReteNetwork, SerialEngine};

fn main() {
    println!("Ablation: hashed token memories (4096 lines) vs one line (linear memories)");
    let mut rows = Vec::new();
    for (name, task) in paper_tasks().into_iter().take(2) {
        for lines in [4096usize, 1] {
            let mut agent_engine = SerialEngine::with_memory(ReteNetwork::new(), lines);
            agent_engine.capture = true;
            let mut agent = task.agent(agent_engine);
            agent.learning = false;
            let t0 = std::time::Instant::now();
            let stop = agent.run(200);
            let wall = t0.elapsed();
            // Opposite-memory entries scanned per two-input activation.
            let mut scanned = 0u64;
            let mut beta = 0u64;
            for c in &agent.engine.trace.cycles {
                for t in &c.tasks {
                    if t.kind != psme_rete::TaskKind::Alpha {
                        scanned += t.scanned as u64;
                        beta += 1;
                    }
                }
            }
            rows.push(vec![
                name.to_string(),
                format!("{lines}"),
                format!("{stop:?}"),
                format!("{:.2}", scanned as f64 / beta.max(1) as f64),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
            ]);
        }
    }
    print_table(
        "comparisons per activation",
        &["task", "memory lines", "stop", "scanned/activation", "host wall (ms)"],
        &rows,
    );
    println!("\nshape check: one line ⇒ every activation scans every token (linear memories).");
}
