//! Figure 6-9: speedups in the chunk state-update phase (§5.2).

use psme_bench::*;
use psme_sim::SimScheduler;
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-9: Speedups in the update phase, multiple task queues");
    println!("paper: the highest speedups in the system (≈8–12x; uniproc 16.0/39.9/85.15 s)");
    for (name, task) in paper_tasks() {
        let (report, trace) = capture(&task, RunMode::DuringChunking);
        let cycles = update_cycles(&trace);
        if cycles.is_empty() {
            println!("\n{name}: no chunks built — nothing to update");
            continue;
        }
        println!(
            "\n{name}: {} chunks, update phase simulated uniproc {:.2} s",
            report.stats.chunks_built,
            uniproc_seconds(&cycles)
        );
        let sweep = speedup_sweep(&cycles, SimScheduler::Multi);
        print_curve(&format!("{name} — update-phase speedup"), &sweep, "x");
    }
}
