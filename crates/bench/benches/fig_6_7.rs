//! Figure 6-7: the long-chain production (monitor-strips-state).

use psme_bench::*;
use psme_rete::{NetworkOrg, ReteNetwork};

fn main() {
    println!("Figure 6-7: The long-chain production");
    println!("paper: monitor-strips-state has 43 CEs, producing a 43-deep join chain");
    let (_, task) = paper_tasks().remove(1);
    let monitor = task
        .productions
        .iter()
        .find(|p| p.name == psme_ops::intern("monitor-strips-state"))
        .expect("monitor production");
    println!("\nmonitor-strips-state: {} CEs", monitor.ce_count_flat());
    let mut net = ReteNetwork::new();
    net.add_production(monitor.clone(), NetworkOrg::Linear).unwrap();
    let stats = net.stats();
    println!("linear network: {} join nodes, chain depth {}", stats.join_nodes, stats.max_chain_depth);
    println!("\nfirst CEs of the production (cf. the paper's excerpt):");
    for ce in monitor.ces.iter().take(8) {
        println!("   {ce}");
    }
    println!("   … ({} CEs total)", monitor.ce_count_flat());
}
