//! Figure 6-3: task-queue contention (spins/task) with increasing processes.

use psme_bench::*;
use psme_sim::SimScheduler;
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-3: Task-queue contention, single queue");
    println!("paper: spins/task rises steeply and at a similar rate in all three tasks");
    for (name, task) in paper_tasks() {
        let (_, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        let sweep = spins_sweep(&cycles, SimScheduler::Single);
        print_curve(&format!("{name} — queue spins per task"), &sweep, "spins/task");
    }
    println!("\nmultiple task queues for comparison (paper: reduced to ≈2–3 spins/task at 13):");
    for (name, task) in paper_tasks() {
        let (_, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        let multi = spins_sweep(&cycles, SimScheduler::Multi);
        println!("  {name}: spins/task at 13 processes = {:.2}", multi.last().unwrap().1);
    }
}
