//! Figure 6-3: task-queue contention (spins/task) with increasing processes.

use psme_bench::*;
use psme_obs::Json;
use psme_sim::SimScheduler;
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-3: Task-queue contention, single queue");
    println!("paper: spins/task rises steeply and at a similar rate in all three tasks");
    let mut tasks_json: Vec<(String, Json)> = Vec::new();
    for (name, task) in paper_tasks() {
        let (_, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        let sweep = spins_sweep(&cycles, SimScheduler::Single);
        print_curve(&format!("{name} — queue spins per task"), &sweep, "spins/task");
        let multi = spins_sweep(&cycles, SimScheduler::Multi);
        tasks_json.push((
            name.to_string(),
            Json::obj([
                ("single_queue", sweep_json(&sweep, "spins_per_task")),
                ("multi_queue", sweep_json(&multi, "spins_per_task")),
            ]),
        ));
    }
    println!("\nmultiple task queues for comparison (paper: reduced to ≈2–3 spins/task at 13):");
    for (name, per_task) in &tasks_json {
        let at13 = per_task
            .get("multi_queue")
            .and_then(|s| s.as_arr())
            .and_then(|a| a.last())
            .and_then(|o| o.get("spins_per_task"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        println!("  {name}: spins/task at 13 processes = {at13:.2}");
    }
    emit_artifact(
        "fig_6_3",
        &Json::obj([
            ("figure", Json::from("6-3")),
            ("title", Json::from("Task-queue contention: spins per task")),
            ("workers_swept", Json::arr(WORKER_SWEEP.iter().map(|&w| Json::from(w as u64)))),
            ("tasks", Json::Obj(tasks_json)),
        ]),
    );
}
