//! Figures 6-11 and 6-12: tasks/cycle histograms, without vs after chunking.

use psme_bench::*;
use psme_tasks::RunMode;

fn histogram(cycles: &[psme_rete::CycleTrace]) -> Vec<(String, f64)> {
    let bins = [(0usize, 100usize), (100, 200), (200, 400), (400, 600), (600, 1000), (1000, usize::MAX)];
    let total = cycles.len().max(1) as f64;
    bins.iter()
        .map(|&(lo, hi)| {
            let n = cycles.iter().filter(|c| c.len() >= lo && c.len() < hi).count();
            let label = if hi == usize::MAX { format!("{lo}+") } else { format!("{lo}–{hi}") };
            (label, 100.0 * n as f64 / total)
        })
        .collect()
}

fn main() {
    println!("Figures 6-11 / 6-12: Eight-puzzle tasks/cycle histograms");
    println!("paper: without chunking ≥60% of cycles < 100 tasks, ≈3% ≥ 1000;");
    println!("       after chunking > 30% of cycles have ≥ 1000 tasks");
    let (_, task) = paper_tasks().remove(0);
    for (label, mode) in
        [("without chunking (Fig 6-11)", RunMode::WithoutChunking), ("after chunking (Fig 6-12)", RunMode::AfterChunking)]
    {
        let (_, trace) = capture(&task, mode);
        let cycles = match_cycles(&trace);
        println!("\n{label}: {} cycles", cycles.len());
        for (bin, pct) in histogram(&cycles) {
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("  {bin:>9} | {bar} {pct:.1}%");
        }
        let avg = cycles.iter().map(|c| c.len()).sum::<usize>() as f64 / cycles.len().max(1) as f64;
        println!("  average tasks/cycle: {avg:.0}");
    }
}
