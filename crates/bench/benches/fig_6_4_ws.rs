//! Figure 6-4 extension: the work-stealing scheduler against the paper's
//! two queue disciplines.
//!
//! Two halves, one artifact (`BENCH_fig_6_4_ws.json`):
//!
//! * **Simulated sweeps** — for each paper task, speedup curves for the
//!   single queue, multiple queues, and work-stealing deques at 1–13 match
//!   processes on the NS32032 cost model, plus cross-queue takes (steals)
//!   at the top of the sweep.
//! * **Host measurements** — the same tasks run end-to-end on the real
//!   [`psme_core::ParallelEngine`] under work stealing; the engine's own
//!   steal / failed-steal / batch counters are read back from the metrics
//!   pipeline, so the artifact records observed scheduler behavior, not
//!   just modeled behavior.

use psme_bench::*;
use psme_core::{EngineConfig, Scheduler};
use psme_obs::{Counter, Json};
use psme_sim::{simulate_run, SimConfig, SimScheduler};
use psme_tasks::{run_parallel, RunMode};

const SCHEDULERS: [(&str, SimScheduler); 3] = [
    ("single", SimScheduler::Single),
    ("multi", SimScheduler::Multi),
    ("work-stealing", SimScheduler::WorkStealing),
];

/// Total simulated cross-queue takes for a cycle set at `workers`.
fn sim_steals(cycles: &[psme_rete::CycleTrace], sched: SimScheduler, workers: usize) -> u64 {
    simulate_run(cycles, &SimConfig::new(workers, sched)).iter().map(|r| r.steals).sum()
}

fn main() {
    println!("Figure 6-4 (extension): all schedulers, without chunking");
    println!("paper baseline: multiple queues reach ≈7-fold; work stealing must not do worse");

    let mut tasks_json: Vec<(String, Json)> = Vec::new();
    for (name, task) in paper_tasks() {
        let (report, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        println!(
            "\n{name}: decisions={} simulated uniproc {:.1} s ({} tasks)",
            report.stats.decisions,
            uniproc_seconds(&cycles),
            trace.total_tasks()
        );

        let mut sched_json: Vec<(String, Json)> = Vec::new();
        for (label, sched) in SCHEDULERS {
            let sweep = speedup_sweep(&cycles, sched);
            print_curve(&format!("{name} / {label} — speedup vs processes"), &sweep, "x");
            let max = sweep.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
            let top = *WORKER_SWEEP.last().unwrap();
            let steals = sim_steals(&cycles, sched, top);
            println!("  max speedup {max:.2}x; simulated steals at {top} processes: {steals}");
            sched_json.push((
                label.to_string(),
                Json::obj([
                    ("speedups", sweep_json(&sweep, "speedup")),
                    ("max_speedup", Json::float(max)),
                    ("sim_steals_at_13", Json::from(steals)),
                ]),
            ));
        }

        // Host run: real deques, real steal counters. 8 workers keeps the
        // host sweep cheap while still forcing cross-worker traffic.
        let (host_report, engine) = run_parallel(
            &task,
            RunMode::WithoutChunking,
            EngineConfig { workers: 8, scheduler: Scheduler::WorkStealing, ..Default::default() },
        );
        let totals = engine.metrics.total_counters();
        let (steals, fails, batches) = (
            totals.get(Counter::Steals),
            totals.get(Counter::StealFails),
            totals.get(Counter::Batches),
        );
        println!(
            "  host ws8: decisions={} steals={steals} steal_fails={fails} batches={batches}",
            host_report.stats.decisions
        );
        assert_eq!(
            host_report.stats.decisions, report.stats.decisions,
            "{name}: work-stealing host run diverged from the serial reference"
        );

        tasks_json.push((
            name.to_string(),
            Json::obj([
                ("decisions", Json::from(report.stats.decisions)),
                ("tasks", Json::from(trace.total_tasks())),
                ("uniproc_seconds", Json::float(uniproc_seconds(&cycles))),
                ("schedulers", Json::Obj(sched_json)),
                (
                    "host_ws8",
                    Json::obj([
                        ("steals", Json::from(steals)),
                        ("steal_fails", Json::from(fails)),
                        ("batches", Json::from(batches)),
                    ]),
                ),
            ]),
        ));
    }

    emit_artifact(
        "fig_6_4_ws",
        &Json::obj([
            ("figure", Json::from("6-4-ws")),
            (
                "title",
                Json::from("Speedups without chunking: single vs multiple queues vs work stealing"),
            ),
            ("schedulers", Json::arr(SCHEDULERS.iter().map(|&(l, _)| Json::from(l)))),
            ("workers_swept", Json::arr(WORKER_SWEEP.iter().map(|&w| Json::from(w as u64)))),
            ("tasks", Json::Obj(tasks_json)),
        ]),
    );
}
