//! Figure 6-5: per-cycle speedup as a function of tasks/cycle
//! (eight-puzzle, 11 match processes).

use psme_bench::*;
use psme_sim::{simulate_cycle, SimConfig, SimScheduler};
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-5: Eight-puzzle — per-cycle speedups vs tasks/cycle (11 processes)");
    println!("paper: small cycles < 2x; some ≈300-task cycles stuck near 3x (long chains)");
    let (_, task) = paper_tasks().remove(0);
    let (_, trace) = capture(&task, RunMode::WithoutChunking);
    let cycles = match_cycles(&trace);
    let c1 = SimConfig::new(1, SimScheduler::Multi);
    let c11 = SimConfig::new(11, SimScheduler::Multi);
    // Bin cycles by task count.
    let bins = [(0, 25), (25, 50), (50, 100), (100, 200), (200, 400), (400, 800), (800, 100000)];
    let mut rows = Vec::new();
    for (lo, hi) in bins {
        let mut speedups = Vec::new();
        for c in cycles.iter().filter(|c| c.len() >= lo && c.len() < hi && !c.is_empty()) {
            let u = simulate_cycle(c, &c1).makespan_us;
            let p = simulate_cycle(c, &c11).makespan_us;
            speedups.push(u / p.max(1e-9));
        }
        if speedups.is_empty() {
            continue;
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let max = speedups.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{lo}–{}", if hi > 10000 { "∞".into() } else { hi.to_string() }),
            format!("{}", speedups.len()),
            f2(avg),
            f2(max),
        ]);
    }
    print_table("measured", &["tasks/cycle", "cycles", "avg speedup", "max speedup"], &rows);
}
