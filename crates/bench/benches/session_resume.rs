//! Resume latency of the tiered session store under a 100× oversubscribed
//! population.
//!
//! The tiered store exists so a host can be responsible for far more
//! sessions than it can keep resident. This bench holds that claim: a
//! session population **100× the live table** is served to completion
//! through constant hibernate/resume traffic, a sample of the survivors is
//! checked bit-for-bit against solo runs (the differential that makes the
//! throughput number meaningful), and the measured resume latency
//! (frame verify + journal replay + shell restore) must keep its p99 under
//! a committed bound. A deterministic DES sweep extends the population
//! axis beyond what the host serves in bench time.
//!
//! `check.sh` re-asserts the committed artifact (`BENCH_session_resume.json`):
//! population/table ≥ 100, `differential_ok` true, resume p99 ≤ bound.

use psme_bench::*;
use psme_core::Scheduler;
use psme_obs::{Json, Quantiles};
use psme_serve::{
    build_topology, serve, simulate_serve_tiered, DesConfig, DesTierConfig, ServeConfig,
    ServeReport, SessionSpec, TierConfig,
};
use psme_tasks::{eight_puzzle, run_serial, scrambled, RunMode};

const TABLE: usize = 4;
const POPULATION: usize = 400; // 100× the live table
const WORKERS: usize = 4;
/// Resume p99 bound, ns. A resume replays the session's journal (cost
/// grows with executed history — measured p99 ≈ 17ms for these runs) and
/// decodes its shell; the committed bound leaves ~3× headroom for noisy
/// CI neighbours while still catching an accidental O(n²) in the replay.
const BOUND_P99_NS: f64 = 50_000_000.0;

fn batch() -> Vec<SessionSpec> {
    (0..POPULATION)
        .map(|seed| SessionSpec {
            name: format!("pop-{seed}"),
            task: eight_puzzle(&scrambled(2, seed as u64)),
            learning: seed % 8 == 0,
        })
        .collect()
}

fn run_tiered() -> ServeReport {
    let specs = batch();
    let topo = build_topology(&specs[0].task);
    serve(
        topo,
        specs,
        ServeConfig {
            workers: WORKERS,
            scheduler: Scheduler::SingleQueue, // FIFO rotation = maximal swapping
            table_capacity: TABLE,
            admission_depth: POPULATION,
            slice_decisions: 4,
            tier: Some(TierConfig::default()),
            ..Default::default()
        },
    )
}

/// Bit-for-bit differential on a deterministic sample of the population:
/// every 33rd session is re-run solo and compared field by field.
fn differential(report: &ServeReport) -> (bool, usize) {
    let specs = batch();
    let mut checked = 0;
    for i in (0..POPULATION).step_by(33) {
        let sp = &specs[i];
        let mode = if sp.learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
        let solo = run_serial(&sp.task, mode, false).0;
        let sr = &report.sessions[i];
        let chunks: Vec<String> =
            solo.chunks.iter().map(|c| psme_ops::sym_name(c.name).to_string()).collect();
        let ok = sr.stop == Some(solo.stop)
            && sr.stats.decisions == solo.stats.decisions
            && sr.stats.firings == solo.stats.firings
            && sr.stats.chunks_built == solo.stats.chunks_built
            && sr.stats.wme_adds == solo.stats.wme_adds
            && sr.stats.wme_removes == solo.stats.wme_removes
            && sr.chunk_names == chunks
            && sr.output == solo.output;
        if !ok {
            eprintln!("differential FAILED for session {i} ({})", sp.name);
            return (false, checked);
        }
        checked += 1;
    }
    (true, checked)
}

/// DES leg: the same hot bound against synthetic populations past what the
/// host serves in bench time. Deterministic (virtual time), so the scaling
/// row is reproducible bit-for-bit.
fn des_sweep() -> Json {
    let mut rows = Vec::new();
    for pop in [100usize, 400, 1600, 6400] {
        let sessions: Vec<Vec<f64>> = (0..pop)
            .map(|i| {
                let cycles = 40 + (i % 17);
                (0..cycles).map(|c| 2.0e-6 + (c % 5) as f64 * 2.0e-7).collect()
            })
            .collect();
        let r = simulate_serve_tiered(
            &sessions,
            &DesConfig { workers: WORKERS, slice: 4, dispatch_overhead: 5.0e-7 },
            &DesTierConfig {
                hot_capacity: TABLE,
                resume_base: 1.0e-5,
                resume_per_cycle: 5.0e-8,
            },
        );
        let q = Quantiles::from_samples(&r.resume_latency);
        rows.push(Json::obj([
            ("population", Json::from(pop as u64)),
            ("ratio", Json::float(pop as f64 / TABLE as f64)),
            ("makespan_s", Json::float(r.makespan)),
            ("sessions_per_sec", Json::float(r.sessions_per_sec)),
            ("hibernations", Json::from(r.hibernations)),
            ("resumes", Json::from(r.resumes)),
            ("resume_p50_s", Json::float(q.p50)),
            ("resume_p99_s", Json::float(q.p99)),
        ]));
    }
    Json::arr(rows)
}

fn main() {
    println!(
        "session_resume: {POPULATION} sessions through a {TABLE}-seat table \
         ({}x oversubscribed), {WORKERS} workers",
        POPULATION / TABLE
    );

    let report = run_tiered();
    assert_eq!(report.shed, 0, "admission depth covers the population");
    let tier = report.tier.as_ref().expect("tiered run").clone();
    assert!(tier.hibernated > 0, "oversubscription must force hibernation");
    assert!(tier.resumed > 0, "hibernated sessions must resume");
    assert!(tier.resume_latency.count > 0, "resume latencies were sampled");

    println!(
        "  hibernated {} / resumed {} / peak hot {} / {} snapshot bytes total",
        tier.hibernated, tier.resumed, tier.peak_hot, tier.snapshot_bytes_total
    );
    println!(
        "  resume latency: p50 {:.1}us p99 {:.1}us max {:.1}us over {} resumes",
        tier.resume_latency.p50 / 1e3,
        tier.resume_latency.p99 / 1e3,
        tier.resume_latency.max / 1e3,
        tier.resume_latency.count
    );

    let (differential_ok, sampled) = differential(&report);
    println!("  differential: {sampled} sessions sampled vs solo -> ok = {differential_ok}");
    assert!(differential_ok, "hibernated sessions must match solo bit-for-bit");

    let des = des_sweep();

    emit_artifact(
        "session_resume",
        &Json::obj([
            ("figure", Json::from("session-resume")),
            ("title", Json::from("Tiered store resume latency at 100x oversubscription")),
            ("population", Json::from(POPULATION as u64)),
            ("table_capacity", Json::from(TABLE as u64)),
            ("ratio", Json::float(POPULATION as f64 / TABLE as f64)),
            ("workers", Json::from(WORKERS as u64)),
            ("sessions_per_sec", Json::float(report.sessions_per_sec)),
            ("hibernated", Json::from(tier.hibernated)),
            ("resumed", Json::from(tier.resumed)),
            ("peak_hot", Json::from(tier.peak_hot as u64)),
            ("snapshot_bytes_total", Json::from(tier.snapshot_bytes_total)),
            ("resume_p50_ns", Json::float(tier.resume_latency.p50)),
            ("resume_p90_ns", Json::float(tier.resume_latency.p90)),
            ("resume_p99_ns", Json::float(tier.resume_latency.p99)),
            ("resume_max_ns", Json::float(tier.resume_latency.max)),
            ("resume_count", Json::from(tier.resume_latency.count)),
            ("bound_p99_ns", Json::float(BOUND_P99_NS)),
            ("differential_sampled", Json::from(sampled as u64)),
            ("differential_ok", Json::Bool(differential_ok)),
            ("des_sweep", des),
        ]),
    );

    assert!(
        tier.resume_latency.p99 <= BOUND_P99_NS,
        "resume p99 {:.0}ns exceeds the {BOUND_P99_NS:.0}ns bound",
        tier.resume_latency.p99
    );
    println!(
        "gate: resume p99 {:.1}us <= {:.1}us — ok",
        tier.resume_latency.p99 / 1e3,
        BOUND_P99_NS / 1e3
    );
}
