//! Figure 6-10: speedups after chunking, multiple task queues.

use psme_bench::*;
use psme_sim::SimScheduler;
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-10: Speedups AFTER chunking, multiple task queues");
    println!("paper: biggest increase in eight-puzzle (≈10x at 13); Cypress run too short");
    println!("paper uniprocessor times: eight-puzzle 111.2 s, strips 30.6 s, cypress 9.5 s");
    for (name, task) in paper_tasks() {
        let (report, trace) = capture(&task, RunMode::AfterChunking);
        let cycles = match_cycles(&trace);
        println!(
            "\n{name}: decisions={} impasses={} simulated uniproc {:.2} s",
            report.stats.decisions, report.stats.impasses,
            uniproc_seconds(&cycles)
        );
        let sweep = speedup_sweep(&cycles, SimScheduler::Multi);
        print_curve(&format!("{name} — after-chunking speedup"), &sweep, "x");
    }
}
