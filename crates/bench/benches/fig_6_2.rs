//! Figure 6-2: hash-bucket contention — distribution of left-token accesses
//! per bucket per cycle, from the real (host) engine instrumentation.

use psme_bench::*;
use psme_core::{EngineConfig, MetricsLog, Scheduler};
use psme_obs::Json;
use psme_tasks::{run_parallel, RunMode};

fn dist_json(dist: &[(u64, f64)]) -> Json {
    Json::arr(dist.iter().map(|&(k, pct)| {
        Json::obj([("accesses", Json::from(k)), ("percent", Json::float(pct))])
    }))
}

fn main() {
    println!("Figure 6-2: Contention for the hash buckets (left tokens)");
    println!("paper: eight-puzzle/cypress ≈70% of buckets see one left token per cycle;");
    println!("       strips only ≈40%, with a heavier tail");
    let mut tasks_json: Vec<(String, Json)> = Vec::new();
    for (name, task) in paper_tasks() {
        let (_, engine) = run_parallel(
            &task,
            RunMode::WithoutChunking,
            EngineConfig {
                workers: 2,
                scheduler: Scheduler::MultiQueue,
                bucket_histograms: true,
                ..Default::default()
            },
        );
        let log: &MetricsLog = &engine.metrics;
        let dist = log.left_access_distribution();
        println!("\n{name}: accesses/bucket/cycle → % of observations");
        let mut cum = 0.0;
        for (k, pct) in dist.iter().take(8) {
            cum += pct;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("  {k:>3} | {bar} {pct:.1}%");
        }
        let tail: f64 = dist.iter().filter(|(k, _)| *k > 8).map(|(_, p)| p).sum();
        println!("  >8  | {tail:.1}%   (cumulative ≤8: {cum:.1}%)");
        // The paper plots right (wme-keyed) memories too: they hash more
        // uniformly, so the mass should sit closer to 1 access/bucket.
        let right = log.right_access_distribution();
        if let Some((_, p1)) = right.iter().find(|(k, _)| *k == 1) {
            println!("  right memories: {p1:.1}% of observations at 1 access/bucket");
        }
        tasks_json.push((
            name.to_string(),
            Json::obj([
                ("left", dist_json(&dist)),
                ("right", dist_json(&right)),
            ]),
        ));
    }
    emit_artifact(
        "fig_6_2",
        &Json::obj([
            ("figure", Json::from("6-2")),
            ("title", Json::from("Hash-bucket contention: accesses per bucket per cycle")),
            ("tasks", Json::Obj(tasks_json)),
        ]),
    );
}
