//! Figure 6-2: hash-bucket contention — distribution of left-token accesses
//! per bucket per cycle, from the real (host) engine instrumentation.

use psme_bench::*;
use psme_core::{EngineConfig, MetricsLog, Scheduler};
use psme_tasks::{run_parallel, RunMode};

fn main() {
    println!("Figure 6-2: Contention for the hash buckets (left tokens)");
    println!("paper: eight-puzzle/cypress ≈70% of buckets see one left token per cycle;");
    println!("       strips only ≈40%, with a heavier tail");
    for (name, task) in paper_tasks() {
        let (_, engine) = run_parallel(
            &task,
            RunMode::WithoutChunking,
            EngineConfig {
                workers: 2,
                scheduler: Scheduler::MultiQueue,
                bucket_histograms: true,
                ..Default::default()
            },
        );
        let log: &MetricsLog = &engine.metrics;
        let dist = log.left_access_distribution();
        println!("\n{name}: accesses/bucket/cycle → % of observations");
        let mut cum = 0.0;
        for (k, pct) in dist.iter().take(8) {
            cum += pct;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("  {k:>3} | {bar} {pct:.1}%");
        }
        let tail: f64 = dist.iter().filter(|(k, _)| *k > 8).map(|(_, p)| p).sum();
        println!("  >8  | {tail:.1}%   (cumulative ≤8: {cum:.1}%)");
    }
}
