//! Ablation: two-input node sharing on/off (paper: 20–30% gains from
//! sharing during updates and after-chunking runs; Table 5-2's comparison).

use psme_bench::*;
use psme_rete::{NetworkOrg, ReteNetwork};
use psme_tasks::RunMode;

fn main() {
    println!("Ablation: node sharing on vs off");
    println!("paper: sharing gains ≈20–30% in update phase and after-chunking runs");
    let mut rows = Vec::new();
    for (name, task) in paper_tasks() {
        let (report, _) = capture(&task, RunMode::DuringChunking);
        for sharing in [true, false] {
            let mut net = ReteNetwork::with_sharing(sharing);
            for p in &task.productions {
                net.add_production(p.clone(), NetworkOrg::Linear).unwrap();
            }
            let base_nodes = net.num_nodes();
            for c in &report.chunks {
                net.add_production(c.clone(), NetworkOrg::Linear).unwrap();
            }
            let stats = net.stats();
            rows.push(vec![
                name.to_string(),
                if sharing { "on".into() } else { "off".into() },
                format!("{base_nodes}"),
                format!("{}", net.num_nodes()),
                format!("{}", stats.shared_two_input),
                format!("{}", stats.join_nodes + stats.neg_nodes),
            ]);
        }
    }
    print_table(
        "network size with and without sharing",
        &["task", "sharing", "nodes (task Ps)", "nodes (+chunks)", "shared 2-input", "total 2-input"],
        &rows,
    );
}
