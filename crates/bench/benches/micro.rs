//! Criterion micro-benchmarks: match throughput, run-time production
//! addition (compile + state update), and task-queue operations.

use criterion::{criterion_group, criterion_main, Criterion};
use psme_core::{QueueStats, Scheduler, Task, TaskQueues};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{Activation, NetworkOrg, ReteNetwork, SerialEngine, Side, Token};
use std::sync::Arc;

fn bench_match_throughput(c: &mut Criterion) {
    let sys = random_system(42, GenConfig { productions: 12, ..GenConfig::default() });
    let mut g = c.benchmark_group("match");
    g.sample_size(20);
    g.bench_function("serial_100_wme_changes", |b| {
        b.iter_batched(
            || {
                let mut net = ReteNetwork::new();
                for p in &sys.productions {
                    net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
                }
                let mut rng = XorShift::new(7);
                let wmes: Vec<_> = (0..100).map(|_| sys.random_wme(&mut rng)).collect();
                (SerialEngine::new(net), wmes)
            },
            |(mut eng, wmes)| {
                for w in wmes {
                    eng.apply_changes(vec![w], vec![]);
                }
                eng.total_tasks()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_runtime_addition(c: &mut Criterion) {
    let sys = random_system(43, GenConfig { productions: 10, ..GenConfig::default() });
    let mut g = c.benchmark_group("runtime_add");
    g.sample_size(20);
    g.bench_function("add_production_with_update", |b| {
        b.iter_batched(
            || {
                let mut net = ReteNetwork::new();
                for p in &sys.productions[..9] {
                    net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
                }
                let mut eng = SerialEngine::new(net);
                let mut rng = XorShift::new(9);
                let wmes: Vec<_> = (0..60).map(|_| sys.random_wme(&mut rng)).collect();
                eng.apply_changes(wmes, vec![]);
                (eng, Arc::new(sys.productions[9].clone()))
            },
            |(mut eng, p)| eng.add_production(p, NetworkOrg::Linear).unwrap().update_tasks,
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    g.sample_size(30);
    for (label, sched) in [("single", Scheduler::SingleQueue), ("multi", Scheduler::MultiQueue)] {
        g.bench_function(format!("push_pop_1000_{label}"), |b| {
            let q = TaskQueues::new(sched, 4);
            let mut stats = QueueStats::default();
            b.iter(|| {
                for i in 0..1000u32 {
                    q.push(
                        (i % 4) as usize,
                        Task::Beta(Activation {
                            node: i,
                            side: Side::Left,
                            token: Token::empty(),
                            delta: 1,
                        }),
                        &mut stats,
                    );
                }
                let mut n = 0;
                while q.pop(0, &mut stats).is_some() {
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_match_throughput, bench_runtime_addition, bench_queues);
criterion_main!(benches);
