//! Alpha-network discrimination: the `(field, value)` jump-table index
//! against the linear per-class scan, on the eight-puzzle learning run.
//!
//! This is the regime the index exists for: every chunk built mid-run
//! splices new alpha memories into the network, so under the linear scan
//! the constant-test cost per wme grows with each chunk — exactly the
//! overhead the paper's §5.1 jumptable avoids. The bench runs the same
//! during-chunking eight-puzzle instance twice on the serial engine (index
//! on / off), checks the agent trajectories are identical, and reports:
//!
//! * constant tests evaluated per wme (the ≥2× acceptance criterion),
//! * host wall-clock for the serial run (min of 3),
//! * simulated wall-clock for 1–13 match processes under all three
//!   schedulers on the NS32032 cost model — the indexed trace must be no
//!   slower than the linear trace at every worker count.
//!
//! Artifact: `BENCH_alpha_discrimination.json`.

use psme_bench::*;
use psme_obs::Json;
use psme_rete::{ReteNetwork, RunTrace, SerialEngine, TaskKind};
use psme_sim::{simulate_run, total_seconds, SimConfig, SimScheduler};
use psme_soar::SoarTask;
use psme_tasks::{eight_puzzle, scrambled, DECISION_BUDGET};
use std::time::Instant;

const SCHEDULERS: [(&str, SimScheduler); 3] = [
    ("single", SimScheduler::Single),
    ("multi", SimScheduler::Multi),
    ("work-stealing", SimScheduler::WorkStealing),
];

fn bench_task() -> SoarTask {
    eight_puzzle(&scrambled(4, 11))
}

struct IndexedRun {
    trace: RunTrace,
    chunks: Vec<String>,
    decisions: u64,
}

/// One captured during-chunking run with the discrimination index on/off.
fn capture_run(use_index: bool) -> IndexedRun {
    let task = bench_task();
    let mut net = ReteNetwork::new();
    net.alpha.use_index = use_index;
    let mut engine = SerialEngine::new(net);
    engine.capture = true;
    let mut agent = task.agent(engine);
    agent.learning = true;
    agent.run(DECISION_BUDGET);
    IndexedRun {
        trace: agent.engine.trace.clone(),
        chunks: agent
            .learned_chunks()
            .iter()
            .map(|c| psme_ops::sym_name(c.name).to_string())
            .collect(),
        decisions: agent.stats.decisions,
    }
}

/// Host wall for the same run, uncaptured, min of `n`.
fn host_wall_ms(use_index: bool, n: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let task = bench_task();
        let mut net = ReteNetwork::new();
        net.alpha.use_index = use_index;
        let engine = SerialEngine::new(net);
        let mut agent = task.agent(engine);
        agent.learning = true;
        let t0 = Instant::now();
        agent.run(DECISION_BUDGET);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct AlphaTotals {
    wmes: u64,
    tests: u64,
    probes: u64,
}

fn alpha_totals(trace: &RunTrace) -> AlphaTotals {
    let mut t = AlphaTotals { wmes: 0, tests: 0, probes: 0 };
    for c in &trace.cycles {
        for r in &c.tasks {
            if r.kind == TaskKind::Alpha {
                t.wmes += 1;
                t.tests += r.scanned as u64;
                t.probes += r.probes as u64;
            }
        }
    }
    t
}

fn main() {
    println!("Alpha discrimination: jump-table index vs linear scan");
    println!("eight-puzzle, during chunking (chunks splice memories mid-run)");

    let indexed = capture_run(true);
    let linear = capture_run(false);
    assert_eq!(indexed.chunks, linear.chunks, "index changed the learned chunks");
    assert_eq!(indexed.decisions, linear.decisions, "index changed the trajectory");
    assert!(!indexed.chunks.is_empty(), "the run must actually learn");

    let ti = alpha_totals(&indexed.trace);
    let tl = alpha_totals(&linear.trace);
    assert_eq!(ti.wmes, tl.wmes, "same wme-change stream");
    let per_wme_i = ti.tests as f64 / ti.wmes.max(1) as f64;
    let per_wme_l = tl.tests as f64 / tl.wmes.max(1) as f64;
    let reduction = per_wme_l / per_wme_i.max(1e-9);
    println!(
        "\nconstant tests per wme: linear {per_wme_l:.2}, indexed {per_wme_i:.2} \
         ({reduction:.2}x reduction, {} chunks learned, {} wme changes)",
        indexed.chunks.len(),
        ti.wmes
    );
    assert!(
        reduction >= 2.0,
        "acceptance: indexed discrimination must at least halve tests/wme \
         (got {reduction:.2}x)"
    );

    // Simulated 1–13 process sweep, all three schedulers: the indexed
    // trace must be no slower anywhere.
    let cyc_i: Vec<_> = indexed.trace.cycles.clone();
    let cyc_l: Vec<_> = linear.trace.cycles.clone();
    let mut sched_json: Vec<(String, Json)> = Vec::new();
    for (label, sched) in SCHEDULERS {
        let mut rows = Vec::new();
        let mut points = Vec::new();
        for &w in WORKER_SWEEP {
            let cfg = SimConfig::new(w, sched);
            let s_l = total_seconds(&simulate_run(&cyc_l, &cfg));
            let s_i = total_seconds(&simulate_run(&cyc_i, &cfg));
            assert!(
                s_i <= s_l,
                "acceptance: indexed simulated wall {s_i:.4}s exceeds linear \
                 {s_l:.4}s at {w} workers under {label}"
            );
            points.push((w, s_l / s_i.max(1e-12)));
            rows.push(Json::obj([
                ("workers", Json::from(w as u64)),
                ("linear_s", Json::float(s_l)),
                ("indexed_s", Json::float(s_i)),
                ("speedup_vs_linear", Json::float(s_l / s_i.max(1e-12))),
            ]));
        }
        print_curve(
            &format!("{label} — indexed speedup over linear vs processes"),
            &points,
            "x",
        );
        sched_json.push((label.to_string(), Json::arr(rows)));
    }

    // Host serial wall (min of 3): the index must not cost wall time.
    let wall_i = host_wall_ms(true, 3);
    let wall_l = host_wall_ms(false, 3);
    println!("\nhost serial wall (min of 3): linear {wall_l:.1} ms, indexed {wall_i:.1} ms");

    let doc = Json::obj([
        ("bench", Json::from("alpha_discrimination")),
        ("task", Json::from("eight-puzzle scrambled(4,11), during chunking")),
        ("chunks_built", Json::from(indexed.chunks.len() as u64)),
        ("wme_changes", Json::from(ti.wmes)),
        (
            "linear",
            Json::obj([
                ("tests_run", Json::from(tl.tests)),
                ("tests_per_wme", Json::float(per_wme_l)),
                ("host_wall_ms_serial", Json::float(wall_l)),
            ]),
        ),
        (
            "indexed",
            Json::obj([
                ("tests_run", Json::from(ti.tests)),
                ("tests_per_wme", Json::float(per_wme_i)),
                ("jump_probes", Json::from(ti.probes)),
                ("host_wall_ms_serial", Json::float(wall_i)),
            ]),
        ),
        ("tests_per_wme_reduction", Json::float(reduction)),
        ("sim_sweep", Json::Obj(sched_json)),
    ]);
    emit_artifact("alpha_discrimination", &doc);
}
