//! Beta-memory probe cost: hash-first indexed probing against the
//! reference whole-line scan, on the eight-puzzle learning run.
//!
//! This is the regime the per-node line index exists for: every beta
//! activation locks a line and searches the opposite memory, and on small
//! tables many nodes co-hash onto every line, so the reference scan
//! traverses mostly foreign entries (`skipped`) and structurally compares
//! every same-node candidate. The indexed probe binary-searches the node's
//! run and rejects non-matching candidates on a stored 64-bit key hash
//! before any structural compare. The bench captures the same
//! during-chunking eight-puzzle instance under both modes across a sweep
//! of line counts, checks the trajectories and task DAGs are identical
//! (apart from the cost columns), and reports:
//!
//! * opposite-memory entries examined per beta activation — candidates
//!   plus foreign traversals — (the ≥2× acceptance criterion, judged at
//!   the most collision-heavy line count),
//! * host wall-clock for the serial run (min of 3),
//! * simulated wall-clock for 1–13 match processes under all three
//!   schedulers at every line count — the indexed trace must be no slower
//!   than the reference trace at every point.
//!
//! Artifact: `BENCH_memory_probe.json`.

use psme_bench::*;
use psme_obs::Json;
use psme_rete::{ReteNetwork, RunTrace, SerialEngine, TaskKind};
use psme_sim::{simulate_run, total_seconds, SimConfig, SimScheduler};
use psme_soar::SoarTask;
use psme_tasks::{eight_puzzle, scrambled, DECISION_BUDGET};
use std::time::Instant;

const SCHEDULERS: [(&str, SimScheduler); 3] = [
    ("single", SimScheduler::Single),
    ("multi", SimScheduler::Multi),
    ("work-stealing", SimScheduler::WorkStealing),
];

/// Line counts under test, most collision-heavy first. The acceptance gate
/// is judged at `LINE_SWEEP[0]`; larger tables show how the advantage
/// shrinks as collisions thin out.
const LINE_SWEEP: [usize; 3] = [8, 64, 512];

fn bench_task() -> SoarTask {
    eight_puzzle(&scrambled(4, 11))
}

struct ProbeRun {
    trace: RunTrace,
    chunks: Vec<String>,
    decisions: u64,
    lines_compacted: u64,
}

/// One captured during-chunking run with the memory index on/off.
fn capture_run(lines: usize, use_index: bool) -> ProbeRun {
    let task = bench_task();
    let net = ReteNetwork::new();
    let mut engine = SerialEngine::with_memory(net, lines);
    engine.state.mem.use_index = use_index;
    engine.capture = true;
    let mut agent = task.agent(engine);
    agent.learning = true;
    agent.run(DECISION_BUDGET);
    ProbeRun {
        trace: agent.engine.trace.clone(),
        chunks: agent
            .learned_chunks()
            .iter()
            .map(|c| psme_ops::sym_name(c.name).to_string())
            .collect(),
        decisions: agent.stats.decisions,
        lines_compacted: agent.engine.state.mem.lines_compacted_total(),
    }
}

/// Host wall for the same run, uncaptured, min of `n`.
fn host_wall_ms(lines: usize, use_index: bool, n: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let task = bench_task();
        let mut engine = SerialEngine::with_memory(ReteNetwork::new(), lines);
        engine.state.mem.use_index = use_index;
        let mut agent = task.agent(engine);
        agent.learning = true;
        let t0 = Instant::now();
        agent.run(DECISION_BUDGET);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Default)]
struct BetaTotals {
    acts: u64,
    scanned: u64,
    hash_rejects: u64,
    skipped: u64,
}

impl BetaTotals {
    /// Opposite-memory entries the probe actually walked: same-node
    /// candidates plus foreign co-hashed entries. The indexed probe never
    /// walks foreign entries, so its `skipped` term is structurally zero.
    fn examined_per_act(&self) -> f64 {
        (self.scanned + self.skipped) as f64 / self.acts.max(1) as f64
    }
}

fn beta_totals(trace: &RunTrace) -> BetaTotals {
    let mut t = BetaTotals::default();
    for c in &trace.cycles {
        for r in &c.tasks {
            if matches!(r.kind, TaskKind::Join | TaskKind::Neg) {
                t.acts += 1;
                t.scanned += r.scanned as u64;
                t.hash_rejects += r.hash_rejects as u64;
                t.skipped += r.skipped as u64;
            }
        }
    }
    t
}

/// The two traces must describe the same computation: same DAG, same
/// per-task outcomes — only the probe-cost columns may differ.
fn assert_same_dag(idx: &RunTrace, reference: &RunTrace) {
    assert_eq!(idx.cycles.len(), reference.cycles.len(), "cycle counts diverge");
    for (ci, cr) in idx.cycles.iter().zip(&reference.cycles) {
        assert_eq!(ci.tasks.len(), cr.tasks.len(), "task counts diverge in a cycle");
        for (ti, tr) in ci.tasks.iter().zip(&cr.tasks) {
            let same = ti.id == tr.id
                && ti.parent == tr.parent
                && ti.node == tr.node
                && ti.kind == tr.kind
                && ti.side == tr.side
                && ti.delta == tr.delta
                && ti.scanned == tr.scanned
                && ti.emitted == tr.emitted;
            assert!(same, "task DAGs diverge: {ti:?} vs {tr:?}");
        }
    }
}

fn main() {
    println!("Beta-memory probes: per-node index + hash gate vs whole-line scan");
    println!("eight-puzzle, during chunking, line counts {LINE_SWEEP:?}");

    let mut line_rows = Vec::new();
    let mut sched_json: Vec<(String, Json)> = Vec::new();
    let mut gate_reduction = 0.0;
    for (li, &lines) in LINE_SWEEP.iter().enumerate() {
        let indexed = capture_run(lines, true);
        let reference = capture_run(lines, false);
        assert_eq!(indexed.chunks, reference.chunks, "index changed the learned chunks");
        assert_eq!(indexed.decisions, reference.decisions, "index changed the trajectory");
        assert!(!indexed.chunks.is_empty(), "the run must actually learn");
        assert_same_dag(&indexed.trace, &reference.trace);

        let ti = beta_totals(&indexed.trace);
        let tr = beta_totals(&reference.trace);
        assert_eq!(ti.acts, tr.acts, "same beta activation stream");
        assert_eq!(ti.scanned, tr.scanned, "candidates are mode-independent");
        assert_eq!(ti.skipped, 0, "run bounds never walk foreign entries");
        assert_eq!(tr.hash_rejects, 0, "the reference scan never hash-rejects");
        let per_i = ti.examined_per_act();
        let per_r = tr.examined_per_act();
        let reduction = per_r / per_i.max(1e-9);
        println!(
            "\n{lines} lines: entries examined per activation — reference {per_r:.2}, \
             indexed {per_i:.2} ({reduction:.2}x reduction; {} activations, \
             {} hash rejects, {} chunks)",
            ti.acts,
            ti.hash_rejects,
            indexed.chunks.len()
        );
        if li == 0 {
            gate_reduction = reduction;
            assert!(
                reduction >= 2.0,
                "acceptance: the index must at least halve entries examined per \
                 activation on the collision-heavy table (got {reduction:.2}x)"
            );
        }

        // Simulated 1–13 process sweep under all three schedulers: the
        // indexed trace must be no slower at any point.
        let mut per_sched = Vec::new();
        for (label, sched) in SCHEDULERS {
            let mut rows = Vec::new();
            let mut points = Vec::new();
            for &w in WORKER_SWEEP {
                let cfg = SimConfig::new(w, sched);
                let s_r = total_seconds(&simulate_run(&reference.trace.cycles, &cfg));
                let s_i = total_seconds(&simulate_run(&indexed.trace.cycles, &cfg));
                assert!(
                    s_i <= s_r,
                    "acceptance: indexed simulated wall {s_i:.4}s exceeds reference \
                     {s_r:.4}s at {w} workers under {label} ({lines} lines)"
                );
                points.push((w, s_r / s_i.max(1e-12)));
                rows.push(Json::obj([
                    ("workers", Json::from(w as u64)),
                    ("reference_s", Json::float(s_r)),
                    ("indexed_s", Json::float(s_i)),
                    ("speedup_vs_reference", Json::float(s_r / s_i.max(1e-12))),
                ]));
            }
            if li == 0 {
                print_curve(
                    &format!("{label} — indexed speedup over reference vs processes ({lines} lines)"),
                    &points,
                    "x",
                );
            }
            per_sched.push((label.to_string(), Json::arr(rows)));
        }
        sched_json.push((format!("lines_{lines}"), Json::Obj(per_sched)));

        line_rows.push(Json::obj([
            ("lines", Json::from(lines as u64)),
            ("beta_activations", Json::from(ti.acts)),
            ("examined_per_act_reference", Json::float(per_r)),
            ("examined_per_act_indexed", Json::float(per_i)),
            ("examined_reduction", Json::float(reduction)),
            ("hash_rejects_indexed", Json::from(ti.hash_rejects)),
            ("entries_skipped_reference", Json::from(tr.skipped)),
            ("lines_compacted_indexed", Json::from(indexed.lines_compacted)),
            ("lines_compacted_reference", Json::from(reference.lines_compacted)),
        ]));
    }

    // Host serial wall (min of 3) at the collision-heavy line count: the
    // indexed probe must actually be cheaper where collisions are dense.
    let wall_i = host_wall_ms(LINE_SWEEP[0], true, 3);
    let wall_r = host_wall_ms(LINE_SWEEP[0], false, 3);
    println!(
        "\nhost serial wall, {} lines (min of 3): reference {wall_r:.1} ms, indexed {wall_i:.1} ms",
        LINE_SWEEP[0]
    );

    let doc = Json::obj([
        ("bench", Json::from("memory_probe")),
        ("task", Json::from("eight-puzzle scrambled(4,11), during chunking")),
        ("line_sweep", Json::arr(line_rows)),
        ("examined_reduction_at_gate", Json::float(gate_reduction)),
        (
            "host_wall_ms_serial",
            Json::obj([
                ("lines", Json::from(LINE_SWEEP[0] as u64)),
                ("reference", Json::float(wall_r)),
                ("indexed", Json::float(wall_i)),
            ]),
        ),
        ("sim_sweep", Json::Obj(sched_json)),
    ]);
    emit_artifact("memory_probe", &doc);
}
