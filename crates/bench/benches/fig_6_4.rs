//! Figure 6-4: speedups without chunking, multiple task queues.

use psme_bench::*;
use psme_sim::SimScheduler;
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-4: Speedups without chunking, MULTIPLE task queues");
    println!("paper: parallelism increases in all tasks; max ≈7-fold (Strips, Cypress)");
    for (name, task) in paper_tasks() {
        let (_, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        let sweep = speedup_sweep(&cycles, SimScheduler::Multi);
        print_curve(&format!("{name} — speedup vs match processes"), &sweep, "x");
        let max = sweep.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        println!("  max speedup {max:.2}x");
    }
}
