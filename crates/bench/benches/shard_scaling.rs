//! Sharded-serving scaling: aggregate sessions/sec past the single-bus
//! knee, plus the line-lock batching payoff in the match engine.
//!
//! Three parts, one artifact (`BENCH_shard_scaling.json`):
//!
//! * **Modeled shard sweep** — per-session decision-cycle service times
//!   come from *real captured traces* (each cycle costed on the NS32032
//!   model at one match process); the sweep runs on
//!   [`psme_serve::simulate_serve_sharded`], whose per-shard dispatch bus
//!   serializes every pop + session handoff. Slices are one cycle long, so
//!   the bus hold is a large fraction of a dispatch and the contention
//!   knee falls inside the sweep: one bus saturates at
//!   `(hold + service) / hold` workers no matter how many are added, and
//!   each extra shard adds a bus. Shard counts {1, 2, 4, 8} ×
//!   workers-per-shard {1, 2, 4, 8} reaches 64 logical workers.
//! * **Cross-shard steal curve** — deliberately length-skewed sessions so
//!   pools drain at different times; the model reports how many dispatches
//!   the idle pools serve by stealing, and what that does to throughput.
//! * **Host measurement** — a real [`psme_serve::serve`] run at feasible
//!   sizes (host cores, wall clock), sharded vs not, with the engine-side
//!   line-lock batching differential: the same task, same schedule, with
//!   batching off (`line_batch: 1`, the paper's one-acquisition-per-
//!   activation discipline) vs on, on a memory-heavy table (few lines, so
//!   same-line groups are large). The `line_lock_acquisitions` counter
//!   must drop ≥ 2×.
//!
//! Acceptance gates (asserted here and re-checked by `scripts/check.sh`
//! from the committed artifact): 4 shards ≥ 2× one shard at 8 workers per
//! shard in the DES, and the batched acquire count ≤ half the unbatched.

use psme_bench::*;
use psme_core::{EngineConfig, Scheduler};
use psme_obs::{Counter, Json};
use psme_serve::{
    build_topology, serve, simulate_serve_sharded, DesConfig, DesShardConfig, ServeConfig,
    SessionSpec, ShardConfig,
};
use psme_sim::{simulate_cycle, SimConfig, SimScheduler};
use psme_tasks::{cypress_sub, eight_puzzle, run_parallel, scrambled, CypressConfig, RunMode};

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const WPS_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Sessions in the modeled sweep (tiled over 8 distinct workloads).
const MODEL_SESSIONS: usize = 256;

/// The dispatch bus hold as a fraction of the mean one-cycle service time.
/// At one-cycle slices the pop + admission bookkeeping + session handoff
/// (state migration onto the worker) is a sizable fraction of the slice;
/// 0.5 puts the knee at (0.5 + 1)/0.5 = 3 workers per bus, well inside
/// the sweep.
const BUS_HOLD_FRACTION: f64 = 0.5;

/// Per-cycle service seconds for one session workload: every captured
/// trace cycle costed at one match process under work stealing.
fn service_vector(seed: u64, learning: bool) -> Vec<f64> {
    let task = eight_puzzle(&scrambled(3, seed));
    let mode = if learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
    let (_, trace) = capture(&task, mode);
    trace
        .cycles
        .iter()
        .map(|c| simulate_cycle(c, &SimConfig::new(1, SimScheduler::WorkStealing)).makespan_us * 1e-6)
        .collect()
}

fn main() {
    println!("shard_scaling: sessions/sec across shard counts x workers per shard");

    let workloads: Vec<Vec<f64>> = (0..8).map(|seed| service_vector(seed, seed % 4 == 0)).collect();
    let total_cycles: usize = workloads.iter().map(Vec::len).sum();
    let total_secs: f64 = workloads.iter().flatten().sum();
    let mean_cycle = total_secs / total_cycles as f64;
    let bus_hold = mean_cycle * BUS_HOLD_FRACTION;
    println!(
        "captured workloads: mean cycle {:.1} us, bus hold {:.1} us (knee at {:.1} workers/bus)",
        mean_cycle * 1e6,
        bus_hold * 1e6,
        1.0 + 1.0 / BUS_HOLD_FRACTION
    );
    let sessions: Vec<Vec<f64>> =
        (0..MODEL_SESSIONS).map(|i| workloads[i % workloads.len()].clone()).collect();

    // Part 1: the shard x workers-per-shard grid.
    let mut sweep_points: Vec<Json> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gate_1x8 = 0.0f64;
    let mut gate_4x8 = 0.0f64;
    let mut gate_8x8 = 0.0f64;
    for shards in SHARD_SWEEP {
        for wps in WPS_SWEEP {
            let r = simulate_serve_sharded(
                &sessions,
                &DesConfig { workers: wps, slice: 1, dispatch_overhead: bus_hold },
                &DesShardConfig { shards, steal: true },
            );
            if shards == 1 && wps == 8 {
                gate_1x8 = r.sessions_per_sec;
            }
            if shards == 4 && wps == 8 {
                gate_4x8 = r.sessions_per_sec;
            }
            if shards == 8 && wps == 8 {
                gate_8x8 = r.sessions_per_sec;
            }
            rows.push(vec![
                shards.to_string(),
                wps.to_string(),
                (shards * wps).to_string(),
                f2(r.sessions_per_sec),
                r.cross_shard_steals.to_string(),
            ]);
            sweep_points.push(Json::obj([
                ("shards", Json::from(shards as u64)),
                ("workers_per_shard", Json::from(wps as u64)),
                ("logical_workers", Json::from((shards * wps) as u64)),
                ("sessions_per_sec", Json::float(r.sessions_per_sec)),
                ("makespan_s", Json::float(r.makespan)),
                ("cross_shard_steals", Json::from(r.cross_shard_steals)),
            ]));
        }
    }
    print_table(
        "modeled shard sweep (256 sessions, 1-cycle slices)",
        &["shards", "w/shard", "logical", "sessions/s", "x-steals"],
        &rows,
    );

    let gate_ratio = gate_4x8 / gate_1x8.max(1e-12);
    println!(
        "\ngate: 4 shards x 8w {gate_4x8:.2}/s vs 1 shard x 8w {gate_1x8:.2}/s = \
         {gate_ratio:.2}x (need >= 2); 8x8 = 64 logical workers: {gate_8x8:.2}/s"
    );
    assert!(
        gate_ratio >= 2.0,
        "4-shard throughput ({gate_4x8:.3}/s) must be >= 2x one shard ({gate_1x8:.3}/s) \
         at 8 workers per shard, got {gate_ratio:.2}x"
    );
    assert!(
        gate_8x8 > gate_1x8 * 2.0,
        "64 logical workers across 8 buses must scale past the single-bus knee"
    );

    // Part 2: cross-shard steal rate on a deliberately skewed batch —
    // session i is tiled (i % 4 + 1)x longer, so pools drain unevenly.
    let skewed: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            let base = &workloads[i % workloads.len()];
            let mut v = Vec::with_capacity(base.len() * (i % 4 + 1));
            for _ in 0..(i % 4 + 1) {
                v.extend_from_slice(base);
            }
            v
        })
        .collect();
    let mut steal_points: Vec<Json> = Vec::new();
    let mut steal_rows: Vec<Vec<String>> = Vec::new();
    for shards in [2usize, 4, 8] {
        let cfg = DesConfig { workers: 2, slice: 1, dispatch_overhead: bus_hold };
        let on = simulate_serve_sharded(&skewed, &cfg, &DesShardConfig { shards, steal: true });
        let off = simulate_serve_sharded(&skewed, &cfg, &DesShardConfig { shards, steal: false });
        let dispatches: usize = skewed.iter().map(|s| s.len()).sum();
        let rate = on.cross_shard_steals as f64 / dispatches as f64;
        steal_rows.push(vec![
            shards.to_string(),
            on.cross_shard_steals.to_string(),
            format!("{:.4}", rate),
            f2(on.sessions_per_sec),
            f2(off.sessions_per_sec),
        ]);
        steal_points.push(Json::obj([
            ("shards", Json::from(shards as u64)),
            ("cross_shard_steals", Json::from(on.cross_shard_steals)),
            ("steal_rate", Json::float(rate)),
            ("sessions_per_sec_steal_on", Json::float(on.sessions_per_sec)),
            ("sessions_per_sec_steal_off", Json::float(off.sessions_per_sec)),
        ]));
        assert!(
            on.sessions_per_sec >= off.sessions_per_sec * 0.999,
            "stealing must not hurt a skewed batch ({shards} shards)"
        );
    }
    print_table(
        "cross-shard steal curve (64 skewed sessions, 2 workers/shard)",
        &["shards", "steals", "steal rate", "sessions/s on", "sessions/s off"],
        &steal_rows,
    );

    // Part 3a: host measurement at feasible sizes.
    let specs: Vec<SessionSpec> = (0..24)
        .map(|seed| SessionSpec {
            name: format!("host-{seed}"),
            task: eight_puzzle(&scrambled(3, seed)),
            learning: seed % 4 == 0,
        })
        .collect();
    let topo = build_topology(&specs[0].task);
    let mut host_points: Vec<Json> = Vec::new();
    for shards in [1usize, 2, 4] {
        let report = serve(
            topo.clone(),
            specs.clone(),
            ServeConfig {
                workers: 2,
                scheduler: Scheduler::WorkStealing,
                table_capacity: 24,
                shard: ShardConfig { shards, ..Default::default() },
                ..Default::default()
            },
        );
        assert_eq!(report.shed, 0, "host run must not shed");
        println!(
            "host {shards} shard(s) x 2w: {:.2} sessions/s, {} cross-shard steals",
            report.sessions_per_sec, report.cross_shard_steals
        );
        host_points.push(Json::obj([
            ("shards", Json::from(shards as u64)),
            ("workers_per_shard", Json::from(2u64)),
            ("sessions", Json::from(specs.len() as u64)),
            ("sessions_per_sec", Json::float(report.sessions_per_sec)),
            ("wall_seconds", Json::float(report.wall_seconds)),
            ("cross_shard_steals", Json::from(report.cross_shard_steals)),
            ("p99_cycle_ms", Json::float(report.aggregate_cycle_latency.p99 * 1e-6)),
        ]));
    }

    // Part 3b: line-lock batching differential on the memory-heavy config.
    // Cypress-substitute at 4 roots without chunking re-derives every deep
    // tie chain from scratch, so its match waves flood whole broods of
    // same-destination activations into the queue at once; 2 memory lines
    // concentrate them, and a worker draining a wave whole collapses it to
    // one or two lock acquisitions. (The narrow-wave tasks — eight-puzzle,
    // strips — batch far less: their rounds average ~1.3 activations.)
    let task = cypress_sub(&CypressConfig { roots: 4 });
    let heavy = |line_batch: usize| EngineConfig {
        workers: 1,
        scheduler: Scheduler::SingleQueue,
        memory_lines: 2,
        line_batch,
        ..Default::default()
    };
    let (unbatched_report, unbatched_engine) =
        run_parallel(&task, RunMode::WithoutChunking, heavy(1));
    let (batched_report, batched_engine) =
        run_parallel(&task, RunMode::WithoutChunking, heavy(64));
    assert_eq!(
        unbatched_report.stats.decisions, batched_report.stats.decisions,
        "batching must not change the run"
    );
    let unbatched = unbatched_engine.metrics.total_counters().get(Counter::LineLockAcquisitions);
    let batched = batched_engine.metrics.total_counters().get(Counter::LineLockAcquisitions);
    let acquire_ratio = unbatched as f64 / batched.max(1) as f64;
    println!(
        "line-lock acquisitions (2 lines, 1 worker): unbatched {unbatched}, \
         batched {batched} = {acquire_ratio:.2}x fewer (need >= 2x)"
    );
    assert!(
        acquire_ratio >= 2.0,
        "line-lock batching on the memory-heavy config must at least halve \
         acquisitions: {unbatched} -> {batched} ({acquire_ratio:.2}x)"
    );

    emit_artifact(
        "shard_scaling",
        &Json::obj([
            ("figure", Json::from("shard-scaling")),
            (
                "title",
                Json::from("Sharded serving: aggregate sessions/sec past the single-bus knee"),
            ),
            ("shards_swept", Json::arr(SHARD_SWEEP.iter().map(|&s| Json::from(s as u64)))),
            ("workers_per_shard_swept", Json::arr(WPS_SWEEP.iter().map(|&w| Json::from(w as u64)))),
            (
                "model",
                Json::obj([
                    ("sessions", Json::from(MODEL_SESSIONS as u64)),
                    ("mean_cycle_s", Json::float(mean_cycle)),
                    ("bus_hold_s", Json::float(bus_hold)),
                    ("bus_hold_fraction", Json::float(BUS_HOLD_FRACTION)),
                    ("sweep", Json::arr(sweep_points)),
                    (
                        "gate",
                        Json::obj([
                            ("one_shard_8w_sessions_per_sec", Json::float(gate_1x8)),
                            ("four_shard_8w_sessions_per_sec", Json::float(gate_4x8)),
                            ("eight_shard_8w_sessions_per_sec", Json::float(gate_8x8)),
                            ("ratio", Json::float(gate_ratio)),
                            ("required", Json::float(2.0)),
                        ]),
                    ),
                ]),
            ),
            ("steal_curve", Json::arr(steal_points)),
            ("host", Json::arr(host_points)),
            (
                "line_lock",
                Json::obj([
                    ("task", Json::from("cypress-sub roots=4, without chunking")),
                    ("memory_lines", Json::from(2u64)),
                    ("workers", Json::from(1u64)),
                    ("line_batch", Json::from(64u64)),
                    ("unbatched_acquisitions", Json::from(unbatched)),
                    ("batched_acquisitions", Json::from(batched)),
                    ("ratio", Json::float(acquire_ratio)),
                    ("required", Json::float(2.0)),
                ]),
            ),
        ]),
    );
}
