//! Table 5-2: time for compiling chunks at run time, shared vs unshared.

use psme_bench::*;
use psme_rete::{code_size, compile_time_us, CodeSizeModel, NetworkOrg, ReteNetwork};
use psme_tasks::RunMode;
use std::time::Instant;

fn main() {
    println!("Table 5-2: Time for compiling chunks at run-time");
    println!("paper: chunks 20/26/26; shared 23.7/31.5/56.7 s; unshared 25.5/34.7/60.2 s");
    let mut rows = Vec::new();
    for (name, task) in paper_tasks() {
        let (report, _) = capture(&task, RunMode::DuringChunking);
        let chunks = &report.chunks;
        let model = CodeSizeModel::default();
        let mut sim_us = [0u64; 2]; // [shared, unshared]
        let mut wall_ns = [0u64; 2];
        for (i, sharing) in [true, false].into_iter().enumerate() {
            let mut net = ReteNetwork::with_sharing(sharing);
            for p in &task.productions {
                net.add_production(p.clone(), NetworkOrg::Linear).unwrap();
            }
            for c in chunks {
                let searched = net.num_nodes() as u64;
                let t0 = Instant::now();
                let add = net.add_production(c.clone(), NetworkOrg::Linear).unwrap();
                wall_ns[i] += t0.elapsed().as_nanos() as u64;
                let cs = code_size(&net, add.first_new, &model);
                sim_us[i] += compile_time_us(cs.total_bytes, searched);
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{}", chunks.len()),
            format!("{:.1}", sim_us[0] as f64 / 1e6),
            format!("{:.1}", sim_us[1] as f64 / 1e6),
            format!("{:.2}", wall_ns[0] as f64 / 1e6),
            format!("{:.2}", wall_ns[1] as f64 / 1e6),
        ]);
    }
    print_table(
        "measured",
        &["task", "chunks", "shared (sim s)", "unshared (sim s)", "shared (host ms)", "unshared (host ms)"],
        &rows,
    );
    println!("\nshape check: shared compile time < unshared compile time (as in the paper).");
}
