//! §7's adaptive loop, end to end: run a task, diagnose chain-bound cycles
//! from the trace, map the critical-path nodes back to productions, rebuild
//! those productions bilinearly, and re-measure.
//!
//! "The system can look at the last few node activations on the cycles with
//! low parallelism. The system can then make adaptive changes, such as
//! introducing bilinear networks, to increase the speedups."

use psme_bench::*;
use psme_rete::{plan_bilinear, NetworkOrg};
use psme_sim::{diagnose_run, CostModel, SimScheduler};
use psme_tasks::{run_serial_with_orgs, RunMode};

fn main() {
    println!("Adaptive bilinear reorganization (§7 future work, implemented)");
    let (_, task) = paper_tasks().remove(1); // strips: has the long chain
    let cost = CostModel::default();

    // ---- Pass 1: run linear, diagnose. ----
    let (_, engine) = run_serial_with_orgs(&task, RunMode::WithoutChunking, true, &[]);
    let cycles = match_cycles(&engine.trace);
    let diag = diagnose_run(&cycles, &cost);
    let total = diag.small_cycle_us + diag.long_chain_us + diag.parallel_us;
    println!(
        "\nlinear pass: {:.0}% of work in chain-bound cycles, {:.0}% in small cycles",
        100.0 * diag.long_chain_us / total,
        100.0 * diag.small_cycle_us / total
    );

    // Map the suspect nodes back to productions.
    let mut suspect_prods: Vec<psme_ops::Symbol> = Vec::new();
    for (node, hits) in diag.suspects.iter().take(10) {
        for name in &engine.net.node(*node).prod_names {
            if !suspect_prods.contains(name) {
                println!("  suspect production {name} (node {node}, in {hits} chain-bound cycles)");
                suspect_prods.push(*name);
            }
        }
    }

    // ---- Pass 2: rebuild the suspects bilinearly where a plan exists. ----
    let mut orgs = Vec::new();
    for name in &suspect_prods {
        if let Some(p) = task.productions.iter().find(|p| p.name == *name) {
            for k0 in (1..=5).rev() {
                if let Some(groups) = plan_bilinear(p, k0) {
                    if groups.len() >= 3 {
                        println!("  reorganizing {name}: {} groups (prefix {k0})", groups.len());
                        orgs.push((*name, NetworkOrg::Bilinear(groups)));
                        break;
                    }
                }
            }
        }
    }
    let (_, engine2) = run_serial_with_orgs(&task, RunMode::WithoutChunking, true, &orgs);
    let cycles2 = match_cycles(&engine2.trace);
    let diag2 = diagnose_run(&cycles2, &cost);
    let total2 = diag2.small_cycle_us + diag2.long_chain_us + diag2.parallel_us;
    println!(
        "bilinear pass: {:.0}% of work in chain-bound cycles",
        100.0 * diag2.long_chain_us / total2
    );

    // ---- Compare simulated speedups. ----
    for (label, cyc) in [("linear", &cycles), ("adaptive-bilinear", &cycles2)] {
        let sweep = speedup_sweep(cyc, SimScheduler::Multi);
        let at11 = sweep.iter().find(|&&(w, _)| w == 11).map(|&(_, s)| s).unwrap_or(0.0);
        println!("{label:>18}: speedup at 11 processes = {at11:.2}x");
    }
}
