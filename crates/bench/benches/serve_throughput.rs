//! Serving-layer throughput: sessions/sec and p99 decision-cycle latency
//! across 1–13 workers × {1, 8, 64} concurrent sessions × all three
//! schedulers.
//!
//! Two halves, one artifact (`BENCH_serve_throughput.json`):
//!
//! * **Modeled sweeps** — the host has far fewer cores than the sweep, so
//!   (exactly like the match-parallelism figures) the worker axis runs on
//!   a deterministic model: per-session decision-cycle service times are
//!   derived from *real captured traces* (each trace cycle costed on the
//!   NS32032 model at one match process under the scheduler in question),
//!   then fed to `psme_serve::des::simulate_serve`. The scheduler's
//!   session-queue discipline enters as per-dispatch overhead: a single
//!   shared queue serializes every pop (overhead grows with workers),
//!   per-worker queues pay a constant lock hop, work-stealing deques pop
//!   lock-free and pay only the occasional steal.
//! * **Host measurement** — a small real [`psme_serve::serve`] run (every
//!   scheduler, the host's own core budget) so the artifact also records
//!   observed wall-clock behaviour, not just modeled behaviour.
//!
//! Acceptance gate (asserted here): modeled aggregate throughput at
//! 8 workers / 64 sessions under work stealing ≥ 4× the 1-worker
//! single-session baseline.

use psme_bench::*;
use psme_core::Scheduler;
use psme_obs::{Json, Quantiles};
use psme_serve::{build_topology, serve, simulate_serve, DesConfig, ServeConfig, SessionSpec};
use psme_sim::{simulate_cycle, SimConfig, SimScheduler};
use psme_tasks::{eight_puzzle, scrambled, RunMode};

const SESSION_COUNTS: [usize; 3] = [1, 8, 64];

const SCHEDULERS: [(&str, Scheduler, SimScheduler); 3] = [
    ("single", Scheduler::SingleQueue, SimScheduler::Single),
    ("multi", Scheduler::MultiQueue, SimScheduler::Multi),
    ("work-stealing", Scheduler::WorkStealing, SimScheduler::WorkStealing),
];

/// Decision cycles per dispatch slice (matches `ServeConfig::default`).
const SLICE: usize = 8;

/// Base per-dispatch overhead: one session-queue pop + session handoff,
/// seconds. Same order as the simulator's queue-access costs.
const DISPATCH_BASE: f64 = 20e-6;

/// Per-dispatch overhead for a scheduler at a worker count.
///
/// Single shared queue: every pop takes the one lock, so expected wait
/// grows with the number of workers contending. Per-worker queues: a
/// constant uncontended lock hop. Work-stealing deques: owner pops are
/// lock-free; only the occasional steal pays.
fn dispatch_overhead(sched: SimScheduler, workers: usize) -> f64 {
    match sched {
        SimScheduler::Single => DISPATCH_BASE * workers as f64,
        SimScheduler::Multi => DISPATCH_BASE,
        SimScheduler::WorkStealing => DISPATCH_BASE * 0.5,
    }
}

/// Per-cycle service seconds for one session workload under a scheduler:
/// every captured trace cycle costed at one match process (a served
/// session's own match runs on the worker that holds it).
fn service_vector(sched: SimScheduler, seed: u64, learning: bool) -> Vec<f64> {
    let task = eight_puzzle(&scrambled(3, seed));
    let mode = if learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
    let (_, trace) = capture(&task, mode);
    trace.cycles.iter().map(|c| simulate_cycle(c, &SimConfig::new(1, sched)).makespan_us * 1e-6).collect()
}

fn main() {
    println!("serve_throughput: sessions/sec and p99 cycle latency");
    println!(
        "model: captured per-cycle costs -> serve DES; sweep {:?} workers x {SESSION_COUNTS:?} sessions",
        WORKER_SWEEP
    );

    // One artifact section per scheduler; inside, one sweep per session
    // count. The 8 distinct session workloads (a quarter learning, like
    // the isolation gate) are tiled up to each session count.
    let mut sched_json: Vec<(String, Json)> = Vec::new();
    let mut gate_baseline = 0.0f64;
    let mut gate_ws8 = 0.0f64;
    for (label, _, sim_sched) in SCHEDULERS {
        let workloads: Vec<Vec<f64>> =
            (0..8).map(|seed| service_vector(sim_sched, seed, seed % 4 == 0)).collect();
        let mut counts_json: Vec<(String, Json)> = Vec::new();
        for n_sessions in SESSION_COUNTS {
            let sessions: Vec<Vec<f64>> =
                (0..n_sessions).map(|i| workloads[i % workloads.len()].clone()).collect();
            let mut rows: Vec<Vec<String>> = Vec::new();
            let mut sweep_points: Vec<Json> = Vec::new();
            for &w in WORKER_SWEEP {
                let r = simulate_serve(
                    &sessions,
                    &DesConfig {
                        workers: w,
                        slice: SLICE,
                        dispatch_overhead: dispatch_overhead(sim_sched, w),
                    },
                );
                let lat = Quantiles::from_samples(&r.cycle_latency);
                if label == "work-stealing" && w == 1 && n_sessions == 1 {
                    gate_baseline = r.sessions_per_sec;
                }
                if label == "work-stealing" && w == 8 && n_sessions == 64 {
                    gate_ws8 = r.sessions_per_sec;
                }
                rows.push(vec![
                    w.to_string(),
                    f2(r.sessions_per_sec),
                    f2(lat.p99 * 1e3),
                    f2(r.makespan),
                ]);
                sweep_points.push(Json::obj([
                    ("workers", Json::from(w as u64)),
                    ("sessions_per_sec", Json::float(r.sessions_per_sec)),
                    ("p50_cycle_ms", Json::float(lat.p50 * 1e3)),
                    ("p99_cycle_ms", Json::float(lat.p99 * 1e3)),
                    ("makespan_s", Json::float(r.makespan)),
                ]));
            }
            print_table(
                &format!("{label} / {n_sessions} sessions"),
                &["workers", "sessions/s", "p99 cycle ms", "makespan s"],
                &rows,
            );
            counts_json.push((n_sessions.to_string(), Json::arr(sweep_points)));
        }
        sched_json.push((label.to_string(), Json::Obj(counts_json)));
    }

    // The acceptance gate: 8 workers serving 64 sessions must deliver at
    // least 4x the single-worker single-session throughput.
    let ratio = gate_ws8 / gate_baseline.max(1e-12);
    println!(
        "\ngate: ws 8w/64s {:.2} sessions/s vs 1w/1s {:.2} sessions/s = {:.2}x (need >= 4)",
        gate_ws8, gate_baseline, ratio
    );
    assert!(
        ratio >= 4.0,
        "8-worker/64-session throughput ({gate_ws8:.3}/s) must be >= 4x the \
         1-worker/1-session baseline ({gate_baseline:.3}/s), got {ratio:.2}x"
    );

    // Host measurement: real serving loop, every scheduler, modest scale
    // (8 sessions through a 4-slot table on up to 4 threads).
    let mut host_json: Vec<(String, Json)> = Vec::new();
    let specs: Vec<SessionSpec> = (0..8)
        .map(|seed| SessionSpec {
            name: format!("host-{seed}"),
            task: eight_puzzle(&scrambled(3, seed)),
            learning: seed % 4 == 0,
        })
        .collect();
    let topo = build_topology(&specs[0].task);
    for (label, sched, _) in SCHEDULERS {
        let report = serve(
            topo.clone(),
            specs.clone(),
            ServeConfig {
                workers: 4,
                scheduler: sched,
                table_capacity: 4,
                ..Default::default()
            },
        );
        let lat = &report.aggregate_cycle_latency;
        println!(
            "host {label} 4w/8s: {:.2} sessions/s, p99 cycle {:.2} ms, shed {}",
            report.sessions_per_sec,
            lat.p99 * 1e-6,
            report.shed
        );
        assert_eq!(report.shed, 0, "host run must not shed");
        host_json.push((
            label.to_string(),
            Json::obj([
                ("workers", Json::from(4u64)),
                ("sessions", Json::from(8u64)),
                ("sessions_per_sec", Json::float(report.sessions_per_sec)),
                ("p50_cycle_ms", Json::float(lat.p50 * 1e-6)),
                ("p99_cycle_ms", Json::float(lat.p99 * 1e-6)),
                ("wall_seconds", Json::float(report.wall_seconds)),
            ]),
        ));
    }

    emit_artifact(
        "serve_throughput",
        &Json::obj([
            ("figure", Json::from("serve-throughput")),
            (
                "title",
                Json::from("Multi-session serving: sessions/sec and p99 cycle latency"),
            ),
            ("workers_swept", Json::arr(WORKER_SWEEP.iter().map(|&w| Json::from(w as u64)))),
            (
                "session_counts",
                Json::arr(SESSION_COUNTS.iter().map(|&n| Json::from(n as u64))),
            ),
            ("slice_decisions", Json::from(SLICE as u64)),
            ("model", Json::Obj(sched_json)),
            (
                "gate",
                Json::obj([
                    ("baseline_1w_1s_sessions_per_sec", Json::float(gate_baseline)),
                    ("ws_8w_64s_sessions_per_sec", Json::float(gate_ws8)),
                    ("ratio", Json::float(ratio)),
                    ("required", Json::float(4.0)),
                ]),
            ),
            ("host", Json::Obj(host_json)),
        ]),
    );
}
