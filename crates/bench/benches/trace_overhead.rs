//! Overhead of always-on event tracing in the serving loop.
//!
//! The flight-recorder design brief is "cheap enough to leave on": each
//! event is a branch plus one array write into a thread-local ring, and
//! rings merge only once, at the join barrier. This bench holds the gate:
//! serving 64 sessions on 8 workers with tracing enabled must stay within
//! 5% of the same batch with tracing compiled to its disabled branch.
//!
//! Methodology for a noisy single-core host: the on/off arms run
//! *interleaved* (on, off, on, off, …) so drift hits both equally, and the
//! comparison uses the median sessions/sec of each arm. The artifact
//! (`BENCH_trace_overhead.json`) records every trial, the medians, the
//! overhead percentage, and the traced run's event statistics; `check.sh`
//! re-asserts the committed artifact against the bound.

use psme_bench::*;
use psme_core::Scheduler;
use psme_obs::{Json, TraceConfig};
use psme_serve::{build_topology, serve, ServeConfig, ServeReport, SessionSpec};
use psme_tasks::{eight_puzzle, scrambled};

const WORKERS: usize = 8;
const SESSIONS: usize = 64;
const TRIALS: usize = 7;
const BOUND_PCT: f64 = 5.0;

fn batch() -> Vec<SessionSpec> {
    (0..SESSIONS)
        .map(|seed| SessionSpec {
            name: format!("ovh-{seed}"),
            task: eight_puzzle(&scrambled(2, seed as u64)),
            learning: seed % 4 == 0,
        })
        .collect()
}

fn run(trace: TraceConfig) -> ServeReport {
    let specs = batch();
    let topo = build_topology(&specs[0].task);
    serve(
        topo,
        specs,
        ServeConfig {
            workers: WORKERS,
            scheduler: Scheduler::WorkStealing,
            table_capacity: 32,
            admission_depth: SESSIONS,
            trace,
            ..Default::default()
        },
    )
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn main() {
    println!("trace_overhead: {SESSIONS} sessions / {WORKERS} workers, tracing on vs off");
    println!("{TRIALS} interleaved trials per arm, medians compared (bound {BOUND_PCT}%)");

    // Warm-up: touch both paths once so first-run effects (page faults,
    // lazy allocation) don't land on either measured arm.
    run(TraceConfig::default());
    run(TraceConfig::disabled());

    let mut on = Vec::with_capacity(TRIALS);
    let mut off = Vec::with_capacity(TRIALS);
    let mut traced_stats: Option<(u64, u64, u64)> = None;
    for trial in 0..TRIALS {
        let r_on = run(TraceConfig::default());
        assert_eq!(r_on.shed, 0, "capacity covers the batch");
        if traced_stats.is_none() {
            traced_stats = Some((
                r_on.trace.events.len() as u64,
                r_on.trace.dropped,
                r_on.flight.triggers,
            ));
        }
        on.push(r_on.sessions_per_sec);
        let r_off = run(TraceConfig::disabled());
        assert_eq!(r_off.shed, 0);
        off.push(r_off.sessions_per_sec);
        println!(
            "  trial {trial}: on {:.2} sessions/s, off {:.2} sessions/s",
            on[trial], off[trial]
        );
    }

    let med_on = median(&on);
    let med_off = median(&off);
    // Positive = tracing costs throughput; negative just means noise won.
    let overhead_pct = (med_off - med_on) / med_off * 100.0;
    let (events, dropped, triggers) = traced_stats.expect("at least one traced trial");
    println!(
        "\nmedian on {med_on:.2} vs off {med_off:.2} sessions/s -> overhead {overhead_pct:.2}% \
         (bound {BOUND_PCT}%)"
    );
    println!("traced run: {events} events merged, {dropped} dropped, {triggers} flight triggers");
    assert!(events > 0, "tracing on must record events");

    emit_artifact(
        "trace_overhead",
        &Json::obj([
            ("figure", Json::from("trace-overhead")),
            ("title", Json::from("Flight-recorder tracing overhead in the serving loop")),
            ("workers", Json::from(WORKERS as u64)),
            ("sessions", Json::from(SESSIONS as u64)),
            ("trials", Json::from(TRIALS as u64)),
            ("on_sessions_per_sec", Json::arr(on.iter().map(|&v| Json::float(v)))),
            ("off_sessions_per_sec", Json::arr(off.iter().map(|&v| Json::float(v)))),
            ("median_on", Json::float(med_on)),
            ("median_off", Json::float(med_off)),
            ("overhead_pct", Json::float(overhead_pct)),
            ("bound_pct", Json::float(BOUND_PCT)),
            (
                "traced_run",
                Json::obj([
                    ("events", Json::from(events)),
                    ("dropped", Json::from(dropped)),
                    ("flight_triggers", Json::from(triggers)),
                ]),
            ),
        ]),
    );

    assert!(
        overhead_pct <= BOUND_PCT,
        "tracing overhead {overhead_pct:.2}% exceeds the {BOUND_PCT}% bound \
         (median on {med_on:.3}, off {med_off:.3} sessions/s)"
    );
    println!("gate: overhead {overhead_pct:.2}% <= {BOUND_PCT}% — ok");
}
