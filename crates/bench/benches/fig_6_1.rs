//! Figure 6-1: speedups without chunking, single task queue.

use psme_bench::*;
use psme_sim::SimScheduler;
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-1: Speedups without chunking, SINGLE task queue");
    println!("paper: low speedups, max ≈4.2-fold, decreasing beyond ~9 processes;");
    println!("paper uniprocessor times: eight-puzzle 37.7 s, strips 43.7 s, cypress 172.7 s");
    for (name, task) in paper_tasks() {
        let (report, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        println!(
            "\n{name}: decisions={} simulated uniproc {:.1} s ({} tasks)",
            report.stats.decisions,
            uniproc_seconds(&cycles),
            trace.total_tasks()
        );
        let sweep = speedup_sweep(&cycles, SimScheduler::Single);
        print_curve(&format!("{name} — speedup vs match processes"), &sweep, "x");
        let max = sweep.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        let s13 = sweep.last().unwrap().1;
        println!("  max speedup {max:.2}x; at 13 processes {s13:.2}x");
    }
}
