//! Figure 6-1: speedups without chunking, single task queue.

use psme_bench::*;
use psme_obs::Json;
use psme_sim::{profile_run, CostModel, SimScheduler};
use psme_tasks::RunMode;

fn main() {
    println!("Figure 6-1: Speedups without chunking, SINGLE task queue");
    println!("paper: low speedups, max ≈4.2-fold, decreasing beyond ~9 processes;");
    println!("paper uniprocessor times: eight-puzzle 37.7 s, strips 43.7 s, cypress 172.7 s");
    let mut tasks_json: Vec<(String, Json)> = Vec::new();
    for (name, task) in paper_tasks() {
        let (report, engine) = capture_engine(&task, RunMode::WithoutChunking);
        let trace = &engine.trace;
        let cycles = match_cycles(trace);
        println!(
            "\n{name}: decisions={} simulated uniproc {:.1} s ({} tasks)",
            report.stats.decisions,
            uniproc_seconds(&cycles),
            trace.total_tasks()
        );
        let sweep = speedup_sweep(&cycles, SimScheduler::Single);
        print_curve(&format!("{name} — speedup vs match processes"), &sweep, "x");
        let max = sweep.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        let s13 = sweep.last().unwrap().1;
        println!("  max speedup {max:.2}x; at 13 processes {s13:.2}x");

        // §6-style hot-spot profile: where the simulated time goes, node by
        // node, keyed back to production names.
        let profiler = profile_run(&cycles, &CostModel::default());
        let hot = profiler.report(&engine.net, 10);
        if name == "eight-puzzle" {
            println!("\n{}", hot.to_text());
        }
        tasks_json.push((
            name.to_string(),
            Json::obj([
                ("decisions", Json::from(report.stats.decisions)),
                ("tasks", Json::from(trace.total_tasks())),
                ("uniproc_seconds", Json::float(uniproc_seconds(&cycles))),
                ("speedups", sweep_json(&sweep, "speedup")),
                ("max_speedup", Json::float(max)),
                ("hot_nodes", hot.to_json()),
            ]),
        ));
    }
    emit_artifact(
        "fig_6_1",
        &Json::obj([
            ("figure", Json::from("6-1")),
            ("title", Json::from("Speedups without chunking, single task queue")),
            ("scheduler", Json::from("single")),
            ("workers_swept", Json::arr(WORKER_SWEEP.iter().map(|&w| Json::from(w as u64)))),
            ("tasks", Json::Obj(tasks_json)),
        ]),
    );
}
