//! Online adaptive reorganization: bounded worst-case match.
//!
//! Two experiments, one artifact (`BENCH_reorg_adaptive.json`):
//!
//! 1. **Adversarial sweep** — the §7 worst-case cross-product chain
//!    (`testgen::adversarial_chain`) at increasing load sizes, three arms:
//!    *static linear* (the paper's default organization, Θ(n^(G+1)) total
//!    work), *static bilinear* (the oracle that knew the right grouping up
//!    front, Θ(n)), and *adaptive* (starts linear, the online
//!    [`ChainDetector`] flags the chain mid-run and the engine rebuilds it
//!    bilinearly at a quiescent boundary). Work is total beta tasks — the
//!    adaptive arm's count *includes* the rebuild's §5.2 update tasks, so
//!    the surgery pays for itself inside the measurement.
//! 2. **Armed-but-idle overhead** — the paper tasks with the detector armed
//!    but never recommending (dominance pinned above 1.0) versus off.
//!    Arming costs one per-task cost-vector add in the hot loop plus one
//!    window fold per decision; the gate is ≤ 3% wall overhead. A third
//!    column runs the *default* thresholds, where strips — the task whose
//!    long chain the offline `adaptive_bilinear` bench diagnoses — really
//!    does fire mid-run; its reorg count is recorded alongside.
//!
//! Gates (enforced by `scripts/check.sh` on the committed artifact):
//! adaptive log-log growth exponent ≤ 2.3, linear/adaptive work ratio at
//! the largest size ≥ 5×, armed-idle overhead ≤ 3% (mean over the paper
//! tasks — single-task estimates carry ±2–3% of heap-layout and host
//! noise that largely averages out across the three workloads).

use psme_bench::*;
use psme_obs::Json;
use psme_rete::testgen::{adversarial_chain, AdversarialConfig};
use psme_rete::{plan_bilinear, ChainDetector, NetworkOrg, ReorgConfig, ReteNetwork, SerialEngine};
use psme_soar::SoarTask;
use psme_tasks::DECISION_BUDGET;
use std::sync::Arc;
use std::time::Instant;

const GROUPS: usize = 3;
const ROUNDS: &[usize] = &[8, 12, 16, 24, 32];

/// Detector tuning for the sweep: default dominance/EWMA/cooldown, but the
/// window floor scaled to the instance — the 2 000-cost default is sized
/// for full agent decision cycles, while here one engine cycle *is* the
/// window and the smallest sweep point must still trip detection before
/// the cross-product dominates.
fn sweep_cfg() -> ReorgConfig {
    ReorgConfig { min_window_cost: 200, ..ReorgConfig::default() }
}

fn static_run(rounds: usize, org: NetworkOrg) -> u64 {
    let inst = adversarial_chain(AdversarialConfig { groups: GROUPS, rounds });
    let mut e = SerialEngine::new(ReteNetwork::new());
    e.add_production(Arc::new(inst.production), org).unwrap();
    for batch in inst.rounds {
        e.apply_changes(batch, vec![]);
    }
    e.total_tasks()
}

struct AdaptiveRun {
    tasks: u64,
    reorg_round: Option<usize>,
    retired: usize,
    chain_before: usize,
    chain_after: usize,
}

/// Linear start; one detector poll per cycle (the quiescent boundary of
/// this single-production workload); act on the first decision.
fn adaptive_run(rounds: usize) -> AdaptiveRun {
    let inst = adversarial_chain(AdversarialConfig { groups: GROUPS, rounds });
    let mut e = SerialEngine::new(ReteNetwork::new());
    e.add_production(Arc::new(inst.production), NetworkOrg::Linear).unwrap();
    e.set_cost_profiling(true);
    let mut det = ChainDetector::new(sweep_cfg());
    let mut run = AdaptiveRun {
        tasks: 0,
        reorg_round: None,
        retired: 0,
        chain_before: 0,
        chain_after: 0,
    };
    for (r, batch) in inst.rounds.into_iter().enumerate() {
        e.apply_changes(batch, vec![]);
        if let Some(d) = e.poll_reorg(&mut det) {
            let out = e.reorganize_production(d.prod_idx, d.org).expect("detector plan builds");
            run.reorg_round = Some(r);
            run.retired = out.retired;
            run.chain_before = d.chain_before;
            run.chain_after = d.chain_after;
        }
    }
    run.tasks = e.total_tasks();
    run
}

/// Least-squares slope of ln(work) against ln(rounds) — the growth
/// exponent of the arm's total-work curve.
fn fit_exponent(points: &[(usize, u64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(r, w) in points {
        let x = (r as f64).ln();
        let y = (w.max(1) as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Armed-but-idle configuration: the detector does all its observation
/// work — per-task cost accumulation in the hot loop, a window fold at
/// every decision — but the dominance threshold sits above 1.0, so it can
/// never recommend. Isolates the pure cost of *arming* from the
/// task-dependent effect of acting (which the default-threshold column
/// reports separately: strips genuinely fires).
fn idle_cfg() -> ReorgConfig {
    ReorgConfig { dominance: 1.01, ..ReorgConfig::default() }
}

/// One learning run of a paper task on the serial engine. Returns
/// committed reorganizations.
fn paper_run(task: &SoarTask, reorg: Option<&ReorgConfig>) -> u64 {
    let engine = SerialEngine::new(ReteNetwork::new());
    let mut agent = task.agent(engine);
    if let Some(cfg) = reorg {
        agent.enable_adaptive_reorg(cfg.clone());
    }
    agent.learning = true;
    agent.run(DECISION_BUDGET);
    agent.stats.reorganizations
}

/// Cumulative on-CPU nanoseconds of this process (Linux scheduler
/// accounting). Unlike wall clock it excludes run-queue wait, which on a
/// shared host dwarfs a 3% effect; the bench is single-threaded, so the
/// process total is the thread total.
fn cpu_ns() -> Option<u64> {
    std::fs::read_to_string("/proc/self/schedstat")
        .ok()?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// Seconds for `BATCH` back-to-back runs — on-CPU time when the host
/// exposes it, wall otherwise — plus total reorganizations across the
/// batch. Batched so a single run's sub-10ms cost doesn't drown a 3% gate
/// in timer granularity.
const BATCH: usize = 10;
fn sample(task: &SoarTask, reorg: Option<&ReorgConfig>) -> (f64, u64) {
    let c0 = cpu_ns();
    let t0 = Instant::now();
    let mut reorgs = 0;
    for _ in 0..BATCH {
        reorgs += paper_run(task, reorg);
    }
    let wall = t0.elapsed().as_secs_f64();
    let secs = match (c0, cpu_ns()) {
        (Some(a), Some(b)) => (b - a) as f64 * 1e-9,
        _ => wall,
    };
    (secs, reorgs)
}

/// Best-of-samples time: arming adds strictly positive work, so the
/// minimum over interleaved samples is the noise-robust level estimator.
fn best(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Overhead ratio from interleaved samples: total armed CPU over total
/// off CPU. The arms run back-to-back inside each iteration with the
/// order alternating, so the systematic order effect (whichever arm runs
/// second inherits a warm cache) cancels across iteration pairs, and
/// summing all samples averages host-speed drift over the whole run
/// instead of letting one quantile pick a mode.
fn ratio_of_sums(num: &[f64], den: &[f64]) -> f64 {
    num.iter().sum::<f64>() / den.iter().sum::<f64>()
}

fn main() {
    println!("Adaptive join reorganization: worst-case growth + armed-idle overhead");

    // ---- Experiment 1: adversarial sweep. ----
    let oracle_plan = {
        let inst = adversarial_chain(AdversarialConfig { groups: GROUPS, rounds: 2 });
        plan_bilinear(&inst.production, 1).expect("adversarial chain has a bilinear plan")
    };
    println!("\nadversarial cross-product, {GROUPS} groups (total beta tasks):");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>7} {:>8}",
        "rounds", "linear", "bilinear", "adaptive", "reorg@", "retired"
    );
    let mut lin = Vec::new();
    let mut bil = Vec::new();
    let mut ada = Vec::new();
    let mut sweep_rows = Vec::new();
    for &rounds in ROUNDS {
        let l = static_run(rounds, NetworkOrg::Linear);
        let b = static_run(rounds, NetworkOrg::Bilinear(oracle_plan.clone()));
        let a = adaptive_run(rounds);
        println!(
            "{rounds:>7} {l:>12} {b:>12} {:>12} {:>7} {:>8}",
            a.tasks,
            a.reorg_round.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            a.retired
        );
        lin.push((rounds, l));
        bil.push((rounds, b));
        sweep_rows.push(Json::obj([
            ("rounds", Json::from(rounds as u64)),
            ("linear_tasks", Json::from(l)),
            ("bilinear_tasks", Json::from(b)),
            ("adaptive_tasks", Json::from(a.tasks)),
            (
                "reorg_round",
                a.reorg_round.map(|r| Json::from(r as u64)).unwrap_or(Json::Null),
            ),
            ("retired_nodes", Json::from(a.retired as u64)),
            ("chain_before", Json::from(a.chain_before as u64)),
            ("chain_after", Json::from(a.chain_after as u64)),
        ]));
        ada.push((rounds, a.tasks));
    }
    let exp_lin = fit_exponent(&lin);
    let exp_bil = fit_exponent(&bil);
    let exp_ada = fit_exponent(&ada);
    let ratio = lin.last().unwrap().1 as f64 / ada.last().unwrap().1 as f64;
    println!("\ngrowth exponents (log-log fit over the sweep):");
    println!("  linear   {}  (paper: Θ(n^{}) for {GROUPS} groups)", f2(exp_lin), GROUPS + 1);
    println!("  bilinear {}  (oracle grouping, Θ(n))", f2(exp_bil));
    println!("  adaptive {}  (gate: ≤ 2.3)", f2(exp_ada));
    println!("  linear/adaptive work at {} rounds: {}× (gate: ≥ 5×)", ROUNDS.last().unwrap(), f2(ratio));

    // ---- Experiment 2: armed-but-idle overhead on the paper tasks. ----
    const SAMPLES: usize = 30;
    let idle = idle_cfg();
    let default = ReorgConfig::default();
    println!("\narmed-but-idle ({SAMPLES}×{BATCH}-run samples: columns best-of, overhead Σ-ratio):");
    println!(
        "{:>14} {:>10} {:>10} {:>9} {:>12} {:>7}",
        "task", "off (s)", "idle (s)", "overhead", "default (s)", "reorgs"
    );
    let mut idle_rows = Vec::new();
    let mut max_overhead = f64::MIN;
    let mut sum_overhead = 0.0;
    let mut n_tasks = 0usize;
    for (name, task) in paper_tasks() {
        // One discarded warmup batch per arm, then interleave the arms so
        // drift hits all of them equally.
        let _ = (sample(&task, None), sample(&task, Some(&idle)), sample(&task, Some(&default)));
        let mut off = Vec::new();
        let mut armed_idle = Vec::new();
        let mut armed_def = Vec::new();
        let mut idle_reorgs = 0;
        let mut def_reorgs = 0;
        for i in 0..SAMPLES {
            // Alternate the off/idle order so neither arm systematically
            // sits in the warmer slot of the pair.
            if i % 2 == 0 {
                off.push(sample(&task, None).0);
                let (w, r) = sample(&task, Some(&idle));
                armed_idle.push(w);
                idle_reorgs += r;
            } else {
                let (w, r) = sample(&task, Some(&idle));
                armed_idle.push(w);
                idle_reorgs += r;
                off.push(sample(&task, None).0);
            }
            let (w, r) = sample(&task, Some(&default));
            armed_def.push(w);
            def_reorgs += r;
        }
        assert_eq!(idle_reorgs, 0, "{name}: the idle configuration must never fire");
        let (o, a, d) = (best(&off), best(&armed_idle), best(&armed_def));
        let pct = 100.0 * (ratio_of_sums(&armed_idle, &off) - 1.0);
        max_overhead = max_overhead.max(pct);
        sum_overhead += pct;
        n_tasks += 1;
        println!(
            "{name:>14} {:>10} {:>10} {:>8}% {:>12} {:>7}",
            f2(o),
            f2(a),
            f2(pct),
            f2(d),
            def_reorgs
        );
        idle_rows.push(Json::obj([
            ("task", Json::from(name)),
            ("off_wall_s", Json::float(o)),
            ("armed_idle_wall_s", Json::float(a)),
            ("overhead_pct", Json::float(pct)),
            ("armed_default_wall_s", Json::float(d)),
            ("default_reorganizations", Json::from(def_reorgs)),
        ]));
    }
    let mean_overhead = sum_overhead / n_tasks as f64;
    println!(
        "  armed-idle overhead: mean {}% (gate: ≤ 3%), max {}%",
        f2(mean_overhead),
        f2(max_overhead)
    );

    let cfg = sweep_cfg();
    let doc = Json::obj([
        ("figure", Json::from("reorg-adaptive")),
        (
            "title",
            Json::from(
                "Online adaptive join reorganization: bounded worst-case match via mid-run bilinear rebuilds",
            ),
        ),
        (
            "config",
            Json::obj([
                ("groups", Json::from(GROUPS as u64)),
                ("rounds", Json::arr(ROUNDS.iter().map(|&r| Json::from(r as u64)))),
                ("detector_min_window_cost", Json::from(cfg.min_window_cost)),
                ("detector_dominance", Json::float(cfg.dominance)),
                ("detector_cooldown", Json::from(cfg.cooldown)),
                ("idle_dominance", Json::float(idle.dominance)),
                ("idle_batch", Json::from(BATCH as u64)),
                ("idle_samples", Json::from(SAMPLES as u64)),
            ]),
        ),
        (
            "adversarial",
            Json::obj([
                ("sweep", Json::arr(sweep_rows)),
                (
                    "growth_exponent",
                    Json::obj([
                        ("linear", Json::float(exp_lin)),
                        ("bilinear", Json::float(exp_bil)),
                        ("adaptive", Json::float(exp_ada)),
                    ]),
                ),
                ("linear_over_adaptive_at_largest", Json::float(ratio)),
            ]),
        ),
        (
            "armed_idle",
            Json::obj([
                ("tasks", Json::arr(idle_rows)),
                ("mean_overhead_pct", Json::float(mean_overhead)),
                ("max_overhead_pct", Json::float(max_overhead)),
            ]),
        ),
    ]);
    emit_artifact("reorg_adaptive", &doc);
}
