//! Figure 6-8: the constrained bilinear network — chain-depth reduction and
//! simulated speedup on the long-chain production's update cycle.

use psme_bench::*;
use psme_rete::{plan_bilinear, NetworkOrg, ReteNetwork, SerialEngine};
use psme_sim::{simulate_cycle, SimConfig, SimScheduler};

fn main() {
    println!("Figure 6-8: The constrained bilinear network");
    println!("paper: reduces monitor-strips-state's chain from 43 to ≈15 CEs");
    let (_, task) = paper_tasks().remove(1);
    let monitor = task
        .productions
        .iter()
        .find(|p| p.name == psme_ops::intern("monitor-strips-state"))
        .expect("monitor production")
        .clone();

    let groups = plan_bilinear(&monitor, 5).expect("bilinear plan");
    println!("\nbilinear plan: {} groups (constraint prefix = 5 CEs)", groups.len());

    let mut lin = ReteNetwork::new();
    lin.add_production(monitor.clone(), NetworkOrg::Linear).unwrap();
    let mut bil = ReteNetwork::new();
    bil.add_production(monitor.clone(), NetworkOrg::Bilinear(groups)).unwrap();
    println!("linear chain depth:   {}", lin.max_chain_depth());
    println!("bilinear chain depth: {}", bil.max_chain_depth());

    // Simulate a state-change cycle: install the strips world and goal
    // context, then trace the arrival of a fresh state's wme set.
    for (label, net) in [("linear", lin), ("bilinear", bil)] {
        let mut eng = SerialEngine::new(net);
        // Static structure first (untraced).
        let mut statics = Vec::new();
        let mut state_wmes = Vec::new();
        for w in &task.init_wmes {
            if w.class == psme_ops::intern("state") {
                state_wmes.push(w.clone());
            } else {
                statics.push(w.clone());
            }
        }
        // Goal-context wmes the monitor needs.
        let mut classes = task.classes.clone();
        let g = |s: &str, classes: &psme_ops::ClassRegistry| psme_ops::parse_wme(s, classes).unwrap();
        statics.push(g("(goal ^id g1 ^problem-space ps-strips)", &mut classes));
        statics.push(g("(goal ^id g1 ^state s0)", &mut classes));
        eng.apply_changes(statics, vec![]);
        eng.capture = true;
        eng.apply_changes(state_wmes, vec![]);
        let trace = &eng.trace.cycles[0];
        let uni = simulate_cycle(trace, &SimConfig::new(1, SimScheduler::Multi));
        let par = simulate_cycle(trace, &SimConfig::new(11, SimScheduler::Multi));
        println!(
            "{label:>9}: {} tasks, uniproc {:.0} µs, 11-proc {:.0} µs, speedup {:.2}x",
            trace.len(),
            uni.makespan_us,
            par.makespan_us,
            uni.makespan_us / par.makespan_us
        );
    }
    println!("\nshape check: bilinear shortens the critical chain and lifts the speedup.");
}
