//! Table 5-1: CEs per chunk and generated code size.

use psme_bench::*;
use psme_rete::{code_size, CodeSizeModel, NetworkOrg, ReteNetwork};
use psme_tasks::RunMode;

fn main() {
    println!("Table 5-1: Number of CEs per chunk / code size per chunk");
    println!("paper: CEs task-Ps 18/13/26, CEs chunks 36/34/51,");
    println!("       bytes/chunk 7,900/8,500/15,500, bytes/2-input 219/250/304");
    let mut rows = Vec::new();
    for (name, task) in paper_tasks() {
        let (report, _) = capture(&task, RunMode::DuringChunking);
        let chunks = &report.chunks;
        let avg_task_ces = task.avg_ces();
        let avg_chunk_ces = if chunks.is_empty() {
            0.0
        } else {
            chunks.iter().map(|c| c.ce_count_flat() as f64).sum::<f64>() / chunks.len() as f64
        };
        // Compile the chunks into the task's network and measure the
        // modeled code generated per chunk.
        let mut net = ReteNetwork::new();
        for p in &task.productions {
            net.add_production(p.clone(), NetworkOrg::Linear).unwrap();
        }
        let model = CodeSizeModel::default();
        let mut total_bytes = 0u64;
        let mut total_two = 0u64;
        let mut two_bytes_sum = 0u64;
        for c in chunks {
            let add = net.add_production(c.clone(), NetworkOrg::Linear).unwrap();
            let cs = code_size(&net, add.first_new, &model);
            total_bytes += cs.total_bytes;
            total_two += cs.new_two_input;
            two_bytes_sum += cs.bytes_per_two_input * cs.new_two_input;
        }
        let n = chunks.len().max(1) as u64;
        rows.push(vec![
            name.to_string(),
            format!("{avg_task_ces:.0}"),
            format!("{avg_chunk_ces:.0}"),
            format!("{}", total_bytes / n),
            format!("{}", two_bytes_sum.checked_div(total_two).unwrap_or(0)),
            format!("{}", chunks.len()),
        ]);
    }
    print_table(
        "measured",
        &["task", "avg CEs (task Ps)", "avg CEs (chunks)", "bytes/chunk", "bytes/2-input", "chunks"],
        &rows,
    );
    println!("\nclosed-coded alternative (paper: ~15–20 bytes per two-input node):");
    let closed = CodeSizeModel::closed();
    println!("  model bytes/2-input base = {}", closed.two_input_base);
}
