//! Table 6-1: task granularity on the PSM.

use psme_bench::*;
use psme_obs::Json;
use psme_sim::{simulate_run, SimConfig, SimScheduler};
use psme_tasks::RunMode;

fn main() {
    println!("Table 6-1: Granularity of the tasks on the PSM");
    println!("paper: uniproc 37.7/43.7/172.7 s; tasks 87,974/99,611/432,390; avg 428/438/400 µs");
    let mut rows = Vec::new();
    let mut tasks_json: Vec<(String, Json)> = Vec::new();
    for (name, task) in paper_tasks() {
        let (_, trace) = capture(&task, RunMode::WithoutChunking);
        let cycles = match_cycles(&trace);
        let rs = simulate_run(&cycles, &SimConfig::new(1, SimScheduler::Multi));
        let tasks: u64 = rs.iter().map(|r| r.tasks).sum();
        let busy: f64 = rs.iter().map(|r| r.busy_us).sum();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", busy / 1e6),
            format!("{tasks}"),
            format!("{:.0}", busy / tasks.max(1) as f64),
        ]);
        tasks_json.push((
            name.to_string(),
            Json::obj([
                ("uniproc_sim_seconds", Json::float(busy / 1e6)),
                ("total_tasks", Json::from(tasks)),
                ("avg_us_per_task", Json::float(busy / tasks.max(1) as f64)),
            ]),
        ));
    }
    print_table("measured", &["task", "uniproc time (sim s)", "total tasks", "avg µs/task"], &rows);
    emit_artifact(
        "table_6_1",
        &Json::obj([
            ("table", Json::from("6-1")),
            ("title", Json::from("Granularity of the tasks on the PSM")),
            ("tasks", Json::Obj(tasks_json)),
        ]),
    );
}
