//! Flight-recorder event tracing for the serving stack.
//!
//! End-of-run aggregates (quantiles, shed counts) cannot explain a tail
//! spike after the fact — by the time p99 moved, the events that caused it
//! are gone. This module keeps the event stream itself, cheaply enough to
//! leave on in production:
//!
//! * **[`TraceRing`]** — each worker owns a fixed-capacity ring buffer.
//!   Emitting an event is a branch, a timestamp and an array write: no
//!   allocation, no locks, no syscalls on the hot path. When the ring is
//!   full the *oldest* event is overwritten and a dropped counter bumps —
//!   recent history is what a flight recorder is for. Every event carries
//!   a monotonic per-worker sequence number, so merged traces are
//!   gap-checkable.
//! * **[`TraceLog`]** — rings merge into a run-level log at barriers the
//!   serving loop already has (worker exit, end of run). Sealing sorts by
//!   `(t_ns, worker, seq)` into one causally-ordered timeline.
//! * **[`FlightRecorder`]** — an anomaly detector over the merged stream:
//!   a slice that ran longer than a configurable multiple of the running
//!   p99 (kept in a deterministic [`Reservoir`]), any shed, or a session
//!   halt triggers a dump of the last N events — the "black box" readout.
//! * **Export** — [`TraceLog::to_json`] is the compact run-trace artifact;
//!   [`TraceLog::chrome_json`] emits Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` / Perfetto, with one track per worker, instant
//!   markers for admission-control events, and per-session flow arrows
//!   stitching a session's slices across workers.
//!
//! Event timestamps are nanoseconds from a run origin the caller supplies
//! (one `Instant` shared by all rings of a run), so per-worker streams
//! merge on a common clock. Simulated runs ([`TraceRing::emit_at`]) stamp
//! virtual time instead — the DES sweeps emit the same event stream.

use crate::json::Json;
use crate::quantiles::Reservoir;
use crate::rec::ControlPhase;
use std::collections::VecDeque;
use std::time::Instant;

/// `session` value for events not attributed to any session (engine
/// phases on the control thread).
pub const SESSION_NONE: u32 = u32::MAX;

/// What happened. The serving-loop lifecycle events carry the session id;
/// the phase events reuse [`ControlPhase`] so engine traces and serve
/// traces share one taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Session took a table slot (batch staging or post-retire admit).
    Admitted,
    /// Session entered the dispatch queues for the first time.
    Enqueued,
    /// Worker popped the session; `arg_ns` = queue wait, `cycle_lo` = the
    /// session's decision count entering the slice.
    SliceStart,
    /// Slice finished; `arg_ns` = execution time, `cycle_lo..cycle_hi` =
    /// the decision range the slice covered.
    SliceEnd,
    /// Session went back into the dispatch queues after a slice.
    Reenqueued,
    /// Session completed and left the table.
    Retired,
    /// Session shed by admission backpressure (never ran).
    Shed,
    /// Session executed `(halt)`.
    Halted,
    /// Session hibernated out of the table under memory pressure;
    /// `arg_ns` = snapshot size in bytes.
    Hibernated,
    /// Session resumed from a snapshot on its next dispatch; `arg_ns` =
    /// resume latency (decode + journal replay), nanoseconds.
    Resumed,
    /// A worker ran a session stolen from another shard's queues —
    /// cross-shard work-stealing fired because the thief's own pool was
    /// empty; `arg_ns` = the session's home shard id.
    CrossShardSteal,
    /// The network front-end accepted a connection; `session` = the
    /// connection id, `arg_ns` unused.
    NetAccepted,
    /// A decoded request frame entered the serving stack (wire arrival —
    /// the open-loop injection point); `session` = the session the request
    /// addresses, or [`SESSION_NONE`] for connection-level frames.
    NetRequest,
    /// A shed notification left for a client: admission backpressure
    /// displaced this session after it was accepted over the wire.
    NetShed,
    /// A control phase opened (`arg_ns` unused).
    PhaseBegin(ControlPhase),
    /// A control phase closed (`arg_ns` = phase duration).
    PhaseEnd(ControlPhase),
    /// The adaptive detector flagged a chain-dominant production;
    /// `arg_ns` = the production index.
    ReorgPlanned,
    /// A mid-run reorganization committed; `arg_ns` = the production index.
    ReorgCommitted,
    /// A mid-run rebuild failed and rolled back (the old chain kept
    /// matching); `arg_ns` = the production index.
    ReorgRolledBack,
}

impl TraceKind {
    /// Stable snake_case name (used as the JSON discriminant).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Admitted => "admitted",
            TraceKind::Enqueued => "enqueued",
            TraceKind::SliceStart => "slice_start",
            TraceKind::SliceEnd => "slice_end",
            TraceKind::Reenqueued => "reenqueued",
            TraceKind::Retired => "retired",
            TraceKind::Shed => "shed",
            TraceKind::Halted => "halted",
            TraceKind::Hibernated => "hibernated",
            TraceKind::Resumed => "resumed",
            TraceKind::CrossShardSteal => "cross_shard_steal",
            TraceKind::NetAccepted => "net_accepted",
            TraceKind::NetRequest => "net_request",
            TraceKind::NetShed => "net_shed",
            TraceKind::PhaseBegin(_) => "phase_begin",
            TraceKind::PhaseEnd(_) => "phase_end",
            TraceKind::ReorgPlanned => "reorg_planned",
            TraceKind::ReorgCommitted => "reorg_committed",
            TraceKind::ReorgRolledBack => "reorg_rolled_back",
        }
    }

    /// The control phase, for phase-boundary events.
    pub fn phase(self) -> Option<ControlPhase> {
        match self {
            TraceKind::PhaseBegin(p) | TraceKind::PhaseEnd(p) => Some(p),
            _ => None,
        }
    }
}

/// One trace event. `Copy` and flat — a ring slot is a plain array write.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the run origin (virtual time in DES traces).
    pub t_ns: u64,
    /// Emitting worker (the control thread uses an id past the last worker).
    pub worker: u32,
    /// Monotonic per-worker sequence number.
    pub seq: u64,
    /// Session id, or [`SESSION_NONE`].
    pub session: u32,
    /// Event type.
    pub kind: TraceKind,
    /// First decision cycle covered (slice events; 0 otherwise).
    pub cycle_lo: u64,
    /// One past the last decision cycle covered (slice events; 0 otherwise).
    pub cycle_hi: u64,
    /// Kind-specific duration: queue wait for `SliceStart`, execution time
    /// for `SliceEnd`, phase duration for `PhaseEnd`, else 0.
    pub arg_ns: u64,
}

impl TraceEvent {
    /// Compact JSON for the run-trace artifact.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("t_ns".to_string(), Json::from(self.t_ns)),
            ("w".to_string(), Json::from(self.worker)),
            ("seq".to_string(), Json::from(self.seq)),
            ("kind".to_string(), Json::from(self.kind.name())),
        ];
        if self.session != SESSION_NONE {
            fields.push(("session".to_string(), Json::from(self.session)));
        }
        if let Some(p) = self.kind.phase() {
            fields.push(("phase".to_string(), Json::from(p.name())));
        }
        if self.cycle_lo != 0 || self.cycle_hi != 0 {
            fields.push(("cycle_lo".to_string(), Json::from(self.cycle_lo)));
            fields.push(("cycle_hi".to_string(), Json::from(self.cycle_hi)));
        }
        if self.arg_ns != 0 {
            fields.push(("arg_ns".to_string(), Json::from(self.arg_ns)));
        }
        Json::Obj(fields)
    }
}

/// Tracing configuration, embedded in the serve config (always-on by
/// default — the `trace_overhead` bench gates the cost).
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Master switch. Disabled rings make `emit` a single branch.
    pub enabled: bool,
    /// Per-worker ring capacity (events).
    pub ring_cap: usize,
    /// Bound on the merged run-level log (0 = unbounded). Overflow drops
    /// oldest, counted.
    pub merged_cap: usize,
    /// Also fold each retired session's control-phase spans into the trace
    /// (B/E pairs per session track in the Chrome export). Off by default:
    /// a 400-decision session emits thousands of phase events and would
    /// evict the serving events a flight recorder exists to keep.
    pub session_phases: bool,
    /// Flight-recorder triggering.
    pub flight: FlightConfig,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ring_cap: 4096,
            merged_cap: 1 << 20,
            session_phases: false,
            flight: FlightConfig::default(),
        }
    }
}

impl TraceConfig {
    /// Tracing switched off entirely.
    pub fn disabled() -> TraceConfig {
        TraceConfig { enabled: false, ..TraceConfig::default() }
    }
}

/// A fixed-capacity, drop-oldest event ring owned by one worker.
///
/// All methods take `&mut self`: the ring is thread-local by construction
/// and never shared — merging happens by draining into a [`TraceLog`] at a
/// barrier, from the owning thread.
#[derive(Debug)]
pub struct TraceRing {
    worker: u32,
    origin: Instant,
    enabled: bool,
    cap: usize,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// An enabled ring for `worker` with `cap` slots, stamping against
    /// `origin` (share one origin across all rings of a run).
    pub fn new(worker: u32, cap: usize, origin: Instant) -> TraceRing {
        TraceRing {
            worker,
            origin,
            enabled: true,
            cap: cap.max(1),
            buf: Vec::new(),
            head: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// A disabled ring: every emit is a single branch, nothing is stored.
    pub fn disabled(worker: u32) -> TraceRing {
        TraceRing {
            worker,
            origin: Instant::now(),
            enabled: false,
            cap: 1,
            buf: Vec::new(),
            head: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Build from config (disabled config ⇒ disabled ring).
    pub fn from_config(worker: u32, cfg: &TraceConfig, origin: Instant) -> TraceRing {
        if cfg.enabled {
            TraceRing::new(worker, cfg.ring_cap, origin)
        } else {
            TraceRing::disabled(worker)
        }
    }

    /// Is this ring recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Emitting worker id.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Emit an event stamped with the current time.
    #[inline]
    pub fn emit(&mut self, kind: TraceKind, session: u32, cycle_lo: u64, cycle_hi: u64, arg_ns: u64) {
        if !self.enabled {
            return;
        }
        let t_ns = self.origin.elapsed().as_nanos() as u64;
        self.push(TraceEvent {
            t_ns,
            worker: self.worker,
            seq: 0,
            session,
            kind,
            cycle_lo,
            cycle_hi,
            arg_ns,
        });
    }

    /// Emit an event at an explicit timestamp (virtual DES time, or a
    /// retro-stamped span boundary).
    #[inline]
    pub fn emit_at(
        &mut self,
        t_ns: u64,
        kind: TraceKind,
        session: u32,
        cycle_lo: u64,
        cycle_hi: u64,
        arg_ns: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            t_ns,
            worker: self.worker,
            seq: 0,
            session,
            kind,
            cycle_lo,
            cycle_hi,
            arg_ns,
        });
    }

    #[inline]
    fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            // Full: overwrite the oldest slot. One array write, no shift.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Take the buffered events, oldest first, plus the number dropped
    /// since the last drain. The ring resets and keeps counting sequence
    /// numbers from where it left off.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        let dropped = std::mem::take(&mut self.dropped);
        (out, dropped)
    }
}

/// Chrome-export process ids: shard `s` renders as process
/// `SHARD_PID_BASE + s`, clear of the default pool (pid 1) and the
/// session-phase tracks (pid 2).
const SHARD_PID_BASE: u32 = 10;

/// The merged run-level trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Merged events; causally ordered after [`TraceLog::seal`].
    pub events: Vec<TraceEvent>,
    /// Total events lost: ring overwrites plus merged-cap evictions.
    pub dropped: u64,
    /// Bound applied at seal time (0 = unbounded).
    pub merged_cap: usize,
    /// Worker → shard assignment for sharded serving runs (empty =
    /// unsharded). Mapped workers render as one Chrome track group
    /// (process) per shard; unmapped workers — the control thread — stay
    /// in the default pool process.
    pub shard_of: Vec<(u32, u32)>,
}

impl TraceLog {
    /// An empty log bounded to `merged_cap` events at seal (0 = unbounded).
    pub fn with_cap(merged_cap: usize) -> TraceLog {
        TraceLog { merged_cap, ..TraceLog::default() }
    }

    /// Record that `worker`'s events belong to `shard`: the Chrome export
    /// groups its track under the shard's process.
    pub fn set_shard(&mut self, worker: u32, shard: u32) {
        match self.shard_of.iter_mut().find(|(w, _)| *w == worker) {
            Some(slot) => slot.1 = shard,
            None => self.shard_of.push((worker, shard)),
        }
    }

    /// Chrome process id for `worker`: its shard's track group when
    /// mapped, the default pool otherwise.
    fn pid_of(&self, worker: u32) -> u32 {
        self.shard_of
            .iter()
            .find(|(w, _)| *w == worker)
            .map(|&(_, shard)| SHARD_PID_BASE + shard)
            .unwrap_or(1)
    }

    /// Drain one worker ring into the log (call at a barrier, from the
    /// ring's owning thread or after it has quiesced).
    pub fn absorb(&mut self, ring: &mut TraceRing) {
        let (evs, dropped) = ring.drain();
        self.events.extend_from_slice(&evs);
        self.dropped += dropped;
    }

    /// Sort into one causally-ordered timeline `(t_ns, worker, seq)` and
    /// apply the merged cap, dropping oldest.
    pub fn seal(&mut self) {
        self.events.sort_by_key(|e| (e.t_ns, e.worker, e.seq));
        if self.merged_cap > 0 && self.events.len() > self.merged_cap {
            let excess = self.events.len() - self.merged_cap;
            self.events.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// Is the log in sealed `(t_ns, worker, seq)` order?
    pub fn is_sorted(&self) -> bool {
        self.events.windows(2).all(|w| {
            (w[0].t_ns, w[0].worker, w[0].seq) <= (w[1].t_ns, w[1].worker, w[1].seq)
        })
    }

    /// The compact run-trace artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::from(self.events.len() as u64)),
            ("dropped", Json::from(self.dropped)),
            ("trace", Json::arr(self.events.iter().map(|e| e.to_json()))),
        ])
    }

    /// Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto).
    ///
    /// Layout: process 1 is the serve worker pool (one thread track per
    /// worker; the control thread's track is the id past the last worker).
    /// In sharded runs ([`TraceLog::set_shard`]) each shard's workers move
    /// to their own process (`shard-N` track group) so Perfetto shows one
    /// group per shard. Slices appear as complete (`X`) events spanning
    /// their execution time; admission-control events are instants; a
    /// session's hops between workers are flow arrows keyed by session id.
    /// Session-level control-phase spans (when captured) land in process 2,
    /// one thread track per session.
    pub fn chrome_json(&self) -> Json {
        let us = |t_ns: u64| Json::float(t_ns as f64 / 1e3);
        let mut out: Vec<Json> = Vec::new();
        // Track-naming metadata.
        let mut workers: Vec<u32> = self.events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        out.push(Json::obj([
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1u32)),
            ("args", Json::obj([("name", Json::from("psme-serve"))])),
        ]));
        let mut shards: Vec<u32> = self.shard_of.iter().map(|&(_, s)| s).collect();
        shards.sort_unstable();
        shards.dedup();
        for &s in &shards {
            out.push(Json::obj([
                ("name", Json::from("process_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(SHARD_PID_BASE + s)),
                ("args", Json::obj([("name", Json::from(format!("shard-{s}")))])),
            ]));
        }
        for &w in &workers {
            out.push(Json::obj([
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(self.pid_of(w))),
                ("tid", Json::from(w)),
                ("args", Json::obj([("name", Json::from(format!("worker-{w}")))])),
            ]));
        }
        let mut session_tracks: Vec<u32> = self
            .events
            .iter()
            .filter(|e| e.kind.phase().is_some() && e.session != SESSION_NONE)
            .map(|e| e.session)
            .collect();
        session_tracks.sort_unstable();
        session_tracks.dedup();
        if !session_tracks.is_empty() {
            out.push(Json::obj([
                ("name", Json::from("process_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(2u32)),
                ("args", Json::obj([("name", Json::from("session-phases"))])),
            ]));
            for &s in &session_tracks {
                out.push(Json::obj([
                    ("name", Json::from("thread_name")),
                    ("ph", Json::from("M")),
                    ("pid", Json::from(2u32)),
                    ("tid", Json::from(s)),
                    ("args", Json::obj([("name", Json::from(format!("session-{s}")))])),
                ]));
            }
        }
        // Flow arrows need a start (`s`) strictly before the finish (`f`);
        // track which session flows are open.
        let mut open_flows: Vec<u32> = Vec::new();
        // Queue wait recorded by the last SliceStart per worker, attached
        // to the matching SliceEnd's args.
        let mut last_wait: Vec<(u32, u64)> = Vec::new();
        for e in &self.events {
            match e.kind {
                TraceKind::SliceStart => {
                    if let Some(pos) = open_flows.iter().position(|&s| s == e.session) {
                        open_flows.swap_remove(pos);
                        out.push(Json::obj([
                            ("name", Json::from("dispatch")),
                            ("cat", Json::from("flow")),
                            ("ph", Json::from("f")),
                            ("bp", Json::from("e")),
                            ("id", Json::from(e.session)),
                            ("ts", us(e.t_ns)),
                            ("pid", Json::from(self.pid_of(e.worker))),
                            ("tid", Json::from(e.worker)),
                        ]));
                    }
                    match last_wait.iter_mut().find(|(w, _)| *w == e.worker) {
                        Some(slot) => slot.1 = e.arg_ns,
                        None => last_wait.push((e.worker, e.arg_ns)),
                    }
                }
                TraceKind::SliceEnd => {
                    let wait_ns = last_wait
                        .iter()
                        .find(|(w, _)| *w == e.worker)
                        .map(|(_, ns)| *ns)
                        .unwrap_or(0);
                    let start = e.t_ns.saturating_sub(e.arg_ns);
                    out.push(Json::obj([
                        ("name", Json::from(format!("s{} slice", e.session))),
                        ("cat", Json::from("slice")),
                        ("ph", Json::from("X")),
                        ("ts", us(start)),
                        ("dur", us(e.arg_ns)),
                        ("pid", Json::from(self.pid_of(e.worker))),
                        ("tid", Json::from(e.worker)),
                        (
                            "args",
                            Json::obj([
                                ("session", Json::from(e.session)),
                                ("cycle_lo", Json::from(e.cycle_lo)),
                                ("cycle_hi", Json::from(e.cycle_hi)),
                                ("queue_wait_us", Json::float(wait_ns as f64 / 1e3)),
                            ]),
                        ),
                    ]));
                }
                TraceKind::Enqueued | TraceKind::Reenqueued => {
                    out.push(instant(e, us(e.t_ns), self.pid_of(e.worker)));
                    if !open_flows.contains(&e.session) {
                        open_flows.push(e.session);
                        out.push(Json::obj([
                            ("name", Json::from("dispatch")),
                            ("cat", Json::from("flow")),
                            ("ph", Json::from("s")),
                            ("id", Json::from(e.session)),
                            ("ts", us(e.t_ns)),
                            ("pid", Json::from(self.pid_of(e.worker))),
                            ("tid", Json::from(e.worker)),
                        ]));
                    }
                }
                TraceKind::Admitted
                | TraceKind::Retired
                | TraceKind::Shed
                | TraceKind::Halted
                | TraceKind::Hibernated
                | TraceKind::Resumed
                | TraceKind::CrossShardSteal
                | TraceKind::NetAccepted
                | TraceKind::NetRequest
                | TraceKind::NetShed
                | TraceKind::ReorgPlanned
                | TraceKind::ReorgCommitted
                | TraceKind::ReorgRolledBack => {
                    out.push(instant(e, us(e.t_ns), self.pid_of(e.worker)));
                }
                TraceKind::PhaseBegin(p) => {
                    let (pid, tid) = self.phase_track(e);
                    out.push(Json::obj([
                        ("name", Json::from(p.name())),
                        ("cat", Json::from("phase")),
                        ("ph", Json::from("B")),
                        ("ts", us(e.t_ns)),
                        ("pid", Json::from(pid)),
                        ("tid", Json::from(tid)),
                    ]));
                }
                TraceKind::PhaseEnd(p) => {
                    let (pid, tid) = self.phase_track(e);
                    out.push(Json::obj([
                        ("name", Json::from(p.name())),
                        ("cat", Json::from("phase")),
                        ("ph", Json::from("E")),
                        ("ts", us(e.t_ns)),
                        ("pid", Json::from(pid)),
                        ("tid", Json::from(tid)),
                    ]));
                }
            }
        }
        Json::obj([
            ("traceEvents", Json::Arr(out)),
            ("displayTimeUnit", Json::from("ms")),
        ])
    }

    /// Track for a phase event: control-thread phases live on the emitting
    /// worker's track (in its shard's process, if mapped); session-
    /// attributed phases get a session track in pid 2.
    fn phase_track(&self, e: &TraceEvent) -> (u32, u32) {
        if e.session == SESSION_NONE {
            (self.pid_of(e.worker), e.worker)
        } else {
            (2, e.session)
        }
    }
}

fn instant(e: &TraceEvent, ts: Json, pid: u32) -> Json {
    let name = if e.session == SESSION_NONE {
        e.kind.name().to_string()
    } else {
        format!("{} s{}", e.kind.name(), e.session)
    };
    Json::obj([
        ("name", Json::from(name)),
        ("cat", Json::from("serve")),
        ("ph", Json::from("i")),
        ("s", Json::from("t")),
        ("ts", ts),
        ("pid", Json::from(pid)),
        ("tid", Json::from(e.worker)),
    ])
}

/// Flight-recorder triggering knobs.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// Events per dump (the "last N" window).
    pub window: usize,
    /// Trigger when a slice's execution time exceeds this multiple of the
    /// running p99.
    pub latency_multiple: f64,
    /// Slice samples required before latency triggering arms (a cold p99
    /// is noise).
    pub min_samples: u64,
    /// Dumps retained per run; further triggers only count.
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig { window: 256, latency_multiple: 8.0, min_samples: 64, max_dumps: 8 }
    }
}

/// Why a dump fired.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DumpTrigger {
    /// A slice ran past `latency_multiple × running p99`.
    SliceLatency {
        /// The offending slice's execution time.
        exec_ns: u64,
        /// The running p99 it was compared against.
        p99_ns: f64,
    },
    /// Admission backpressure shed this session.
    Shed {
        /// The shed session.
        session: u32,
    },
    /// A session executed `(halt)`.
    Halt {
        /// The halted session.
        session: u32,
    },
}

impl DumpTrigger {
    fn to_json(self) -> Json {
        match self {
            DumpTrigger::SliceLatency { exec_ns, p99_ns } => Json::obj([
                ("kind", Json::from("slice_latency")),
                ("exec_ns", Json::from(exec_ns)),
                ("p99_ns", Json::float(p99_ns)),
            ]),
            DumpTrigger::Shed { session } => {
                Json::obj([("kind", Json::from("shed")), ("session", Json::from(session))])
            }
            DumpTrigger::Halt { session } => {
                Json::obj([("kind", Json::from("halt")), ("session", Json::from(session))])
            }
        }
    }
}

/// One flight-recorder dump: the trigger plus the last N merged events up
/// to and including the triggering one.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// What fired.
    pub trigger: DumpTrigger,
    /// Timestamp of the triggering event.
    pub t_ns: u64,
    /// Worker that emitted the triggering event.
    pub worker: u32,
    /// Its per-worker sequence number.
    pub seq: u64,
    /// The recorded window, oldest first.
    pub events: Vec<TraceEvent>,
}

impl FlightDump {
    /// Serialize the dump (full window included — this is the black box).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trigger", self.trigger.to_json()),
            ("t_ns", Json::from(self.t_ns)),
            ("worker", Json::from(self.worker)),
            ("seq", Json::from(self.seq)),
            ("events", Json::arr(self.events.iter().map(|e| e.to_json()))),
        ])
    }
}

/// The anomaly detector. Feed it the merged, sealed event stream (or live
/// events in merge order); it keeps a sliding window of the last
/// `cfg.window` events and dumps it on each trigger.
///
/// Everything is a pure function of the event sequence: the same sealed
/// log always produces the same triggers and the same dumps.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Triggering configuration.
    pub cfg: FlightConfig,
    window: VecDeque<TraceEvent>,
    lat: Reservoir,
    cached_p99: f64,
    since_refresh: u32,
    /// Dumps captured (bounded by `cfg.max_dumps`).
    pub dumps: Vec<FlightDump>,
    /// Total triggers, including those past the dump cap.
    pub triggers: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given triggering config.
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            window: VecDeque::with_capacity(cfg.window.max(1)),
            lat: Reservoir::default(),
            cached_p99: 0.0,
            since_refresh: 0,
            dumps: Vec::new(),
            triggers: 0,
        }
    }

    /// Observe one event (in merge order).
    pub fn observe(&mut self, ev: TraceEvent) {
        if self.window.len() >= self.cfg.window.max(1) {
            self.window.pop_front();
        }
        self.window.push_back(ev);
        match ev.kind {
            TraceKind::Shed => self.trigger(DumpTrigger::Shed { session: ev.session }, &ev),
            TraceKind::Halted => self.trigger(DumpTrigger::Halt { session: ev.session }, &ev),
            TraceKind::SliceEnd => {
                let exec = ev.arg_ns as f64;
                if self.lat.seen() >= self.cfg.min_samples
                    && self.cached_p99 > 0.0
                    && exec > self.cfg.latency_multiple * self.cached_p99
                {
                    self.trigger(
                        DumpTrigger::SliceLatency { exec_ns: ev.arg_ns, p99_ns: self.cached_p99 },
                        &ev,
                    );
                }
                self.lat.push(exec);
                self.since_refresh += 1;
                // Refresh the running p99 periodically — recomputing exact
                // quantiles per event would make the detector O(n²).
                if self.since_refresh >= 32 || self.lat.seen() == self.cfg.min_samples {
                    self.cached_p99 = self.lat.quantiles().p99;
                    self.since_refresh = 0;
                }
            }
            _ => {}
        }
    }

    /// Observe a whole sealed log.
    pub fn scan(&mut self, events: &[TraceEvent]) {
        for &e in events {
            self.observe(e);
        }
    }

    /// The running-p99 latency reservoir (merged slice execution times).
    pub fn latency(&self) -> &Reservoir {
        &self.lat
    }

    fn trigger(&mut self, trigger: DumpTrigger, ev: &TraceEvent) {
        self.triggers += 1;
        if self.dumps.len() < self.cfg.max_dumps {
            self.dumps.push(FlightDump {
                trigger,
                t_ns: ev.t_ns,
                worker: ev.worker,
                seq: ev.seq,
                events: self.window.iter().copied().collect(),
            });
        }
    }

    /// Summary + full dumps.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("triggers", Json::from(self.triggers)),
            ("dumps", Json::arr(self.dumps.iter().map(|d| d.to_json()))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &mut TraceRing, t: u64, kind: TraceKind, session: u32) {
        ring.emit_at(t, kind, session, 0, 0, 0);
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let mut r = TraceRing::new(0, 3, Instant::now());
        for i in 0..5u64 {
            ev(&mut r, i, TraceKind::Enqueued, i as u32);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 2);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest dropped, order preserved");
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 0);
        // Sequence numbering continues across drains.
        ev(&mut r, 9, TraceKind::Retired, 0);
        assert_eq!(r.drain().0[0].seq, 5);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::disabled(0);
        r.emit(TraceKind::Shed, 1, 0, 0, 0);
        ev(&mut r, 5, TraceKind::Shed, 1);
        assert!(r.is_empty());
        assert_eq!(r.drain(), (Vec::new(), 0));
    }

    #[test]
    fn seal_orders_and_caps() {
        let origin = Instant::now();
        let mut log = TraceLog::with_cap(4);
        let mut a = TraceRing::new(0, 16, origin);
        let mut b = TraceRing::new(1, 16, origin);
        ev(&mut a, 30, TraceKind::SliceStart, 0);
        ev(&mut a, 10, TraceKind::Enqueued, 0);
        ev(&mut b, 20, TraceKind::Enqueued, 1);
        ev(&mut b, 20, TraceKind::Reenqueued, 1);
        ev(&mut b, 40, TraceKind::Retired, 1);
        log.absorb(&mut a);
        log.absorb(&mut b);
        log.seal();
        assert!(log.is_sorted());
        assert_eq!(log.events.len(), 4, "merged cap enforced");
        assert_eq!(log.dropped, 1, "eviction counted");
        assert_eq!(log.events[0].t_ns, 20, "oldest (t=10) evicted first");
    }

    #[test]
    fn chrome_export_parses_and_has_tracks() {
        let origin = Instant::now();
        let mut log = TraceLog::default();
        let mut r = TraceRing::new(0, 64, origin);
        ev(&mut r, 5, TraceKind::Admitted, 3);
        ev(&mut r, 6, TraceKind::Enqueued, 3);
        r.emit_at(10, TraceKind::SliceStart, 3, 0, 0, 4);
        r.emit_at(30, TraceKind::SliceEnd, 3, 0, 8, 20);
        ev(&mut r, 31, TraceKind::Reenqueued, 3);
        r.emit_at(40, TraceKind::PhaseBegin(ControlPhase::Match), SESSION_NONE, 0, 0, 0);
        r.emit_at(45, TraceKind::PhaseEnd(ControlPhase::Match), SESSION_NONE, 0, 0, 5);
        ev(&mut r, 50, TraceKind::Halted, 3);
        log.absorb(&mut r);
        log.seal();
        let chrome = log.chrome_json();
        let parsed = Json::parse(&chrome.to_string()).expect("chrome JSON parses");
        let evs = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let phs: Vec<&str> =
            evs.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        for needed in ["M", "X", "i", "s", "f", "B", "E"] {
            assert!(phs.contains(&needed), "missing ph {needed:?} in {phs:?}");
        }
        // The X slice reconstructs its start from end - exec.
        let x = evs.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("X")).unwrap();
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(0.01));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(0.02));
    }

    #[test]
    fn shard_map_groups_tracks_and_exports_cross_shard_steals() {
        let origin = Instant::now();
        let mut log = TraceLog::default();
        // Workers 0 and 1 on shard 0, worker 2 on shard 1; worker 9 (the
        // control thread) unmapped.
        log.set_shard(0, 0);
        log.set_shard(1, 0);
        log.set_shard(2, 1);
        for w in [0u32, 1, 2, 9] {
            let mut r = TraceRing::new(w, 16, origin);
            r.emit_at(10 + u64::from(w), TraceKind::Enqueued, 3, 0, 0, 0);
            log.absorb(&mut r);
        }
        let mut thief = TraceRing::new(2, 16, origin);
        // Worker 2 (shard 1) stole session 7 from home shard 0.
        thief.emit_at(50, TraceKind::CrossShardSteal, 7, 0, 0, 0);
        log.absorb(&mut thief);
        log.seal();
        let chrome = log.chrome_json();
        let parsed = Json::parse(&chrome.to_string()).expect("chrome JSON parses");
        let evs = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let pname = |pid: f64| {
            evs.iter()
                .find(|e| {
                    e.get("name").and_then(Json::as_str) == Some("process_name")
                        && e.get("pid").and_then(Json::as_f64) == Some(pid)
                })
                .and_then(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
                .map(str::to_owned)
        };
        assert_eq!(pname(10.0).as_deref(), Some("shard-0"));
        assert_eq!(pname(11.0).as_deref(), Some("shard-1"));
        assert_eq!(pname(1.0).as_deref(), Some("psme-serve"));
        // Worker tracks land in their shard's process; the unmapped control
        // worker stays in the pool process.
        let tid_pid = |tid: f64| {
            evs.iter()
                .find(|e| {
                    e.get("name").and_then(Json::as_str).is_some_and(|n| n.starts_with("enqueued"))
                        && e.get("tid").and_then(Json::as_f64) == Some(tid)
                })
                .and_then(|e| e.get("pid").and_then(Json::as_f64))
        };
        assert_eq!(tid_pid(0.0), Some(10.0));
        assert_eq!(tid_pid(2.0), Some(11.0));
        assert_eq!(tid_pid(9.0), Some(1.0));
        // The steal exports as an instant on the thief's shard track.
        let steal = evs
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str).is_some_and(|n| n.starts_with("cross_shard"))
            })
            .expect("steal instant present");
        assert_eq!(steal.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(steal.get("pid").and_then(Json::as_f64), Some(11.0));
        assert_eq!(steal.get("name").and_then(Json::as_str), Some("cross_shard_steal s7"));
    }

    #[test]
    fn flight_recorder_triggers_on_shed_and_tail_latency() {
        let cfg = FlightConfig { window: 4, latency_multiple: 4.0, min_samples: 8, max_dumps: 8 };
        let mut fr = FlightRecorder::new(cfg);
        let mk = |t: u64, kind: TraceKind, arg: u64| TraceEvent {
            t_ns: t,
            worker: 0,
            seq: t,
            session: 1,
            kind,
            cycle_lo: 0,
            cycle_hi: 0,
            arg_ns: arg,
        };
        // Warm up the running p99 with uniform 100ns slices.
        for t in 0..40 {
            fr.observe(mk(t, TraceKind::SliceEnd, 100));
        }
        assert_eq!(fr.triggers, 0);
        fr.observe(mk(100, TraceKind::SliceEnd, 10_000));
        assert_eq!(fr.triggers, 1, "40× p99 slice must trigger");
        assert!(matches!(fr.dumps[0].trigger, DumpTrigger::SliceLatency { .. }));
        assert_eq!(fr.dumps[0].events.len(), 4, "window of last N events");
        fr.observe(mk(101, TraceKind::Shed, 0));
        assert_eq!(fr.triggers, 2, "any shed triggers");
        assert!(matches!(fr.dumps[1].trigger, DumpTrigger::Shed { session: 1 }));
        assert!(
            fr.dumps[1].events.iter().any(|e| e.kind == TraceKind::Shed),
            "dump contains the shed event"
        );
        // Determinism: replaying the same stream reproduces the dumps.
        let mut fr2 = FlightRecorder::new(cfg);
        for t in 0..40 {
            fr2.observe(mk(t, TraceKind::SliceEnd, 100));
        }
        fr2.observe(mk(100, TraceKind::SliceEnd, 10_000));
        fr2.observe(mk(101, TraceKind::Shed, 0));
        assert_eq!(fr2.triggers, fr.triggers);
        assert_eq!(fr2.dumps.len(), fr.dumps.len());
        for (a, b) in fr.dumps.iter().zip(&fr2.dumps) {
            assert_eq!(a.trigger, b.trigger);
            assert_eq!(a.events, b.events);
        }
        // to_json parses.
        assert!(Json::parse(&fr.to_json().to_string()).is_ok());
    }
}
