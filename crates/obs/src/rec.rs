//! The span/event recorder and the lock-free counter sets.
//!
//! Two complementary mechanisms, matching how PSM-E is structured:
//!
//! * **Spans** belong to the *control thread* (there is exactly one — the
//!   paper's control process). [`Recorder`] timestamps its phases — match,
//!   conflict resolution, decide, chunk build, §5.1 network surgery, §5.2
//!   state update — against a single run origin. Recording a span is a
//!   `Vec::push`; no locks, no allocation beyond the vec.
//!
//! * **Counters** belong to the *match processes*. A [`CounterSet`] is a
//!   plain array of `u64`s a worker keeps in thread-local state (in
//!   practice: on its stack for the duration of a cycle) and flushes at
//!   the cycle barrier, where the control thread merges it. The hot path
//!   is a single unsynchronized add — the aggregation point is the barrier
//!   the engine already has.

use crate::json::Json;
use std::time::Instant;

/// The control-thread phases of one production-system cycle (plus the
/// run-time learning phases of §5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlPhase {
    /// Parallel match to quiescence.
    Match,
    /// Folding raw conflict-set changes and selecting instantiations.
    ConflictResolution,
    /// The Soar decision procedure (including wme surgery and GC).
    Decide,
    /// Building a chunk from a subgoal's results.
    ChunkBuild,
    /// §5.1 run-time network surgery (compiling a production into the net).
    NetworkSurgery,
    /// §5.2 state update (seeding the new nodes' memories).
    StateUpdate,
}

impl ControlPhase {
    /// Every phase, in reporting order.
    pub const ALL: [ControlPhase; 6] = [
        ControlPhase::Match,
        ControlPhase::ConflictResolution,
        ControlPhase::Decide,
        ControlPhase::ChunkBuild,
        ControlPhase::NetworkSurgery,
        ControlPhase::StateUpdate,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            ControlPhase::Match => "match",
            ControlPhase::ConflictResolution => "conflict_resolution",
            ControlPhase::Decide => "decide",
            ControlPhase::ChunkBuild => "chunk_build",
            ControlPhase::NetworkSurgery => "network_surgery",
            ControlPhase::StateUpdate => "state_update",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One recorded span.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Which control phase.
    pub phase: ControlPhase,
    /// Nanoseconds since the recorder's origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Cycle/decision ordinal the caller attached (0 when not set).
    pub seq: u64,
}

/// Aggregate for one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTotal {
    /// Spans recorded.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// An open span; finish it with [`Recorder::finish`].
#[derive(Debug)]
#[must_use = "finish the span to record it"]
pub struct SpanHandle {
    phase: ControlPhase,
    start: Instant,
}

/// Default cap on retained individual spans (totals keep accumulating
/// past it); long runs stay bounded in memory.
pub const DEFAULT_SPAN_CAP: usize = 100_000;

/// Control-thread span/event recorder.
#[derive(Debug)]
pub struct Recorder {
    origin: Instant,
    /// Individual spans, up to [`Recorder::span_cap`].
    pub spans: Vec<SpanRecord>,
    /// Named point events `(label, value, t_ns)`.
    pub events: Vec<(String, f64, u64)>,
    /// Retention cap for `spans`.
    pub span_cap: usize,
    totals: [PhaseTotal; 6],
    dropped: u64,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder whose origin is now.
    pub fn new() -> Recorder {
        Recorder {
            origin: Instant::now(),
            spans: Vec::new(),
            events: Vec::new(),
            span_cap: DEFAULT_SPAN_CAP,
            totals: [PhaseTotal::default(); 6],
            dropped: 0,
        }
    }

    /// The instant timestamps are measured from.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// The retained spans re-expressed against another origin (e.g. a serve
    /// run's shared trace origin), so per-agent phase spans can be folded
    /// into a merged trace. Spans predating `origin` clamp to 0.
    pub fn rebased_spans(&self, origin: Instant) -> Vec<SpanRecord> {
        let forward = self.origin.checked_duration_since(origin).map(|d| d.as_nanos() as u64);
        let back = origin.checked_duration_since(self.origin).map(|d| d.as_nanos() as u64);
        self.spans
            .iter()
            .map(|s| {
                let mut s = *s;
                s.start_ns = match (forward, back) {
                    (Some(f), _) => s.start_ns.saturating_add(f),
                    (None, Some(b)) => s.start_ns.saturating_sub(b),
                    (None, None) => s.start_ns,
                };
                s
            })
            .collect()
    }

    /// Open a span. Does not record anything until finished.
    pub fn start(&self, phase: ControlPhase) -> SpanHandle {
        SpanHandle { phase, start: Instant::now() }
    }

    /// Close a span, attaching a cycle/decision ordinal. Returns its
    /// duration in nanoseconds.
    pub fn finish_seq(&mut self, handle: SpanHandle, seq: u64) -> u64 {
        let dur_ns = handle.start.elapsed().as_nanos() as u64;
        let start_ns = handle.start.duration_since(self.origin).as_nanos() as u64;
        let t = &mut self.totals[handle.phase.index()];
        t.count += 1;
        t.total_ns += dur_ns;
        t.max_ns = t.max_ns.max(dur_ns);
        if self.spans.len() < self.span_cap {
            self.spans.push(SpanRecord { phase: handle.phase, start_ns, dur_ns, seq });
        } else {
            self.dropped += 1;
        }
        dur_ns
    }

    /// Close a span with no ordinal.
    pub fn finish(&mut self, handle: SpanHandle) -> u64 {
        self.finish_seq(handle, 0)
    }

    /// Time a closure as one span.
    pub fn time<R>(&mut self, phase: ControlPhase, f: impl FnOnce() -> R) -> R {
        let h = self.start(phase);
        let r = f();
        self.finish(h);
        r
    }

    /// Record a named point event at the current time.
    pub fn event(&mut self, label: impl Into<String>, value: f64) {
        let t = self.origin.elapsed().as_nanos() as u64;
        self.events.push((label.into(), value, t));
    }

    /// Aggregate for one phase.
    pub fn total(&self, phase: ControlPhase) -> PhaseTotal {
        self.totals[phase.index()]
    }

    /// `(phase, aggregate)` for every phase that recorded at least one span.
    pub fn phase_totals(&self) -> Vec<(ControlPhase, PhaseTotal)> {
        ControlPhase::ALL
            .into_iter()
            .map(|p| (p, self.totals[p.index()]))
            .filter(|(_, t)| t.count > 0)
            .collect()
    }

    /// Spans dropped past the retention cap.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    /// Merge another recorder's aggregates (its individual spans are
    /// appended up to the cap; origins are not reconciled, so only use
    /// this for recorders whose absolute timestamps don't matter).
    pub fn absorb(&mut self, other: &Recorder) {
        for p in ControlPhase::ALL {
            let o = other.totals[p.index()];
            let t = &mut self.totals[p.index()];
            t.count += o.count;
            t.total_ns += o.total_ns;
            t.max_ns = t.max_ns.max(o.max_ns);
        }
        for s in &other.spans {
            if self.spans.len() < self.span_cap {
                self.spans.push(*s);
            } else {
                self.dropped += 1;
            }
        }
        self.dropped += other.dropped;
    }

    /// Phase totals as JSON: `{phase: {count, total_us, mean_us, max_us}}`.
    pub fn totals_json(&self) -> Json {
        Json::Obj(
            self.phase_totals()
                .into_iter()
                .map(|(p, t)| {
                    let mean = if t.count == 0 { 0.0 } else { t.total_ns as f64 / t.count as f64 };
                    (
                        p.name().to_string(),
                        Json::obj([
                            ("count", Json::from(t.count)),
                            ("total_us", Json::float(t.total_ns as f64 / 1e3)),
                            ("mean_us", Json::float(mean / 1e3)),
                            ("max_us", Json::float(t.max_ns as f64 / 1e3)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Plain-text phase summary.
    pub fn text_summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("phase                 count     total ms      mean µs       max µs\n");
        for (p, t) in self.phase_totals() {
            let mean = if t.count == 0 { 0.0 } else { t.total_ns as f64 / t.count as f64 / 1e3 };
            writeln!(
                s,
                "{:<20} {:>6} {:>12.3} {:>12.2} {:>12.2}",
                p.name(),
                t.count,
                t.total_ns as f64 / 1e6,
                mean,
                t.max_ns as f64 / 1e3
            )
            .unwrap();
        }
        s
    }
}

/// Worker-side counters, indexed by [`Counter`]. Plain adds, no
/// synchronization — each worker owns one and flushes it at the cycle
/// barrier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    /// Tasks executed (all kinds).
    Tasks,
    /// Alpha (wme-change) tasks.
    AlphaTasks,
    /// Two-input + P node tasks.
    BetaTasks,
    /// Two-input activations that emitted nothing (the paper's null
    /// activations — work that contributes no matches).
    NullActivations,
    /// Opposite-memory candidate entries scanned (same destination node;
    /// co-hashed entries of other nodes count as `EntriesSkipped`).
    Scanned,
    /// Candidates rejected by the stored 64-bit key-hash compare before any
    /// structural key compare (indexed memory probes only).
    HashRejects,
    /// Co-hashed entries of other nodes traversed by the reference
    /// whole-line memory scan (0 when the per-node line index is on).
    EntriesSkipped,
    /// Memory lines compacted/counter-reset by the incremental end-of-cycle
    /// housekeeping (dirty lines only; clean lines are skipped unlocked).
    LinesCompacted,
    /// Child activations emitted.
    Emitted,
    /// Memory-line lock spins.
    MemSpins,
    /// Memory-line lock acquisitions. One per line-touching activation
    /// unbatched; line-lock batching drains a group of same-line
    /// activations under a single acquisition, so this counter is the
    /// direct evidence of the reduction.
    LineLockAcquisitions,
    /// Conflict-set changes produced.
    CsChanges,
    /// Tasks taken from another worker's deque (work-stealing scheduler).
    Steals,
    /// Steal attempts that found an empty victim or lost the CAS race.
    StealFails,
    /// Batched transfers (batched publications, injector drains, steal
    /// bursts) that moved ≥ 2 tasks at once.
    Batches,
    /// Alpha jump-table hash probes (one per indexed field per wme).
    AlphaProbes,
    /// Candidate alpha memories whose residual tests were consulted.
    AlphaCandidates,
    /// Constant/intra tests the linear alpha scan would have evaluated but
    /// the discrimination index skipped.
    AlphaTestsSaved,
    /// Adaptive mid-run join reorganizations committed.
    Reorganizations,
}

impl Counter {
    /// Every counter, in reporting order.
    pub const ALL: [Counter; 19] = [
        Counter::Tasks,
        Counter::AlphaTasks,
        Counter::BetaTasks,
        Counter::NullActivations,
        Counter::Scanned,
        Counter::HashRejects,
        Counter::EntriesSkipped,
        Counter::LinesCompacted,
        Counter::Emitted,
        Counter::MemSpins,
        Counter::LineLockAcquisitions,
        Counter::CsChanges,
        Counter::Steals,
        Counter::StealFails,
        Counter::Batches,
        Counter::AlphaProbes,
        Counter::AlphaCandidates,
        Counter::AlphaTestsSaved,
        Counter::Reorganizations,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Tasks => "tasks",
            Counter::AlphaTasks => "alpha_tasks",
            Counter::BetaTasks => "beta_tasks",
            Counter::NullActivations => "null_activations",
            Counter::Scanned => "scanned",
            Counter::HashRejects => "hash_rejects",
            Counter::EntriesSkipped => "entries_skipped",
            Counter::LinesCompacted => "lines_compacted",
            Counter::Emitted => "emitted",
            Counter::MemSpins => "mem_spins",
            Counter::LineLockAcquisitions => "line_lock_acquisitions",
            Counter::CsChanges => "cs_changes",
            Counter::Steals => "steals",
            Counter::StealFails => "steal_fails",
            Counter::Batches => "batches",
            Counter::AlphaProbes => "alpha_probes",
            Counter::AlphaCandidates => "alpha_candidates",
            Counter::AlphaTestsSaved => "alpha_tests_saved",
            Counter::Reorganizations => "reorganizations",
        }
    }
}

/// A fixed-slot set of counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSet([u64; Counter::ALL.len()]);

impl CounterSet {
    /// All-zero counters.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Bump one counter (saturating — a clamped counter must read as
    /// `u64::MAX`, never wrap to a small value).
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.0[c as usize] = self.0[c as usize].saturating_add(n);
    }

    /// Read one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.0[c as usize]
    }

    /// Fold another set in (the barrier-side merge). Saturating, like
    /// [`Self::add`]: merging huge per-worker counts must clamp, not wrap.
    pub fn merge(&mut self, other: &CounterSet) {
        for i in 0..self.0.len() {
            self.0[i] = self.0[i].saturating_add(other.0[i]);
        }
    }

    /// Reset to zero (workers reuse their set across cycles).
    pub fn reset(&mut self) {
        self.0 = [0; Counter::ALL.len()];
    }

    /// `true` when every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    /// As a JSON object, omitting zero counters.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            Counter::ALL
                .into_iter()
                .filter(|&c| self.get(c) > 0)
                .map(|c| (c.name().to_string(), Json::from(self.get(c))))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_phase() {
        let mut r = Recorder::new();
        for i in 0..3 {
            let h = r.start(ControlPhase::Match);
            std::hint::black_box(i);
            r.finish_seq(h, i);
        }
        r.time(ControlPhase::Decide, || ());
        let totals = r.phase_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(r.total(ControlPhase::Match).count, 3);
        assert_eq!(r.total(ControlPhase::Decide).count, 1);
        assert_eq!(r.total(ControlPhase::ChunkBuild).count, 0);
        assert_eq!(r.spans.len(), 4);
        assert!(r.text_summary().contains("match"));
    }

    #[test]
    fn span_cap_bounds_memory_but_not_totals() {
        let mut r = Recorder::new();
        r.span_cap = 2;
        for _ in 0..5 {
            let h = r.start(ControlPhase::Match);
            r.finish(h);
        }
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.dropped_spans(), 3);
        assert_eq!(r.total(ControlPhase::Match).count, 5);
    }

    #[test]
    fn counters_merge_and_serialize() {
        let mut a = CounterSet::new();
        a.add(Counter::Tasks, 10);
        a.add(Counter::NullActivations, 3);
        let mut b = CounterSet::new();
        b.add(Counter::Tasks, 5);
        b.add(Counter::Scanned, 7);
        a.merge(&b);
        assert_eq!(a.get(Counter::Tasks), 15);
        assert_eq!(a.get(Counter::Scanned), 7);
        let j = a.to_json();
        assert_eq!(j.get("tasks").and_then(|v| v.as_u64()), Some(15));
        assert_eq!(j.get("alpha_tasks"), None, "zero counters omitted");
        a.reset();
        assert!(a.is_empty());
    }

    #[test]
    fn counter_add_and_merge_saturate() {
        let mut a = CounterSet::new();
        a.add(Counter::Steals, u64::MAX - 1);
        a.add(Counter::Steals, 5);
        assert_eq!(a.get(Counter::Steals), u64::MAX, "add saturates");
        let mut b = CounterSet::new();
        b.add(Counter::Steals, 1);
        b.add(Counter::Batches, 2);
        a.merge(&b);
        assert_eq!(a.get(Counter::Steals), u64::MAX, "merge saturates");
        assert_eq!(a.get(Counter::Batches), 2);
        let j = a.to_json();
        assert_eq!(j.get("batches").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn rebased_spans_shift_to_the_new_origin() {
        let run_origin = Instant::now();
        let mut r = Recorder::new(); // origin strictly after run_origin
        let h = r.start(ControlPhase::Match);
        r.finish_seq(h, 3);
        let rebased = r.rebased_spans(run_origin);
        assert_eq!(rebased.len(), 1);
        assert!(
            rebased[0].start_ns >= r.spans[0].start_ns,
            "a later private origin shifts spans forward"
        );
        assert_eq!(rebased[0].dur_ns, r.spans[0].dur_ns);
        assert_eq!(rebased[0].seq, 3);
        // Rebasing onto its own origin is the identity.
        let same = r.rebased_spans(r.origin());
        assert_eq!(same[0].start_ns, r.spans[0].start_ns);
    }

    #[test]
    fn absorb_merges_other_recorders() {
        let mut a = Recorder::new();
        a.time(ControlPhase::Match, || ());
        let mut b = Recorder::new();
        b.time(ControlPhase::Match, || ());
        b.time(ControlPhase::StateUpdate, || ());
        a.absorb(&b);
        assert_eq!(a.total(ControlPhase::Match).count, 2);
        assert_eq!(a.total(ControlPhase::StateUpdate).count, 1);
        let j = a.totals_json();
        assert!(j.get("match").is_some());
    }
}
