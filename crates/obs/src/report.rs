//! Plain-text tables and machine-readable bench artifacts.
//!
//! Everything the workspace prints as a human-facing table goes through
//! [`TextTable`], and everything it persists for scripts goes through
//! [`write_artifact`], which drops a pretty-printed `BENCH_<name>.json`
//! next to the invocation (or under `$PSME_BENCH_DIR` when set, so CI can
//! collect artifacts from a scratch directory).

use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// A right-padded, column-aligned plain-text table.
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row; missing trailing cells render empty, extra cells are
    /// kept (they get their own unlabeled columns).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header rule, e.g.:
    ///
    /// ```text
    /// workers  speedup
    /// -------  -------
    /// 1        1.00
    /// ```
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == cols {
                    out.push_str(cell.trim_end());
                } else {
                    out.push_str(&format!("{cell:<w$}  "));
                }
            }
            // Tables stay clean even when a trailing column is empty.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w.max(1))).collect();
        emit(&mut out, &rule);
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }
}

/// Directory bench artifacts are written to: `$PSME_BENCH_DIR` when set
/// (created on demand by [`write_artifact`]), else the current directory.
pub fn artifact_dir() -> PathBuf {
    match std::env::var_os("PSME_BENCH_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("."),
    }
}

/// Path the artifact `name` will be written to: `BENCH_<name>.json` under
/// [`artifact_dir`].
pub fn artifact_path(name: &str) -> PathBuf {
    artifact_dir().join(format!("BENCH_{name}.json"))
}

/// Write `doc` to the given path as pretty-printed JSON with a trailing
/// newline, creating parent directories as needed.
pub fn write_json(path: &Path, doc: &Json) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.pretty())
}

/// Write the artifact `BENCH_<name>.json` and return its path.
pub fn write_artifact(name: &str, doc: &Json) -> io::Result<PathBuf> {
    let path = artifact_path(name);
    write_json(&path, doc)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns_and_trims_trailing_space() {
        let mut t = TextTable::new(&["workers", "speedup"]);
        t.row(vec!["1".into(), "1.00".into()]);
        t.row(vec!["16".into(), "11.41".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "workers  speedup");
        assert_eq!(lines[1], "-------  -------");
        assert_eq!(lines[2], "1        1.00");
        assert_eq!(lines[3], "16       11.41");
        assert!(s.lines().all(|l| !l.ends_with(' ')));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_render_empty_cells() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().starts_with('1'));
    }

    #[test]
    fn artifact_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("psme-obs-artifact-test");
        std::env::set_var("PSME_BENCH_DIR", &dir);
        let doc = Json::obj([
            ("name", Json::from("fig_6_1")),
            ("speedups", Json::arr([Json::float(1.0), Json::float(7.5)])),
        ]);
        let path = write_artifact("test_rt", &doc).unwrap();
        std::env::remove_var("PSME_BENCH_DIR");
        assert_eq!(path, dir.join("BENCH_test_rt.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str(), Some("fig_6_1"));
        assert_eq!(back.get("speedups").unwrap().at(1).unwrap().as_f64(), Some(7.5));
        std::fs::remove_file(&path).ok();
    }
}
