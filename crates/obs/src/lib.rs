//! Observability layer for the Soar/PSM-E reproduction.
//!
//! The paper's entire argument rests on *measurement*: Gupta's per-node
//! activation counts, the null-activation overheads, the cost model behind
//! the simulated speedups. This crate makes the same measurements
//! first-class in the reproduction:
//!
//! - [`rec`] — a hand-rolled span/event recorder for the control thread's
//!   phases (match, conflict resolution, decide, chunk build, §5.1 network
//!   surgery, §5.2 state update) plus lock-free per-worker counters
//!   ([`rec::CounterSet`]) that workers accumulate thread-locally and flush
//!   at the cycle barrier they already cross.
//! - [`profile`] — a per-node profiler over [`psme_rete::TaskRecord`]
//!   streams producing §6-style hot-spot reports: activations, null
//!   activations, opposite-memory entries scanned, attributed cost, with a
//!   top-K table keyed back to production names.
//! - [`trace`] — the flight recorder: per-worker fixed-capacity event
//!   rings (drop-oldest, per-worker sequence numbers, no hot-path
//!   allocation or locking), a merged run-level [`trace::TraceLog`], an
//!   anomaly-triggered [`trace::FlightRecorder`], and Chrome
//!   `trace_event` export for `chrome://tracing` / Perfetto.
//! - [`json`] — a dependency-free JSON value type, writer and strict
//!   parser (the build environment has no serde).
//! - [`report`] — plain-text table rendering and `BENCH_<name>.json`
//!   artifact emission for the bench harness.
//!
//! Everything is deliberately free of external dependencies and of hot-path
//! synchronization: recording is owned by the thread doing the work, and
//! aggregation happens at barriers that already exist.

pub mod json;
pub mod profile;
pub mod quantiles;
pub mod rec;
pub mod report;
pub mod trace;

pub use json::Json;
pub use profile::{HotSpotReport, NodeProfile, NodeProfiler};
pub use quantiles::{Quantiles, Reservoir};
pub use rec::{ControlPhase, Counter, CounterSet, PhaseTotal, Recorder, SpanRecord};
pub use report::{artifact_dir, artifact_path, write_artifact, write_json, TextTable};
pub use trace::{
    DumpTrigger, FlightConfig, FlightDump, FlightRecorder, TraceConfig, TraceEvent, TraceKind,
    TraceLog, TraceRing, SESSION_NONE,
};
