//! A hand-rolled JSON value, writer, and parser.
//!
//! The build environment is offline, so artifact serialization cannot lean
//! on serde. This module provides the small dependency-free core the
//! observability layer needs: an order-preserving [`Json`] tree, a writer
//! with full string escaping whose floats are guaranteed NaN/∞-free (they
//! serialize as `null`), and a strict parser used for round-trip tests and
//! artifact validation.

use std::fmt;

/// A JSON value. Object fields keep insertion order so emitted artifacts
/// are deterministic and diffable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters larger than `i64::MAX` stay exact).
    UInt(u64),
    /// A finite float. Non-finite values are normalized to [`Json::Null`]
    /// on construction, so the writer never emits `NaN`/`Infinity`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(fields: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }

    /// Build an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// A float, with non-finite values mapped to `null`.
    pub fn float(v: f64) -> Json {
        if v.is_finite() {
            Json::Float(v)
        } else {
            Json::Null
        }
    }

    /// Field lookup on an object (`None` on other variants or a miss).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element access.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// Numeric view (int, uint, or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline — the
    /// format committed `BENCH_*.json` artifacts use.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s.push('\n');
        s
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                let inline = items.len() <= 8
                    && items.iter().all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                    || items.iter().all(|i| matches!(i, Json::Int(_) | Json::UInt(_) | Json::Float(_) | Json::Null));
                if inline {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&item.to_string());
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write_pretty(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parse a JSON document. Strict: trailing garbage is an error.
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let mut p = Parser { src: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 always renders a re-parseable number.
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json { Json::UInt(v as u64) }
        }
    )*};
}
macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json { Json::Int(v as i64) }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);
from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::float(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::float(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::arr(v)
    }
}

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\x08'),
                        Some(b'f') => s.push('\x0c'),
                        Some(b'u') => {
                            if self.pos + 5 > self.src.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.src[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our ASCII
                            // control escapes; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is a surrogate"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError { offset: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let original = Json::obj([
            ("plain", Json::from("hello")),
            ("quotes", Json::from("say \"hi\" to p*\\chunk-1")),
            ("controls", Json::from("tab\there\nnewline\u{1}end")),
        ]);
        let compact = original.to_string();
        assert_eq!(Json::parse(&compact).unwrap(), original);
        let pretty = original.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), original);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN), Json::Null);
        assert_eq!(Json::from(f64::INFINITY), Json::Null);
        assert_eq!(Json::float(f64::NEG_INFINITY).to_string(), "null");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let v = Json::arr([Json::UInt(u64::MAX), Json::Int(-42), Json::Float(0.125)]);
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.at(0).unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.at(1).unwrap().as_f64(), Some(-42.0));
        assert_eq!(parsed.at(2).unwrap().as_f64(), Some(0.125));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let j = Json::obj([("z", 1u64), ("a", 2u64), ("m", 3u64)]);
        assert_eq!(j.to_string(), "{\"z\":1,\"a\":2,\"m\":3}");
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("missing"), None);
    }
}
