//! Latency quantiles for per-session serving telemetry.
//!
//! The serving layer reports p50/p99 decision-cycle latency and queue wait
//! per session. Sample counts are small (hundreds of cycles), so exact
//! order statistics over the retained samples are cheap and unambiguous —
//! no sketching. Quantiles use the nearest-rank method (`ceil(q·n)`), the
//! convention the paper's latency tables imply: p99 of 100 samples is the
//! 99th smallest, not an interpolation.
//!
//! For *barrier-side* aggregation — combining per-worker latency streams
//! without shipping every raw sample — [`Reservoir`] keeps a bounded,
//! deterministic decimating sample set that supports `merge` and yields a
//! [`Quantiles`] summary on demand (used by the trace flight recorder's
//! running p99 and the serve loop's pooled cycle latency).

use crate::json::Json;

/// Summary statistics over a set of latency samples (nanoseconds, or any
/// other nonnegative magnitude).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// 99.9th percentile (nearest rank) — tail detail the flight recorder
    /// and the sharded serve path key on.
    pub p999: f64,
    /// Largest sample.
    pub max: f64,
}

impl Quantiles {
    /// Compute from raw samples. Non-finite samples are a caller bug and
    /// panic in debug builds; order is irrelevant (the slice is copied and
    /// sorted internally).
    pub fn from_samples(samples: &[f64]) -> Quantiles {
        debug_assert!(samples.iter().all(|s| s.is_finite()), "non-finite latency sample");
        if samples.is_empty() {
            return Quantiles::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let rank = |q: f64| -> f64 {
            let k = ((q * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        Quantiles {
            count: n as u64,
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            p999: rank(0.999),
            max: sorted[n - 1],
        }
    }

    /// Serialize for bench artifacts / run reports.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::float(self.mean)),
            ("p50", Json::float(self.p50)),
            ("p90", Json::float(self.p90)),
            ("p99", Json::float(self.p99)),
            ("p999", Json::float(self.p999)),
            ("max", Json::float(self.max)),
        ])
    }
}

/// A bounded, deterministic sample reservoir that can be merged.
///
/// Workers fill private reservoirs on the hot path (a push is an array
/// write, amortized O(1), no locks) and the control thread merges them at
/// the barriers the engine already has. When a reservoir fills it
/// *decimates*: every second retained sample is dropped and the keep
/// stride doubles, so the retained set stays a uniform, deterministic
/// thinning of the input stream — the same pushes always retain the same
/// samples, unlike randomized reservoir sampling. Quantiles over the
/// retained set approximate the stream's; `count` reports the *true*
/// number of samples observed.
#[derive(Clone, Debug)]
pub struct Reservoir {
    samples: Vec<f64>,
    cap: usize,
    /// Keep every `stride`-th pushed sample (power of two).
    stride: u64,
    /// Pushes until the next retained sample.
    skip: u64,
    seen: u64,
}

/// Default retained-sample bound: small enough to sort per flight-recorder
/// refresh, large enough for stable p999 over long streams.
pub const DEFAULT_RESERVOIR_CAP: usize = 4096;

impl Default for Reservoir {
    fn default() -> Reservoir {
        Reservoir::new(DEFAULT_RESERVOIR_CAP)
    }
}

impl Reservoir {
    /// An empty reservoir retaining at most `cap` samples (min 2).
    pub fn new(cap: usize) -> Reservoir {
        Reservoir { samples: Vec::new(), cap: cap.max(2), stride: 1, skip: 0, seen: 0 }
    }

    /// Observe one sample.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        if self.samples.len() >= self.cap {
            self.decimate();
        }
        self.samples.push(v);
        self.skip = self.stride - 1;
    }

    /// Observe a batch.
    pub fn extend(&mut self, samples: &[f64]) {
        for &v in samples {
            self.push(v);
        }
    }

    /// Drop every second retained sample and double the keep stride.
    fn decimate(&mut self) {
        let mut i = 0usize;
        self.samples.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.stride *= 2;
    }

    /// Fold another reservoir in (the barrier-side merge). Both sides are
    /// first thinned to a common stride so neither stream is over-weighted.
    pub fn merge(&mut self, other: &Reservoir) {
        let mut theirs = other.samples.clone();
        let mut their_stride = other.stride;
        while self.stride < their_stride {
            self.decimate();
        }
        while their_stride < self.stride {
            let mut i = 0usize;
            theirs.retain(|_| {
                let keep = i.is_multiple_of(2);
                i += 1;
                keep
            });
            their_stride *= 2;
        }
        self.samples.extend_from_slice(&theirs);
        self.seen += other.seen;
        while self.samples.len() > self.cap {
            self.decimate();
        }
    }

    /// Total samples observed (not just retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Summarize the retained samples; `count` is the true observed count.
    pub fn quantiles(&self) -> Quantiles {
        let mut q = Quantiles::from_samples(&self.samples);
        q.count = self.seen;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let q = Quantiles::from_samples(&[]);
        assert_eq!(q, Quantiles::default());
        assert_eq!(q.count, 0);
    }

    #[test]
    fn nearest_rank_on_small_sets() {
        // 1..=100: p50 = 50, p90 = 90, p99 = 99 under nearest-rank.
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::from_samples(&v);
        assert_eq!(q.count, 100);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p90, 90.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 100.0);
        assert!((q.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let q = Quantiles::from_samples(&[7.0]);
        assert_eq!((q.p50, q.p90, q.p99, q.max), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn order_independent() {
        let a = Quantiles::from_samples(&[3.0, 1.0, 2.0]);
        let b = Quantiles::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 2.0);
    }

    #[test]
    fn json_round_trips_fields() {
        let q = Quantiles::from_samples(&[1.0, 2.0]);
        let s = q.to_json().to_string();
        for key in ["count", "mean", "p50", "p90", "p99", "p999", "max"] {
            assert!(s.contains(key), "{s}");
        }
    }

    #[test]
    fn p999_separates_from_p99_on_large_sets() {
        // 1..=10000: nearest-rank p99 = 9900, p999 = 9990.
        let v: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let q = Quantiles::from_samples(&v);
        assert_eq!(q.p99, 9900.0);
        assert_eq!(q.p999, 9990.0);
        assert_eq!(q.max, 10_000.0);
    }

    #[test]
    fn reservoir_below_cap_is_exact() {
        let mut r = Reservoir::new(64);
        let v: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        r.extend(&v);
        assert_eq!(r.len(), 50);
        assert_eq!(r.seen(), 50);
        assert_eq!(r.quantiles(), Quantiles::from_samples(&v));
    }

    #[test]
    fn reservoir_decimates_deterministically_and_stays_bounded() {
        let mut a = Reservoir::new(16);
        let mut b = Reservoir::new(16);
        for i in 0..10_000 {
            a.push(i as f64);
            b.push(i as f64);
        }
        assert!(a.len() <= 16, "{}", a.len());
        assert_eq!(a.seen(), 10_000);
        assert_eq!(a.quantiles(), b.quantiles(), "same pushes, same retained set");
        assert_eq!(a.quantiles().count, 10_000, "count reports true observations");
    }

    #[test]
    fn reservoir_quantiles_track_the_stream() {
        let mut r = Reservoir::new(512);
        for i in 1..=100_000u64 {
            r.push(i as f64);
        }
        let q = r.quantiles();
        // Uniform ramp: decimated quantiles stay within a few strides.
        assert!((q.p50 - 50_000.0).abs() / 50_000.0 < 0.02, "p50 {}", q.p50);
        assert!((q.p99 - 99_000.0).abs() / 99_000.0 < 0.02, "p99 {}", q.p99);
    }

    #[test]
    fn reservoir_merge_combines_streams() {
        // Two workers each observe half a ramp; the merged reservoir must
        // summarize the union without over-weighting either side.
        let mut lo = Reservoir::new(256);
        let mut hi = Reservoir::new(256);
        for i in 1..=4000u64 {
            lo.push(i as f64);
            hi.push((i + 4000) as f64);
        }
        let mut merged = lo.clone();
        merged.merge(&hi);
        assert_eq!(merged.seen(), 8000);
        assert!(merged.len() <= 256);
        let q = merged.quantiles();
        assert!((q.p50 - 4000.0).abs() / 4000.0 < 0.05, "p50 {}", q.p50);
        assert!(q.max >= 7900.0, "max {}", q.max);
        // Merging empty is a no-op.
        let before = merged.quantiles();
        merged.merge(&Reservoir::new(256));
        assert_eq!(merged.quantiles(), before);
    }
}
