//! Latency quantiles for per-session serving telemetry.
//!
//! The serving layer reports p50/p99 decision-cycle latency and queue wait
//! per session. Sample counts are small (hundreds of cycles), so exact
//! order statistics over the retained samples are cheap and unambiguous —
//! no sketching. Quantiles use the nearest-rank method (`ceil(q·n)`), the
//! convention the paper's latency tables imply: p99 of 100 samples is the
//! 99th smallest, not an interpolation.

use crate::json::Json;

/// Summary statistics over a set of latency samples (nanoseconds, or any
/// other nonnegative magnitude).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Quantiles {
    /// Compute from raw samples. Non-finite samples are a caller bug and
    /// panic in debug builds; order is irrelevant (the slice is copied and
    /// sorted internally).
    pub fn from_samples(samples: &[f64]) -> Quantiles {
        debug_assert!(samples.iter().all(|s| s.is_finite()), "non-finite latency sample");
        if samples.is_empty() {
            return Quantiles::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let rank = |q: f64| -> f64 {
            let k = ((q * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        Quantiles {
            count: n as u64,
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: sorted[n - 1],
        }
    }

    /// Serialize for bench artifacts / run reports.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::float(self.mean)),
            ("p50", Json::float(self.p50)),
            ("p90", Json::float(self.p90)),
            ("p99", Json::float(self.p99)),
            ("max", Json::float(self.max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let q = Quantiles::from_samples(&[]);
        assert_eq!(q, Quantiles::default());
        assert_eq!(q.count, 0);
    }

    #[test]
    fn nearest_rank_on_small_sets() {
        // 1..=100: p50 = 50, p90 = 90, p99 = 99 under nearest-rank.
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::from_samples(&v);
        assert_eq!(q.count, 100);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p90, 90.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 100.0);
        assert!((q.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let q = Quantiles::from_samples(&[7.0]);
        assert_eq!((q.p50, q.p90, q.p99, q.max), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn order_independent() {
        let a = Quantiles::from_samples(&[3.0, 1.0, 2.0]);
        let b = Quantiles::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 2.0);
    }

    #[test]
    fn json_round_trips_fields() {
        let q = Quantiles::from_samples(&[1.0, 2.0]);
        let s = q.to_json().to_string();
        for key in ["count", "mean", "p50", "p90", "p99", "max"] {
            assert!(s.contains(key), "{s}");
        }
    }
}
