//! The per-node hot-spot profiler — §6 of the paper as a reusable tool.
//!
//! Gupta's measurements (which §6 follows) are all *per node*: how many
//! activations each two-input node sees, how many are null, how many
//! opposite-memory entries it scans, and where the simulated time goes.
//! [`NodeProfiler`] folds [`TaskRecord`] streams into exactly that, and
//! [`HotSpotReport`] keys the result back to production names through the
//! network's `prod_names` bookkeeping, so "node 117 is hot" becomes
//! "the eval-operator join chain is hot".

use crate::json::Json;
use crate::report::TextTable;
use psme_rete::{CycleTrace, NodeId, NodeKind, ReteNetwork, RightSrc, TaskKind, TaskRecord};
use std::collections::HashMap;

/// Accumulated measurements for one node (or for the alpha network as a
/// whole, under node 0).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeProfile {
    /// Node id (0 aggregates all alpha tasks).
    pub node: NodeId,
    /// Activations processed at this node.
    pub activations: u64,
    /// Activations that emitted no children (null activations — pure
    /// overhead in the paper's accounting).
    pub nulls: u64,
    /// Opposite-memory entries scanned.
    pub scanned: u64,
    /// Child activations emitted.
    pub emitted: u64,
    /// Attributed simulated cost in µs (whatever cost function the caller
    /// supplied — zero if none was).
    pub cost_us: f64,
    /// Attributed measured wall time in ns (zero when the trace wasn't
    /// wall-clocked).
    pub wall_ns: u64,
}

impl NodeProfile {
    /// Null activations as a share of activations.
    pub fn null_ratio(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.nulls as f64 / self.activations as f64
        }
    }
}

/// Streaming per-node profiler over task traces.
#[derive(Clone, Debug, Default)]
pub struct NodeProfiler {
    nodes: HashMap<NodeId, NodeProfile>,
    /// Cycles ingested.
    pub cycles: u64,
    /// Tasks ingested.
    pub tasks: u64,
}

impl NodeProfiler {
    /// Empty profiler.
    pub fn new() -> NodeProfiler {
        NodeProfiler::default()
    }

    /// Fold one cycle in without cost attribution.
    pub fn ingest(&mut self, trace: &CycleTrace) {
        self.ingest_costed(trace, |_, _| 0.0);
    }

    /// Fold one cycle in, attributing `cost(task, n_children)` µs to each
    /// task's destination node.
    pub fn ingest_costed(&mut self, trace: &CycleTrace, cost: impl Fn(&TaskRecord, usize) -> f64) {
        let mut children = vec![0usize; trace.tasks.len()];
        for t in &trace.tasks {
            if let Some(p) = t.parent {
                if let Some(c) = children.get_mut(p as usize) {
                    *c += 1;
                }
            }
        }
        for (i, t) in trace.tasks.iter().enumerate() {
            let key = if t.kind == TaskKind::Alpha { 0 } else { t.node };
            let p = self.nodes.entry(key).or_insert(NodeProfile { node: key, ..Default::default() });
            p.activations += 1;
            if t.is_null() {
                p.nulls += 1;
            }
            p.scanned += t.scanned as u64;
            p.emitted += t.emitted as u64;
            p.cost_us += cost(t, children[i]);
            p.wall_ns += t.wall_ns as u64;
            self.tasks += 1;
        }
        self.cycles += 1;
    }

    /// Fold many cycles in with cost attribution.
    pub fn ingest_run(
        &mut self,
        traces: &[CycleTrace],
        cost: impl Fn(&TaskRecord, usize) -> f64,
    ) {
        for t in traces {
            self.ingest_costed(t, &cost);
        }
    }

    /// Profile for one node.
    pub fn node(&self, id: NodeId) -> Option<&NodeProfile> {
        self.nodes.get(&id)
    }

    /// All profiles, hottest first (by attributed cost, then activations,
    /// then node id for determinism).
    pub fn ranked(&self) -> Vec<NodeProfile> {
        let mut v: Vec<NodeProfile> = self.nodes.values().copied().collect();
        v.sort_by(|a, b| {
            b.cost_us
                .partial_cmp(&a.cost_us)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.activations.cmp(&a.activations))
                .then(a.node.cmp(&b.node))
        });
        v
    }

    /// Total attributed cost across all nodes (µs).
    pub fn total_cost_us(&self) -> f64 {
        self.nodes.values().map(|p| p.cost_us).sum()
    }

    /// Build the top-`k` hot-node report, resolving production names
    /// through `net`.
    pub fn report(&self, net: &ReteNetwork, k: usize) -> HotSpotReport {
        let total_cost = self.total_cost_us();
        let total_act = self.tasks;
        let rows = self
            .ranked()
            .into_iter()
            .take(k)
            .map(|p| {
                let (kind, prods) = describe_node(net, p.node);
                let share = if total_cost > 0.0 {
                    p.cost_us / total_cost
                } else if total_act > 0 {
                    p.activations as f64 / total_act as f64
                } else {
                    0.0
                };
                HotRow { profile: p, kind, prods, share }
            })
            .collect();
        HotSpotReport { rows, total_cost_us: total_cost, total_tasks: total_act, cycles: self.cycles }
    }
}

/// `(kind label, owning production names)` for a node id.
fn describe_node(net: &ReteNetwork, id: NodeId) -> (String, Vec<String>) {
    if id == 0 {
        return ("alpha".to_string(), vec![]);
    }
    let Some(node) = net.betas.get(id as usize) else {
        return ("?".to_string(), vec![]);
    };
    let kind = match node.kind {
        NodeKind::Root => "root".to_string(),
        NodeKind::Join => "join".to_string(),
        NodeKind::Neg => match node.right {
            Some(RightSrc::Beta(_)) => "ncc".to_string(),
            _ => "not".to_string(),
        },
        NodeKind::Prod { .. } => "P".to_string(),
    };
    let mut prods: Vec<String> = match node.kind {
        NodeKind::Prod { prod } => net
            .prods
            .get(prod as usize)
            .map(|p| vec![psme_ops::sym_name(p.production.name).to_string()])
            .unwrap_or_default(),
        _ => node.prod_names.iter().map(|&s| psme_ops::sym_name(s).to_string()).collect(),
    };
    prods.dedup();
    (kind, prods)
}

/// One row of the hot-node table.
#[derive(Clone, Debug)]
pub struct HotRow {
    /// The measurements.
    pub profile: NodeProfile,
    /// Node kind label (`join`, `not`, `ncc`, `P`, `alpha`).
    pub kind: String,
    /// Productions this node belongs to (shared nodes list several).
    pub prods: Vec<String>,
    /// Share of total attributed cost (falls back to activation share when
    /// no cost function was supplied).
    pub share: f64,
}

/// The §6-style top-K hot-node table.
#[derive(Clone, Debug)]
pub struct HotSpotReport {
    /// Rows, hottest first.
    pub rows: Vec<HotRow>,
    /// Total attributed cost across *all* nodes (µs), not just the top K.
    pub total_cost_us: f64,
    /// Total tasks profiled.
    pub total_tasks: u64,
    /// Cycles profiled.
    pub cycles: u64,
}

impl HotSpotReport {
    /// Render as a plain-text table.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new(&[
            "node", "kind", "acts", "null%", "scanned", "emitted", "cost µs", "share%", "productions",
        ]);
        for r in &self.rows {
            let p = &r.profile;
            let prods = if r.prods.is_empty() { "-".to_string() } else { r.prods.join(",") };
            t.row(vec![
                p.node.to_string(),
                r.kind.clone(),
                p.activations.to_string(),
                format!("{:.1}", 100.0 * p.null_ratio()),
                p.scanned.to_string(),
                p.emitted.to_string(),
                format!("{:.1}", p.cost_us),
                format!("{:.1}", 100.0 * r.share),
                prods,
            ]);
        }
        format!(
            "hot nodes ({} tasks over {} cycles, {:.1} µs total attributed cost)\n{}",
            self.total_tasks,
            self.cycles,
            self.total_cost_us,
            t.render()
        )
    }

    /// As a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total_tasks", Json::from(self.total_tasks)),
            ("cycles", Json::from(self.cycles)),
            ("total_cost_us", Json::float(self.total_cost_us)),
            (
                "nodes",
                Json::arr(self.rows.iter().map(|r| {
                    let p = &r.profile;
                    Json::obj([
                        ("node", Json::from(p.node)),
                        ("kind", Json::from(r.kind.as_str())),
                        ("productions", Json::arr(r.prods.iter().map(|s| Json::from(s.as_str())))),
                        ("activations", Json::from(p.activations)),
                        ("nulls", Json::from(p.nulls)),
                        ("null_ratio", Json::float(p.null_ratio())),
                        ("scanned", Json::from(p.scanned)),
                        ("emitted", Json::from(p.emitted)),
                        ("cost_us", Json::float(p.cost_us)),
                        ("wall_ns", Json::from(p.wall_ns)),
                        ("share", Json::float(r.share)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::{Phase, Side};

    fn rec(id: u32, node: NodeId, kind: TaskKind, scanned: u32, emitted: u32) -> TaskRecord {
        TaskRecord {
            id,
            parent: None,
            node,
            kind,
            side: Some(Side::Left),
            delta: 1,
            scanned,
            hash_rejects: 0,
            skipped: 0,
            probes: 0,
            emitted,
            line: Some(0),
            acquires: 1,
            wall_ns: 100,
        }
    }

    fn trace(tasks: Vec<TaskRecord>) -> CycleTrace {
        CycleTrace { cycle: 0, phase: Phase::Match, tasks }
    }

    #[test]
    fn profiles_group_by_node_and_count_nulls() {
        let mut p = NodeProfiler::new();
        p.ingest_costed(
            &trace(vec![
                rec(0, 0, TaskKind::Alpha, 4, 1),
                rec(1, 7, TaskKind::Join, 3, 0), // null
                rec(2, 7, TaskKind::Join, 2, 2),
                rec(3, 9, TaskKind::Prod, 0, 0),
            ]),
            |t, _| t.scanned as f64,
        );
        let n7 = p.node(7).unwrap();
        assert_eq!(n7.activations, 2);
        assert_eq!(n7.nulls, 1);
        assert_eq!(n7.scanned, 5);
        assert!((n7.null_ratio() - 0.5).abs() < 1e-12);
        assert!((n7.cost_us - 5.0).abs() < 1e-12);
        // Alpha tasks pool under node 0; P-node tasks are not null.
        assert_eq!(p.node(0).unwrap().activations, 1);
        assert_eq!(p.node(9).unwrap().nulls, 0);
        assert_eq!(p.tasks, 4);
        // Ranked by cost: node 7 (5 µs) > node 0 (4 µs) > node 9 (0).
        let ranked = p.ranked();
        assert_eq!(ranked[0].node, 7);
        assert_eq!(ranked[1].node, 0);
    }

    #[test]
    fn report_resolves_production_names() {
        use psme_ops::{parse_production, ClassRegistry};
        use psme_rete::NetworkOrg;
        use std::sync::Arc;
        let mut reg = ClassRegistry::new();
        reg.declare_str("a", &["x", "y"]);
        let mut net = ReteNetwork::new();
        let prod =
            parse_production("(p hot-prod (a ^x <v>) (a ^y <v>) --> (halt))", &mut reg).unwrap();
        net.add_production(Arc::new(prod), NetworkOrg::Linear).unwrap();
        // Find a join node of the production.
        let join = net.two_input_nodes().next().unwrap().id;
        let mut p = NodeProfiler::new();
        p.ingest_costed(&trace(vec![rec(0, join, TaskKind::Join, 1, 1)]), |_, _| 1.0);
        let rep = p.report(&net, 5);
        assert_eq!(rep.rows.len(), 1);
        assert!(rep.rows[0].prods.iter().any(|n| n == "hot-prod"), "{:?}", rep.rows[0].prods);
        let text = rep.to_text();
        assert!(text.contains("hot-prod"));
        let json = rep.to_json();
        assert_eq!(
            json.get("nodes").unwrap().at(0).unwrap().get("productions").unwrap().at(0).unwrap().as_str(),
            Some("hot-prod")
        );
    }

    #[test]
    fn share_falls_back_to_activations_without_cost() {
        let mut p = NodeProfiler::new();
        p.ingest(&trace(vec![
            rec(0, 1, TaskKind::Join, 0, 1),
            rec(1, 1, TaskKind::Join, 0, 1),
            rec(2, 2, TaskKind::Join, 0, 1),
            rec(3, 2, TaskKind::Join, 0, 0),
        ]));
        let net = ReteNetwork::new();
        let rep = p.report(&net, 10);
        let total: f64 = rep.rows.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1: {total}");
    }
}
