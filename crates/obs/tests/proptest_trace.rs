//! Property tests for the flight-recorder trace layer.
//!
//! The invariants the serving stack leans on: a ring is a *bounded* buffer
//! that drops oldest with exact accounting, per-worker sequence numbers
//! are gap-free across drains, a sealed merge is causally ordered, and the
//! Chrome export is strictly valid JSON (round-trips through our own
//! parser, which accepts nothing sloppy).

use proptest::prelude::*;
use psme_obs::{Json, TraceEvent, TraceKind, TraceLog, TraceRing, SESSION_NONE};
use std::time::Instant;

/// An arbitrary event-kind index → concrete kind (session-carrying only;
/// phase events are exercised by the unit tests).
fn kind_of(ix: u8) -> TraceKind {
    match ix % 8 {
        0 => TraceKind::Admitted,
        1 => TraceKind::Enqueued,
        2 => TraceKind::SliceStart,
        3 => TraceKind::SliceEnd,
        4 => TraceKind::Reenqueued,
        5 => TraceKind::Retired,
        6 => TraceKind::Shed,
        _ => TraceKind::Halted,
    }
}

proptest! {
    /// The ring never holds more than its capacity, and its accounting is
    /// exact: events retained + events dropped = events emitted, and the
    /// retained ones are precisely the newest `min(cap, emitted)` in
    /// emission order (drop-oldest).
    #[test]
    fn ring_is_bounded_with_exact_drop_oldest_accounting(
        cap in 1usize..40,
        emits in proptest::collection::vec((0u64..1_000_000, 0u8..8, 0u32..16), 0..200),
    ) {
        let mut ring = TraceRing::new(3, cap, Instant::now());
        for (i, &(t, k, s)) in emits.iter().enumerate() {
            ring.emit_at(t, kind_of(k), s, i as u64, i as u64 + 1, 0);
            prop_assert!(ring.len() <= cap, "len {} > cap {}", ring.len(), cap);
        }
        let total = emits.len();
        prop_assert_eq!(ring.len(), total.min(cap));
        prop_assert_eq!(ring.dropped() as usize, total.saturating_sub(cap));
        let (events, dropped) = {
            let mut log = TraceLog::default();
            let d = ring.dropped();
            log.absorb(&mut ring);
            (log.events, d)
        };
        prop_assert_eq!(events.len() + dropped as usize, total);
        // Survivors are the *newest* suffix, in emission order, with the
        // sequence numbers they were assigned at emit time.
        let first_kept = total - events.len();
        for (off, ev) in events.iter().enumerate() {
            let i = first_kept + off;
            prop_assert_eq!(ev.seq, i as u64, "seq of survivor {}", off);
            prop_assert_eq!(ev.t_ns, emits[i].0);
            prop_assert_eq!(ev.kind, kind_of(emits[i].1));
            prop_assert_eq!(ev.session, emits[i].2);
        }
    }

    /// Sequence numbers keep counting across drains: draining the ring
    /// mid-stream never resets or duplicates a seq.
    #[test]
    fn seqs_survive_drains_gap_free(
        cap in 1usize..16,
        chunks in proptest::collection::vec(0usize..30, 1..8),
    ) {
        let mut ring = TraceRing::new(0, cap, Instant::now());
        let mut log = TraceLog::default();
        let mut emitted = 0u64;
        for chunk in &chunks {
            for _ in 0..*chunk {
                ring.emit_at(emitted, TraceKind::Enqueued, 1, 0, 0, 0);
                emitted += 1;
            }
            log.absorb(&mut ring);
        }
        log.seal();
        // Every emitted seq is either retained or accounted as dropped —
        // drains never lose, reset, or duplicate a sequence number.
        prop_assert_eq!(log.events.len() as u64 + log.dropped, emitted);
        for pair in log.events.windows(2) {
            prop_assert!(pair[1].seq > pair[0].seq, "dup or reorder after a drain");
        }
        if let Some(last) = log.events.last() {
            prop_assert!(last.seq < emitted);
        }
        // When the ring never overflowed, the stream is exactly gap-free.
        if log.dropped == 0 {
            for (i, ev) in log.events.iter().enumerate() {
                prop_assert_eq!(ev.seq, i as u64);
            }
        }
    }

    /// A merge of many workers' rings seals into (t, worker, seq) order,
    /// and each worker's subsequence is seq-gap-free when nothing dropped.
    #[test]
    fn merged_log_is_sorted_and_per_worker_gap_free(
        per_worker in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 0..50), 1..6),
    ) {
        let origin = Instant::now();
        let mut log = TraceLog::default();
        for (w, times) in per_worker.iter().enumerate() {
            // Capacity covers everything: no drops, so no seq gaps.
            let mut ring = TraceRing::new(w as u32, times.len().max(1), origin);
            for &t in times {
                ring.emit_at(t, TraceKind::SliceEnd, w as u32, 0, 1, 5);
            }
            log.absorb(&mut ring);
        }
        log.seal();
        prop_assert!(log.is_sorted());
        prop_assert_eq!(log.dropped, 0);
        let total: usize = per_worker.iter().map(Vec::len).sum();
        prop_assert_eq!(log.events.len(), total);
        for (w, times) in per_worker.iter().enumerate() {
            let seqs: Vec<u64> = log
                .events
                .iter()
                .filter(|e| e.worker == w as u32)
                .map(|e| e.seq)
                .collect();
            prop_assert_eq!(seqs.len(), times.len());
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            let expect: Vec<u64> = (0..times.len() as u64).collect();
            prop_assert_eq!(sorted, expect, "worker {} seqs not gap-free", w);
        }
    }

    /// The Chrome export of an arbitrary merged trace round-trips through
    /// the strict parser: every event line is well-formed JSON and the
    /// envelope has the trace_event shape Perfetto expects.
    #[test]
    fn chrome_export_round_trips_strict_json(
        events in proptest::collection::vec(
            (0u64..1_000_000, 0u32..4, 0u8..8, 0u32..8, 0u64..50_000), 0..120),
    ) {
        let origin = Instant::now();
        let mut rings: Vec<TraceRing> =
            (0..4).map(|w| TraceRing::new(w, events.len().max(1), origin)).collect();
        for &(t, w, k, s, arg) in &events {
            rings[w as usize].emit_at(t, kind_of(k), s, 0, 0, arg);
        }
        let mut log = TraceLog::default();
        for r in &mut rings {
            log.absorb(r);
        }
        log.seal();
        let text = log.chrome_json().to_string();
        let parsed = Json::parse(&text).expect("chrome export must be strict JSON");
        let evs = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // Every entry is an object with a one-char phase and a pid.
        for e in evs {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            prop_assert!(["M", "X", "i", "s", "f", "B", "E"].contains(&ph), "ph {:?}", ph);
            prop_assert!(e.get("pid").and_then(Json::as_u64).is_some());
        }
        // The compact run-trace artifact round-trips too.
        let artifact = log.to_json().to_string();
        prop_assert!(Json::parse(&artifact).is_ok());
        // Flow arrows are balanced: a finish ("f") only ever follows an
        // open start ("s") for that id.
        let mut open = std::collections::HashSet::new();
        for e in evs {
            match e.get("ph").and_then(Json::as_str) {
                Some("s") => {
                    let id = e.get("id").and_then(Json::as_u64).expect("flow id");
                    open.insert(id);
                }
                Some("f") => {
                    let id = e.get("id").and_then(Json::as_u64).expect("flow id");
                    prop_assert!(open.contains(&id), "f without s for id {}", id);
                }
                _ => {}
            }
        }
    }
}

/// Deterministic replay: the same event sequence always produces the same
/// export bytes (no wall clock, no hash-order dependence).
#[test]
fn export_is_a_pure_function_of_the_events() {
    let build = || {
        let origin = Instant::now();
        let mut ring = TraceRing::new(0, 64, origin);
        for i in 0..32u64 {
            ring.emit_at(i * 100, TraceKind::SliceEnd, (i % 3) as u32, i, i + 1, 40);
        }
        let mut log = TraceLog::default();
        log.absorb(&mut ring);
        log.seal();
        log
    };
    let a = build();
    let b = build();
    assert_eq!(a.events, b.events);
    assert_eq!(a.chrome_json().to_string(), b.chrome_json().to_string());
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
}

/// `SESSION_NONE` events never leak a bogus session field into either
/// export.
#[test]
fn session_none_is_omitted_from_exports() {
    let mut ring = TraceRing::new(0, 8, Instant::now());
    ring.emit_at(10, TraceKind::SliceEnd, SESSION_NONE, 0, 1, 5);
    let mut log = TraceLog::default();
    log.absorb(&mut ring);
    log.seal();
    let ev: &TraceEvent = &log.events[0];
    let artifact = ev.to_json().to_string();
    assert!(!artifact.contains("session"), "artifact: {artifact}");
}
