//! Deterministic discrete-event model of the serving loop.
//!
//! The host running this reproduction has far fewer cores than the sweep
//! the paper-style figures need (1–13 workers), so — exactly like the
//! Multimax simulator in `psme-sim` does for match parallelism — serving
//! throughput is swept on a model: K workers, one logical ready queue,
//! round-robin slices, per-cycle service times supplied by the caller
//! (derived from captured real traces). Everything is exact arithmetic
//! over the inputs; no randomness, no wall clock — the same inputs always
//! produce the same figures.
//!
//! The model's simplifications relative to [`crate::serve`]: a single
//! FIFO ready queue ordered by ready time (ties broken by session index),
//! and a constant per-dispatch overhead standing in for the scheduler's
//! queue traffic. Relative throughput across worker counts — the quantity
//! the `serve_throughput` figures report — is insensitive to both.

use psme_obs::{TraceKind, TraceLog, TraceRing};
use std::time::Instant;

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct DesConfig {
    /// Worker count (the sweep variable).
    pub workers: usize,
    /// Decision cycles per dispatch slice.
    pub slice: usize,
    /// Seconds of dispatch overhead per slice (queue pop + handoff).
    pub dispatch_overhead: f64,
}

/// Model outputs.
#[derive(Clone, Debug)]
pub struct DesResult {
    /// Time the last session completed (seconds).
    pub makespan: f64,
    /// Completed sessions per second (`n / makespan`).
    pub sessions_per_sec: f64,
    /// Per-session completion times, in input order (seconds).
    pub completions: Vec<f64>,
    /// Per-cycle latency samples (slice queue wait + own service time),
    /// seconds; quantile them with `psme_obs::Quantiles`.
    pub cycle_latency: Vec<f64>,
    /// The same typed event stream the real serve loop emits
    /// ([`psme_obs::TraceKind`]), stamped with *virtual* nanoseconds, so
    /// model runs export through the identical Chrome-trace path as
    /// captured runs. Deterministic: a pure function of the inputs.
    pub trace: TraceLog,
}

/// Simulate serving `sessions` (one inner `Vec<f64>` of per-cycle service
/// seconds each) on `cfg.workers` workers. All sessions arrive at t=0.
pub fn simulate_serve(sessions: &[Vec<f64>], cfg: &DesConfig) -> DesResult {
    let n = sessions.len();
    let workers = cfg.workers.max(1);
    let slice = cfg.slice.max(1);
    let mut completions = vec![0.0f64; n];
    let mut cycle_latency: Vec<f64> = Vec::new();
    // Ring capacity that can never drop: at most 3 events per dispatch,
    // worst case all on one worker, plus the control ring's 2 per session.
    let dispatches: usize = sessions.iter().map(|c| c.len().div_ceil(slice).max(1)).sum();
    let ring_cap = 3 * dispatches + 2 * n + 1;
    let origin = Instant::now();
    let mut rings: Vec<TraceRing> =
        (0..workers).map(|w| TraceRing::new(w as u32, ring_cap, origin)).collect();
    let mut ctl = TraceRing::new(workers as u32, ring_cap, origin);
    let ns = |t: f64| (t * 1e9).round() as u64;
    if n == 0 {
        return DesResult {
            makespan: 0.0,
            sessions_per_sec: 0.0,
            completions,
            cycle_latency,
            trace: TraceLog::default(),
        };
    }
    for s in 0..n {
        ctl.emit_at(0, TraceKind::Admitted, s as u32, 0, 0, 0);
        ctl.emit_at(0, TraceKind::Enqueued, s as u32, 0, 0, 0);
    }
    // Ready list: (ready_time, session, next_cycle), kept sorted by
    // (ready_time, session) — a priority queue small enough for Vec ops.
    let mut ready: Vec<(f64, usize, usize)> = (0..n).map(|s| (0.0, s, 0)).collect();
    let mut worker_free = vec![0.0f64; workers];
    while !ready.is_empty() {
        // Earliest-ready session (FIFO by ready time, index tie-break) to
        // the earliest-free worker.
        let ri = ready
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 .0, a.1 .1).partial_cmp(&(b.1 .0, b.1 .1)).expect("finite times")
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        let (ready_t, s, first_cycle) = ready.swap_remove(ri);
        let wi = worker_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .map(|(i, _)| i)
            .expect("workers >= 1");
        let start = worker_free[wi].max(ready_t) + cfg.dispatch_overhead;
        let wait = start - ready_t;
        let cycles = &sessions[s];
        let last = (first_cycle + slice).min(cycles.len());
        let mut t = start;
        for &c in &cycles[first_cycle..last] {
            t += c;
            cycle_latency.push(wait + c);
        }
        worker_free[wi] = t;
        rings[wi].emit_at(
            ns(start),
            TraceKind::SliceStart,
            s as u32,
            first_cycle as u64,
            first_cycle as u64,
            ns(wait),
        );
        rings[wi].emit_at(
            ns(t),
            TraceKind::SliceEnd,
            s as u32,
            first_cycle as u64,
            last as u64,
            ns(t - start),
        );
        if last < cycles.len() {
            ready.push((t, s, last));
            rings[wi].emit_at(ns(t), TraceKind::Reenqueued, s as u32, 0, 0, 0);
        } else {
            completions[s] = t;
            rings[wi].emit_at(ns(t), TraceKind::Retired, s as u32, 0, last as u64, 0);
        }
    }
    let mut trace = TraceLog::default();
    trace.absorb(&mut ctl);
    for ring in &mut rings {
        trace.absorb(ring);
    }
    trace.seal();
    let makespan = completions.iter().cloned().fold(0.0, f64::max);
    DesResult {
        makespan,
        sessions_per_sec: if makespan > 0.0 { n as f64 / makespan } else { 0.0 },
        completions,
        cycle_latency,
        trace,
    }
}

/// Sharding parameters for the model ([`simulate_serve_sharded`]).
#[derive(Clone, Copy, Debug)]
pub struct DesShardConfig {
    /// Worker pools ([`DesConfig::workers`] is **per shard**, so the sweep
    /// reaches `shards x workers` logical workers). Sessions route home by
    /// index mod `shards` (the model's sessions are anonymous; the real
    /// loop hashes names).
    pub shards: usize,
    /// Let a shard whose ready list is empty steal a queued slice from
    /// another shard — through the *victim's* dispatch bus, like the real
    /// `steal_foreign` path takes the victim's queue locks.
    pub steal: bool,
}

/// Model outputs for a sharded run.
#[derive(Clone, Debug)]
pub struct DesShardedResult {
    /// Time the last session completed (seconds).
    pub makespan: f64,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Per-session completion times, in input order (seconds).
    pub completions: Vec<f64>,
    /// Per-cycle latency samples, seconds.
    pub cycle_latency: Vec<f64>,
    /// Dispatches served by a worker outside the session's home shard.
    pub cross_shard_steals: u64,
    /// Typed event stream (virtual ns) with `CrossShardSteal` markers and
    /// the worker → shard map set, so the Chrome export groups one track
    /// group per shard.
    pub trace: TraceLog,
}

/// Simulate sharded serving: `shards` pools of `cfg.workers` workers, each
/// pool owning the sessions `s` with `s % shards == pool`, each with its
/// own **serialized dispatch bus** — every dispatch (pop + handoff) holds
/// the home shard's bus for `dispatch_overhead` seconds, so one shard's
/// dispatch rate saturates at `1 / dispatch_overhead` no matter how many
/// workers it has. That is the single-bus contention knee; sharding
/// multiplies the aggregate bus bandwidth. Deterministic: a pure function
/// of the inputs.
pub fn simulate_serve_sharded(
    sessions: &[Vec<f64>],
    cfg: &DesConfig,
    shard: &DesShardConfig,
) -> DesShardedResult {
    let n = sessions.len();
    let wps = cfg.workers.max(1);
    let nshards = shard.shards.max(1);
    let workers = nshards * wps;
    let slice = cfg.slice.max(1);
    let mut completions = vec![0.0f64; n];
    let mut cycle_latency: Vec<f64> = Vec::new();
    let mut cross_shard_steals = 0u64;
    let dispatches: usize = sessions.iter().map(|c| c.len().div_ceil(slice).max(1)).sum();
    // Up to 3 slice events + 1 steal marker per dispatch.
    let ring_cap = 4 * dispatches + 2 * n + 1;
    let origin = Instant::now();
    let mut rings: Vec<TraceRing> =
        (0..workers).map(|w| TraceRing::new(w as u32, ring_cap, origin)).collect();
    let mut ctl = TraceRing::new(workers as u32, ring_cap, origin);
    let ns = |t: f64| (t * 1e9).round() as u64;
    if n == 0 {
        return DesShardedResult {
            makespan: 0.0,
            sessions_per_sec: 0.0,
            completions,
            cycle_latency,
            cross_shard_steals,
            trace: TraceLog::default(),
        };
    }
    for s in 0..n {
        ctl.emit_at(0, TraceKind::Admitted, s as u32, 0, 0, 0);
        ctl.emit_at(0, TraceKind::Enqueued, s as u32, 0, 0, 0);
    }
    // Per-shard ready lists: (ready_time, session, next_cycle).
    let mut ready: Vec<Vec<(f64, usize, usize)>> = vec![Vec::new(); nshards];
    for s in 0..n {
        ready[s % nshards].push((0.0, s, 0));
    }
    let mut worker_free = vec![0.0f64; workers];
    // When each shard's dispatch bus frees up.
    let mut bus_free = vec![0.0f64; nshards];
    let mut left: usize = n;
    while left > 0 {
        // Globally earliest dispatch: for each home shard's earliest-ready
        // session, consider its own pool and — when stealing is on — pools
        // whose own ready list is empty. Tie-break prefers the home pool,
        // then (home, thief) order, so the schedule is deterministic.
        let mut best: Option<(f64, usize, usize, usize, usize)> = None;
        for h in 0..nshards {
            let Some((ci, &(ready_t, ..))) = ready[h].iter().enumerate().min_by(|a, b| {
                (a.1 .0, a.1 .1).partial_cmp(&(b.1 .0, b.1 .1)).expect("finite times")
            }) else {
                continue;
            };
            for (t, ready_t_pool) in ready.iter().enumerate().take(nshards) {
                if t != h && !(shard.steal && ready_t_pool.is_empty()) {
                    continue;
                }
                let wi = (t * wps..(t + 1) * wps)
                    .min_by(|a, b| {
                        worker_free[*a].partial_cmp(&worker_free[*b]).expect("finite times")
                    })
                    .expect("wps >= 1");
                let bus_start = worker_free[wi].max(ready_t).max(bus_free[h]);
                let key = (bus_start, usize::from(t != h), h, t);
                if best.is_none_or(|(bs, steal_flag, bh, bt, _)| {
                    key < (bs, steal_flag, bh, bt)
                }) {
                    best = Some((bus_start, usize::from(t != h), h, t, ci));
                }
            }
        }
        let (bus_start, stolen, h, t, ci) = best.expect("left > 0 implies ready work");
        let (ready_t, s, first_cycle) = ready[h].swap_remove(ci);
        let wi = (t * wps..(t + 1) * wps)
            .min_by(|a, b| worker_free[*a].partial_cmp(&worker_free[*b]).expect("finite times"))
            .expect("wps >= 1");
        // The dispatch holds the home bus for the overhead window.
        bus_free[h] = bus_start + cfg.dispatch_overhead;
        let start = bus_start + cfg.dispatch_overhead;
        let wait = start - ready_t;
        if stolen == 1 {
            cross_shard_steals += 1;
            rings[wi].emit_at(ns(start), TraceKind::CrossShardSteal, s as u32, 0, 0, h as u64);
        }
        let cycles = &sessions[s];
        let last = (first_cycle + slice).min(cycles.len());
        let mut time = start;
        for &c in &cycles[first_cycle..last] {
            time += c;
            cycle_latency.push(wait + c);
        }
        worker_free[wi] = time;
        rings[wi].emit_at(
            ns(start),
            TraceKind::SliceStart,
            s as u32,
            first_cycle as u64,
            first_cycle as u64,
            ns(wait),
        );
        rings[wi].emit_at(
            ns(time),
            TraceKind::SliceEnd,
            s as u32,
            first_cycle as u64,
            last as u64,
            ns(time - start),
        );
        if last < cycles.len() {
            // Affinity: re-enqueue on the home shard even after a steal.
            ready[h].push((time, s, last));
            rings[wi].emit_at(ns(time), TraceKind::Reenqueued, s as u32, 0, 0, 0);
        } else {
            completions[s] = time;
            left -= 1;
            rings[wi].emit_at(ns(time), TraceKind::Retired, s as u32, 0, last as u64, 0);
        }
    }
    let mut trace = TraceLog::default();
    trace.absorb(&mut ctl);
    for ring in &mut rings {
        trace.absorb(ring);
    }
    if nshards > 1 {
        for w in 0..workers {
            trace.set_shard(w as u32, (w / wps) as u32);
        }
    }
    trace.seal();
    let makespan = completions.iter().cloned().fold(0.0, f64::max);
    DesShardedResult {
        makespan,
        sessions_per_sec: if makespan > 0.0 { n as f64 / makespan } else { 0.0 },
        completions,
        cycle_latency,
        cross_shard_steals,
        trace,
    }
}

/// Tiering parameters for the model ([`simulate_serve_tiered`]).
///
/// Resume cost models the real store: a snapshot replays its whole op
/// journal, so the cost grows with the cycles the session has already
/// executed — `resume_base + resume_per_cycle × cycles_done`.
#[derive(Clone, Copy, Debug)]
pub struct DesTierConfig {
    /// Max sessions resident at once (the hot table bound).
    pub hot_capacity: usize,
    /// Fixed resume cost (frame verify, shell decode), seconds.
    pub resume_base: f64,
    /// Journal-replay cost per already-executed cycle, seconds.
    pub resume_per_cycle: f64,
}

/// Model outputs for a tiered run.
#[derive(Clone, Debug)]
pub struct DesTieredResult {
    /// Time the last session completed (seconds).
    pub makespan: f64,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Per-session completion times, in input order (seconds).
    pub completions: Vec<f64>,
    /// One sample per resume: the modeled resume latency, seconds.
    pub resume_latency: Vec<f64>,
    /// Hibernations forced by the hot bound.
    pub hibernations: u64,
    /// Dispatches that paid a resume (= hibernations of sessions later
    /// dispatched again).
    pub resumes: u64,
    /// Typed event stream with `Hibernated`/`Resumed` markers, virtual ns.
    pub trace: TraceLog,
}

/// Simulate tiered serving: same dispatch model as [`simulate_serve`], but
/// at most `tier.hot_capacity` sessions are resident; dispatching a
/// non-resident session evicts the least-recently-dispatched resident one
/// (virtual-time LRU, index tie-break) and pays the modeled resume cost on
/// the worker's timeline. Deterministic: a pure function of the inputs.
pub fn simulate_serve_tiered(
    sessions: &[Vec<f64>],
    cfg: &DesConfig,
    tier: &DesTierConfig,
) -> DesTieredResult {
    let n = sessions.len();
    let workers = cfg.workers.max(1);
    let slice = cfg.slice.max(1);
    let hot_cap = tier.hot_capacity.max(1);
    let mut completions = vec![0.0f64; n];
    let mut resume_latency: Vec<f64> = Vec::new();
    let mut hibernations = 0u64;
    let mut resumes = 0u64;
    let dispatches: usize = sessions.iter().map(|c| c.len().div_ceil(slice).max(1)).sum();
    // Up to 3 slice events + 1 resume + 1 eviction per dispatch.
    let ring_cap = 5 * dispatches + 2 * n + 1;
    let origin = Instant::now();
    let mut rings: Vec<TraceRing> =
        (0..workers).map(|w| TraceRing::new(w as u32, ring_cap, origin)).collect();
    let mut ctl = TraceRing::new(workers as u32, ring_cap, origin);
    let ns = |t: f64| (t * 1e9).round() as u64;
    if n == 0 {
        return DesTieredResult {
            makespan: 0.0,
            sessions_per_sec: 0.0,
            completions,
            resume_latency,
            hibernations,
            resumes,
            trace: TraceLog::default(),
        };
    }
    for s in 0..n {
        ctl.emit_at(0, TraceKind::Enqueued, s as u32, 0, 0, 0);
    }
    // Residency: (session, last-dispatch virtual time). `started[s]` tells
    // admission (free) apart from resume (replay cost).
    let mut hot: Vec<(usize, f64)> = Vec::new();
    let mut started = vec![false; n];
    let mut ready: Vec<(f64, usize, usize)> = (0..n).map(|s| (0.0, s, 0)).collect();
    let mut worker_free = vec![0.0f64; workers];
    while !ready.is_empty() {
        let ri = ready
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 .0, a.1 .1).partial_cmp(&(b.1 .0, b.1 .1)).expect("finite times")
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        let (ready_t, s, first_cycle) = ready.swap_remove(ri);
        let wi = worker_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .map(|(i, _)| i)
            .expect("workers >= 1");
        let mut start = worker_free[wi].max(ready_t) + cfg.dispatch_overhead;
        if let Some(entry) = hot.iter_mut().find(|(h, _)| *h == s) {
            entry.1 = start;
        } else {
            // Take a seat, evicting the LRU resident session if full.
            if hot.len() >= hot_cap {
                let vi = hot
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (a.1 .1, a.1 .0).partial_cmp(&(b.1 .1, b.1 .0)).expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("hot nonempty");
                let (victim, _) = hot.swap_remove(vi);
                hibernations += 1;
                rings[wi].emit_at(ns(start), TraceKind::Hibernated, victim as u32, 0, 0, 0);
            }
            hot.push((s, start));
            if started[s] {
                let cost = tier.resume_base + tier.resume_per_cycle * first_cycle as f64;
                resumes += 1;
                resume_latency.push(cost);
                rings[wi].emit_at(
                    ns(start),
                    TraceKind::Resumed,
                    s as u32,
                    first_cycle as u64,
                    first_cycle as u64,
                    ns(cost),
                );
                start += cost;
            } else {
                started[s] = true;
                rings[wi].emit_at(ns(start), TraceKind::Admitted, s as u32, 0, 0, 0);
            }
        }
        let cycles = &sessions[s];
        let last = (first_cycle + slice).min(cycles.len());
        let mut t = start;
        for &c in &cycles[first_cycle..last] {
            t += c;
        }
        worker_free[wi] = t;
        rings[wi].emit_at(
            ns(start),
            TraceKind::SliceStart,
            s as u32,
            first_cycle as u64,
            first_cycle as u64,
            ns(start - ready_t),
        );
        rings[wi].emit_at(
            ns(t),
            TraceKind::SliceEnd,
            s as u32,
            first_cycle as u64,
            last as u64,
            ns(t - start),
        );
        if last < cycles.len() {
            ready.push((t, s, last));
            rings[wi].emit_at(ns(t), TraceKind::Reenqueued, s as u32, 0, 0, 0);
        } else {
            completions[s] = t;
            hot.retain(|(h, _)| *h != s);
            rings[wi].emit_at(ns(t), TraceKind::Retired, s as u32, 0, last as u64, 0);
        }
    }
    let mut trace = TraceLog::default();
    trace.absorb(&mut ctl);
    for ring in &mut rings {
        trace.absorb(ring);
    }
    trace.seal();
    let makespan = completions.iter().cloned().fold(0.0, f64::max);
    DesTieredResult {
        makespan,
        sessions_per_sec: if makespan > 0.0 { n as f64 / makespan } else { 0.0 },
        completions,
        resume_latency,
        hibernations,
        resumes,
        trace,
    }
}

/// One step of the splitmix64 generator — the model's only randomness,
/// fully determined by the seed (network jitter must not break replay).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from one splitmix64 draw (53 mantissa bits).
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Open-loop arrival parameters for the model ([`simulate_serve_open`]).
#[derive(Clone, Copy, Debug)]
pub struct DesOpenConfig {
    /// Worker pools ([`DesConfig::workers`] is per shard); sessions route
    /// home by index mod `shards`, each pool with its own serialized
    /// dispatch bus, like [`simulate_serve_sharded`].
    pub shards: usize,
    /// Cross-shard stealing through the victim's bus.
    pub steal: bool,
    /// Global table bound, split ceil-wise across shards — arrivals past a
    /// full shard slice wait.
    pub table_capacity: usize,
    /// Global admission-queue bound, split ceil-wise; overflow sheds the
    /// *oldest* waiting arrival (the real loop's shed-oldest policy).
    pub admission_depth: usize,
    /// Max network jitter added to each arrival, seconds (uniform in
    /// `[0, jitter)`, drawn deterministically from `seed`). Models the
    /// wire between the load generator and the acceptor.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

/// Model outputs for an open-loop run.
#[derive(Clone, Debug)]
pub struct DesOpenResult {
    /// Time the last session retired (seconds).
    pub makespan: f64,
    /// Completed sessions per second of makespan.
    pub sessions_per_sec: f64,
    /// Sessions that ran to completion.
    pub completed: usize,
    /// Sessions shed by admission backpressure.
    pub shed: usize,
    /// Per-completed-session sojourn (retire − arrival), seconds, in
    /// arrival order — the open-loop latency curve's raw samples.
    pub sojourn: Vec<f64>,
    /// Per-cycle latency samples (slice queue wait + own service), seconds.
    pub cycle_latency: Vec<f64>,
    /// Dispatches served outside the session's home shard.
    pub cross_shard_steals: u64,
    /// Typed event stream, virtual ns: `NetRequest` at each (jittered)
    /// arrival, `NetShed` beside every `Shed`, and the usual dispatch
    /// lifecycle — exporting through the identical Chrome-trace path.
    pub trace: TraceLog,
}

/// Simulate **open-loop** serving: session `i` (service cycles
/// `sessions[i]`) arrives at `arrivals[i]` seconds plus deterministic
/// jitter, and the arrival process never slows down for the server — the
/// definition of offered load. Admission is the real loop's two-stage
/// policy scaled per shard: a free table seat admits immediately, else the
/// arrival waits, and a backlog past the depth slice sheds the oldest
/// waiting session. Dispatch is [`simulate_serve_sharded`]'s model (per
/// shard serialized bus, optional stealing). Deterministic: a pure
/// function of the inputs.
pub fn simulate_serve_open(
    sessions: &[Vec<f64>],
    arrivals: &[f64],
    cfg: &DesConfig,
    open: &DesOpenConfig,
) -> DesOpenResult {
    assert_eq!(sessions.len(), arrivals.len(), "one arrival time per session");
    let n = sessions.len();
    let wps = cfg.workers.max(1);
    let nshards = open.shards.max(1);
    let workers = nshards * wps;
    let slice = cfg.slice.max(1);
    let cap_s = open.table_capacity.max(1).div_ceil(nshards);
    let depth_s = open.admission_depth.div_ceil(nshards);
    let dispatches: usize = sessions.iter().map(|c| c.len().div_ceil(slice).max(1)).sum();
    // Up to 4 events per dispatch plus 4 per arrival (request, admit/shed
    // pair, enqueue).
    let ring_cap = 4 * dispatches + 4 * n + 1;
    let origin = Instant::now();
    let mut rings: Vec<TraceRing> =
        (0..workers).map(|w| TraceRing::new(w as u32, ring_cap, origin)).collect();
    let mut ctl = TraceRing::new(workers as u32, ring_cap, origin);
    let ns = |t: f64| (t * 1e9).round() as u64;
    let mut completions: Vec<Option<f64>> = vec![None; n];
    let mut cycle_latency: Vec<f64> = Vec::new();
    let mut cross_shard_steals = 0u64;
    let mut shed_count = 0usize;
    if n == 0 {
        return DesOpenResult {
            makespan: 0.0,
            sessions_per_sec: 0.0,
            completed: 0,
            shed: 0,
            sojourn: Vec::new(),
            cycle_latency,
            cross_shard_steals,
            trace: TraceLog::default(),
        };
    }
    // Jittered arrival order: the wire reorders closely spaced arrivals.
    let mut rng = open.seed;
    let eff: Vec<f64> = arrivals.iter().map(|&a| a + open.jitter * u01(&mut rng)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| (eff[a], a).partial_cmp(&(eff[b], b)).expect("finite times"));

    let mut ready: Vec<Vec<(f64, usize, usize)>> = vec![Vec::new(); nshards];
    let mut waiting: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); nshards];
    let mut live = vec![0usize; nshards];
    let mut worker_free = vec![0.0f64; workers];
    let mut bus_free = vec![0.0f64; nshards];
    let mut ai = 0usize;
    let mut left = n;
    while left > 0 {
        // Next dispatch candidate, as in the sharded model.
        let mut best: Option<(f64, usize, usize, usize, usize)> = None;
        for h in 0..nshards {
            let Some((ci, &(ready_t, ..))) = ready[h].iter().enumerate().min_by(|a, b| {
                (a.1 .0, a.1 .1).partial_cmp(&(b.1 .0, b.1 .1)).expect("finite times")
            }) else {
                continue;
            };
            for (t, pool) in ready.iter().enumerate().take(nshards) {
                if t != h && !(open.steal && pool.is_empty()) {
                    continue;
                }
                let wi = (t * wps..(t + 1) * wps)
                    .min_by(|a, b| {
                        worker_free[*a].partial_cmp(&worker_free[*b]).expect("finite times")
                    })
                    .expect("wps >= 1");
                let bus_start = worker_free[wi].max(ready_t).max(bus_free[h]);
                let key = (bus_start, usize::from(t != h), h, t);
                if best.is_none_or(|(bs, sf, bh, bt, _)| key < (bs, sf, bh, bt)) {
                    best = Some((bus_start, usize::from(t != h), h, t, ci));
                }
            }
        }
        // Arrivals at or before the candidate dispatch go first: an
        // arrival can only make an earlier dispatch possible.
        if ai < n && best.is_none_or(|(bs, ..)| eff[order[ai]] <= bs) {
            let s = order[ai];
            ai += 1;
            let t = eff[s];
            let h = s % nshards;
            ctl.emit_at(ns(t), TraceKind::NetRequest, s as u32, 0, 0, 0);
            if live[h] < cap_s {
                live[h] += 1;
                ctl.emit_at(ns(t), TraceKind::Admitted, s as u32, 0, 0, 0);
                ready[h].push((t, s, 0));
                ctl.emit_at(ns(t), TraceKind::Enqueued, s as u32, 0, 0, 0);
            } else {
                waiting[h].push_back(s);
                if waiting[h].len() > depth_s {
                    let v = waiting[h].pop_front().expect("nonempty");
                    shed_count += 1;
                    left -= 1;
                    ctl.emit_at(ns(t), TraceKind::Shed, v as u32, 0, 0, 0);
                    ctl.emit_at(ns(t), TraceKind::NetShed, v as u32, 0, 0, 0);
                }
            }
            continue;
        }
        let (bus_start, stolen, h, t, ci) = best.expect("left > 0 implies work or arrivals");
        let (ready_t, s, first_cycle) = ready[h].swap_remove(ci);
        let wi = (t * wps..(t + 1) * wps)
            .min_by(|a, b| worker_free[*a].partial_cmp(&worker_free[*b]).expect("finite times"))
            .expect("wps >= 1");
        bus_free[h] = bus_start + cfg.dispatch_overhead;
        let start = bus_start + cfg.dispatch_overhead;
        let wait = start - ready_t;
        if stolen == 1 {
            cross_shard_steals += 1;
            rings[wi].emit_at(ns(start), TraceKind::CrossShardSteal, s as u32, 0, 0, h as u64);
        }
        let cycles = &sessions[s];
        let last = (first_cycle + slice).min(cycles.len());
        let mut time = start;
        for &c in &cycles[first_cycle..last] {
            time += c;
            cycle_latency.push(wait + c);
        }
        worker_free[wi] = time;
        rings[wi].emit_at(
            ns(start),
            TraceKind::SliceStart,
            s as u32,
            first_cycle as u64,
            first_cycle as u64,
            ns(wait),
        );
        rings[wi].emit_at(
            ns(time),
            TraceKind::SliceEnd,
            s as u32,
            first_cycle as u64,
            last as u64,
            ns(time - start),
        );
        if last < cycles.len() {
            ready[h].push((time, s, last));
            rings[wi].emit_at(ns(time), TraceKind::Reenqueued, s as u32, 0, 0, 0);
        } else {
            completions[s] = Some(time);
            left -= 1;
            rings[wi].emit_at(ns(time), TraceKind::Retired, s as u32, 0, last as u64, 0);
            // The retired session's seat goes to the oldest waiting one.
            if let Some(v) = waiting[h].pop_front() {
                ctl.emit_at(ns(time), TraceKind::Admitted, v as u32, 0, 0, 0);
                ready[h].push((time, v, 0));
                ctl.emit_at(ns(time), TraceKind::Enqueued, v as u32, 0, 0, 0);
            } else {
                live[h] -= 1;
            }
        }
    }
    let mut trace = TraceLog::default();
    trace.absorb(&mut ctl);
    for ring in &mut rings {
        trace.absorb(ring);
    }
    if nshards > 1 {
        for w in 0..workers {
            trace.set_shard(w as u32, (w / wps) as u32);
        }
    }
    trace.seal();
    let sojourn: Vec<f64> = (0..n)
        .filter_map(|s| completions[s].map(|t| t - eff[s]))
        .collect();
    let completed = n - shed_count;
    let makespan = completions.iter().flatten().cloned().fold(0.0, f64::max);
    DesOpenResult {
        makespan,
        sessions_per_sec: if makespan > 0.0 { completed as f64 / makespan } else { 0.0 },
        completed,
        shed: shed_count,
        sojourn,
        cycle_latency,
        cross_shard_steals,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, cycles: usize, c: f64) -> Vec<Vec<f64>> {
        (0..n).map(|_| vec![c; cycles]).collect()
    }

    #[test]
    fn single_session_single_worker_is_sum_of_cycles() {
        let r = simulate_serve(
            &uniform(1, 10, 0.5),
            &DesConfig { workers: 1, slice: 4, dispatch_overhead: 0.0 },
        );
        assert!((r.makespan - 5.0).abs() < 1e-12, "{}", r.makespan);
        assert_eq!(r.cycle_latency.len(), 10);
    }

    #[test]
    fn k_workers_scale_independent_sessions_linearly() {
        // 8 identical sessions, no overhead: 8 workers finish in the time
        // 1 worker needs for one session.
        let sessions = uniform(8, 20, 0.1);
        let cfg1 = DesConfig { workers: 1, slice: 20, dispatch_overhead: 0.0 };
        let cfg8 = DesConfig { workers: 8, slice: 20, dispatch_overhead: 0.0 };
        let r1 = simulate_serve(&sessions, &cfg1);
        let r8 = simulate_serve(&sessions, &cfg8);
        assert!((r8.makespan - 2.0).abs() < 1e-9, "{}", r8.makespan);
        assert!((r1.makespan - 16.0).abs() < 1e-9, "{}", r1.makespan);
        assert!((r8.sessions_per_sec / r1.sessions_per_sec - 8.0).abs() < 1e-9);
    }

    #[test]
    fn queue_wait_shows_up_in_latency() {
        // Two sessions, one worker: the second session's first slice waits
        // for the first session's slice.
        let sessions = uniform(2, 2, 1.0);
        let r = simulate_serve(
            &sessions,
            &DesConfig { workers: 1, slice: 2, dispatch_overhead: 0.0 },
        );
        assert_eq!(r.cycle_latency.len(), 4);
        let max_lat = r.cycle_latency.iter().cloned().fold(0.0, f64::max);
        assert!((max_lat - 3.0).abs() < 1e-12, "waited 2s + 1s service, got {max_lat}");
    }

    #[test]
    fn deterministic() {
        let sessions: Vec<Vec<f64>> =
            (0..5).map(|i| (0..7).map(|j| 0.01 * ((i * 7 + j) as f64 + 1.0)).collect()).collect();
        let cfg = DesConfig { workers: 3, slice: 2, dispatch_overhead: 0.001 };
        let a = simulate_serve(&sessions, &cfg);
        let b = simulate_serve(&sessions, &cfg);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.cycle_latency, b.cycle_latency);
    }

    #[test]
    fn trace_mirrors_the_schedule_deterministically() {
        let sessions = uniform(3, 5, 0.25);
        let cfg = DesConfig { workers: 2, slice: 2, dispatch_overhead: 0.01 };
        let r = simulate_serve(&sessions, &cfg);
        assert!(r.trace.is_sorted());
        assert_eq!(r.trace.dropped, 0, "DES rings are sized to never drop");
        let count = |k: TraceKind| r.trace.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::Admitted), 3);
        assert_eq!(count(TraceKind::Enqueued), 3);
        assert_eq!(count(TraceKind::Retired), 3);
        // 5 cycles at slice 2 → 3 dispatches per session.
        assert_eq!(count(TraceKind::SliceStart), 9);
        assert_eq!(count(TraceKind::SliceEnd), 9);
        assert_eq!(count(TraceKind::Reenqueued), 6);
        // Virtual time: a retire event lands exactly at the completion time.
        for (s, &done) in r.completions.iter().enumerate() {
            let ev = r
                .trace
                .events
                .iter()
                .find(|e| e.kind == TraceKind::Retired && e.session == s as u32)
                .expect("every session retires");
            assert_eq!(ev.t_ns, (done * 1e9).round() as u64);
        }
        // Same inputs, same events.
        let r2 = simulate_serve(&sessions, &cfg);
        assert_eq!(r.trace.events, r2.trace.events);
    }

    #[test]
    fn sharded_is_deterministic_and_scales_linearly_without_contention() {
        let sessions = uniform(8, 20, 0.1);
        let cfg = DesConfig { workers: 1, slice: 20, dispatch_overhead: 0.0 };
        let sh4 = DesShardConfig { shards: 4, steal: false };
        let a = simulate_serve_sharded(&sessions, &cfg, &sh4);
        let b = simulate_serve_sharded(&sessions, &cfg, &sh4);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.trace.events, b.trace.events);
        assert_eq!(a.trace.dropped, 0);
        // 8 sessions over 4 one-worker pools, 2 each, no overhead: 4x one
        // pool's throughput.
        let sh1 = DesShardConfig { shards: 1, steal: false };
        let one = simulate_serve_sharded(&sessions, &cfg, &sh1);
        assert!((one.makespan / a.makespan - 4.0).abs() < 1e-9, "{}", a.makespan);
    }

    #[test]
    fn dispatch_bus_is_the_knee_and_sharding_moves_it() {
        // Service so short the bus dominates: each dispatch costs 0.05 s of
        // bus time for 0.1 s of work, so one bus feeds at most 2 workers.
        let mk = |n: usize| uniform(n, 16, 0.1);
        let run = |shards: usize, wps: usize| {
            let cfg = DesConfig { workers: wps, slice: 1, dispatch_overhead: 0.05 };
            simulate_serve_sharded(&mk(64), &cfg, &DesShardConfig { shards, steal: false })
        };
        // The bus feeds one 0.1 s cycle per 0.05 s hold, and a worker is
        // occupied 0.15 s per cycle (its own dispatch + service), so the
        // knee sits at 0.15/0.05 = 3 workers. Below it, workers scale;
        // past it, they buy nothing.
        let w2 = run(1, 2);
        let w4 = run(1, 4);
        let w16 = run(1, 16);
        assert!(
            w16.sessions_per_sec < w4.sessions_per_sec * 1.1,
            "single bus saturated past the knee: {} vs {}",
            w16.sessions_per_sec,
            w4.sessions_per_sec
        );
        assert!(
            w16.sessions_per_sec < w2.sessions_per_sec * 2.0,
            "8x the workers, < 2x the throughput: {} vs {}",
            w16.sessions_per_sec,
            w2.sessions_per_sec
        );
        // Four buses lift the ceiling ~4x at the same logical worker count.
        let s4 = run(4, 4);
        assert!(
            s4.sessions_per_sec >= w16.sessions_per_sec * 3.0,
            "4 shards past the knee: {} vs {}",
            s4.sessions_per_sec,
            w16.sessions_per_sec
        );
    }

    #[test]
    fn cross_shard_stealing_fills_idle_pools_and_is_traced() {
        // Shard 0 homes two long sessions on one worker, shard 1 a short
        // one; after shard 1 drains, shard 0 always has a queued slice its
        // busy worker can't take, so shard 1's idle worker steals it.
        let sessions = vec![vec![0.1; 40], vec![0.1; 2], vec![0.1; 40]];
        let cfg = DesConfig { workers: 1, slice: 2, dispatch_overhead: 0.001 };
        let idle = simulate_serve_sharded(
            &sessions,
            &cfg,
            &DesShardConfig { shards: 2, steal: false },
        );
        let steal =
            simulate_serve_sharded(&sessions, &cfg, &DesShardConfig { shards: 2, steal: true });
        assert_eq!(idle.cross_shard_steals, 0);
        assert!(steal.cross_shard_steals > 0, "idle pool must steal");
        assert!(steal.makespan < idle.makespan, "stealing shortens the tail");
        let marks = steal
            .trace
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::CrossShardSteal)
            .count() as u64;
        assert_eq!(marks, steal.cross_shard_steals);
        // Shard map groups the export one process per shard.
        let chrome = steal.trace.chrome_json().to_string();
        assert!(chrome.contains("shard-0"));
        assert!(chrome.contains("shard-1"));
        assert!(chrome.contains("cross_shard_steal s0"));
    }

    #[test]
    fn tiered_with_ample_capacity_matches_untiered() {
        // Hot capacity covering the population ⇒ no evictions, no resume
        // cost: identical completion times.
        let sessions = uniform(4, 10, 0.2);
        let cfg = DesConfig { workers: 2, slice: 3, dispatch_overhead: 0.01 };
        let base = simulate_serve(&sessions, &cfg);
        let tier = DesTierConfig { hot_capacity: 4, resume_base: 1.0, resume_per_cycle: 1.0 };
        let t = simulate_serve_tiered(&sessions, &cfg, &tier);
        assert_eq!(t.hibernations, 0);
        assert_eq!(t.resumes, 0);
        assert_eq!(t.completions, base.completions);
    }

    #[test]
    fn pressure_forces_hibernation_and_resume_cost_shows_in_makespan() {
        let sessions = uniform(6, 8, 0.1);
        let cfg = DesConfig { workers: 1, slice: 2, dispatch_overhead: 0.0 };
        let tier_free =
            DesTierConfig { hot_capacity: 2, resume_base: 0.0, resume_per_cycle: 0.0 };
        let tier_costly =
            DesTierConfig { hot_capacity: 2, resume_base: 0.5, resume_per_cycle: 0.05 };
        let free = simulate_serve_tiered(&sessions, &cfg, &tier_free);
        let costly = simulate_serve_tiered(&sessions, &cfg, &tier_costly);
        assert!(free.hibernations > 0, "6 sessions through 2 seats must evict");
        assert!(free.resumes > 0);
        assert_eq!(free.hibernations, costly.hibernations, "cost does not change LRU order");
        // Zero-cost resumes reduce to the untiered schedule.
        let base = simulate_serve(&sessions, &cfg);
        assert!((free.makespan - base.makespan).abs() < 1e-9);
        // Costly resumes are exactly the per-resume penalties on one worker.
        let paid: f64 = costly.resume_latency.iter().sum();
        assert!((costly.makespan - (base.makespan + paid)).abs() < 1e-9);
        // Resume cost grows with executed cycles (journal replay).
        let first = costly.resume_latency.first().copied().unwrap();
        let last = costly.resume_latency.last().copied().unwrap();
        assert!(last > first, "later resumes replay longer journals");
    }

    #[test]
    fn tiered_trace_is_deterministic_and_carries_tier_events() {
        let sessions = uniform(5, 6, 0.2);
        let cfg = DesConfig { workers: 2, slice: 2, dispatch_overhead: 0.01 };
        let tier = DesTierConfig { hot_capacity: 2, resume_base: 0.1, resume_per_cycle: 0.01 };
        let a = simulate_serve_tiered(&sessions, &cfg, &tier);
        let b = simulate_serve_tiered(&sessions, &cfg, &tier);
        assert_eq!(a.trace.events, b.trace.events);
        assert_eq!(a.trace.dropped, 0, "tiered DES rings are sized to never drop");
        let count = |k: TraceKind| a.trace.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::Hibernated) as u64, a.hibernations);
        assert_eq!(count(TraceKind::Resumed) as u64, a.resumes);
        assert!(a.hibernations > 0);
        // The tier events ride the same Chrome-trace path.
        let chrome = a.trace.chrome_json().to_string();
        assert!(chrome.contains("hibernated s"));
        assert!(chrome.contains("resumed s"));
    }

    fn open_cfg(shards: usize, cap: usize, depth: usize) -> DesOpenConfig {
        DesOpenConfig {
            shards,
            steal: false,
            table_capacity: cap,
            admission_depth: depth,
            jitter: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn open_loop_under_light_load_completes_everything() {
        // Arrivals far apart relative to service: every session finds an
        // idle server, sojourn = own service (+ dispatch overhead).
        let sessions = uniform(4, 4, 0.1);
        let arrivals: Vec<f64> = (0..4).map(|i| i as f64 * 10.0).collect();
        let cfg = DesConfig { workers: 1, slice: 4, dispatch_overhead: 0.0 };
        let r = simulate_serve_open(&sessions, &arrivals, &cfg, &open_cfg(1, 2, 8));
        assert_eq!(r.shed, 0);
        assert_eq!(r.completed, 4);
        for &s in &r.sojourn {
            assert!((s - 0.4).abs() < 1e-9, "idle server: sojourn = service, got {s}");
        }
    }

    #[test]
    fn open_loop_is_deterministic_including_jitter() {
        let sessions = uniform(12, 6, 0.2);
        let arrivals: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect();
        let cfg = DesConfig { workers: 2, slice: 3, dispatch_overhead: 0.01 };
        let mut open = open_cfg(2, 4, 2);
        open.jitter = 0.05;
        let a = simulate_serve_open(&sessions, &arrivals, &cfg, &open);
        let b = simulate_serve_open(&sessions, &arrivals, &cfg, &open);
        assert_eq!(a.trace.events, b.trace.events);
        assert_eq!(a.sojourn, b.sojourn);
        assert_eq!(a.shed, b.shed);
        // A different seed draws different jitter, shifting arrival stamps.
        let mut open2 = open;
        open2.seed = 8;
        let c = simulate_serve_open(&sessions, &arrivals, &cfg, &open2);
        assert_ne!(a.trace.events, c.trace.events);
    }

    #[test]
    fn open_loop_sheds_oldest_past_saturation_and_is_monotone_in_load() {
        // One worker, 1 s of service per session: offered load beyond
        // 1 session/s must shed, and more load sheds more.
        let n = 24;
        let sessions = uniform(n, 1, 1.0);
        let cfg = DesConfig { workers: 1, slice: 1, dispatch_overhead: 0.0 };
        let open = open_cfg(1, 1, 2);
        let shed_at = |ia: f64| {
            let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * ia).collect();
            simulate_serve_open(&sessions, &arrivals, &cfg, &open).shed
        };
        let light = shed_at(2.0);
        let knee = shed_at(1.0);
        let over = shed_at(0.5);
        let crush = shed_at(0.25);
        assert_eq!(light, 0, "half the capacity never sheds");
        assert!(over > knee, "past saturation the backlog overflows: {over} vs {knee}");
        assert!(crush >= over, "shed rate is monotone in offered load");
        // Every shed is announced on the wire trace.
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let r = simulate_serve_open(&sessions, &arrivals, &cfg, &open);
        let count = |k: TraceKind| r.trace.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::NetRequest), n);
        assert_eq!(count(TraceKind::NetShed), r.shed);
        assert_eq!(count(TraceKind::Shed), r.shed);
        assert_eq!(count(TraceKind::Retired), r.completed);
        assert_eq!(r.completed + r.shed, n);
    }

    #[test]
    fn open_loop_sojourn_tail_grows_with_offered_load() {
        let n = 16;
        let sessions = uniform(n, 2, 0.5);
        let cfg = DesConfig { workers: 1, slice: 2, dispatch_overhead: 0.0 };
        let open = open_cfg(1, 4, 16);
        let p_max = |ia: f64| {
            let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * ia).collect();
            let r = simulate_serve_open(&sessions, &arrivals, &cfg, &open);
            assert_eq!(r.shed, 0, "depth 16 absorbs this backlog");
            r.sojourn.iter().cloned().fold(0.0, f64::max)
        };
        assert!(p_max(0.5) > p_max(2.0), "queueing delay shows up in the sojourn tail");
    }

    #[test]
    fn open_loop_sharding_lifts_the_saturation_knee() {
        // Service 1 s, arrivals every 0.5 s: one pool saturates (sheds),
        // two pools with the same per-shard worker count keep up.
        let n = 20;
        let sessions = uniform(n, 1, 1.0);
        let cfg = DesConfig { workers: 1, slice: 1, dispatch_overhead: 0.0 };
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let one = simulate_serve_open(&sessions, &arrivals, &cfg, &open_cfg(1, 2, 1));
        let two = simulate_serve_open(&sessions, &arrivals, &cfg, &open_cfg(2, 2, 2));
        assert!(one.shed > 0, "one pool over capacity must shed");
        assert_eq!(two.shed, 0, "two pools carry the same offered load");
    }

    #[test]
    fn dispatch_overhead_slows_small_slices_more() {
        let sessions = uniform(4, 16, 0.1);
        let small = simulate_serve(
            &sessions,
            &DesConfig { workers: 2, slice: 1, dispatch_overhead: 0.05 },
        );
        let large = simulate_serve(
            &sessions,
            &DesConfig { workers: 2, slice: 8, dispatch_overhead: 0.05 },
        );
        assert!(small.makespan > large.makespan);
    }
}
