//! Deterministic discrete-event model of the serving loop.
//!
//! The host running this reproduction has far fewer cores than the sweep
//! the paper-style figures need (1–13 workers), so — exactly like the
//! Multimax simulator in `psme-sim` does for match parallelism — serving
//! throughput is swept on a model: K workers, one logical ready queue,
//! round-robin slices, per-cycle service times supplied by the caller
//! (derived from captured real traces). Everything is exact arithmetic
//! over the inputs; no randomness, no wall clock — the same inputs always
//! produce the same figures.
//!
//! The model's simplifications relative to [`crate::serve`]: a single
//! FIFO ready queue ordered by ready time (ties broken by session index),
//! and a constant per-dispatch overhead standing in for the scheduler's
//! queue traffic. Relative throughput across worker counts — the quantity
//! the `serve_throughput` figures report — is insensitive to both.

use psme_obs::{TraceKind, TraceLog, TraceRing};
use std::time::Instant;

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct DesConfig {
    /// Worker count (the sweep variable).
    pub workers: usize,
    /// Decision cycles per dispatch slice.
    pub slice: usize,
    /// Seconds of dispatch overhead per slice (queue pop + handoff).
    pub dispatch_overhead: f64,
}

/// Model outputs.
#[derive(Clone, Debug)]
pub struct DesResult {
    /// Time the last session completed (seconds).
    pub makespan: f64,
    /// Completed sessions per second (`n / makespan`).
    pub sessions_per_sec: f64,
    /// Per-session completion times, in input order (seconds).
    pub completions: Vec<f64>,
    /// Per-cycle latency samples (slice queue wait + own service time),
    /// seconds; quantile them with `psme_obs::Quantiles`.
    pub cycle_latency: Vec<f64>,
    /// The same typed event stream the real serve loop emits
    /// ([`psme_obs::TraceKind`]), stamped with *virtual* nanoseconds, so
    /// model runs export through the identical Chrome-trace path as
    /// captured runs. Deterministic: a pure function of the inputs.
    pub trace: TraceLog,
}

/// Simulate serving `sessions` (one inner `Vec<f64>` of per-cycle service
/// seconds each) on `cfg.workers` workers. All sessions arrive at t=0.
pub fn simulate_serve(sessions: &[Vec<f64>], cfg: &DesConfig) -> DesResult {
    let n = sessions.len();
    let workers = cfg.workers.max(1);
    let slice = cfg.slice.max(1);
    let mut completions = vec![0.0f64; n];
    let mut cycle_latency: Vec<f64> = Vec::new();
    // Ring capacity that can never drop: at most 3 events per dispatch,
    // worst case all on one worker, plus the control ring's 2 per session.
    let dispatches: usize = sessions.iter().map(|c| c.len().div_ceil(slice).max(1)).sum();
    let ring_cap = 3 * dispatches + 2 * n + 1;
    let origin = Instant::now();
    let mut rings: Vec<TraceRing> =
        (0..workers).map(|w| TraceRing::new(w as u32, ring_cap, origin)).collect();
    let mut ctl = TraceRing::new(workers as u32, ring_cap, origin);
    let ns = |t: f64| (t * 1e9).round() as u64;
    if n == 0 {
        return DesResult {
            makespan: 0.0,
            sessions_per_sec: 0.0,
            completions,
            cycle_latency,
            trace: TraceLog::default(),
        };
    }
    for s in 0..n {
        ctl.emit_at(0, TraceKind::Admitted, s as u32, 0, 0, 0);
        ctl.emit_at(0, TraceKind::Enqueued, s as u32, 0, 0, 0);
    }
    // Ready list: (ready_time, session, next_cycle), kept sorted by
    // (ready_time, session) — a priority queue small enough for Vec ops.
    let mut ready: Vec<(f64, usize, usize)> = (0..n).map(|s| (0.0, s, 0)).collect();
    let mut worker_free = vec![0.0f64; workers];
    while !ready.is_empty() {
        // Earliest-ready session (FIFO by ready time, index tie-break) to
        // the earliest-free worker.
        let ri = ready
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 .0, a.1 .1).partial_cmp(&(b.1 .0, b.1 .1)).expect("finite times")
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        let (ready_t, s, first_cycle) = ready.swap_remove(ri);
        let wi = worker_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .map(|(i, _)| i)
            .expect("workers >= 1");
        let start = worker_free[wi].max(ready_t) + cfg.dispatch_overhead;
        let wait = start - ready_t;
        let cycles = &sessions[s];
        let last = (first_cycle + slice).min(cycles.len());
        let mut t = start;
        for &c in &cycles[first_cycle..last] {
            t += c;
            cycle_latency.push(wait + c);
        }
        worker_free[wi] = t;
        rings[wi].emit_at(
            ns(start),
            TraceKind::SliceStart,
            s as u32,
            first_cycle as u64,
            first_cycle as u64,
            ns(wait),
        );
        rings[wi].emit_at(
            ns(t),
            TraceKind::SliceEnd,
            s as u32,
            first_cycle as u64,
            last as u64,
            ns(t - start),
        );
        if last < cycles.len() {
            ready.push((t, s, last));
            rings[wi].emit_at(ns(t), TraceKind::Reenqueued, s as u32, 0, 0, 0);
        } else {
            completions[s] = t;
            rings[wi].emit_at(ns(t), TraceKind::Retired, s as u32, 0, last as u64, 0);
        }
    }
    let mut trace = TraceLog::default();
    trace.absorb(&mut ctl);
    for ring in &mut rings {
        trace.absorb(ring);
    }
    trace.seal();
    let makespan = completions.iter().cloned().fold(0.0, f64::max);
    DesResult {
        makespan,
        sessions_per_sec: if makespan > 0.0 { n as f64 / makespan } else { 0.0 },
        completions,
        cycle_latency,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, cycles: usize, c: f64) -> Vec<Vec<f64>> {
        (0..n).map(|_| vec![c; cycles]).collect()
    }

    #[test]
    fn single_session_single_worker_is_sum_of_cycles() {
        let r = simulate_serve(
            &uniform(1, 10, 0.5),
            &DesConfig { workers: 1, slice: 4, dispatch_overhead: 0.0 },
        );
        assert!((r.makespan - 5.0).abs() < 1e-12, "{}", r.makespan);
        assert_eq!(r.cycle_latency.len(), 10);
    }

    #[test]
    fn k_workers_scale_independent_sessions_linearly() {
        // 8 identical sessions, no overhead: 8 workers finish in the time
        // 1 worker needs for one session.
        let sessions = uniform(8, 20, 0.1);
        let cfg1 = DesConfig { workers: 1, slice: 20, dispatch_overhead: 0.0 };
        let cfg8 = DesConfig { workers: 8, slice: 20, dispatch_overhead: 0.0 };
        let r1 = simulate_serve(&sessions, &cfg1);
        let r8 = simulate_serve(&sessions, &cfg8);
        assert!((r8.makespan - 2.0).abs() < 1e-9, "{}", r8.makespan);
        assert!((r1.makespan - 16.0).abs() < 1e-9, "{}", r1.makespan);
        assert!((r8.sessions_per_sec / r1.sessions_per_sec - 8.0).abs() < 1e-9);
    }

    #[test]
    fn queue_wait_shows_up_in_latency() {
        // Two sessions, one worker: the second session's first slice waits
        // for the first session's slice.
        let sessions = uniform(2, 2, 1.0);
        let r = simulate_serve(
            &sessions,
            &DesConfig { workers: 1, slice: 2, dispatch_overhead: 0.0 },
        );
        assert_eq!(r.cycle_latency.len(), 4);
        let max_lat = r.cycle_latency.iter().cloned().fold(0.0, f64::max);
        assert!((max_lat - 3.0).abs() < 1e-12, "waited 2s + 1s service, got {max_lat}");
    }

    #[test]
    fn deterministic() {
        let sessions: Vec<Vec<f64>> =
            (0..5).map(|i| (0..7).map(|j| 0.01 * ((i * 7 + j) as f64 + 1.0)).collect()).collect();
        let cfg = DesConfig { workers: 3, slice: 2, dispatch_overhead: 0.001 };
        let a = simulate_serve(&sessions, &cfg);
        let b = simulate_serve(&sessions, &cfg);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.cycle_latency, b.cycle_latency);
    }

    #[test]
    fn trace_mirrors_the_schedule_deterministically() {
        let sessions = uniform(3, 5, 0.25);
        let cfg = DesConfig { workers: 2, slice: 2, dispatch_overhead: 0.01 };
        let r = simulate_serve(&sessions, &cfg);
        assert!(r.trace.is_sorted());
        assert_eq!(r.trace.dropped, 0, "DES rings are sized to never drop");
        let count = |k: TraceKind| r.trace.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::Admitted), 3);
        assert_eq!(count(TraceKind::Enqueued), 3);
        assert_eq!(count(TraceKind::Retired), 3);
        // 5 cycles at slice 2 → 3 dispatches per session.
        assert_eq!(count(TraceKind::SliceStart), 9);
        assert_eq!(count(TraceKind::SliceEnd), 9);
        assert_eq!(count(TraceKind::Reenqueued), 6);
        // Virtual time: a retire event lands exactly at the completion time.
        for (s, &done) in r.completions.iter().enumerate() {
            let ev = r
                .trace
                .events
                .iter()
                .find(|e| e.kind == TraceKind::Retired && e.session == s as u32)
                .expect("every session retires");
            assert_eq!(ev.t_ns, (done * 1e9).round() as u64);
        }
        // Same inputs, same events.
        let r2 = simulate_serve(&sessions, &cfg);
        assert_eq!(r.trace.events, r2.trace.events);
    }

    #[test]
    fn dispatch_overhead_slows_small_slices_more() {
        let sessions = uniform(4, 16, 0.1);
        let small = simulate_serve(
            &sessions,
            &DesConfig { workers: 2, slice: 1, dispatch_overhead: 0.05 },
        );
        let large = simulate_serve(
            &sessions,
            &DesConfig { workers: 2, slice: 8, dispatch_overhead: 0.05 },
        );
        assert!(small.makespan > large.makespan);
    }
}
