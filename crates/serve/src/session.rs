//! Session construction over a shared topology, and per-session reports.

use psme_obs::{Json, Quantiles};
use psme_rete::snapshot::{ByteReader, ByteWriter, Journal};
use psme_rete::{
    open_frame, seal_frame, JournaledSession, ReorgConfig, ReteNetwork, SerialEngine,
    SnapshotError, Topology,
};
use psme_soar::{Agent, AgentStats, SoarTask, StopReason};
use std::sync::Arc;

/// Magic of a full session snapshot: the engine's op journal followed by
/// the agent's architecture shell and serving telemetry, one frame, one
/// checksum ([`psme_rete::seal_frame`] layout).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PSNS";
/// Session-snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One session to admit: a task instance (same production set as the shared
/// topology, its own initial working memory) plus a learning flag.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Session name (unique per serve call; used in reports).
    pub name: String,
    /// The task instance. Its productions must be the ones the shared
    /// topology was compiled from ([`build_topology`] on a task with the
    /// same production set, in the same order).
    pub task: SoarTask,
    /// Learn chunks during the run (into this session's private overlay).
    pub learning: bool,
}

/// Compile a task's base network (default + task productions, canonical
/// order) and freeze it into a shared topology.
///
/// The scratch agent compiles against empty working memory, so every
/// load finds zero instantiations and leaves the discarded scratch state
/// empty — sessions adopting this topology start bit-identical to a solo
/// agent that compiled the same productions itself.
pub fn build_topology(task: &SoarTask) -> Arc<Topology> {
    let engine: SerialEngine = SerialEngine::new(ReteNetwork::new());
    let mut agent = Agent::new(engine, task.classes.clone());
    task.install_productions(&mut agent);
    let scratch: SerialEngine = SerialEngine::new(ReteNetwork::new());
    let (net, state) = std::mem::replace(&mut agent.engine, scratch).into_parts();
    debug_assert_eq!(state.store.live_count(), 0, "base compile must not touch WM");
    Topology::freeze(net)
}

/// Per-session serving telemetry.
#[derive(Clone, Debug, Default)]
pub struct SessionTelemetry {
    /// Latency of each decision cycle (`Agent::step`), nanoseconds.
    pub cycle_latency: Quantiles,
    /// Wait between being queued and being picked up by a worker,
    /// nanoseconds (one sample per dispatch slice).
    pub queue_wait: Quantiles,
    /// Dispatch slices this session consumed.
    pub slices: u64,
    /// Beta nodes in this session's private overlay at completion.
    pub overlay_nodes: usize,
    /// Productions (chunks) in this session's private overlay.
    pub overlay_prods: usize,
}

/// Everything one served session produced.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Session name from its [`SessionSpec`].
    pub name: String,
    /// `None` if the session was shed by admission backpressure before
    /// ever running.
    pub stop: Option<StopReason>,
    /// Agent counters (zeroed for shed sessions).
    pub stats: AgentStats,
    /// Names of chunks learned in this session's overlay.
    pub chunk_names: Vec<String>,
    /// `(write …)` output.
    pub output: Vec<String>,
    /// Serving telemetry.
    pub telemetry: SessionTelemetry,
}

impl SessionReport {
    /// Shed-marker report.
    pub(crate) fn shed(name: String) -> SessionReport {
        SessionReport {
            name,
            stop: None,
            stats: AgentStats::default(),
            chunk_names: Vec::new(),
            output: Vec::new(),
            telemetry: SessionTelemetry::default(),
        }
    }

    /// Was this session shed by admission backpressure?
    pub fn was_shed(&self) -> bool {
        self.stop.is_none()
    }

    /// Serialize for artifacts.
    pub fn to_json(&self) -> Json {
        let t = &self.telemetry;
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "stop",
                match self.stop {
                    Some(s) => Json::from(format!("{s:?}")),
                    None => Json::from("Shed"),
                },
            ),
            ("decisions", Json::from(self.stats.decisions)),
            ("chunks_built", Json::from(self.stats.chunks_built)),
            ("cycle_latency_ns", t.cycle_latency.to_json()),
            ("queue_wait_ns", t.queue_wait.to_json()),
            ("slices", Json::from(t.slices)),
            ("overlay_nodes", Json::from(t.overlay_nodes as u64)),
            ("overlay_prods", Json::from(t.overlay_prods as u64)),
        ])
    }
}

/// A live session in the table: an agent over its private overlay network
/// and match state, plus raw telemetry samples.
///
/// The engine is a [`JournaledSession`]; in a tiered store the journal
/// records every engine mutation so the session can hibernate to bytes and
/// resume by replay. Non-tiered serving builds with the journal disabled —
/// recording off is a branch per mutation, nothing is stored.
pub(crate) struct Session {
    pub(crate) name: String,
    pub(crate) agent: Agent<JournaledSession>,
    pub(crate) cycle_ns: Vec<f64>,
    pub(crate) wait_ns: Vec<f64>,
    pub(crate) slices: u64,
    /// Remaining client-granted decision credit (open serving). `None`
    /// (batch serving) runs unbounded; `Some(0)` parks the session until
    /// the client's next `step` grant. Not persisted: streamed sessions
    /// are untiered, so credit never reaches a snapshot.
    pub(crate) credit: Option<u64>,
}

impl Session {
    /// Build and install a session over the shared topology. Productions
    /// are adopted (already compiled into the base), initial wmes and the
    /// top goal materialize in this session's own [`psme_rete::MatchState`].
    /// `journaled` enables the op journal (required to hibernate later).
    /// `reorg` arms the adaptive chain detector over this session's private
    /// overlay — reorganizations land in the overlay, never the shared base.
    pub(crate) fn build(
        spec: &SessionSpec,
        topo: &Arc<Topology>,
        journaled: bool,
        reorg: Option<&ReorgConfig>,
    ) -> Session {
        let engine = JournaledSession::fresh(topo.clone(), journaled);
        let mut agent = Agent::new(engine, spec.task.classes.clone());
        spec.task.install_adopted(&mut agent);
        agent.learning = spec.learning;
        if let Some(cfg) = reorg {
            agent.enable_adaptive_reorg(cfg.clone());
        }
        Session {
            name: spec.name.clone(),
            agent,
            cycle_ns: Vec::new(),
            wait_ns: Vec::new(),
            slices: 0,
            credit: None,
        }
    }

    /// Hibernate to a versioned, checksummed snapshot: the engine's op
    /// journal, the agent's architecture shell, and the serving telemetry
    /// accumulated so far, sealed into one frame.
    pub(crate) fn hibernate(self) -> Vec<u8> {
        let journal = self
            .agent
            .engine
            .journal()
            .expect("only journaled sessions hibernate");
        let mut w = ByteWriter::new();
        journal.encode_payload(&self.agent.classes, &mut w);
        psme_soar::encode_shell(&self.agent, &mut w);
        w.u64(self.cycle_ns.len() as u64);
        for &v in &self.cycle_ns {
            w.f64(v);
        }
        w.u64(self.wait_ns.len() as u64);
        for &v in &self.wait_ns {
            w.f64(v);
        }
        w.u64(self.slices);
        seal_frame(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, w.into_inner())
    }

    /// Resume a hibernated session: open and verify the frame, replay the
    /// op journal against the frozen topology, re-adopt the spec's
    /// productions (canonical order, bookkeeping only), then restore the
    /// architecture shell over the replayed engine. Every failure is a
    /// typed [`SnapshotError`] — a corrupted snapshot never panics and
    /// never yields a silently wrong session.
    /// `reorg` re-arms the chain detector with a fresh cost window — the
    /// detector's EWMA state is deliberately not persisted (it is a
    /// heuristic over recent load, stale after hibernation), but committed
    /// reorganizations themselves replay from the op journal.
    pub(crate) fn resume(
        spec: &SessionSpec,
        topo: &Arc<Topology>,
        bytes: &[u8],
        reorg: Option<&ReorgConfig>,
    ) -> Result<Session, SnapshotError> {
        let payload = open_frame(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let mut r = ByteReader::new(payload);
        let mut reg = spec.task.classes.clone();
        let journal = Journal::decode_payload(&mut r, &mut reg)?;
        let engine = JournaledSession::resume(topo.clone(), journal)?;
        let mut agent = Agent::new(engine, spec.task.classes.clone());
        spec.task.adopt_productions(&mut agent);
        psme_soar::decode_shell(&mut agent, &mut r)?;
        let mut cycle_ns = Vec::new();
        for _ in 0..r.count()? {
            cycle_ns.push(r.f64()?);
        }
        let mut wait_ns = Vec::new();
        for _ in 0..r.count()? {
            wait_ns.push(r.f64()?);
        }
        let slices = r.u64()?;
        r.expect_done()?;
        if let Some(cfg) = reorg {
            agent.enable_adaptive_reorg(cfg.clone());
        }
        Ok(Session { name: spec.name.clone(), agent, cycle_ns, wait_ns, slices, credit: None })
    }

    /// Finish: fold samples into a report.
    pub(crate) fn into_report(self, stop: StopReason) -> SessionReport {
        let net = &self.agent.engine.eng.net;
        let telemetry = SessionTelemetry {
            cycle_latency: Quantiles::from_samples(&self.cycle_ns),
            queue_wait: Quantiles::from_samples(&self.wait_ns),
            slices: self.slices,
            overlay_nodes: net.overlay_nodes(),
            overlay_prods: net.overlay_prods(),
        };
        SessionReport {
            name: self.name,
            stop: Some(stop),
            stats: self.agent.stats,
            chunk_names: self
                .agent
                .learned_chunks()
                .iter()
                .map(|c| psme_ops::sym_name(c.name).to_string())
                .collect(),
            output: self.agent.output.clone(),
            telemetry,
        }
    }
}
