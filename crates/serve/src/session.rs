//! Session construction over a shared topology, and per-session reports.

use psme_obs::{Json, Quantiles};
use psme_rete::{MatchState, ReteNetwork, SerialEngine, SessionNet, Topology};
use psme_soar::{Agent, AgentStats, SoarTask, StopReason};
use std::sync::Arc;

/// One session to admit: a task instance (same production set as the shared
/// topology, its own initial working memory) plus a learning flag.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Session name (unique per serve call; used in reports).
    pub name: String,
    /// The task instance. Its productions must be the ones the shared
    /// topology was compiled from ([`build_topology`] on a task with the
    /// same production set, in the same order).
    pub task: SoarTask,
    /// Learn chunks during the run (into this session's private overlay).
    pub learning: bool,
}

/// Compile a task's base network (default + task productions, canonical
/// order) and freeze it into a shared topology.
///
/// The scratch agent compiles against empty working memory, so every
/// load finds zero instantiations and leaves the discarded scratch state
/// empty — sessions adopting this topology start bit-identical to a solo
/// agent that compiled the same productions itself.
pub fn build_topology(task: &SoarTask) -> Arc<Topology> {
    let engine: SerialEngine = SerialEngine::new(ReteNetwork::new());
    let mut agent = Agent::new(engine, task.classes.clone());
    task.install_productions(&mut agent);
    let scratch: SerialEngine = SerialEngine::new(ReteNetwork::new());
    let (net, state) = std::mem::replace(&mut agent.engine, scratch).into_parts();
    debug_assert_eq!(state.store.live_count(), 0, "base compile must not touch WM");
    Topology::freeze(net)
}

/// Per-session serving telemetry.
#[derive(Clone, Debug, Default)]
pub struct SessionTelemetry {
    /// Latency of each decision cycle (`Agent::step`), nanoseconds.
    pub cycle_latency: Quantiles,
    /// Wait between being queued and being picked up by a worker,
    /// nanoseconds (one sample per dispatch slice).
    pub queue_wait: Quantiles,
    /// Dispatch slices this session consumed.
    pub slices: u64,
    /// Beta nodes in this session's private overlay at completion.
    pub overlay_nodes: usize,
    /// Productions (chunks) in this session's private overlay.
    pub overlay_prods: usize,
}

/// Everything one served session produced.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Session name from its [`SessionSpec`].
    pub name: String,
    /// `None` if the session was shed by admission backpressure before
    /// ever running.
    pub stop: Option<StopReason>,
    /// Agent counters (zeroed for shed sessions).
    pub stats: AgentStats,
    /// Names of chunks learned in this session's overlay.
    pub chunk_names: Vec<String>,
    /// `(write …)` output.
    pub output: Vec<String>,
    /// Serving telemetry.
    pub telemetry: SessionTelemetry,
}

impl SessionReport {
    /// Shed-marker report.
    pub(crate) fn shed(name: String) -> SessionReport {
        SessionReport {
            name,
            stop: None,
            stats: AgentStats::default(),
            chunk_names: Vec::new(),
            output: Vec::new(),
            telemetry: SessionTelemetry::default(),
        }
    }

    /// Was this session shed by admission backpressure?
    pub fn was_shed(&self) -> bool {
        self.stop.is_none()
    }

    /// Serialize for artifacts.
    pub fn to_json(&self) -> Json {
        let t = &self.telemetry;
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "stop",
                match self.stop {
                    Some(s) => Json::from(format!("{s:?}")),
                    None => Json::from("Shed"),
                },
            ),
            ("decisions", Json::from(self.stats.decisions)),
            ("chunks_built", Json::from(self.stats.chunks_built)),
            ("cycle_latency_ns", t.cycle_latency.to_json()),
            ("queue_wait_ns", t.queue_wait.to_json()),
            ("slices", Json::from(t.slices)),
            ("overlay_nodes", Json::from(t.overlay_nodes as u64)),
            ("overlay_prods", Json::from(t.overlay_prods as u64)),
        ])
    }
}

/// A live session in the table: an agent over its private overlay network
/// and match state, plus raw telemetry samples.
pub(crate) struct Session {
    pub(crate) name: String,
    pub(crate) agent: Agent<SerialEngine<SessionNet>>,
    pub(crate) cycle_ns: Vec<f64>,
    pub(crate) wait_ns: Vec<f64>,
    pub(crate) slices: u64,
}

impl Session {
    /// Build and install a session over the shared topology. Productions
    /// are adopted (already compiled into the base), initial wmes and the
    /// top goal materialize in this session's own [`MatchState`].
    pub(crate) fn build(spec: &SessionSpec, topo: &Arc<Topology>) -> Session {
        let net = SessionNet::new(topo.clone());
        let engine = SerialEngine::with_state(net, MatchState::new());
        let mut agent = Agent::new(engine, spec.task.classes.clone());
        spec.task.install_adopted(&mut agent);
        agent.learning = spec.learning;
        Session {
            name: spec.name.clone(),
            agent,
            cycle_ns: Vec::new(),
            wait_ns: Vec::new(),
            slices: 0,
        }
    }

    /// Finish: fold samples into a report.
    pub(crate) fn into_report(self, stop: StopReason) -> SessionReport {
        let net = &self.agent.engine.net;
        let telemetry = SessionTelemetry {
            cycle_latency: Quantiles::from_samples(&self.cycle_ns),
            queue_wait: Quantiles::from_samples(&self.wait_ns),
            slices: self.slices,
            overlay_nodes: net.overlay_nodes(),
            overlay_prods: net.overlay_prods(),
        };
        SessionReport {
            name: self.name,
            stop: Some(stop),
            stats: self.agent.stats,
            chunk_names: self
                .agent
                .learned_chunks()
                .iter()
                .map(|c| psme_ops::sym_name(c.name).to_string())
                .collect(),
            output: self.agent.output.clone(),
            telemetry,
        }
    }
}
