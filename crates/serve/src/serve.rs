//! The serving loop: admission, session table, worker pools, dispatch.
//!
//! Batch serving ([`serve`]): all sessions arrive up front (a batch-arrival
//! open system degenerates to this on a closed benchmark). Admission is
//! two-stage:
//!
//! 1. the **session table** holds at most `table_capacity` live sessions
//!    (each owns a `MatchState` and an overlay, so the table bounds memory);
//! 2. arrivals beyond that wait in a **bounded admission queue** of depth
//!    `admission_depth`; on overflow the *oldest* waiting entry is shed
//!    (shed-oldest keeps the freshest work under overload, and the shed
//!    set is deterministic — reported, never silently dropped).
//!
//! Dispatch: live sessions circulate as ids through a
//! [`psme_core::TaskQueues`] instance — the same three scheduler policies
//! as the match engine's task queues (§2.3/§6.1), here scheduling whole
//! decision-cycle slices instead of node activations. A worker pops a
//! session, runs up to `slice_decisions` decision cycles, and either
//! re-enqueues it (round-robin) or retires it and admits the next waiting
//! session. A session halting (`(halt)` on the RHS) retires **only that
//! session**— the loop drains the rest.
//!
//! The same worker pools also serve **open arrivals**
//! ([`crate::OpenServe`]): sessions submitted while the loop runs, each
//! optionally holding a client-granted *decision credit* — a session that
//! exhausts its credit parks in its table slot until the client grants
//! more (the wire protocol's `step` request). Batch serving is the
//! degenerate case: every session auto-runs with unbounded credit and
//! admissions close before the workers start.
//!
//! ## Sharding
//!
//! One `TaskQueues` instance is a single dispatch bus: every push and pop
//! crosses the same injector/spin locks, and past a knee (measured in the
//! serving DES) adding workers just adds contention. [`ShardConfig`]
//! splits serving into `shards` worker pools. Each shard owns a partition
//! of the sessions (routed by a [`ShardRouter`] — a stable hash of the
//! session name by default), its own `TaskQueues`, its own slice of the
//! admission/table budget, and — when tiering is on — its own
//! [`SessionStore`]. A session's match state therefore stays **affine** to
//! one pool's workers for its whole run. When a pool's queues run dry its
//! workers may steal a slice from another shard's queues (cross-shard
//! work-stealing, counted separately as `cross_shard_steals`); the stolen
//! session is checked out of and re-enqueued to its *home* shard, so
//! affinity is restored the moment the home pool catches up. `shards: 1`
//! (the default) is exactly the old single-bus loop.

use crate::session::{Session, SessionReport, SessionSpec};
use crate::store::{Checkout, SessionStore, TierConfig, TierReport};
use psme_core::{QueueStats, Scheduler, TaskQueues};
use psme_obs::{
    FlightRecorder, Json, Quantiles, Reservoir, TraceConfig, TraceKind, TraceLog, TraceRing,
};
use psme_rete::{ReorgConfig, Topology};
use psme_soar::StopReason;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// How sessions map to shards.
#[derive(Clone, Debug)]
pub enum ShardRouter {
    /// FNV-1a hash of the session *name*, mod the shard count — stable
    /// across runs, platforms, and spec order, so a session's home shard
    /// is reproducible (the cross-shard differential tests rely on it).
    Hash,
    /// `map[i]` is spec `i`'s shard (taken mod the shard count); must
    /// cover every spec. For tests that need a crafted partition.
    Explicit(Vec<u32>),
}

impl ShardRouter {
    /// Home shard for spec `idx` named `name` among `shards` pools.
    pub fn route(&self, idx: usize, name: &str, shards: usize) -> u32 {
        let shards = shards.max(1) as u64;
        match self {
            ShardRouter::Hash => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in name.as_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (h % shards) as u32
            }
            ShardRouter::Explicit(map) => (u64::from(map[idx]) % shards) as u32,
        }
    }
}

/// Sharded-serving knobs (defaults reproduce the unsharded loop).
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Worker pools. Total worker threads = `shards × workers`; the
    /// table/admission budgets split ceil-wise across pools. 1 = the
    /// single-bus loop, bit-for-bit.
    pub shards: usize,
    /// Session → shard routing.
    pub router: ShardRouter,
    /// Let a worker whose own pool ran dry steal a slice from another
    /// shard's queues (the slice still checks out of and re-enqueues to
    /// its home shard, so affinity is preserved).
    pub steal: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig { shards: 1, router: ShardRouter::Hash, steal: true }
    }
}

/// A structurally invalid [`ServeConfig`], rejected before any thread
/// spawns or any seat count is derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `shard.shards == 0`: there is no zero-pool serving loop.
    ZeroShards,
    /// `workers == 0`: a shard with no workers can never drain.
    ZeroWorkers,
    /// `table_capacity < shards`: the ceil-split would hand every shard a
    /// seat the global budget doesn't have (`div_ceil` rounds *up*), so
    /// the table bound would silently inflate to `shards` seats.
    TableSmallerThanShards {
        /// Configured global table capacity.
        table_capacity: usize,
        /// Configured shard count.
        shards: usize,
    },
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::ZeroShards => {
                write!(f, "serve config: shard.shards must be >= 1 (got 0)")
            }
            ServeConfigError::ZeroWorkers => {
                write!(f, "serve config: workers per shard must be >= 1 (got 0)")
            }
            ServeConfigError::TableSmallerThanShards { table_capacity, shards } => write!(
                f,
                "serve config: table_capacity ({table_capacity}) must be >= shards ({shards}); \
                 the ceil-split would give each shard a whole seat and inflate the table bound"
            ),
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Serving-loop configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads **per shard**.
    pub workers: usize,
    /// Dispatch policy for each shard's session queue.
    pub scheduler: Scheduler,
    /// Max live sessions in the table (split ceil-wise across shards).
    pub table_capacity: usize,
    /// Max sessions waiting for a table slot (split ceil-wise across
    /// shards); overflow sheds the oldest.
    pub admission_depth: usize,
    /// Per-session decision budget (the harness's budget by default).
    pub max_decisions: u64,
    /// Decision cycles per dispatch slice.
    pub slice_decisions: u64,
    /// Event tracing / flight recorder (always-on by default; the
    /// `trace_overhead` bench gates the cost).
    pub trace: TraceConfig,
    /// Tiered session persistence. `None` (the default) serves exactly as
    /// before: sessions live in the table for their whole run. `Some`
    /// journals every session and lets each shard's store hibernate the
    /// LRU session out of the table under memory pressure (the shard's
    /// slice of `table_capacity` becomes the hot bound); hibernated
    /// sessions resume transparently on their next dispatch.
    pub tier: Option<TierConfig>,
    /// Worker-pool sharding (default: one shard = the classic loop).
    pub shard: ShardConfig,
    /// Adaptive join reorganization. `None` (the default) serves exactly
    /// as before. `Some` arms every session's chain detector with this
    /// config: chain-dominant productions are rebuilt bilinearly mid-run,
    /// into the session's private overlay — the shared base topology is
    /// never mutated. Committed reorganizations surface as
    /// `TraceKind::ReorgCommitted` events and in each session's
    /// `stats.reorganizations`.
    pub reorg: Option<ReorgConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            scheduler: Scheduler::default(),
            table_capacity: 64,
            admission_depth: 256,
            max_decisions: 400,
            slice_decisions: 8,
            trace: TraceConfig::default(),
            tier: None,
            shard: ShardConfig::default(),
            reorg: None,
        }
    }
}

impl ServeConfig {
    /// Check the structural invariants every serving entry point relies
    /// on. [`serve`] and [`crate::OpenServe::start`] call this and panic
    /// with the error's message on violation — better a loud rejection at
    /// construction than `div_ceil` quietly inflating per-shard seat
    /// counts.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.shard.shards == 0 {
            return Err(ServeConfigError::ZeroShards);
        }
        if self.workers == 0 {
            return Err(ServeConfigError::ZeroWorkers);
        }
        if self.table_capacity < self.shard.shards {
            return Err(ServeConfigError::TableSmallerThanShards {
                table_capacity: self.table_capacity,
                shards: self.shard.shards,
            });
        }
        Ok(())
    }
}

/// Per-shard slice of a [`ServeReport`].
#[derive(Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// Specs routed to this shard.
    pub sessions: usize,
    /// Of those, completed (not shed).
    pub completed: usize,
    /// Shed by this shard's admission queue.
    pub shed: usize,
    /// Queue stats merged over this shard's workers (their steal counters
    /// include cross-shard steals they performed).
    pub queue_stats: QueueStats,
    /// Fraction of this shard's dispatch-bus traffic that moved a session
    /// (`pops / (pops + failed_pops)`): 1.0 means every bus acquisition
    /// dispatched work, values near 0 mean the pool mostly spun on an
    /// empty bus. The shard-count autotuning hint
    /// ([`ServeReport::recommended_shards`]) keys on this.
    pub bus_occupancy: f64,
    /// Decision-cycle latency over sessions homed on this shard (ns).
    pub cycle_latency: Quantiles,
    /// Slices this shard's workers stole from *other* shards' queues.
    pub cross_shard_steals: u64,
    /// This shard's tier-store report (tiered runs only).
    pub tier: Option<TierReport>,
}

impl ShardReport {
    /// Serialize for artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard", Json::from(u64::from(self.shard))),
            ("sessions", Json::from(self.sessions as u64)),
            ("completed", Json::from(self.completed as u64)),
            ("shed", Json::from(self.shed as u64)),
            ("cross_shard_steals", Json::from(self.cross_shard_steals)),
            ("bus_occupancy", Json::float(self.bus_occupancy)),
            ("cycle_latency_ns", self.cycle_latency.to_json()),
            (
                "queues",
                Json::obj([
                    ("pops", Json::from(self.queue_stats.pops)),
                    ("pushes", Json::from(self.queue_stats.pushes)),
                    ("failed_pops", Json::from(self.queue_stats.failed_pops)),
                    ("steals", Json::from(self.queue_stats.steals)),
                    ("steal_fails", Json::from(self.queue_stats.steal_fails)),
                ]),
            ),
            (
                "tier",
                match &self.tier {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Occupancy above which a pool's dispatch bus is considered saturated
/// (every acquisition dispatched work — adding workers adds contention,
/// adding shards adds bus bandwidth).
const OCCUPANCY_SPLIT: f64 = 0.75;
/// Occupancy below which pools are mostly idle and shards could merge.
const OCCUPANCY_MERGE: f64 = 0.25;

/// Shard-count hint from observed per-shard dispatch-bus occupancies.
///
/// Split (double) when the *mean* occupancy saturates — the buses
/// collectively have no headroom, so more buses help even if one shard is
/// lighter. Merge (halve) only when **every** shard is mostly idle: halving
/// doubles each surviving bus's load, so a single busy shard vetoes the
/// merge — a mean-based merge would fold a hot shard onto a cold one and
/// saturate it.
pub fn recommend_shards_from_occupancy(current: usize, occupancies: &[f64]) -> usize {
    let current = current.max(1);
    if occupancies.is_empty() {
        return current;
    }
    let mean = occupancies.iter().sum::<f64>() / occupancies.len() as f64;
    if mean > OCCUPANCY_SPLIT {
        current * 2
    } else if current > 1 && occupancies.iter().all(|&o| o < OCCUPANCY_MERGE) {
        current / 2
    } else {
        current
    }
}

/// Outcome of one [`serve`] call.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-session reports, in spec order (shed sessions included, marked).
    pub sessions: Vec<SessionReport>,
    /// Sessions shed by admission backpressure.
    pub shed: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Decision-cycle latency pooled over all completed sessions (ns).
    /// Aggregated by *merging* the per-shard reservoirs at a common
    /// stride, so no shard's samples are over-weighted.
    pub aggregate_cycle_latency: Quantiles,
    /// Queue stats merged over all workers of all shards.
    pub queue_stats: QueueStats,
    /// Per-shard breakdown (one entry even when unsharded).
    pub shards: Vec<ShardReport>,
    /// Total cross-shard steals (0 when unsharded or stealing is off).
    pub cross_shard_steals: u64,
    /// Echo of the config used (workers **per shard**).
    pub workers: usize,
    /// Echo of the config used.
    pub scheduler: Scheduler,
    /// The merged, sealed event trace (empty when tracing is disabled).
    /// `trace.to_json()` is the compact artifact, `trace.chrome_json()`
    /// the Perfetto-loadable export; sharded runs group worker tracks one
    /// process per shard.
    pub trace: TraceLog,
    /// Anomaly detector state after scanning the sealed trace: dumps for
    /// every shed/halt/tail-latency trigger.
    pub flight: FlightRecorder,
    /// Tier-store counters summed across shards, resume-latency quantiles
    /// pooled (`None` when serving ran without tiering). `peak_hot` is the
    /// sum of per-shard peaks — each shard enforces its own slice of the
    /// table bound independently.
    pub tier: Option<TierReport>,
}

impl ServeReport {
    /// Mean dispatch-bus occupancy over the run's shards.
    pub fn mean_bus_occupancy(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        self.shards.iter().map(|s| s.bus_occupancy).sum::<f64>() / self.shards.len() as f64
    }

    /// Shard-count hint from the observed per-shard dispatch-bus
    /// occupancies — groundwork for autotuning. Saturated buses (mean
    /// occupancy above 75%) suggest doubling the pool count to add bus
    /// bandwidth; halving needs *every* shard mostly idle (below 25%), so
    /// one hot shard vetoes a merge that would saturate its new pool. In
    /// between, the current count stands. See
    /// [`recommend_shards_from_occupancy`].
    pub fn recommended_shards(&self) -> usize {
        let occ: Vec<f64> = self.shards.iter().map(|s| s.bus_occupancy).collect();
        recommend_shards_from_occupancy(self.shards.len().max(1), &occ)
    }

    /// Serialize for artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workers", Json::from(self.workers as u64)),
            ("scheduler", Json::from(format!("{:?}", self.scheduler))),
            ("shed", Json::from(self.shed as u64)),
            ("wall_seconds", Json::float(self.wall_seconds)),
            ("sessions_per_sec", Json::float(self.sessions_per_sec)),
            ("cycle_latency_ns", self.aggregate_cycle_latency.to_json()),
            ("cross_shard_steals", Json::from(self.cross_shard_steals)),
            ("mean_bus_occupancy", Json::float(self.mean_bus_occupancy())),
            ("recommended_shards", Json::from(self.recommended_shards() as u64)),
            ("shards", Json::arr(self.shards.iter().map(|s| s.to_json()))),
            (
                "trace",
                Json::obj([
                    ("events", Json::from(self.trace.events.len() as u64)),
                    ("dropped", Json::from(self.trace.dropped)),
                    ("flight_triggers", Json::from(self.flight.triggers)),
                    ("flight_dumps", Json::from(self.flight.dumps.len() as u64)),
                ]),
            ),
            (
                "tier",
                match &self.tier {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
            ("sessions", Json::arr(self.sessions.iter().map(|s| s.to_json()))),
        ])
    }
}

/// Streamed-serving notifications ([`crate::OpenServe`]): the network
/// front-end routes these back to the owning client connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeEvent {
    /// A credited session consumed its grant and parked in its table slot;
    /// `decisions` is its total decision count so far (the wire `step`
    /// acknowledgement carries it).
    Parked {
        /// Session id.
        id: u32,
        /// Decisions executed so far.
        decisions: u64,
    },
    /// A session retired; its report can be fetched with
    /// [`crate::OpenServe::report`].
    Retired {
        /// Session id.
        id: u32,
    },
    /// Admission backpressure displaced this previously accepted session.
    Shed {
        /// Session id.
        id: u32,
    },
}

/// One worker pool: the queues, admission backlog, store tier, and
/// telemetry pools for its partition of the sessions.
pub(crate) struct ShardState {
    /// Session ids in flight on this shard, tagged with enqueue instants.
    pub(crate) queues: TaskQueues<(u32, Instant)>,
    /// This shard's admission backlog (untiered runs only).
    pub(crate) pending: Mutex<VecDeque<usize>>,
    /// Sessions currently holding one of this shard's table seats
    /// (untiered runs; tiered runs bound residency in the store instead).
    pub(crate) live: AtomicUsize,
    /// Sessions shed by this shard's admission queue.
    pub(crate) shed: AtomicUsize,
    /// Queue stats merged from this shard's workers at exit.
    pub(crate) stats: Mutex<QueueStats>,
    /// Cycle-latency reservoir for sessions homed here.
    pub(crate) cycle_pool: Mutex<Reservoir>,
    /// This shard's slice of the tier store (tiered runs only).
    pub(crate) store: Option<SessionStore>,
    /// Slices this shard's workers stole from other shards.
    pub(crate) cross_steals: AtomicU64,
}

/// Per-session table slot. The queue hands out exclusive ownership of an
/// id, so the *session* is never contended; the mutex makes the handoff
/// `Sync` and serializes the streamed-serving control fields (step
/// credit, learning toggles, close requests) against the worker touching
/// the same session.
#[derive(Default)]
pub(crate) struct Slot {
    /// The session, while live but not being stepped.
    pub(crate) sess: Option<Session>,
    /// Streamed sessions only: out of credit, waiting for the client's
    /// next `step` grant (not in any queue).
    pub(crate) parked: bool,
    /// Step credit granted while the session was in flight or pending;
    /// drained into the session at its next dispatch or park attempt.
    pub(crate) credit_due: u64,
    /// Learning toggle requested over the wire; applied at next dispatch.
    pub(crate) learn_due: Option<bool>,
    /// Client asked to close; the next dispatch (or park attempt) retires
    /// the session with [`StopReason::Closed`].
    pub(crate) closing: bool,
    /// Initial credit for sessions admitted later from the pending queue
    /// (`None` = auto-run, the batch default).
    pub(crate) grant: Option<u64>,
}

pub(crate) struct Inner {
    pub(crate) topo: Arc<Topology>,
    /// Spec `i`, set before id `i` ever circulates (all up front in batch
    /// serving, at submit time in open serving).
    pub(crate) specs: Vec<OnceLock<SessionSpec>>,
    pub(crate) cfg: ServeConfig,
    /// Spec index → home shard (fixed at admission by the router;
    /// `u32::MAX` until the id is submitted).
    pub(crate) home: Vec<AtomicU32>,
    pub(crate) shards: Vec<ShardState>,
    /// One slot per spec; see [`Slot`].
    pub(crate) slots: Vec<Mutex<Slot>>,
    pub(crate) reports: Mutex<Vec<Option<SessionReport>>>,
    /// Sessions admitted or waiting, not yet retired (all shards).
    pub(crate) remaining: AtomicI64,
    /// No further submissions will arrive; workers exit once `remaining`
    /// hits zero. Batch serving closes before the workers start.
    pub(crate) closed: AtomicBool,
    /// Ids handed out so far (== spec count in batch serving).
    pub(crate) submitted: AtomicUsize,
    /// Shared origin every trace ring stamps against.
    pub(crate) origin: Instant,
    /// Workers drain their rings here at loop exit (the join barrier).
    pub(crate) trace_sink: Mutex<TraceLog>,
    /// Control-side ring: batch staging, open-serving admission, and
    /// forced closes emit through this.
    pub(crate) ctl_ring: Mutex<TraceRing>,
    /// Queue stats for control-side seeds/pushes.
    pub(crate) seed_stats: Mutex<QueueStats>,
    /// Streamed-serving notifications (open serving only).
    pub(crate) events: Option<Sender<ServeEvent>>,
}

impl Inner {
    pub(crate) fn spec(&self, idx: usize) -> &SessionSpec {
        self.specs[idx].get().expect("spec set before its id circulates")
    }

    pub(crate) fn home_of(&self, idx: usize) -> usize {
        let h = self.home[idx].load(Ordering::Relaxed);
        debug_assert_ne!(h, u32::MAX, "home routed before the id circulates");
        h as usize
    }

    /// Per-shard slice of the table budget.
    pub(crate) fn cap_s(&self) -> usize {
        self.cfg.table_capacity.div_ceil(self.shards.len())
    }

    /// Per-shard slice of the admission-queue budget.
    pub(crate) fn depth_s(&self) -> usize {
        self.cfg.admission_depth.div_ceil(self.shards.len())
    }

    pub(crate) fn event(&self, ev: ServeEvent) {
        if let Some(tx) = &self.events {
            // A dropped receiver means the front-end stopped listening;
            // serving itself never depends on delivery.
            let _ = tx.send(ev);
        }
    }
}

/// Run one dispatch slice on a checked-out session. Emits the
/// `SliceStart`/`SliceEnd` pair and returns the stop reason if the session
/// finished inside this slice. Credited sessions run at most their
/// remaining credit.
fn run_slice(
    inner: &Inner,
    ring: &mut TraceRing,
    sess: &mut Session,
    idx: usize,
    wait_ns: f64,
) -> Option<StopReason> {
    sess.wait_ns.push(wait_ns);
    sess.slices += 1;
    let budget = match sess.credit {
        Some(c) => c.min(inner.cfg.slice_decisions.max(1)),
        None => inner.cfg.slice_decisions.max(1),
    };
    let cyc0 = sess.agent.stats.decisions;
    let reorg0 = sess.agent.stats.reorganizations;
    ring.emit(TraceKind::SliceStart, idx as u32, cyc0, cyc0, wait_ns as u64);
    let slice_start = Instant::now();
    let mut stop = None;
    for _ in 0..budget {
        let t0 = Instant::now();
        let r = sess.agent.step(inner.cfg.max_decisions);
        sess.cycle_ns.push(t0.elapsed().as_nanos() as f64);
        if let Some(c) = sess.credit.as_mut() {
            *c -= 1;
        }
        if let Some(r) = r {
            stop = Some(r);
            break;
        }
    }
    let cyc1 = sess.agent.stats.decisions;
    let exec_ns = slice_start.elapsed().as_nanos() as u64;
    // Reorganizations committed inside this slice (arg = count, not ns:
    // the per-reorg production index lives in the agent's own trace; here
    // the session id is the useful coordinate).
    let reorgs = sess.agent.stats.reorganizations - reorg0;
    if reorgs > 0 {
        ring.emit(TraceKind::ReorgCommitted, idx as u32, cyc0, cyc1, reorgs);
    }
    ring.emit(TraceKind::SliceEnd, idx as u32, cyc0, cyc1, exec_ns);
    stop
}

/// Retire a finished session: emit lifecycle events, fold telemetry into
/// its home shard's pools, and file its report.
pub(crate) fn finish_session(
    inner: &Inner,
    ring: &mut TraceRing,
    sess: Session,
    idx: usize,
    home: usize,
    reason: StopReason,
) {
    let cyc = sess.agent.stats.decisions;
    if reason == StopReason::Halted {
        ring.emit(TraceKind::Halted, idx as u32, cyc, cyc, 0);
    }
    ring.emit(TraceKind::Retired, idx as u32, cyc, cyc, 0);
    if inner.cfg.trace.session_phases && ring.enabled() {
        // Fold the session's control-phase spans into the trace, rebased
        // onto the run origin.
        for s in sess.agent.recorder.rebased_spans(inner.origin) {
            ring.emit_at(s.start_ns, TraceKind::PhaseBegin(s.phase), idx as u32, s.seq, s.seq, 0);
            ring.emit_at(
                s.start_ns.saturating_add(s.dur_ns),
                TraceKind::PhaseEnd(s.phase),
                idx as u32,
                s.seq,
                s.seq,
                s.dur_ns,
            );
        }
    }
    inner.shards[home].cycle_pool.lock().expect("pool lock").extend(&sess.cycle_ns);
    inner.reports.lock().expect("reports lock")[idx] = Some(sess.into_report(reason));
    inner.remaining.fetch_sub(1, Ordering::AcqRel);
    inner.event(ServeEvent::Retired { id: idx as u32 });
}

/// Put a session id back in circulation on its home shard. A worker in the
/// home pool pushes to its own queue end; a cross-shard thief must use the
/// any-thread seed entry point (the owner ends of a foreign pool's queues
/// belong to that pool's threads).
fn enqueue(inner: &Inner, qs: &mut QueueStats, home: usize, local: Option<usize>, idx: usize) {
    let item = (idx as u32, Instant::now());
    match local {
        Some(w) => inner.shards[home].queues.push(w, item, qs),
        None => inner.shards[home].queues.push_seed(idx % inner.cfg.workers, item, qs),
    }
}

/// Admit waiting sessions while `home` has free table seats (untiered
/// runs). Seats are reserved with a CAS so concurrent retire paths and
/// open-serving submissions never over-admit; a reserved seat with an
/// empty backlog is released again.
pub(crate) fn admit_pending(
    inner: &Inner,
    ring: &mut TraceRing,
    qs: &mut QueueStats,
    home: usize,
    local: Option<usize>,
) {
    let st = &inner.shards[home];
    let cap_s = inner.cap_s();
    loop {
        let cur = st.live.load(Ordering::Acquire);
        if cur >= cap_s {
            return;
        }
        if st
            .live
            .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        let next = st.pending.lock().expect("pending lock").pop_front();
        let Some(n) = next else {
            st.live.fetch_sub(1, Ordering::AcqRel);
            return;
        };
        let mut s = Session::build(inner.spec(n), &inner.topo, false, inner.cfg.reorg.as_ref());
        {
            let slot = inner.slots[n].lock().expect("slot lock");
            s.credit = slot.grant.map(|g| g.saturating_add(slot.credit_due));
        }
        let mut slot = inner.slots[n].lock().expect("slot lock");
        slot.credit_due = 0;
        slot.sess = Some(s);
        drop(slot);
        ring.emit(TraceKind::Admitted, n as u32, 0, 0, 0);
        enqueue(inner, qs, home, local, n);
        ring.emit(TraceKind::Enqueued, n as u32, 0, 0, 0);
    }
}

/// A retired/closed session released a table seat on `home`: give it to
/// the oldest waiting session, if any.
pub(crate) fn release_seat(
    inner: &Inner,
    ring: &mut TraceRing,
    qs: &mut QueueStats,
    home: usize,
    local: Option<usize>,
) {
    inner.shards[home].live.fetch_sub(1, Ordering::AcqRel);
    admit_pending(inner, ring, qs, home, local);
}

/// Execute one dispatch on session `idx`, whose home shard is `home`.
/// `local` is `Some(wid)` when the executing worker belongs to the home
/// pool (the affine fast path), `None` when it is a cross-shard thief.
fn step_session(
    inner: &Inner,
    ring: &mut TraceRing,
    qs: &mut QueueStats,
    home: usize,
    local: Option<usize>,
    idx: usize,
    enqueued: Instant,
) {
    let wait_ns = enqueued.elapsed().as_nanos() as f64;
    match &inner.shards[home].store {
        None => {
            let (mut sess, closing) = {
                let mut slot = inner.slots[idx].lock().expect("slot lock");
                let mut sess = slot.sess.take().expect("queued session is in its slot");
                if slot.credit_due > 0 {
                    let due = std::mem::take(&mut slot.credit_due);
                    *sess.credit.get_or_insert(0) += due;
                }
                if let Some(enable) = slot.learn_due.take() {
                    sess.agent.learning = enable;
                }
                (sess, std::mem::take(&mut slot.closing))
            };
            if closing {
                finish_session(inner, ring, sess, idx, home, StopReason::Closed);
                release_seat(inner, ring, qs, home, local);
                return;
            }
            match run_slice(inner, ring, &mut sess, idx, wait_ns) {
                None => {
                    let cyc = sess.agent.stats.decisions;
                    if sess.credit == Some(0) {
                        // Out of client credit: park in the slot (not in
                        // any queue) unless a grant or close raced in. A
                        // shut-down loop (`closed`) will never grant more
                        // credit, so parking would stall forever — close.
                        let mut slot = inner.slots[idx].lock().expect("slot lock");
                        if slot.closing || inner.closed.load(Ordering::Acquire) {
                            slot.closing = false;
                            drop(slot);
                            finish_session(inner, ring, sess, idx, home, StopReason::Closed);
                            release_seat(inner, ring, qs, home, local);
                        } else if slot.credit_due > 0 {
                            let due = std::mem::take(&mut slot.credit_due);
                            *sess.credit.get_or_insert(0) += due;
                            slot.sess = Some(sess);
                            drop(slot);
                            enqueue(inner, qs, home, local, idx);
                            ring.emit(TraceKind::Reenqueued, idx as u32, cyc, cyc, 0);
                        } else {
                            slot.parked = true;
                            slot.sess = Some(sess);
                            drop(slot);
                            inner.event(ServeEvent::Parked { id: idx as u32, decisions: cyc });
                        }
                    } else {
                        inner.slots[idx].lock().expect("slot lock").sess = Some(sess);
                        enqueue(inner, qs, home, local, idx);
                        ring.emit(TraceKind::Reenqueued, idx as u32, cyc, cyc, 0);
                    }
                }
                Some(reason) => {
                    finish_session(inner, ring, sess, idx, home, reason);
                    // A table slot freed on the home shard: admit its next
                    // waiting session.
                    release_seat(inner, ring, qs, home, local);
                }
            }
        }
        // Tiered: the home shard's store materializes the session lazily
        // (`Start`), hands back a live one (`Live`), or returns snapshot
        // bytes to verify and replay (`Resume`) — hibernating its LRU
        // resident whenever the shard's table slice is over capacity.
        Some(store) => {
            let (checkout, evicted) = store.checkout(idx);
            for &(victim, bytes) in &evicted.hibernated {
                ring.emit(TraceKind::Hibernated, victim, 0, 0, bytes as u64);
            }
            let mut sess = match checkout {
                Checkout::Live(s) => *s,
                Checkout::Start => {
                    let s =
                        Session::build(inner.spec(idx), &inner.topo, true, inner.cfg.reorg.as_ref());
                    ring.emit(TraceKind::Admitted, idx as u32, 0, 0, 0);
                    s
                }
                Checkout::Resume(bytes, _tier) => {
                    // Verify + replay outside the store lock; the slot is
                    // marked Running, so the id is exclusively ours.
                    let t0 = Instant::now();
                    let s = Session::resume(
                        inner.spec(idx),
                        &inner.topo,
                        &bytes,
                        inner.cfg.reorg.as_ref(),
                    )
                    .expect("snapshot encoded by this run must resume");
                    let ns = t0.elapsed().as_nanos() as f64;
                    store.note_resume_ns(ns);
                    let cyc = s.agent.stats.decisions;
                    ring.emit(TraceKind::Resumed, idx as u32, cyc, cyc, ns as u64);
                    s
                }
            };
            match run_slice(inner, ring, &mut sess, idx, wait_ns) {
                None => {
                    let cyc = sess.agent.stats.decisions;
                    let evicted = store.checkin(idx, sess);
                    for &(victim, bytes) in &evicted.hibernated {
                        ring.emit(TraceKind::Hibernated, victim, 0, 0, bytes as u64);
                    }
                    enqueue(inner, qs, home, local, idx);
                    ring.emit(TraceKind::Reenqueued, idx as u32, cyc, cyc, 0);
                }
                Some(reason) => {
                    store.retire(idx);
                    finish_session(inner, ring, sess, idx, home, reason);
                }
            }
        }
    }
}

/// Try to steal one queued slice from any other shard, round-robin from
/// this shard's right neighbor. Uses only the thief-safe queue entry
/// points, so it is sound from any thread.
fn steal_from_others(
    inner: &Inner,
    shard: usize,
    qs: &mut QueueStats,
) -> Option<(u32, Instant)> {
    let n = inner.shards.len();
    for k in 1..n {
        let victim = (shard + k) % n;
        if let Some(item) = inner.shards[victim].queues.steal_foreign(qs) {
            return Some(item);
        }
    }
    None
}

/// Consecutive empty dispatch attempts before an idle worker starts
/// sleeping instead of spinning — keeps open-serving pools from burning a
/// core while the wire is quiet, without adding latency under load.
const IDLE_SPINS: u32 = 64;

pub(crate) fn worker_loop(inner: &Inner, shard: usize, wid: usize) {
    let gwid = (shard * inner.cfg.workers + wid) as u32;
    let mut qs = QueueStats::default();
    // Thread-local event ring: emitting is a branch + array write, merged
    // into the run log only once, when this worker exits.
    let mut ring = TraceRing::from_config(gwid, &inner.cfg.trace, inner.origin);
    let nshards = inner.shards.len();
    let mut idle: u32 = 0;
    loop {
        // Own pool first — session affinity keeps state hot here.
        if let Some((idx, enq)) = inner.shards[shard].queues.pop(wid, &mut qs) {
            idle = 0;
            debug_assert_eq!(
                inner.home_of(idx as usize), shard,
                "a shard's queues only circulate its own sessions"
            );
            step_session(inner, &mut ring, &mut qs, shard, Some(wid), idx as usize, enq);
            continue;
        }
        // Own pool dry: steal a slice from another shard (if enabled).
        if inner.cfg.shard.steal && nshards > 1 {
            if let Some((idx, enq)) = steal_from_others(inner, shard, &mut qs) {
                idle = 0;
                let home = inner.home_of(idx as usize);
                inner.shards[shard].cross_steals.fetch_add(1, Ordering::Relaxed);
                ring.emit(TraceKind::CrossShardSteal, idx, 0, 0, home as u64);
                step_session(inner, &mut ring, &mut qs, home, None, idx as usize, enq);
                continue;
            }
        }
        if inner.remaining.load(Ordering::Acquire) <= 0 && inner.closed.load(Ordering::Acquire) {
            break;
        }
        idle = idle.saturating_add(1);
        if idle > IDLE_SPINS {
            std::thread::sleep(std::time::Duration::from_micros(50));
        } else {
            std::thread::yield_now();
        }
    }
    inner.shards[shard].stats.lock().expect("stats lock").merge(&qs);
    inner.trace_sink.lock().expect("trace lock").absorb(&mut ring);
}

/// Build the shard states for a run.
pub(crate) fn build_shards(cfg: &ServeConfig, n_specs: usize) -> Vec<ShardState> {
    let nshards = cfg.shard.shards;
    let cap_s = cfg.table_capacity.div_ceil(nshards);
    (0..nshards)
        .map(|_| ShardState {
            queues: TaskQueues::new(cfg.scheduler, cfg.workers),
            pending: Mutex::new(VecDeque::new()),
            live: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            stats: Mutex::new(QueueStats::default()),
            cycle_pool: Mutex::new(Reservoir::default()),
            store: cfg.tier.as_ref().map(|t| SessionStore::new(n_specs, cap_s, t)),
            cross_steals: AtomicU64::new(0),
        })
        .collect()
}

/// Fold the run's state into a [`ServeReport`]: merge the control ring,
/// seal the trace, scan the flight recorder, and aggregate the per-shard
/// telemetry (queue stats sum, latency reservoirs *merge* at a common
/// stride, tier counters sum with resume samples pooled).
pub(crate) fn finalize(inner: Inner, wall_seconds: f64) -> ServeReport {
    let Inner {
        reports,
        shards,
        cfg,
        trace_sink,
        home,
        submitted,
        ctl_ring,
        seed_stats,
        ..
    } = inner;
    let n = submitted.into_inner();
    let nshards = shards.len();
    let workers = cfg.workers;
    let mut agg_stats = QueueStats::default();
    agg_stats.merge(&seed_stats.into_inner().expect("seed stats lock"));
    // Merge the control ring behind the join barrier, seal into one causal
    // timeline, tag worker → shard for the Perfetto export, and run the
    // anomaly detector over it.
    let mut trace = trace_sink.into_inner().expect("trace lock");
    let mut ctl = ctl_ring.into_inner().expect("ctl ring lock");
    trace.absorb(&mut ctl);
    if nshards > 1 {
        for s in 0..nshards {
            for w in 0..workers {
                trace.set_shard((s * workers + w) as u32, s as u32);
            }
        }
    }
    trace.seal();
    let mut flight = FlightRecorder::new(cfg.trace.flight);
    flight.scan(&trace.events);

    let sessions: Vec<SessionReport> = reports
        .into_inner()
        .expect("reports lock")
        .into_iter()
        .take(n)
        .map(|r| r.expect("every submitted session retired or shed"))
        .collect();
    let members: Vec<Vec<usize>> = {
        let mut m: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        for (i, h) in home.iter().take(n).enumerate() {
            m[h.load(Ordering::Relaxed) as usize].push(i);
        }
        m
    };
    let mut shard_completed: Vec<usize> = vec![0; nshards];
    for (i, r) in sessions.iter().enumerate() {
        if !r.was_shed() {
            shard_completed[home[i].load(Ordering::Relaxed) as usize] += 1;
        }
    }
    let completed: usize = shard_completed.iter().sum();

    let mut agg_pool = Reservoir::default();
    let mut shard_reports: Vec<ShardReport> = Vec::with_capacity(nshards);
    let mut agg_tier: Option<TierReport> = None;
    let mut resume_samples: Vec<f64> = Vec::new();
    for (s, st) in shards.into_iter().enumerate() {
        let qstats = st.stats.into_inner().expect("stats lock");
        agg_stats.merge(&qstats);
        let pool = st.cycle_pool.into_inner().expect("pool lock");
        agg_pool.merge(&pool);
        let tier = st.store.as_ref().map(|store| {
            resume_samples.extend(store.resume_samples());
            let r = store.report();
            let a = agg_tier.get_or_insert_with(TierReport::default);
            a.hibernated += r.hibernated;
            a.resumed += r.resumed;
            a.warm_resumes += r.warm_resumes;
            a.durable_resumes += r.durable_resumes;
            a.spilled += r.spilled;
            a.peak_hot += r.peak_hot;
            a.snapshot_bytes_total += r.snapshot_bytes_total;
            r
        });
        let bus_traffic = qstats.pops + qstats.failed_pops;
        shard_reports.push(ShardReport {
            shard: s as u32,
            sessions: members[s].len(),
            completed: shard_completed[s],
            shed: st.shed.into_inner(),
            bus_occupancy: if bus_traffic > 0 {
                qstats.pops as f64 / bus_traffic as f64
            } else {
                0.0
            },
            queue_stats: qstats,
            cycle_latency: pool.quantiles(),
            cross_shard_steals: st.cross_steals.into_inner(),
            tier,
        });
    }
    if let Some(a) = agg_tier.as_mut() {
        a.resume_latency = Quantiles::from_samples(&resume_samples);
    }
    let cross_shard_steals = shard_reports.iter().map(|s| s.cross_shard_steals).sum();

    ServeReport {
        shed: sessions.iter().filter(|s| s.was_shed()).count(),
        sessions,
        wall_seconds,
        sessions_per_sec: if wall_seconds > 0.0 { completed as f64 / wall_seconds } else { 0.0 },
        aggregate_cycle_latency: agg_pool.quantiles(),
        queue_stats: agg_stats,
        shards: shard_reports,
        cross_shard_steals,
        workers,
        scheduler: cfg.scheduler,
        trace,
        flight,
        tier: agg_tier,
    }
}

/// Serve a batch of sessions over a shared topology.
///
/// Panics if the config fails [`ServeConfig::validate`], if two specs
/// share a name (reports would be ambiguous), or if an explicit shard map
/// doesn't cover every spec.
pub fn serve(topo: Arc<Topology>, specs: Vec<SessionSpec>, cfg: ServeConfig) -> ServeReport {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    {
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate session names");
    }
    let workers = cfg.workers;
    let nshards = cfg.shard.shards;
    let n = specs.len();
    if let ShardRouter::Explicit(map) = &cfg.shard.router {
        assert_eq!(map.len(), n, "explicit shard map must cover every spec");
    }

    // Route every spec to its home shard; the partition is fixed for the
    // whole run (session affinity).
    let home: Vec<u32> =
        specs.iter().enumerate().map(|(i, s)| cfg.shard.router.route(i, &s.name, nshards)).collect();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nshards];
    for (i, &h) in home.iter().enumerate() {
        members[h as usize].push(i);
    }

    // Stage each shard's batch arrival against its slice of the budgets:
    // first `cap_s` members go live, the next `depth_s` queue for
    // admission, and overflow sheds the oldest waiting entries.
    let cap_s = cfg.table_capacity.div_ceil(nshards);
    let depth_s = cfg.admission_depth.div_ceil(nshards);
    let tiered = cfg.tier.is_some();
    let mut reports: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
    let mut live: Vec<Vec<usize>> = Vec::with_capacity(nshards);
    let mut waiting: Vec<Vec<usize>> = Vec::with_capacity(nshards);
    let mut shed_ids: Vec<usize> = Vec::new();
    let mut shard_shed: Vec<usize> = vec![0; nshards];
    for (s, m) in members.iter().enumerate() {
        let l = cap_s.min(m.len());
        let overflow = &m[l..];
        let shed_count = overflow.len().saturating_sub(depth_s);
        for &i in &overflow[..shed_count] {
            reports[i] = Some(SessionReport::shed(specs[i].name.clone()));
        }
        shard_shed[s] = shed_count;
        shed_ids.extend_from_slice(&overflow[..shed_count]);
        live.push(m[..l].to_vec());
        waiting.push(overflow[shed_count..].to_vec());
    }
    let accepted: i64 = (0..nshards).map(|s| (live[s].len() + waiting[s].len()) as i64).sum();

    let shards = build_shards(&cfg, n);
    for (s, st) in shards.iter().enumerate() {
        st.shed.store(shard_shed[s], Ordering::Relaxed);
        st.live.store(live[s].len(), Ordering::Relaxed);
        if !tiered {
            // Tiered serving enqueues every accepted id up front instead
            // of staging admissions through the pending queue.
            *st.pending.lock().expect("pending lock") = waiting[s].iter().copied().collect();
        }
    }

    let origin = Instant::now();
    let inner = Inner {
        home: home.into_iter().map(AtomicU32::new).collect(),
        shards,
        slots: (0..n).map(|_| Mutex::new(Slot::default())).collect(),
        reports: Mutex::new(reports),
        remaining: AtomicI64::new(accepted),
        closed: AtomicBool::new(true),
        submitted: AtomicUsize::new(n),
        origin,
        trace_sink: Mutex::new(TraceLog::with_cap(cfg.trace.merged_cap)),
        // The control thread's ring (admission staging); its worker id is
        // one past the last worker's.
        ctl_ring: Mutex::new(TraceRing::from_config(
            (nshards * workers) as u32,
            &cfg.trace,
            origin,
        )),
        seed_stats: Mutex::new(QueueStats::default()),
        events: None,
        topo,
        specs: specs.into_iter().map(OnceLock::from).collect(),
        cfg,
    };

    {
        let mut ctl_ring = inner.ctl_ring.lock().expect("ctl ring lock");
        for &i in &shed_ids {
            ctl_ring.emit(TraceKind::Shed, i as u32, 0, 0, 0);
        }
    }

    let t0 = Instant::now();
    {
        let mut ctl_ring = inner.ctl_ring.lock().expect("ctl ring lock");
        let mut seed_stats = inner.seed_stats.lock().expect("seed stats lock");
        for s in 0..nshards {
            if tiered {
                // Every accepted session circulates as an id from the
                // start; the shard's store materializes at most `cap_s` at
                // a time.
                for (k, i) in live[s].iter().chain(waiting[s].iter()).copied().enumerate() {
                    inner.shards[s].queues.push_seed(
                        k % workers,
                        (i as u32, Instant::now()),
                        &mut seed_stats,
                    );
                    ctl_ring.emit(TraceKind::Enqueued, i as u32, 0, 0, 0);
                }
            } else {
                for (k, i) in live[s].iter().copied().enumerate() {
                    let sess =
                        Session::build(inner.spec(i), &inner.topo, false, inner.cfg.reorg.as_ref());
                    inner.slots[i].lock().expect("slot lock").sess = Some(sess);
                    ctl_ring.emit(TraceKind::Admitted, i as u32, 0, 0, 0);
                    inner.shards[s].queues.push_seed(
                        k % workers,
                        (i as u32, Instant::now()),
                        &mut seed_stats,
                    );
                    ctl_ring.emit(TraceKind::Enqueued, i as u32, 0, 0, 0);
                }
            }
        }
    }
    std::thread::scope(|scope| {
        for s in 0..nshards {
            for wid in 0..workers {
                let inner = &inner;
                std::thread::Builder::new()
                    .name(format!("psm-serve-{s}-{wid}"))
                    .spawn_scoped(scope, move || worker_loop(inner, s, wid))
                    .expect("spawn serve worker");
            }
        }
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    finalize(inner, wall_seconds)
}
