//! The serving loop: admission, session table, worker pool, dispatch.
//!
//! All sessions arrive up front (a batch-arrival open system degenerates to
//! this on a closed benchmark). Admission is two-stage:
//!
//! 1. the **session table** holds at most `table_capacity` live sessions
//!    (each owns a `MatchState` and an overlay, so the table bounds memory);
//! 2. arrivals beyond that wait in a **bounded admission queue** of depth
//!    `admission_depth`; on overflow the *oldest* waiting entry is shed
//!    (shed-oldest keeps the freshest work under overload, and the shed
//!    set is deterministic — reported, never silently dropped).
//!
//! Dispatch: live sessions circulate as ids through a
//! [`psme_core::TaskQueues`] instance — the same three scheduler policies
//! as the match engine's task queues (§2.3/§6.1), here scheduling whole
//! decision-cycle slices instead of node activations. A worker pops a
//! session, runs up to `slice_decisions` decision cycles, and either
//! re-enqueues it (round-robin) or retires it and admits the next waiting
//! session. A session halting (`(halt)` on the RHS) retires **only that
//! session**; the loop drains the rest.

use crate::session::{Session, SessionReport, SessionSpec};
use crate::store::{Checkout, SessionStore, TierConfig, TierReport};
use psme_core::{QueueStats, Scheduler, TaskQueues};
use psme_obs::{
    FlightRecorder, Json, Quantiles, Reservoir, TraceConfig, TraceKind, TraceLog, TraceRing,
};
use psme_rete::Topology;
use psme_soar::StopReason;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Serving-loop configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads.
    pub workers: usize,
    /// Dispatch policy for the session queue.
    pub scheduler: Scheduler,
    /// Max live sessions in the table.
    pub table_capacity: usize,
    /// Max sessions waiting for a table slot; overflow sheds the oldest.
    pub admission_depth: usize,
    /// Per-session decision budget (the harness's budget by default).
    pub max_decisions: u64,
    /// Decision cycles per dispatch slice.
    pub slice_decisions: u64,
    /// Event tracing / flight recorder (always-on by default; the
    /// `trace_overhead` bench gates the cost).
    pub trace: TraceConfig,
    /// Tiered session persistence. `None` (the default) serves exactly as
    /// before: sessions live in the table for their whole run. `Some`
    /// journals every session and lets the store hibernate the LRU session
    /// out of the table under memory pressure (`table_capacity` becomes
    /// the hot bound); hibernated sessions resume transparently on their
    /// next dispatch.
    pub tier: Option<TierConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            scheduler: Scheduler::default(),
            table_capacity: 64,
            admission_depth: 256,
            max_decisions: 400,
            slice_decisions: 8,
            trace: TraceConfig::default(),
            tier: None,
        }
    }
}

/// Outcome of one [`serve`] call.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-session reports, in spec order (shed sessions included, marked).
    pub sessions: Vec<SessionReport>,
    /// Sessions shed by admission backpressure.
    pub shed: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Decision-cycle latency pooled over all completed sessions (ns).
    pub aggregate_cycle_latency: Quantiles,
    /// Queue stats merged over all workers.
    pub queue_stats: QueueStats,
    /// Echo of the config used.
    pub workers: usize,
    /// Echo of the config used.
    pub scheduler: Scheduler,
    /// The merged, sealed event trace (empty when tracing is disabled).
    /// `trace.to_json()` is the compact artifact, `trace.chrome_json()`
    /// the Perfetto-loadable export.
    pub trace: TraceLog,
    /// Anomaly detector state after scanning the sealed trace: dumps for
    /// every shed/halt/tail-latency trigger.
    pub flight: FlightRecorder,
    /// Tier-store counters and resume-latency quantiles (`None` when
    /// serving ran without tiering).
    pub tier: Option<TierReport>,
}

impl ServeReport {
    /// Serialize for artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workers", Json::from(self.workers as u64)),
            ("scheduler", Json::from(format!("{:?}", self.scheduler))),
            ("shed", Json::from(self.shed as u64)),
            ("wall_seconds", Json::float(self.wall_seconds)),
            ("sessions_per_sec", Json::float(self.sessions_per_sec)),
            ("cycle_latency_ns", self.aggregate_cycle_latency.to_json()),
            (
                "trace",
                Json::obj([
                    ("events", Json::from(self.trace.events.len() as u64)),
                    ("dropped", Json::from(self.trace.dropped)),
                    ("flight_triggers", Json::from(self.flight.triggers)),
                    ("flight_dumps", Json::from(self.flight.dumps.len() as u64)),
                ]),
            ),
            (
                "tier",
                match &self.tier {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
            ("sessions", Json::arr(self.sessions.iter().map(|s| s.to_json()))),
        ])
    }
}

struct Inner {
    topo: Arc<Topology>,
    specs: Vec<SessionSpec>,
    cfg: ServeConfig,
    /// Session ids in flight, tagged with their enqueue instant.
    queues: TaskQueues<(u32, Instant)>,
    /// One slot per spec; `Some` while the session is live but not being
    /// stepped. The queue hands out exclusive ownership of an id, so a slot
    /// is never contended — the mutex only makes the handoff `Sync`.
    slots: Vec<Mutex<Option<Session>>>,
    pending: Mutex<VecDeque<usize>>,
    reports: Mutex<Vec<Option<SessionReport>>>,
    /// Sessions admitted or waiting, not yet retired. Workers exit when it
    /// reaches zero.
    remaining: AtomicI64,
    stats: Mutex<QueueStats>,
    /// Cycle-latency samples pooled across sessions (ns) in a bounded
    /// deterministic reservoir, for the aggregate quantiles (per-session
    /// reports keep only summaries).
    cycle_pool: Mutex<Reservoir>,
    /// Shared origin every trace ring stamps against.
    origin: Instant,
    /// Workers drain their rings here at loop exit (the join barrier).
    trace_sink: Mutex<TraceLog>,
}

/// Run one dispatch slice on a checked-out session. Emits the
/// `SliceStart`/`SliceEnd` pair and returns the stop reason if the session
/// finished inside this slice.
fn run_slice(
    inner: &Inner,
    ring: &mut TraceRing,
    sess: &mut Session,
    idx: usize,
    wait_ns: f64,
) -> Option<StopReason> {
    sess.wait_ns.push(wait_ns);
    sess.slices += 1;
    let cyc0 = sess.agent.stats.decisions;
    ring.emit(TraceKind::SliceStart, idx as u32, cyc0, cyc0, wait_ns as u64);
    let slice_start = Instant::now();
    let mut stop = None;
    for _ in 0..inner.cfg.slice_decisions.max(1) {
        let t0 = Instant::now();
        let r = sess.agent.step(inner.cfg.max_decisions);
        sess.cycle_ns.push(t0.elapsed().as_nanos() as f64);
        if let Some(r) = r {
            stop = Some(r);
            break;
        }
    }
    let cyc1 = sess.agent.stats.decisions;
    let exec_ns = slice_start.elapsed().as_nanos() as u64;
    ring.emit(TraceKind::SliceEnd, idx as u32, cyc0, cyc1, exec_ns);
    stop
}

/// Retire a finished session: emit lifecycle events, fold telemetry into
/// the run pools, and file its report.
fn finish_session(inner: &Inner, ring: &mut TraceRing, sess: Session, idx: usize, reason: StopReason) {
    let cyc = sess.agent.stats.decisions;
    if reason == StopReason::Halted {
        ring.emit(TraceKind::Halted, idx as u32, cyc, cyc, 0);
    }
    ring.emit(TraceKind::Retired, idx as u32, cyc, cyc, 0);
    if inner.cfg.trace.session_phases && ring.enabled() {
        // Fold the session's control-phase spans into the trace, rebased
        // onto the run origin.
        for s in sess.agent.recorder.rebased_spans(inner.origin) {
            ring.emit_at(s.start_ns, TraceKind::PhaseBegin(s.phase), idx as u32, s.seq, s.seq, 0);
            ring.emit_at(
                s.start_ns.saturating_add(s.dur_ns),
                TraceKind::PhaseEnd(s.phase),
                idx as u32,
                s.seq,
                s.seq,
                s.dur_ns,
            );
        }
    }
    inner.cycle_pool.lock().expect("pool lock").extend(&sess.cycle_ns);
    inner.reports.lock().expect("reports lock")[idx] = Some(sess.into_report(reason));
    inner.remaining.fetch_sub(1, Ordering::AcqRel);
}

fn worker_loop(inner: &Inner, wid: usize) {
    let mut qs = QueueStats::default();
    // Thread-local event ring: emitting is a branch + array write, merged
    // into the run log only once, when this worker exits.
    let mut ring = TraceRing::from_config(wid as u32, &inner.cfg.trace, inner.origin);
    loop {
        match inner.queues.pop(wid, &mut qs) {
            Some((idx, enqueued)) => {
                let idx = idx as usize;
                let wait_ns = enqueued.elapsed().as_nanos() as f64;
                let mut sess = inner.slots[idx]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("queued session is in its slot");
                match run_slice(inner, &mut ring, &mut sess, idx, wait_ns) {
                    None => {
                        let cyc = sess.agent.stats.decisions;
                        *inner.slots[idx].lock().expect("slot lock") = Some(sess);
                        inner.queues.push(wid, (idx as u32, Instant::now()), &mut qs);
                        ring.emit(TraceKind::Reenqueued, idx as u32, cyc, cyc, 0);
                    }
                    Some(reason) => {
                        finish_session(inner, &mut ring, sess, idx, reason);
                        // A table slot freed: admit the next waiting session.
                        let next = inner.pending.lock().expect("pending lock").pop_front();
                        if let Some(n) = next {
                            let s = Session::build(&inner.specs[n], &inner.topo, false);
                            *inner.slots[n].lock().expect("slot lock") = Some(s);
                            ring.emit(TraceKind::Admitted, n as u32, 0, 0, 0);
                            inner.queues.push(wid, (n as u32, Instant::now()), &mut qs);
                            ring.emit(TraceKind::Enqueued, n as u32, 0, 0, 0);
                        }
                    }
                }
            }
            None => {
                if inner.remaining.load(Ordering::Acquire) <= 0 {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
    inner.stats.lock().expect("stats lock").merge(&qs);
    inner.trace_sink.lock().expect("trace lock").absorb(&mut ring);
}

/// The tiered variant: session ids all circulate through the dispatch
/// queues from the start; the store materializes them lazily (`Start`),
/// hands back live ones (`Live`), or returns snapshot bytes to verify and
/// replay (`Resume`) — hibernating the LRU resident session whenever the
/// table is over capacity.
fn worker_loop_tiered(inner: &Inner, store: &SessionStore, wid: usize) {
    let mut qs = QueueStats::default();
    let mut ring = TraceRing::from_config(wid as u32, &inner.cfg.trace, inner.origin);
    loop {
        match inner.queues.pop(wid, &mut qs) {
            Some((idx, enqueued)) => {
                let idx = idx as usize;
                let wait_ns = enqueued.elapsed().as_nanos() as f64;
                let (checkout, evicted) = store.checkout(idx);
                for &(victim, bytes) in &evicted.hibernated {
                    ring.emit(TraceKind::Hibernated, victim, 0, 0, bytes as u64);
                }
                let mut sess = match checkout {
                    Checkout::Live(s) => *s,
                    Checkout::Start => {
                        let s = Session::build(&inner.specs[idx], &inner.topo, true);
                        ring.emit(TraceKind::Admitted, idx as u32, 0, 0, 0);
                        s
                    }
                    Checkout::Resume(bytes, _tier) => {
                        // Verify + replay outside the store lock; the slot
                        // is marked Running, so the id is exclusively ours.
                        let t0 = Instant::now();
                        let s = Session::resume(&inner.specs[idx], &inner.topo, &bytes)
                            .expect("snapshot encoded by this run must resume");
                        let ns = t0.elapsed().as_nanos() as f64;
                        store.note_resume_ns(ns);
                        let cyc = s.agent.stats.decisions;
                        ring.emit(TraceKind::Resumed, idx as u32, cyc, cyc, ns as u64);
                        s
                    }
                };
                match run_slice(inner, &mut ring, &mut sess, idx, wait_ns) {
                    None => {
                        let cyc = sess.agent.stats.decisions;
                        let evicted = store.checkin(idx, sess);
                        for &(victim, bytes) in &evicted.hibernated {
                            ring.emit(TraceKind::Hibernated, victim, 0, 0, bytes as u64);
                        }
                        inner.queues.push(wid, (idx as u32, Instant::now()), &mut qs);
                        ring.emit(TraceKind::Reenqueued, idx as u32, cyc, cyc, 0);
                    }
                    Some(reason) => {
                        store.retire(idx);
                        finish_session(inner, &mut ring, sess, idx, reason);
                    }
                }
            }
            None => {
                if inner.remaining.load(Ordering::Acquire) <= 0 {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
    inner.stats.lock().expect("stats lock").merge(&qs);
    inner.trace_sink.lock().expect("trace lock").absorb(&mut ring);
}

/// Serve a batch of sessions over a shared topology.
///
/// Panics if two specs share a name (reports would be ambiguous).
pub fn serve(topo: Arc<Topology>, specs: Vec<SessionSpec>, cfg: ServeConfig) -> ServeReport {
    {
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate session names");
    }
    let workers = cfg.workers.max(1);
    let n = specs.len();
    let cap = cfg.table_capacity.max(1);

    // Stage the batch arrival: first `cap` go live, the rest queue for
    // admission; queue overflow sheds the oldest waiting entries.
    let overflow: Vec<usize> = (cap.min(n)..n).collect();
    let shed_count = overflow.len().saturating_sub(cfg.admission_depth);
    let (shed, waiting) = overflow.split_at(shed_count);
    let mut reports: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
    for &i in shed {
        reports[i] = Some(SessionReport::shed(specs[i].name.clone()));
    }

    let tiered = cfg.tier.is_some();
    let inner = Inner {
        queues: TaskQueues::new(cfg.scheduler, workers),
        slots: (0..n).map(|_| Mutex::new(None)).collect(),
        // Tiered serving enqueues every accepted id up front instead of
        // staging admissions through the pending queue.
        pending: Mutex::new(if tiered {
            VecDeque::new()
        } else {
            waiting.iter().copied().collect()
        }),
        reports: Mutex::new(reports),
        remaining: AtomicI64::new((cap.min(n) + waiting.len()) as i64),
        stats: Mutex::new(QueueStats::default()),
        cycle_pool: Mutex::new(Reservoir::default()),
        origin: Instant::now(),
        trace_sink: Mutex::new(TraceLog::with_cap(cfg.trace.merged_cap)),
        topo,
        specs,
        cfg,
    };

    // The control thread's own ring (admission staging); its worker id is
    // one past the last worker's.
    let mut ctl_ring = TraceRing::from_config(workers as u32, &inner.cfg.trace, inner.origin);
    for &i in shed {
        ctl_ring.emit(TraceKind::Shed, i as u32, 0, 0, 0);
    }

    let store = inner.cfg.tier.as_ref().map(|t| SessionStore::new(n, cap, t));

    let t0 = Instant::now();
    let mut seed_stats = QueueStats::default();
    if tiered {
        // Every accepted session circulates as an id from the start; the
        // store materializes at most `table_capacity` of them at a time.
        for (k, i) in (0..cap.min(n)).chain(waiting.iter().copied()).enumerate() {
            inner.queues.push_seed(k % workers, (i as u32, Instant::now()), &mut seed_stats);
            ctl_ring.emit(TraceKind::Enqueued, i as u32, 0, 0, 0);
        }
    } else {
        for i in 0..cap.min(n) {
            let s = Session::build(&inner.specs[i], &inner.topo, false);
            *inner.slots[i].lock().expect("slot lock") = Some(s);
            ctl_ring.emit(TraceKind::Admitted, i as u32, 0, 0, 0);
            inner.queues.push_seed(i % workers, (i as u32, Instant::now()), &mut seed_stats);
            ctl_ring.emit(TraceKind::Enqueued, i as u32, 0, 0, 0);
        }
    }
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let inner = &inner;
            let store = &store;
            std::thread::Builder::new()
                .name(format!("psm-serve-{wid}"))
                .spawn_scoped(scope, move || match store {
                    Some(st) => worker_loop_tiered(inner, st, wid),
                    None => worker_loop(inner, wid),
                })
                .expect("spawn serve worker");
        }
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let Inner { reports, stats, cfg, cycle_pool, trace_sink, .. } = inner;
    let mut stats = stats.into_inner().expect("stats lock");
    stats.merge(&seed_stats);
    // Merge the control ring behind the join barrier, seal into one
    // causal timeline, and run the anomaly detector over it.
    let mut trace = trace_sink.into_inner().expect("trace lock");
    trace.absorb(&mut ctl_ring);
    trace.seal();
    let mut flight = FlightRecorder::new(cfg.trace.flight);
    flight.scan(&trace.events);
    let sessions: Vec<SessionReport> = reports
        .into_inner()
        .expect("reports lock")
        .into_iter()
        .map(|r| r.expect("every session retired or shed"))
        .collect();
    let completed = sessions.iter().filter(|s| !s.was_shed()).count();
    let pool = cycle_pool.into_inner().expect("pool lock");
    let tier = store.map(|s| s.report());
    ServeReport {
        shed: sessions.iter().filter(|s| s.was_shed()).count(),
        sessions,
        wall_seconds,
        sessions_per_sec: if wall_seconds > 0.0 { completed as f64 / wall_seconds } else { 0.0 },
        aggregate_cycle_latency: pool.quantiles(),
        queue_stats: stats,
        workers,
        scheduler: cfg.scheduler,
        trace,
        flight,
        tier,
    }
}
