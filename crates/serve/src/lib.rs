//! # psme-serve — multi-session serving over one shared Rete topology
//!
//! The paper's production system serves a single agent. This layer
//! multiplexes **N Soar sessions over one compiled match network**:
//!
//! * the base network is compiled once and frozen into an immutable
//!   [`psme_rete::Topology`] shared by every session (`Arc`, no locks —
//!   the base is never mutated after freeze);
//! * each session owns its private [`psme_rete::MatchState`] (working
//!   memory + token memories), so the §5.2 state semantics run entirely in
//!   session-local storage;
//! * chunks a session learns go into its private **overlay region**
//!   ([`psme_rete::SessionNet`]): new nodes get IDs strictly above the
//!   shared base (preserving the §5.1 node-ID invariant per session), and
//!   splices into base successor lists are recorded as session-local edge
//!   deltas consulted during propagation — no base copy, no cross-session
//!   interference.
//!
//! On top of that split sits a serving loop ([`serve`]): a bounded
//! admission queue with shed-oldest backpressure, a session table, and
//! round-robin dispatch of decision-cycle slices onto a worker pool driven
//! by the same three schedulers as the match engine (single queue, multi
//! queue, work stealing). Per-session telemetry (p50/p99 cycle latency,
//! queue wait, overlay growth) is reported through `psme-obs` quantiles.
//!
//! A session executing `(halt)` terminates **that session only** — the
//! loop keeps serving the rest (see `serve_isolation` tests).
//!
//! Serving can be **sharded** ([`ShardConfig`]): N worker pools, each
//! owning a routed partition of the sessions, its own dispatch queues and
//! store tier (session affinity), with cross-shard work-stealing only when
//! a pool runs dry — scaling past the single dispatch bus's contention
//! knee (the `shard_scaling` bench).
//!
//! [`des`] contains a deterministic discrete-event model of the same loop
//! for scheduler sweeps beyond the host's core count (the
//! `serve_throughput` bench).

pub mod des;
pub mod open;
pub mod serve;
pub mod session;
pub mod store;

pub use des::{
    simulate_serve, simulate_serve_open, simulate_serve_sharded, simulate_serve_tiered, DesConfig,
    DesOpenConfig, DesOpenResult, DesResult, DesShardConfig, DesShardedResult, DesTierConfig,
    DesTieredResult,
};
pub use open::{OpenServe, SubmitError};
pub use serve::{
    recommend_shards_from_occupancy, serve, ServeConfig, ServeConfigError, ServeEvent, ServeReport,
    ShardConfig, ShardReport, ShardRouter,
};
pub use session::{
    build_topology, SessionReport, SessionSpec, SessionTelemetry, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{TierConfig, TierReport};
