//! The tiered session store: hot → warm → durable.
//!
//! A serving host cannot keep a `MatchState` + overlay resident for every
//! session it is responsible for — the session population can be orders of
//! magnitude larger than the memory the table affords. The store keeps at
//! most `hot_capacity` sessions live; the rest exist as snapshots
//! ([`crate::session::Session::hibernate`]): **warm** (snapshot bytes in
//! memory, bounded by `warm_capacity`) or **durable** (snapshot files in
//! `durable_dir`). Eviction is LRU by a logical clock that ticks once per
//! store operation, so the eviction order is a pure function of the
//! dispatch order — deterministic whenever the dispatch order is.
//!
//! Concurrency: one mutex around the whole tier state. Every transition
//! (checkout, checkin, evict, spill, retire) is atomic under it; in
//! particular a victim is chosen, encoded and demoted in one critical
//! section, so no other worker can pop a half-hibernated session. The
//! expensive *resume* half (frame verify + journal replay) runs outside
//! the lock: checkout marks the slot `Running` — giving the caller
//! exclusive ownership — and hands back the snapshot bytes to decode at
//! leisure. Workers never hold any other lock while calling in.

use crate::session::Session;
use psme_obs::Quantiles;
use std::path::PathBuf;
use std::sync::Mutex;

/// Tiering configuration ([`crate::ServeConfig::tier`]; `None` disables
/// the store entirely and serving runs the original non-journaled path).
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Max hibernated snapshots held in memory; overflow demotes the
    /// least-recently-used warm snapshot to the durable tier.
    pub warm_capacity: usize,
    /// Directory for durable snapshot files. `None` keeps every snapshot
    /// warm regardless of `warm_capacity` (no disk tier).
    pub durable_dir: Option<PathBuf>,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig { warm_capacity: 1 << 20, durable_dir: None }
    }
}

/// Where one session currently lives.
enum TierSlot {
    /// Accepted, never yet dispatched (built lazily on first checkout).
    Unstarted,
    /// Live in the table, between slices.
    Hot(Box<Session>),
    /// Checked out by a worker (the worker owns the `Session`).
    Running,
    /// Hibernated: snapshot bytes in memory.
    Warm(Vec<u8>),
    /// Hibernated: snapshot file on disk.
    Durable(PathBuf),
    /// Completed.
    Retired,
}

/// Which snapshot tier a resume came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResumeTier {
    /// In-memory snapshot bytes.
    Warm,
    /// Snapshot file read back from disk.
    Durable,
}

/// What [`SessionStore::checkout`] hands a worker.
pub(crate) enum Checkout {
    /// First dispatch: build the session fresh (journaled).
    Start,
    /// The session was hot; here it is.
    Live(Box<Session>),
    /// The session is hibernated: verify + replay these bytes.
    Resume(Vec<u8>, ResumeTier),
}

/// Evictions a checkout forced, for the caller's trace ring:
/// `(session, snapshot_bytes)` per hibernation, plus sessions whose warm
/// snapshot spilled to the durable tier.
#[derive(Default)]
pub(crate) struct Evictions {
    pub(crate) hibernated: Vec<(u32, usize)>,
    pub(crate) spilled: Vec<u32>,
}

/// Tier counters surfaced through [`crate::ServeReport`].
#[derive(Clone, Debug, Default)]
pub struct TierReport {
    /// Sessions hibernated out of the table (eviction count, not unique).
    pub hibernated: u64,
    /// Hibernated sessions resumed on a later dispatch.
    pub resumed: u64,
    /// Resumes served from in-memory snapshot bytes.
    pub warm_resumes: u64,
    /// Resumes that read a snapshot file back from disk.
    pub durable_resumes: u64,
    /// Warm snapshots demoted to durable files.
    pub spilled: u64,
    /// Most sessions simultaneously hot or running.
    pub peak_hot: usize,
    /// Total snapshot bytes encoded across all hibernations.
    pub snapshot_bytes_total: u64,
    /// Resume latency (frame verify + journal replay + shell restore), ns.
    pub resume_latency: Quantiles,
}

impl TierReport {
    /// Serialize for artifacts.
    pub fn to_json(&self) -> psme_obs::Json {
        use psme_obs::Json;
        Json::obj([
            ("hibernated", Json::from(self.hibernated)),
            ("resumed", Json::from(self.resumed)),
            ("warm_resumes", Json::from(self.warm_resumes)),
            ("durable_resumes", Json::from(self.durable_resumes)),
            ("spilled", Json::from(self.spilled)),
            ("peak_hot", Json::from(self.peak_hot as u64)),
            ("snapshot_bytes_total", Json::from(self.snapshot_bytes_total)),
            ("resume_latency_ns", self.resume_latency.to_json()),
        ])
    }
}

struct StoreState {
    slots: Vec<TierSlot>,
    /// Logical LRU stamp per slot; 0 = never touched.
    last_touch: Vec<u64>,
    clock: u64,
    /// Slots currently `Hot` or `Running`.
    hot_count: usize,
    hibernated: u64,
    resumed_warm: u64,
    resumed_durable: u64,
    spilled: u64,
    peak_hot: usize,
    snapshot_bytes_total: u64,
    resume_ns: Vec<f64>,
}

/// The store proper: tier state for `n` sessions behind one mutex.
pub(crate) struct SessionStore {
    hot_capacity: usize,
    warm_capacity: usize,
    durable_dir: Option<PathBuf>,
    state: Mutex<StoreState>,
}

impl SessionStore {
    /// A store for `n` sessions, at most `hot_capacity` of them live.
    pub(crate) fn new(n: usize, hot_capacity: usize, cfg: &TierConfig) -> SessionStore {
        SessionStore {
            hot_capacity: hot_capacity.max(1),
            warm_capacity: cfg.warm_capacity.max(1),
            durable_dir: cfg.durable_dir.clone(),
            state: Mutex::new(StoreState {
                slots: (0..n).map(|_| TierSlot::Unstarted).collect(),
                last_touch: vec![0; n],
                clock: 0,
                hot_count: 0,
                hibernated: 0,
                resumed_warm: 0,
                resumed_durable: 0,
                spilled: 0,
                peak_hot: 0,
                snapshot_bytes_total: 0,
                resume_ns: Vec::new(),
            }),
        }
    }

    /// Claim session `idx` for stepping. The dispatch queues hand out each
    /// id exclusively, so the slot is never `Running` or `Retired` here.
    /// Claiming a non-hot session takes a table seat and may evict the LRU
    /// hot session (encoded to warm — and the LRU warm snapshot spilled to
    /// disk — inside this same critical section).
    pub(crate) fn checkout(&self, idx: usize) -> (Checkout, Evictions) {
        let mut st = self.state.lock().expect("tier store lock");
        st.clock += 1;
        st.last_touch[idx] = st.clock;
        let slot = std::mem::replace(&mut st.slots[idx], TierSlot::Running);
        let out = match slot {
            TierSlot::Hot(sess) => return (Checkout::Live(sess), Evictions::default()),
            TierSlot::Unstarted => {
                st.hot_count += 1;
                Checkout::Start
            }
            TierSlot::Warm(bytes) => {
                st.hot_count += 1;
                st.resumed_warm += 1;
                Checkout::Resume(bytes, ResumeTier::Warm)
            }
            TierSlot::Durable(path) => {
                st.hot_count += 1;
                st.resumed_durable += 1;
                let bytes =
                    std::fs::read(&path).expect("durable snapshot file written by this store");
                Checkout::Resume(bytes, ResumeTier::Durable)
            }
            TierSlot::Running | TierSlot::Retired => {
                unreachable!("queue hands out ids exclusively")
            }
        };
        st.peak_hot = st.peak_hot.max(st.hot_count);
        let evictions = self.enforce_pressure(&mut st);
        (out, evictions)
    }

    /// Return a live session to its slot after a slice. Re-asserts the hot
    /// bound: a checkout over capacity can find every seat `Running` and
    /// have nothing to evict, so the pressure is enforced here too, where
    /// the returning session is itself a candidate victim (it is the MRU,
    /// so it only self-hibernates when nothing else is evictable — e.g.
    /// more workers than table seats, every other session mid-slice).
    pub(crate) fn checkin(&self, idx: usize, sess: Session) -> Evictions {
        let mut st = self.state.lock().expect("tier store lock");
        st.clock += 1;
        st.last_touch[idx] = st.clock;
        debug_assert!(matches!(st.slots[idx], TierSlot::Running));
        st.slots[idx] = TierSlot::Hot(Box::new(sess));
        self.enforce_pressure(&mut st)
    }

    /// The session completed: free its table seat for good.
    pub(crate) fn retire(&self, idx: usize) {
        let mut st = self.state.lock().expect("tier store lock");
        debug_assert!(matches!(st.slots[idx], TierSlot::Running));
        st.slots[idx] = TierSlot::Retired;
        st.hot_count -= 1;
    }

    /// Record one resume's measured latency (decode happens outside the
    /// store lock, so the sample is reported back).
    pub(crate) fn note_resume_ns(&self, ns: f64) {
        self.state.lock().expect("tier store lock").resume_ns.push(ns);
    }

    /// While over the hot bound, hibernate the LRU hot session; while the
    /// warm tier is over its bound (and a durable dir exists), spill the
    /// LRU warm snapshot to disk. Called with the lock held.
    fn enforce_pressure(&self, st: &mut StoreState) -> Evictions {
        let mut ev = Evictions::default();
        while st.hot_count > self.hot_capacity {
            let victim = st
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, TierSlot::Hot(_)))
                .min_by_key(|&(i, _)| st.last_touch[i])
                .map(|(i, _)| i);
            // Every over-bound seat may be Running (workers > capacity):
            // nothing evictable right now; the bound re-asserts on the next
            // checkout after those slices check back in.
            let Some(v) = victim else { break };
            let TierSlot::Hot(sess) = std::mem::replace(&mut st.slots[v], TierSlot::Running)
            else {
                unreachable!("victim filtered to Hot")
            };
            let bytes = sess.hibernate();
            st.hibernated += 1;
            st.snapshot_bytes_total += bytes.len() as u64;
            st.hot_count -= 1;
            ev.hibernated.push((v as u32, bytes.len()));
            st.slots[v] = TierSlot::Warm(bytes);
        }
        if let Some(dir) = &self.durable_dir {
            loop {
                let warm_count =
                    st.slots.iter().filter(|s| matches!(s, TierSlot::Warm(_))).count();
                if warm_count <= self.warm_capacity {
                    break;
                }
                let victim = st
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, TierSlot::Warm(_)))
                    .min_by_key(|&(i, _)| st.last_touch[i])
                    .map(|(i, _)| i)
                    .expect("warm_count > 0");
                let TierSlot::Warm(bytes) =
                    std::mem::replace(&mut st.slots[victim], TierSlot::Running)
                else {
                    unreachable!("victim filtered to Warm")
                };
                let path = dir.join(format!("session-{victim}.psns"));
                std::fs::write(&path, &bytes).expect("durable tier dir is writable");
                st.spilled += 1;
                ev.spilled.push(victim as u32);
                st.slots[victim] = TierSlot::Durable(path);
            }
        }
        ev
    }

    /// Raw resume-latency samples (ns) — pooled across shards for the
    /// aggregate report.
    pub(crate) fn resume_samples(&self) -> Vec<f64> {
        self.state.lock().expect("tier store lock").resume_ns.clone()
    }

    /// Fold the counters into the report (end of run).
    pub(crate) fn report(&self) -> TierReport {
        let st = self.state.lock().expect("tier store lock");
        TierReport {
            hibernated: st.hibernated,
            resumed: st.resumed_warm + st.resumed_durable,
            warm_resumes: st.resumed_warm,
            durable_resumes: st.resumed_durable,
            spilled: st.spilled,
            peak_hot: st.peak_hot,
            snapshot_bytes_total: st.snapshot_bytes_total,
            resume_latency: Quantiles::from_samples(&st.resume_ns),
        }
    }
}
