//! Open (streamed) serving: sessions arrive while the loop runs.
//!
//! [`serve`](crate::serve()) is batch — every spec is staged before the
//! first worker starts, which makes offered-load claims closed-loop by
//! construction. [`OpenServe`] runs the *same* worker pools, shards,
//! admission budgets, and telemetry (the internals are shared with the
//! batch path), but keeps the loop alive for submissions from outside —
//! the network front-end (`psme-net`) feeds decoded wire requests through
//! [`OpenServe::submit`], so the arrival process is whatever the wire
//! carries (the open-loop load generator injects Poisson arrivals that do
//! not slow down when the server saturates).
//!
//! Two things distinguish a streamed session from a batch one:
//!
//! * **Admission is dynamic.** A submission takes a free table seat on its
//!   home shard immediately, else joins that shard's pending queue; if the
//!   queue exceeds its depth slice the *oldest* waiting session is shed
//!   (the same shed-oldest policy as batch staging) and the shed is pushed
//!   to the caller as a [`ServeEvent::Shed`] notification.
//! * **Execution can be metered.** A submission may carry a decision
//!   *credit*; the session runs until the credit is spent, then parks in
//!   its table slot ([`ServeEvent::Parked`]) until the client grants more
//!   via [`OpenServe::step`] — the wire protocol's interactive stepping.
//!   A `None` grant auto-runs to completion, which is how the load
//!   generator drives whole-session arrivals.
//!
//! Streamed serving is untiered: hibernation would have to persist wire
//! credit and in-flight control state, which nothing needs yet.
//! [`OpenServe::start`] rejects a tiered config.

use crate::serve::{
    admit_pending, build_shards, finalize, finish_session, release_seat, worker_loop, Inner,
    ServeConfig, ServeEvent, ServeReport, ShardRouter, Slot,
};
use crate::session::{SessionReport, SessionSpec};
use psme_core::QueueStats;
use psme_obs::{TraceKind, TraceLog, TraceRing};
use psme_rete::Topology;
use psme_soar::StopReason;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a submission was refused (refusal is not shedding: a refused
/// session never entered admission and has no report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// [`OpenServe::finish`] already ran; the loop takes no more work.
    Closed,
    /// A session with this name was already submitted this run.
    DuplicateName(String),
    /// The run's session-id space (`max_sessions`) is exhausted.
    Exhausted,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "open serve: loop is closed"),
            SubmitError::DuplicateName(n) => write!(f, "open serve: duplicate session name {n:?}"),
            SubmitError::Exhausted => write!(f, "open serve: session-id space exhausted"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Admission bookkeeping serialized under one mutex (submissions are wire
/// requests — low rate relative to dispatch, so one lock is fine).
struct AdmitState {
    names: HashSet<String>,
}

/// A serving loop accepting sessions while it runs. See the module docs.
pub struct OpenServe {
    inner: Arc<Inner>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    admit: Mutex<AdmitState>,
    t0: Instant,
}

impl OpenServe {
    /// Start the worker pools and return the running loop plus the
    /// receiver for its [`ServeEvent`] notifications. `max_sessions`
    /// bounds the id space for the whole run (ids are dense, assigned in
    /// submission order).
    ///
    /// Panics if the config fails [`ServeConfig::validate`], is tiered,
    /// or carries an explicit shard map smaller than `max_sessions`.
    pub fn start(
        topo: Arc<Topology>,
        cfg: ServeConfig,
        max_sessions: usize,
    ) -> (OpenServe, Receiver<ServeEvent>) {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        assert!(cfg.tier.is_none(), "open serving is untiered (hibernation needs batch serving)");
        if let ShardRouter::Explicit(map) = &cfg.shard.router {
            assert!(
                map.len() >= max_sessions,
                "explicit shard map must cover max_sessions ({} < {max_sessions})",
                map.len()
            );
        }
        let nshards = cfg.shard.shards;
        let workers = cfg.workers;
        let origin = Instant::now();
        let (tx, rx) = channel();
        let inner = Arc::new(Inner {
            topo,
            specs: (0..max_sessions).map(|_| OnceLock::new()).collect(),
            home: (0..max_sessions).map(|_| AtomicU32::new(u32::MAX)).collect(),
            shards: build_shards(&cfg, max_sessions),
            slots: (0..max_sessions).map(|_| Mutex::new(Slot::default())).collect(),
            reports: Mutex::new((0..max_sessions).map(|_| None).collect()),
            remaining: AtomicI64::new(0),
            closed: AtomicBool::new(false),
            submitted: AtomicUsize::new(0),
            origin,
            trace_sink: Mutex::new(TraceLog::with_cap(cfg.trace.merged_cap)),
            ctl_ring: Mutex::new(TraceRing::from_config(
                (nshards * workers) as u32,
                &cfg.trace,
                origin,
            )),
            seed_stats: Mutex::new(QueueStats::default()),
            events: Some(tx),
            cfg,
        });
        let mut joins = Vec::with_capacity(nshards * workers);
        for s in 0..nshards {
            for wid in 0..workers {
                let inner = Arc::clone(&inner);
                joins.push(
                    std::thread::Builder::new()
                        .name(format!("psm-open-{s}-{wid}"))
                        .spawn(move || worker_loop(&inner, s, wid))
                        .expect("spawn open-serve worker"),
                );
            }
        }
        let serve = OpenServe {
            inner,
            joins: Mutex::new(joins),
            admit: Mutex::new(AdmitState { names: HashSet::new() }),
            t0: Instant::now(),
        };
        (serve, rx)
    }

    /// The network front-end accepted a connection; record it in the
    /// run's trace (`conn` is the connection id, a separate namespace
    /// from session ids).
    pub fn note_accepted(&self, conn: u32) {
        self.inner
            .ctl_ring
            .lock()
            .expect("ctl ring lock")
            .emit(TraceKind::NetAccepted, conn, 0, 0, 0);
    }

    fn note_request(&self, id: u32) {
        self.inner
            .ctl_ring
            .lock()
            .expect("ctl ring lock")
            .emit(TraceKind::NetRequest, id, 0, 0, 0);
    }

    /// Submit a session. `grant` is its initial decision credit (`None`
    /// auto-runs to completion). Returns the session id; admission (or
    /// shedding) proceeds asynchronously and is observable through the
    /// event stream and [`OpenServe::report`].
    pub fn submit(&self, spec: SessionSpec, grant: Option<u64>) -> Result<u32, SubmitError> {
        let inner = &*self.inner;
        let mut adm = self.admit.lock().expect("admit lock");
        if inner.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        let idx = inner.submitted.load(Ordering::Acquire);
        if idx >= inner.specs.len() {
            return Err(SubmitError::Exhausted);
        }
        if !adm.names.insert(spec.name.clone()) {
            return Err(SubmitError::DuplicateName(spec.name));
        }
        let nshards = inner.shards.len();
        let home = inner.cfg.shard.router.route(idx, &spec.name, nshards) as usize;
        assert!(inner.specs[idx].set(spec).is_ok(), "fresh id has no spec");
        inner.home[idx].store(home as u32, Ordering::Relaxed);
        inner.slots[idx].lock().expect("slot lock").grant = grant;
        inner.remaining.fetch_add(1, Ordering::AcqRel);
        inner.submitted.store(idx + 1, Ordering::Release);

        // Wire arrival: the open-loop injection point.
        let mut ring = inner.ctl_ring.lock().expect("ctl ring lock");
        ring.emit(TraceKind::NetRequest, idx as u32, 0, 0, 0);
        let mut qs = inner.seed_stats.lock().expect("seed stats lock");
        let st = &inner.shards[home];
        st.pending.lock().expect("pending lock").push_back(idx);
        admit_pending(inner, &mut ring, &mut qs, home, None);
        // Shed-oldest: displace the longest-waiting sessions while the
        // backlog exceeds this shard's admission-depth slice.
        loop {
            let victim = {
                let mut p = st.pending.lock().expect("pending lock");
                if p.len() > inner.depth_s() {
                    p.pop_front()
                } else {
                    None
                }
            };
            let Some(v) = victim else { break };
            let name = inner.spec(v).name.clone();
            self.inner.reports.lock().expect("reports lock")[v] = Some(SessionReport::shed(name));
            st.shed.fetch_add(1, Ordering::Relaxed);
            inner.remaining.fetch_sub(1, Ordering::AcqRel);
            ring.emit(TraceKind::Shed, v as u32, 0, 0, 0);
            ring.emit(TraceKind::NetShed, v as u32, 0, 0, 0);
            inner.event(ServeEvent::Shed { id: v as u32 });
        }
        Ok(idx as u32)
    }

    /// True iff `id` is a submitted session that has not retired or shed.
    fn is_open(&self, id: u32) -> bool {
        let idx = id as usize;
        idx < self.inner.submitted.load(Ordering::Acquire)
            && self.inner.reports.lock().expect("reports lock")[idx].is_none()
    }

    /// Grant `n` more decisions of credit to session `id`. A parked
    /// session re-enters its home shard's queues immediately; an in-flight
    /// or still-pending one absorbs the credit at its next dispatch.
    /// Returns false if the session already retired or was shed (the
    /// client races completion; that's normal).
    pub fn step(&self, id: u32, n: u64) -> bool {
        self.note_request(id);
        if !self.is_open(id) {
            return false;
        }
        let inner = &*self.inner;
        let idx = id as usize;
        let mut slot = inner.slots[idx].lock().expect("slot lock");
        if slot.parked {
            let mut sess = slot.sess.take().expect("parked session is in its slot");
            let due = std::mem::take(&mut slot.credit_due);
            *sess.credit.get_or_insert(0) += n.saturating_add(due);
            slot.parked = false;
            slot.sess = Some(sess);
            drop(slot);
            let home = inner.home_of(idx);
            let mut ring = inner.ctl_ring.lock().expect("ctl ring lock");
            let mut qs = inner.seed_stats.lock().expect("seed stats lock");
            inner.shards[home].queues.push_seed(
                idx % inner.cfg.workers,
                (id, Instant::now()),
                &mut qs,
            );
            ring.emit(TraceKind::Reenqueued, id, 0, 0, 0);
        } else {
            slot.credit_due = slot.credit_due.saturating_add(n);
        }
        true
    }

    /// Toggle chunk learning for session `id` (the wire `learn-chunk`
    /// request); applies at the session's next dispatch. Returns false if
    /// the session already retired or was shed.
    pub fn set_learning(&self, id: u32, enable: bool) -> bool {
        self.note_request(id);
        if !self.is_open(id) {
            return false;
        }
        let mut slot = self.inner.slots[id as usize].lock().expect("slot lock");
        if slot.parked {
            if let Some(sess) = slot.sess.as_mut() {
                sess.agent.learning = enable;
            }
        } else {
            slot.learn_due = Some(enable);
        }
        true
    }

    /// Close session `id`: it retires with [`StopReason::Closed`] — a
    /// parked session immediately, an in-flight or pending one at its
    /// next dispatch. Returns false if it already retired or was shed.
    pub fn close_session(&self, id: u32) -> bool {
        self.note_request(id);
        if !self.is_open(id) {
            return false;
        }
        let inner = &*self.inner;
        let idx = id as usize;
        let mut slot = inner.slots[idx].lock().expect("slot lock");
        if slot.parked {
            let sess = slot.sess.take().expect("parked session is in its slot");
            slot.parked = false;
            slot.closing = false;
            drop(slot);
            let home = inner.home_of(idx);
            let mut ring = inner.ctl_ring.lock().expect("ctl ring lock");
            let mut qs = inner.seed_stats.lock().expect("seed stats lock");
            finish_session(inner, &mut ring, sess, idx, home, StopReason::Closed);
            release_seat(inner, &mut ring, &mut qs, home, None);
        } else {
            slot.closing = true;
        }
        true
    }

    /// The report for session `id`, once it retired or shed (`None` while
    /// it is still live or was never submitted).
    pub fn report(&self, id: u32) -> Option<SessionReport> {
        let idx = id as usize;
        if idx >= self.inner.submitted.load(Ordering::Acquire) {
            return None;
        }
        self.inner.reports.lock().expect("reports lock")[idx].clone()
    }

    /// Sessions submitted so far.
    pub fn submitted(&self) -> usize {
        self.inner.submitted.load(Ordering::Acquire)
    }

    /// Sessions admitted or waiting, not yet retired or shed.
    pub fn outstanding(&self) -> usize {
        self.inner.remaining.load(Ordering::Acquire).max(0) as usize
    }

    /// Stop accepting submissions and drain: auto-run sessions (no credit
    /// bound) run to their natural stop, while sessions stalled on client
    /// credit — parked now, or parking after the close — retire with
    /// [`StopReason::Closed`] (no more credit is coming). Then join the
    /// workers and fold the run into a [`ServeReport`] — the same
    /// aggregation as batch [`crate::serve()`], so open and batch
    /// artifacts are comparable (and uncredited open runs bit-for-bit
    /// equal batch runs of the same specs).
    pub fn finish(self) -> ServeReport {
        let inner = &*self.inner;
        // Take the admit lock once so no submission interleaves with the
        // close; after `closed` is set submissions are refused.
        drop(self.admit.lock().expect("admit lock"));
        inner.closed.store(true, Ordering::Release);
        while inner.remaining.load(Ordering::Acquire) > 0 {
            for idx in 0..inner.submitted.load(Ordering::Acquire) {
                let mut slot = inner.slots[idx].lock().expect("slot lock");
                if slot.parked {
                    let sess = slot.sess.take().expect("parked session is in its slot");
                    slot.parked = false;
                    slot.closing = false;
                    drop(slot);
                    let home = inner.home_of(idx);
                    let mut ring = inner.ctl_ring.lock().expect("ctl ring lock");
                    let mut qs = inner.seed_stats.lock().expect("seed stats lock");
                    finish_session(inner, &mut ring, sess, idx, home, StopReason::Closed);
                    release_seat(inner, &mut ring, &mut qs, home, None);
                }
                // In flight or pending: left to drain — the workers run it
                // to its stop, and the park path closes it if it stalls on
                // credit (it checks `closed` under the slot lock).
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        for j in self.joins.lock().expect("joins lock").drain(..) {
            j.join().expect("open-serve worker panicked");
        }
        let wall_seconds = self.t0.elapsed().as_secs_f64();
        let inner = Arc::try_unwrap(self.inner)
            .ok()
            .expect("workers joined; no Inner refs remain");
        finalize(inner, wall_seconds)
    }
}
