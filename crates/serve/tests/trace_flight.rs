//! Flight-recorder gates for the serving layer.
//!
//! Tracing is on by default; these tests pin down what the run log and the
//! anomaly detector actually deliver: a seeded overload *deterministically*
//! produces a flight dump holding the shed events, slice events tile each
//! session's decision cycles exactly, disabling tracing leaves zero
//! residue, and the Chrome export is strictly parseable.

use psme_core::Scheduler;
use psme_obs::{DumpTrigger, Json, TraceConfig, TraceKind};
use psme_serve::{build_topology, serve, ServeConfig, ServeReport, SessionSpec};
use psme_tasks::{eight_puzzle, scrambled};

fn spec(seed: u64, moves: usize) -> SessionSpec {
    SessionSpec {
        name: format!("t{seed}-{moves}"),
        task: eight_puzzle(&scrambled(moves, seed)),
        learning: false,
    }
}

/// A batch that overloads a 2-slot table with a 1-deep admission queue:
/// sessions 2..5 are the oldest overflow and are shed at staging.
fn overloaded(trace: TraceConfig) -> ServeReport {
    let specs: Vec<SessionSpec> = (0..6).map(|seed| spec(seed + 300, 2)).collect();
    let topo = build_topology(&specs[0].task);
    serve(
        topo,
        specs,
        ServeConfig {
            workers: 2,
            scheduler: Scheduler::WorkStealing,
            table_capacity: 2,
            admission_depth: 1,
            trace,
            ..Default::default()
        },
    )
}

#[test]
fn seeded_overload_dumps_shed_flight_deterministically() {
    let run = || overloaded(TraceConfig::default());
    let a = run();
    assert_eq!(a.shed, 3, "depth 1 over a 2-slot table sheds the 3 oldest overflow");
    // Every shed fired the detector and produced a dump whose window
    // contains the shed event itself.
    let shed_sessions: Vec<u32> = a
        .flight
        .dumps
        .iter()
        .filter_map(|d| match d.trigger {
            DumpTrigger::Shed { session } => Some(session),
            _ => None,
        })
        .collect();
    assert_eq!(shed_sessions, vec![2, 3, 4], "oldest overflow, in order");
    assert!(a.flight.triggers >= 3);
    for d in &a.flight.dumps {
        if let DumpTrigger::Shed { session } = d.trigger {
            assert!(
                d.events.iter().any(|e| e.kind == TraceKind::Shed && e.session == session),
                "dump window holds its own shed event"
            );
        }
    }
    // Shed events come from the control ring at staging — before any
    // worker runs — so the dump sequence is a pure function of the batch:
    // a second run produces the same triggers and the same windows
    // (modulo wall-clock timestamps).
    // (Tail-latency dumps depend on wall-clock timings, so the signature
    // covers the shed dumps only.)
    let b = run();
    let sig = |r: &ServeReport| {
        r.flight
            .dumps
            .iter()
            .filter(|d| matches!(d.trigger, DumpTrigger::Shed { .. }))
            .map(|d| {
                (
                    d.trigger,
                    d.events.iter().map(|e| (e.kind, e.session)).collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(sig(&a), sig(&b));
}

#[test]
fn slice_events_tile_every_sessions_decisions() {
    let specs: Vec<SessionSpec> = (0..4).map(|seed| spec(seed + 400, 3)).collect();
    let topo = build_topology(&specs[0].task);
    let report = serve(
        topo,
        specs,
        ServeConfig { workers: 2, table_capacity: 4, ..Default::default() },
    );
    assert_eq!(report.shed, 0);
    assert!(report.trace.is_sorted());
    assert_eq!(report.trace.dropped, 0, "default ring cap covers this batch");
    for (idx, sr) in report.sessions.iter().enumerate() {
        // A session's slices never overlap (exclusive slot ownership), so
        // its SliceEnd events in sealed order chain lo → hi exactly over
        // 0..decisions.
        let slices: Vec<_> = report
            .trace
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::SliceEnd && e.session == idx as u32)
            .collect();
        assert!(!slices.is_empty(), "session {idx} ran at least one slice");
        assert_eq!(slices.len() as u64, sr.telemetry.slices, "one SliceEnd per dispatch");
        assert_eq!(slices[0].cycle_lo, 0, "first slice starts at decision 0");
        for pair in slices.windows(2) {
            assert_eq!(pair[1].cycle_lo, pair[0].cycle_hi, "session {idx}: contiguous slices");
        }
        assert_eq!(
            slices.last().expect("nonempty").cycle_hi,
            sr.stats.decisions,
            "session {idx}: slices cover every decision"
        );
        // Lifecycle bookends: one Enqueued, one Retired.
        let count = |k: TraceKind| {
            report
                .trace
                .events
                .iter()
                .filter(|e| e.kind == k && e.session == idx as u32)
                .count()
        };
        assert_eq!(count(TraceKind::Enqueued), 1);
        assert_eq!(count(TraceKind::Retired), 1);
        assert_eq!(count(TraceKind::Reenqueued), slices.len() - 1);
    }
}

#[test]
fn disabling_tracing_leaves_no_residue() {
    let report = overloaded(TraceConfig::disabled());
    assert_eq!(report.shed, 3, "shedding is admission policy, not tracing");
    assert!(report.trace.events.is_empty());
    assert_eq!(report.trace.dropped, 0);
    assert_eq!(report.flight.triggers, 0, "no events, nothing to detect");
    assert!(report.flight.dumps.is_empty());
    // The sessions themselves are untouched by the switch.
    assert!(report.sessions.iter().filter(|s| !s.was_shed()).all(|s| s.stop.is_some()));
}

#[test]
fn chrome_export_parses_and_covers_worker_tracks() {
    let report = overloaded(TraceConfig::default());
    let text = report.trace.chrome_json().to_string();
    let parsed = Json::parse(&text).expect("strict JSON");
    let evs = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    // Worker thread metadata for both workers plus the control track.
    let threads: Vec<u64> = evs
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(1))
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    assert!(threads.len() >= 3, "2 workers + control, got {threads:?}");
    // Complete events carry microsecond durations for real slices.
    assert!(
        evs.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("X")),
        "slice spans present"
    );
    // The full report artifact (which embeds trace summary counts) still
    // serializes to strict JSON too.
    assert!(Json::parse(&report.to_json().to_string()).is_ok());
}
