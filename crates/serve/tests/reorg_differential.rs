//! Adaptive-reorganization differential gates.
//!
//! A mid-run bilinear rebuild is a network-organization change only: it
//! must never change what the engine computes. Every test here pins that —
//! conflict-set deltas, full learning runs, and served sessions must be
//! **bit-for-bit** equal with and without a reorganization in the middle,
//! under all three schedulers, solo and inside a 64-session serve where the
//! rebuild lands in each session's private overlay. The adversarial
//! instances are additionally checked against the naive matcher oracle, so
//! "equal" can never mean "equally wrong".

use psme_core::{EngineConfig, MatchEngine, ParallelEngine, Scheduler};
use psme_ops::{intern, parse_program, parse_wme, ClassRegistry, Instantiation};
use psme_rete::testgen::{adversarial_chain, AdversarialConfig};
use psme_rete::{
    naive, plan_bilinear, NetworkOrg, ReorgConfig, ReteNetwork, ReteView, SerialEngine,
};
use psme_serve::{build_topology, serve, ServeConfig, SessionSpec};
use psme_soar::{declare_arch_classes, Agent, SoarTask, StopReason};
use psme_tasks::{eight_puzzle, scrambled};
use std::sync::Arc;

fn by_wmes(insts: &mut [Instantiation]) {
    insts.sort_by(|a, b| a.wmes.cmp(&b.wmes));
}

/// Engine-level gate on the worst-case workload itself: load an
/// adversarial cross-product instance round by round, rebuild the
/// production bilinearly in the middle of the load, and require every
/// per-round conflict-set delta to equal the never-reorganized engine's —
/// with the final conflict set of *both* engines checked against the naive
/// matcher.
#[test]
fn midrun_reorg_preserves_cs_deltas_and_matches_the_naive_oracle() {
    for groups in [2usize, 3] {
        let cfg = AdversarialConfig { groups, rounds: 10 };
        let inst = adversarial_chain(cfg);
        let plan = plan_bilinear(&inst.production, 1).expect("adversarial plan");
        assert!(plan.len() >= 3, "anchor prefix + one group per item/partner pair");

        let mut never = SerialEngine::new(ReteNetwork::new());
        never
            .add_production(Arc::new(inst.production.clone()), NetworkOrg::Linear)
            .expect("linear build");
        let mut reorged = SerialEngine::new(ReteNetwork::new());
        reorged
            .add_production(Arc::new(inst.production.clone()), NetworkOrg::Linear)
            .expect("linear build");

        for (r, batch) in inst.rounds.iter().enumerate() {
            let a = never.apply_changes(batch.clone(), vec![]);
            let b = reorged.apply_changes(batch.clone(), vec![]);
            assert_eq!(a.cs.added, b.cs.added, "{groups}g round {r}: added");
            assert_eq!(a.cs.removed, b.cs.removed, "{groups}g round {r}: removed");
            if r == 4 {
                let out = reorged
                    .reorganize_production(0, NetworkOrg::Bilinear(plan.clone()))
                    .expect("mid-load rebuild");
                assert!(out.retired > 0, "the old linear chain must retire");
            }
        }

        let mut oracle = naive::match_production(&inst.production, &never.state.store);
        let mut lin = never.current_instantiations();
        let mut bil = reorged.current_instantiations();
        by_wmes(&mut oracle);
        by_wmes(&mut lin);
        by_wmes(&mut bil);
        assert_eq!(lin, oracle, "{groups}g: linear engine vs naive oracle");
        assert_eq!(bil, oracle, "{groups}g: reorganized engine vs naive oracle");
        assert_eq!(oracle.len(), 1, "selection keeps the conflict set at one instantiation");
    }
}

/// A synthetic Soar task whose elaboration phase *generates* the
/// adversarial load: each wave the `pump*tick` production advances a
/// counter and adds one item + one unselected partner per group, feeding
/// the chain-dominant `pump*cross` production (items join only on the
/// shared anchor — a pure cross-product under linear organization) while
/// the `^sel yes` alpha constant keeps its conflict set at exactly one
/// instantiation. Deterministic, and heavy enough that an eagerly
/// configured detector flags `pump*cross` on the first decision.
fn pump_task(groups: usize, waves: i64) -> SoarTask {
    let mut classes = ClassRegistry::new();
    declare_arch_classes(&mut classes);
    classes.declare_str("anchor", &["id"]);
    classes.declare_str("item", &["grp", "anchor", "val"]);
    classes.declare_str("partner", &["grp", "anchor", "val", "sel"]);
    classes.declare_str("counter", &["val"]);
    classes.declare_str("fence", &["max"]);

    let mut makes = String::new();
    for g in 0..groups {
        makes.push_str(&format!(
            "(make item ^grp {g} ^anchor a0 ^val <n>) \
             (make partner ^grp {g} ^anchor a0 ^val <n> ^sel no) "
        ));
    }
    // Add-only (Soar elaboration is monotonic): each new counter value is
    // a fresh instantiation, so refraction advances the chain one wave at
    // a time until the fence stops it.
    let mut src = format!(
        "(p pump*tick (counter ^val <n>) (fence ^max {{ > <n> }})
           --> (bind <m> (compute <n> + 1)) (make counter ^val <m>) {makes})\n"
    );
    let mut ces = String::from("(anchor ^id <a>) ");
    for g in 0..groups {
        ces.push_str(&format!("(item ^grp {g} ^anchor <a> ^val <v{g}>) "));
    }
    for g in 0..groups {
        ces.push_str(&format!("(partner ^grp {g} ^anchor <a> ^val <v{g}> ^sel yes) "));
    }
    src.push_str(&format!("(p pump*cross {ces} --> (write cross))\n"));

    let productions: Vec<Arc<_>> = parse_program(&src, &mut classes)
        .expect("pump task parses")
        .into_iter()
        .map(Arc::new)
        .collect();

    let w = |s: &str, classes: &ClassRegistry| parse_wme(s, classes).unwrap();
    let mut init = vec![
        w("(anchor ^id a0)", &classes),
        w("(counter ^val 0)", &classes),
        w(&format!("(fence ^max {waves})"), &classes),
    ];
    // Exactly one selected item/partner pair per group, at a value the
    // pump never reproduces: the cross production's single instantiation.
    for g in 0..groups {
        init.push(w(&format!("(item ^grp {g} ^anchor a0 ^val 999)"), &classes));
        init.push(w(&format!("(partner ^grp {g} ^anchor a0 ^val 999 ^sel yes)"), &classes));
    }
    SoarTask {
        name: "pump".into(),
        classes,
        productions,
        init_wmes: init,
        identifiers: vec![intern("a0")],
    }
}

const BUDGET: u64 = 60;

fn run_to_stop<E: MatchEngine>(agent: &mut Agent<E>) -> StopReason {
    loop {
        if let Some(r) = agent.step(BUDGET) {
            return r;
        }
    }
}

struct RunOutcome {
    stop: StopReason,
    stats: psme_soar::AgentStats,
    chunks: Vec<String>,
    output: Vec<String>,
    wm: Vec<String>,
    cs: Vec<Instantiation>,
}

/// Run a task on the parallel engine; when `reorg_at` is set, step that
/// many decisions, force-rebuild the named production bilinearly, then run
/// to the stop — the forced rebuild bypasses the detector so invisibility
/// is pinned independently of detection heuristics.
fn parallel_run(
    task: &SoarTask,
    sched: Scheduler,
    reorg_at: Option<(u64, &str)>,
) -> RunOutcome {
    let config = EngineConfig { workers: 2, scheduler: sched, ..Default::default() };
    let engine = ParallelEngine::new(ReteNetwork::new(), config);
    let mut agent = task.agent(engine);
    agent.learning = true;
    let mut stop = None;
    if let Some((after, name)) = reorg_at {
        for _ in 0..after {
            if let Some(r) = agent.step(BUDGET) {
                stop = Some(r);
                break;
            }
        }
        assert!(stop.is_none(), "task must still be running at the rebuild point");
        let target = intern(name);
        let (idx, org) = agent.engine.with_net(|net| {
            let idx = (0..net.num_prods() as u32)
                .find(|&i| net.prod_info(i).production.name == target)
                .expect("target production compiled");
            let plan = plan_bilinear(&net.prod_info(idx).production, 1).expect("bilinear plan");
            (idx, NetworkOrg::Bilinear(plan))
        });
        let out = agent.engine.reorganize_production(idx, org).expect("forced rebuild");
        assert!(out.retired > 0, "forced rebuild must retire the old chain");
    }
    let stop = stop.unwrap_or_else(|| run_to_stop(&mut agent));
    let mut wm: Vec<String> =
        agent.engine.with_store(|s| s.iter_alive().map(|(_, w)| format!("{w:?}")).collect());
    wm.sort();
    let mut cs: Vec<Instantiation> =
        agent.engine.with_net(|net| agent.engine.with_store(|st| naive::match_all(
            (0..net.num_prods() as u32).map(|i| &*net.prod_info(i).production).collect::<Vec<_>>(),
            st,
        )))
        .into_iter()
        .collect();
    by_wmes(&mut cs);
    cs.sort_by(|a, b| a.prod.cmp(&b.prod).then(a.wmes.cmp(&b.wmes)));
    RunOutcome {
        stop,
        stats: agent.stats,
        chunks: agent.learned_chunks().iter().map(|c| format!("{c}")).collect(),
        output: agent.output.clone(),
        wm,
        cs,
    }
}

/// The full-run gate: a forced mid-run rebuild inside a *learning* run —
/// chunks being added before and after the swap — changes nothing
/// observable, under every scheduler, on both the paper task and the
/// adversarial pump. Final working memory and the naive-matcher conflict
/// set over the whole production set (chunks included) are compared on top
/// of the agent counters.
#[test]
fn forced_midrun_reorg_is_invisible_in_learning_runs_under_every_scheduler() {
    let ep = eight_puzzle(&scrambled(3, 1));
    let pump = pump_task(3, 8);
    for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
        for (task, target) in [(&ep, "ep*monitor-tile-1"), (&pump, "pump*cross")] {
            let base = parallel_run(task, sched, None);
            let reorged = parallel_run(task, sched, Some((3, target)));
            let ctx = format!("{sched:?}/{}", task.name);
            assert_eq!(reorged.stop, base.stop, "{ctx}: stop reason");
            assert_eq!(reorged.stats, base.stats, "{ctx}: agent counters");
            assert_eq!(reorged.chunks, base.chunks, "{ctx}: learned chunks");
            assert_eq!(reorged.output, base.output, "{ctx}: (write …) output");
            assert_eq!(reorged.wm, base.wm, "{ctx}: final working memory");
            assert_eq!(reorged.cs, base.cs, "{ctx}: final conflict set (naive oracle)");
            assert!(base.stats.chunks_built > 0 || task.name == "pump", "{ctx}: learning ran");
        }
    }
}

/// The serving gate: 64 sessions over one shared topology, each with its
/// private overlay, detector armed eagerly enough that every session
/// actually reorganizes mid-run — and every per-session report is
/// bit-for-bit the unarmed serve's, under all three schedulers. The
/// rebuild must land in the session overlay (the shared base is frozen),
/// which is exactly what the per-session `stats.reorganizations` counter
/// witnesses.
#[test]
fn served_sessions_with_adaptive_reorg_match_unarmed_serve_bit_for_bit() {
    let task = pump_task(3, 8);
    let specs: Vec<SessionSpec> = (0..64)
        .map(|i| SessionSpec { name: format!("pump-{i}"), task: task.clone(), learning: true })
        .collect();
    let topo = build_topology(&task);
    let eager = ReorgConfig {
        min_window_cost: 1,
        dominance: 0.0,
        cooldown: 0,
        ..Default::default()
    };
    for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
        let cfg = |reorg: Option<ReorgConfig>| ServeConfig {
            workers: 2,
            scheduler: sched,
            table_capacity: 64,
            max_decisions: 16,
            reorg,
            ..Default::default()
        };
        let off = serve(topo.clone(), specs.clone(), cfg(None));
        let on = serve(topo.clone(), specs.clone(), cfg(Some(eager.clone())));
        assert_eq!(off.shed, 0);
        assert_eq!(on.shed, 0);
        let total: u64 = on.sessions.iter().map(|s| s.stats.reorganizations).sum();
        assert!(total >= 64, "every armed session reorganizes mid-run (got {total})");
        for (x, y) in on.sessions.iter().zip(&off.sessions) {
            let ctx = format!("{sched:?}/{}", x.name);
            assert_eq!(x.name, y.name, "{ctx}: report order");
            assert_eq!(x.stop, y.stop, "{ctx}: stop reason");
            let (a, b) = (&x.stats, &y.stats);
            assert_eq!(a.decisions, b.decisions, "{ctx}: decisions");
            assert_eq!(a.elaboration_cycles, b.elaboration_cycles, "{ctx}: elaboration cycles");
            assert_eq!(a.impasses, b.impasses, "{ctx}: impasses");
            assert_eq!(a.chunks_built, b.chunks_built, "{ctx}: chunks built");
            assert_eq!(a.firings, b.firings, "{ctx}: firings");
            assert_eq!(a.wme_adds, b.wme_adds, "{ctx}: wme adds");
            assert_eq!(a.wme_removes, b.wme_removes, "{ctx}: wme removes");
            assert_eq!(x.chunk_names, y.chunk_names, "{ctx}: chunk names");
            assert_eq!(x.output, y.output, "{ctx}: (write …) output");
        }
    }
}
