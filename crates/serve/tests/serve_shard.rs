//! Cross-shard differential gates.
//!
//! Sharding the serving loop is a dispatch-topology change only: which
//! pool's workers step a session must never change what the session
//! computes. Every test here pins that — a sharded run must produce
//! **bit-for-bit** the per-session results of the single-shard loop and of
//! a solo agent on a monolithic network, including sessions that learn
//! chunks mid-run and sessions that hibernate and resume through a shard's
//! tier store, under all three schedulers, with and without cross-shard
//! stealing.

use proptest::prelude::*;
use psme_core::{QueueStats, Scheduler, TaskQueues};
use psme_obs::TraceKind;
use psme_serve::{
    build_topology, serve, ServeConfig, SessionReport, SessionSpec, ShardConfig, ShardRouter,
    TierConfig,
};
use psme_tasks::{eight_puzzle, run_serial, scrambled, RunMode, RunReport};

fn solo(spec: &SessionSpec) -> RunReport {
    let mode = if spec.learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
    run_serial(&spec.task, mode, false).0
}

fn spec(seed: u64, moves: usize, learning: bool) -> SessionSpec {
    SessionSpec {
        name: format!("s{seed}-{moves}-{}", if learning { "learn" } else { "fixed" }),
        task: eight_puzzle(&scrambled(moves, seed)),
        learning,
    }
}

fn assert_session_matches_solo(sr: &SessionReport, solo: &RunReport, ctx: &str) {
    assert_eq!(sr.stop, Some(solo.stop), "{ctx}: stop reason");
    let (a, b) = (&sr.stats, &solo.stats);
    assert_eq!(a.decisions, b.decisions, "{ctx}: decisions");
    assert_eq!(a.elaboration_cycles, b.elaboration_cycles, "{ctx}: elaboration cycles");
    assert_eq!(a.impasses, b.impasses, "{ctx}: impasses");
    assert_eq!(a.chunks_built, b.chunks_built, "{ctx}: chunks built");
    assert_eq!(a.firings, b.firings, "{ctx}: firings");
    assert_eq!(a.wme_adds, b.wme_adds, "{ctx}: wme adds");
    assert_eq!(a.wme_removes, b.wme_removes, "{ctx}: wme removes");
    assert_eq!(a.update_tasks, b.update_tasks, "{ctx}: update tasks");
    let solo_chunks: Vec<String> =
        solo.chunks.iter().map(|c| psme_ops::sym_name(c.name).to_string()).collect();
    assert_eq!(sr.chunk_names, solo_chunks, "{ctx}: chunk names");
    assert_eq!(sr.output, solo.output, "{ctx}: (write …) output");
}

/// The tentpole differential: the same batch through 1 shard and through 4
/// shards, under every scheduler, with mid-run chunk learning in the mix —
/// every session bit-for-bit equal to its solo run both times, and the
/// shard partition covering the batch exactly.
#[test]
fn sharded_equals_single_shard_equals_solo_under_every_scheduler() {
    let specs: Vec<SessionSpec> = (0..24).map(|seed| spec(seed, 3, seed % 4 == 0)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    assert!(solos.iter().any(|r| r.stats.chunks_built > 0), "must include mid-run learning");
    let topo = build_topology(&specs[0].task);
    for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
        for shards in [1usize, 4] {
            let report = serve(
                topo.clone(),
                specs.clone(),
                ServeConfig {
                    workers: 2,
                    scheduler: sched,
                    table_capacity: 16,
                    admission_depth: 64,
                    shard: ShardConfig { shards, ..Default::default() },
                    ..Default::default()
                },
            );
            assert_eq!(report.shed, 0);
            assert_eq!(report.shards.len(), shards, "one report entry per shard");
            let routed: usize = report.shards.iter().map(|s| s.sessions).sum();
            assert_eq!(routed, specs.len(), "the shard partition covers the batch");
            let done: usize = report.shards.iter().map(|s| s.completed).sum();
            assert_eq!(done, specs.len());
            for (sr, (sp, solo)) in report.sessions.iter().zip(specs.iter().zip(&solos)) {
                assert_eq!(sr.name, sp.name, "report order follows spec order");
                assert_session_matches_solo(sr, solo, &format!("{sched:?}/{shards}sh/{}", sp.name));
            }
        }
    }
}

/// Hibernate/resume through per-shard tier stores: a sharded run under
/// table pressure hibernates sessions out of each shard's slice and
/// resumes them, and every session still matches its solo run.
#[test]
fn sharded_tiered_hibernate_resume_preserves_the_differential() {
    let specs: Vec<SessionSpec> = (0..16).map(|seed| spec(seed + 50, 3, seed % 4 == 0)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    let topo = build_topology(&specs[0].task);
    let report = serve(
        topo,
        specs.clone(),
        ServeConfig {
            workers: 2,
            // MultiQueue rotates FIFO through more sessions than seats, so
            // hibernation is guaranteed (work stealing's LIFO stickiness
            // can dodge table pressure — see serve_hibernate.rs).
            scheduler: Scheduler::MultiQueue,
            // 4 table seats over 2 shards: 2 hot per shard, ~8 sessions per
            // shard fighting for them — hibernation is forced.
            table_capacity: 4,
            slice_decisions: 2,
            tier: Some(TierConfig::default()),
            shard: ShardConfig { shards: 2, ..Default::default() },
            ..Default::default()
        },
    );
    let tier = report.tier.as_ref().expect("tiered run reports tier counters");
    assert!(tier.hibernated > 0, "pressure must hibernate");
    assert!(tier.resumed > 0, "hibernated sessions must resume");
    for shard in &report.shards {
        let st = shard.tier.as_ref().expect("per-shard tier report");
        // Checked-out (Running) sessions sit outside the eviction reach, so
        // the peak is bounded by the shard's table slice plus every worker
        // that can be stepping one of its sessions (own pool + thieves).
        assert!(
            st.peak_hot <= 2 + 4,
            "shard {} peak_hot {} exceeds slice + workers",
            shard.shard,
            st.peak_hot
        );
    }
    for (sr, solo) in report.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &sr.name.clone());
    }
}

/// Cross-shard stealing: route the whole batch to shard 0 of 2 so shard
/// 1's workers can only contribute by stealing. With stealing on they do
/// (counted and traced); with it off they never touch a session. Results
/// match solo either way.
#[test]
fn cross_shard_stealing_is_counted_traced_and_result_invariant() {
    let specs: Vec<SessionSpec> = (0..8).map(|seed| spec(seed + 90, 3, seed % 4 == 0)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    let topo = build_topology(&specs[0].task);
    let run = |steal: bool| {
        serve(
            topo.clone(),
            specs.clone(),
            ServeConfig {
                workers: 2,
                scheduler: Scheduler::WorkStealing,
                table_capacity: 8,
                shard: ShardConfig {
                    shards: 2,
                    router: ShardRouter::Explicit(vec![0; 8]),
                    steal,
                },
                ..Default::default()
            },
        )
    };
    let stealing = run(true);
    assert!(
        stealing.cross_shard_steals > 0,
        "an all-on-one-shard batch must trigger cross-shard steals"
    );
    assert_eq!(
        stealing.cross_shard_steals,
        stealing.shards[1].cross_shard_steals,
        "only the idle shard's workers steal"
    );
    let marks = stealing
        .trace
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::CrossShardSteal)
        .count() as u64;
    assert_eq!(marks, stealing.cross_shard_steals, "every steal leaves a trace marker");
    assert!(
        stealing.trace.chrome_json().to_string().contains("shard-1"),
        "sharded export groups tracks per shard"
    );
    for (sr, solo) in stealing.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &format!("steal/{}", sr.name));
    }
    let pinned = run(false);
    assert_eq!(pinned.cross_shard_steals, 0);
    assert_eq!(pinned.shards[1].queue_stats.pops, 0, "no stealing, no work on shard 1");
    for (sr, solo) in pinned.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &format!("pinned/{}", sr.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Router determinism: the hash route of a name depends only on the
    /// name and the shard count — not on the spec's position — is stable
    /// across calls, and always lands inside the shard range.
    #[test]
    fn hash_router_is_deterministic_and_in_range(
        name in "[a-z0-9-]{1,24}",
        shards in 1usize..9,
        idx_a in 0usize..1000,
        idx_b in 0usize..1000,
    ) {
        let r = ShardRouter::Hash;
        let a = r.route(idx_a, &name, shards);
        let b = r.route(idx_b, &name, shards);
        prop_assert_eq!(a, b, "position-independent");
        prop_assert_eq!(a, r.route(idx_a, &name, shards), "stable across calls");
        prop_assert!((a as usize) < shards, "in range");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Steal-exactly-once across shards: tasks seeded into several shard
    /// queue instances, drained concurrently by one owner thread per shard
    /// (own pops first, then foreign steals) are each executed exactly
    /// once, under every scheduler.
    #[test]
    fn cross_shard_drain_executes_every_task_exactly_once(
        sched_ix in 0usize..3,
        shards in 2usize..5,
        per_shard in 0usize..40,
    ) {
        let scheduler = [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing]
            [sched_ix];
        let queues: Vec<TaskQueues<u32>> =
            (0..shards).map(|_| TaskQueues::new(scheduler, 1)).collect();
        let mut seed_stats = QueueStats::default();
        for (s, q) in queues.iter().enumerate() {
            for k in 0..per_shard {
                q.push_seed(0, (s * per_shard + k) as u32, &mut seed_stats);
            }
        }
        let seen = std::sync::Mutex::new(Vec::<u32>::new());
        std::thread::scope(|scope| {
            for s in 0..shards {
                let queues = &queues;
                let seen = &seen;
                scope.spawn(move || {
                    let mut qs = QueueStats::default();
                    let mut idle = 0usize;
                    let mut got = Vec::new();
                    // Own queue first, then steal from the other shards;
                    // give up after a quiet sweep of everything.
                    while idle < 3 {
                        if let Some(t) = queues[s].pop(0, &mut qs) {
                            got.push(t);
                            idle = 0;
                            continue;
                        }
                        let mut stole = false;
                        for k in 1..shards {
                            if let Some(t) = queues[(s + k) % shards].steal_foreign(&mut qs) {
                                got.push(t);
                                stole = true;
                                break;
                            }
                        }
                        if stole { idle = 0 } else { idle += 1 }
                    }
                    seen.lock().unwrap().extend(got);
                });
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let want: Vec<u32> = (0..(shards * per_shard) as u32).collect();
        prop_assert_eq!(seen, want, "each task exactly once, none lost, none duplicated");
    }
}

/// Shard-count autotuning consumes *per-shard* bus occupancies: split keys
/// on the mean (collective saturation), but merge needs **every** shard
/// mostly idle — one hot shard vetoes a merge that would fold its load
/// onto another pool's bus. Pins the decision table.
#[test]
fn shard_recommendation_pins() {
    use psme_serve::recommend_shards_from_occupancy as rec;
    // Collectively saturated: double.
    assert_eq!(rec(2, &[0.9, 0.9]), 4);
    // Everyone idle: halve.
    assert_eq!(rec(2, &[0.1, 0.1]), 1);
    // Mean is 0.5 but one shard is hot: the hot shard vetoes the merge
    // and the mean is below the split line — stay.
    assert_eq!(rec(2, &[0.1, 0.9]), 2);
    // All near-idle except one just over the merge line: stay (a
    // mean-based merge would have folded 0.28 onto a halved bus).
    assert_eq!(rec(4, &[0.2, 0.2, 0.2, 0.28]), 4);
    // Degenerate inputs: no samples or a single shard never change.
    assert_eq!(rec(3, &[]), 3);
    assert_eq!(rec(1, &[0.0]), 1);
}
