//! Session-isolation gates for the serving layer.
//!
//! N sessions multiplexed over one shared topology must each produce
//! **bit-for-bit** the run a solo agent produces on the same task with its
//! own monolithic network — same stop reason, same counters, same chunk
//! names, same `(write …)` output — including sessions that learn chunks
//! mid-run into their private overlays. Any cross-session leakage (shared
//! token memories, overlay splices visible to a neighbour, a chunk
//! compiled into the shared base) breaks at least one of these fields.

use proptest::prelude::*;
use psme_core::Scheduler;
use psme_serve::{build_topology, serve, ServeConfig, SessionReport, SessionSpec};
use psme_soar::StopReason;
use psme_tasks::{eight_puzzle, run_serial, scrambled, RunMode, RunReport};

/// Solo reference run for a spec: the plain harness over a monolithic
/// network, learning mapped to the paper's run modes.
fn solo(spec: &SessionSpec) -> RunReport {
    let mode = if spec.learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
    run_serial(&spec.task, mode, false).0
}

fn spec(seed: u64, moves: usize, learning: bool) -> SessionSpec {
    SessionSpec {
        name: format!("s{seed}-{moves}-{}", if learning { "learn" } else { "fixed" }),
        task: eight_puzzle(&scrambled(moves, seed)),
        learning,
    }
}

fn assert_session_matches_solo(sr: &SessionReport, solo: &RunReport, ctx: &str) {
    assert_eq!(sr.stop, Some(solo.stop), "{ctx}: stop reason");
    let (a, b) = (&sr.stats, &solo.stats);
    assert_eq!(a.decisions, b.decisions, "{ctx}: decisions");
    assert_eq!(a.elaboration_cycles, b.elaboration_cycles, "{ctx}: elaboration cycles");
    assert_eq!(a.impasses, b.impasses, "{ctx}: impasses");
    assert_eq!(a.chunks_built, b.chunks_built, "{ctx}: chunks built");
    assert_eq!(a.firings, b.firings, "{ctx}: firings");
    assert_eq!(a.wme_adds, b.wme_adds, "{ctx}: wme adds");
    assert_eq!(a.wme_removes, b.wme_removes, "{ctx}: wme removes");
    assert_eq!(a.update_tasks, b.update_tasks, "{ctx}: update tasks");
    let solo_chunks: Vec<String> =
        solo.chunks.iter().map(|c| psme_ops::sym_name(c.name).to_string()).collect();
    assert_eq!(sr.chunk_names, solo_chunks, "{ctx}: chunk names");
    assert_eq!(sr.output, solo.output, "{ctx}: (write …) output");
    // A learning session must have grown its own overlay, and only then.
    if sr.stats.chunks_built > 0 {
        assert!(sr.telemetry.overlay_nodes > 0, "{ctx}: chunks built but overlay empty");
        assert_eq!(
            sr.telemetry.overlay_prods as u64, sr.stats.chunks_built,
            "{ctx}: one overlay production per chunk"
        );
    } else {
        assert_eq!(sr.telemetry.overlay_nodes, 0, "{ctx}: no chunks, no overlay");
    }
}

/// The acceptance gate: 64 concurrent sessions (a quarter of them
/// learning) over one shared topology, dispatched work-stealing over 4
/// workers through a 16-slot table, produce exactly the 64 solo traces.
#[test]
fn sixty_four_sessions_match_sixty_four_solo_runs() {
    let specs: Vec<SessionSpec> =
        (0..64).map(|seed| spec(seed, 3, seed % 4 == 0)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    assert!(
        solos.iter().any(|r| r.stats.chunks_built > 0),
        "the gate must include mid-run learning"
    );
    let topo = build_topology(&specs[0].task);
    let base_nodes = topo.num_nodes();
    let report = serve(
        topo,
        specs.clone(),
        ServeConfig {
            workers: 4,
            scheduler: Scheduler::WorkStealing,
            table_capacity: 16,
            admission_depth: 64,
            ..Default::default()
        },
    );
    assert_eq!(report.shed, 0, "capacity covers the batch — nothing shed");
    assert_eq!(report.sessions.len(), 64);
    for (sr, (sp, solo)) in report.sessions.iter().zip(specs.iter().zip(&solos)) {
        assert_eq!(sr.name, sp.name, "report order follows spec order");
        assert_session_matches_solo(sr, solo, &sp.name);
    }
    // The shared base was never touched: a fresh topology compiled from
    // the same task is still node-for-node the same size.
    assert_eq!(build_topology(&specs[0].task).num_nodes(), base_nodes);
}

/// Same isolation under every dispatch scheduler and a worker sweep.
#[test]
fn all_schedulers_preserve_session_isolation() {
    let specs: Vec<SessionSpec> = (0..6).map(|seed| spec(seed + 100, 3, seed % 2 == 0)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    let topo = build_topology(&specs[0].task);
    for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
        for workers in [1, 3] {
            let report = serve(
                topo.clone(),
                specs.clone(),
                ServeConfig {
                    workers,
                    scheduler: sched,
                    table_capacity: 4,
                    ..Default::default()
                },
            );
            for (sr, solo) in report.sessions.iter().zip(&solos) {
                assert_session_matches_solo(sr, solo, &format!("{sched:?}/{workers}w/{}", sr.name));
            }
        }
    }
}

/// Regression (satellite): a session executing `(halt)` terminates that
/// session only — the serving loop keeps draining the others, and they
/// still match their solos exactly.
#[test]
fn halt_in_one_session_does_not_stop_the_serving_loop() {
    // A near-solved board halts almost immediately; the rest are longer
    // runs admitted *behind* it through a 2-slot table, so they are still
    // in flight (or not even admitted) when the halt lands.
    let mut specs = vec![spec(7, 1, false)];
    specs.extend((0..4).map(|seed| spec(seed + 200, 4, seed % 2 == 0)));
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    assert_eq!(solos[0].stop, StopReason::Halted, "the bait session must halt");
    let topo = build_topology(&specs[0].task);
    let report = serve(
        topo,
        specs.clone(),
        ServeConfig {
            workers: 2,
            scheduler: Scheduler::WorkStealing,
            table_capacity: 2,
            ..Default::default()
        },
    );
    assert_eq!(report.sessions[0].stop, Some(StopReason::Halted));
    assert_eq!(report.shed, 0);
    for (sr, solo) in report.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &sr.name.clone());
    }
}

/// Admission backpressure: a table of 2 with a waiting queue of 1 sheds
/// the *oldest* overflow entries deterministically, and the survivors are
/// untouched by the shedding.
#[test]
fn backpressure_sheds_oldest_and_serves_the_rest() {
    let specs: Vec<SessionSpec> = (0..6).map(|seed| spec(seed + 300, 2, false)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    let topo = build_topology(&specs[0].task);
    let report = serve(
        topo,
        specs.clone(),
        ServeConfig {
            workers: 1,
            scheduler: Scheduler::MultiQueue,
            table_capacity: 2,
            admission_depth: 1,
            ..Default::default()
        },
    );
    // Overflow = sessions 2..6 (4 of them); depth 1 keeps only the newest.
    assert_eq!(report.shed, 3);
    for (i, solo) in solos.iter().enumerate() {
        let sr = &report.sessions[i];
        if (2..5).contains(&i) {
            assert!(sr.was_shed(), "session {i} is oldest overflow — shed");
        } else {
            assert!(!sr.was_shed(), "session {i} survives");
            assert_session_matches_solo(sr, solo, &sr.name.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// Random small batches: any mix of seeds, learning flags, scheduler
    /// and worker count preserves per-session solo equivalence.
    #[test]
    fn random_batches_preserve_isolation(
        n in 2usize..5,
        base_seed in 0u64..1000,
        learn_mask in 0u32..16,
        sched_ix in 0usize..3,
        workers in 1usize..4,
    ) {
        let scheduler = [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing]
            [sched_ix];
        let specs: Vec<SessionSpec> = (0..n)
            .map(|i| spec(base_seed * 64 + i as u64, 3, learn_mask & (1 << i) != 0))
            .collect();
        let solos: Vec<RunReport> = specs.iter().map(solo).collect();
        let topo = build_topology(&specs[0].task);
        let report = serve(
            topo,
            specs.clone(),
            ServeConfig { workers, scheduler, table_capacity: 3, ..Default::default() },
        );
        for (sr, solo) in report.sessions.iter().zip(&solos) {
            assert_session_matches_solo(sr, solo, &format!("{scheduler:?}/{workers}w/{}", sr.name));
        }
    }
}
