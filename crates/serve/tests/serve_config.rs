//! Config validation, dispatch-bus occupancy reporting, and the
//! streaming (`OpenServe`) vs batch (`serve`) differential.

use psme_core::Scheduler;
use psme_serve::{
    build_topology, serve, OpenServe, ServeConfig, ServeConfigError, ServeEvent, SessionSpec,
    ShardConfig, SubmitError,
};
use psme_tasks::{eight_puzzle, scrambled};

fn specs(n: usize) -> Vec<SessionSpec> {
    (0..n)
        .map(|i| SessionSpec {
            name: format!("s-{i}"),
            task: eight_puzzle(&scrambled(3, i as u64 * 31 + 1)),
            learning: i.is_multiple_of(3),
        })
        .collect()
}

#[test]
fn config_validation_rejects_degenerate_geometry() {
    let ok = ServeConfig::default();
    assert!(ok.validate().is_ok());

    let zero_shards =
        ServeConfig { shard: ShardConfig { shards: 0, ..Default::default() }, ..Default::default() };
    assert!(matches!(zero_shards.validate(), Err(ServeConfigError::ZeroShards)));

    let zero_workers = ServeConfig { workers: 0, ..Default::default() };
    assert!(matches!(zero_workers.validate(), Err(ServeConfigError::ZeroWorkers)));

    let thin_table = ServeConfig {
        table_capacity: 2,
        shard: ShardConfig { shards: 4, ..Default::default() },
        ..Default::default()
    };
    match thin_table.validate() {
        Err(ServeConfigError::TableSmallerThanShards { table_capacity, shards }) => {
            assert_eq!((table_capacity, shards), (2, 4));
        }
        other => panic!("expected TableSmallerThanShards, got {other:?}"),
    }
    // The error message is user-facing configuration feedback.
    let msg = thin_table.validate().unwrap_err().to_string();
    assert!(msg.contains('2') && msg.contains('4'), "message names both numbers: {msg}");
}

#[test]
#[should_panic(expected = "shard")]
fn serve_panics_on_invalid_config() {
    let s = specs(1);
    let topo = build_topology(&s[0].task);
    serve(
        topo,
        s,
        ServeConfig { shard: ShardConfig { shards: 0, ..Default::default() }, ..Default::default() },
    );
}

#[test]
fn bus_occupancy_is_reported_and_bounded() {
    let s = specs(8);
    let topo = build_topology(&s[0].task);
    let report = serve(
        topo,
        s,
        ServeConfig {
            workers: 2,
            table_capacity: 8,
            shard: ShardConfig { shards: 2, ..Default::default() },
            ..Default::default()
        },
    );
    assert_eq!(report.shards.len(), 2);
    for sh in &report.shards {
        assert!(
            (0.0..=1.0).contains(&sh.bus_occupancy),
            "occupancy {} out of range",
            sh.bus_occupancy
        );
    }
    let mean = report.mean_bus_occupancy();
    assert!((0.0..=1.0).contains(&mean));
    // The recommendation follows the hysteresis thresholds exactly: split
    // on a saturated mean, merge only when every shard is idle (one busy
    // shard vetoes — halving would fold it onto a cold bus and saturate it).
    let expected = if mean > 0.75 {
        4
    } else if report.shards.iter().all(|sh| sh.bus_occupancy < 0.25) {
        1
    } else {
        2
    };
    assert_eq!(report.recommended_shards(), expected, "mean occupancy {mean}");
    let json = report.to_json();
    assert!(json.get("mean_bus_occupancy").is_some() && json.get("recommended_shards").is_some());
    assert!(json
        .get("shards")
        .and_then(|s| s.at(0))
        .and_then(|s| s.get("bus_occupancy"))
        .is_some());
}

/// Streaming admission is the batch loop behind a dynamic front door:
/// the same specs submitted through `OpenServe` must retire with results
/// bit-for-bit equal to batch `serve` (which in turn equals solo runs).
#[test]
fn open_serve_matches_batch_serve() {
    let n = 8;
    let cfg = ServeConfig {
        workers: 2,
        scheduler: Scheduler::WorkStealing,
        table_capacity: 4,
        admission_depth: 8,
        ..Default::default()
    };
    let topo = build_topology(&specs(1)[0].task);
    let batch = serve(topo.clone(), specs(n), cfg.clone());
    assert_eq!(batch.shed, 0);

    let (open, events) = OpenServe::start(topo, cfg, 64);
    for spec in specs(n) {
        open.submit(spec, None).expect("capacity for every submit");
    }
    assert_eq!(open.submitted(), n);
    let report = open.finish();
    assert_eq!(report.sessions.len(), n);
    assert_eq!(report.shed, 0);
    for (i, (a, b)) in batch.sessions.iter().zip(&report.sessions).enumerate() {
        assert_eq!(a.name, b.name, "session {i}");
        assert_eq!(a.stop, b.stop, "session {i}");
        assert_eq!(a.stats, b.stats, "session {i}");
        assert_eq!(a.chunk_names, b.chunk_names, "session {i}");
        assert_eq!(a.output, b.output, "session {i}");
    }
    // Every session produced exactly one Retired event.
    let mut retired = 0;
    while let Ok(ev) = events.try_recv() {
        if matches!(ev, ServeEvent::Retired { .. }) {
            retired += 1;
        }
    }
    assert_eq!(retired, n);
}

#[test]
fn open_serve_refuses_duplicates_and_submits_after_finish() {
    let cfg = ServeConfig { workers: 1, table_capacity: 4, ..Default::default() };
    let topo = build_topology(&specs(1)[0].task);
    let (open, _events) = OpenServe::start(topo.clone(), cfg.clone(), 4);
    open.submit(specs(1).remove(0), None).expect("first submit");
    match open.submit(specs(1).remove(0), None) {
        Err(SubmitError::DuplicateName(name)) => assert_eq!(name, "s-0"),
        other => panic!("expected DuplicateName, got {other:?}"),
    }
    let report = open.finish();
    assert_eq!(report.sessions.len(), 1);

    // Exhaustion: the id space is `max_sessions`.
    let (open, _events) = OpenServe::start(topo, cfg, 1);
    open.submit(specs(1).remove(0), None).expect("fits");
    let mut extra = specs(2);
    match open.submit(extra.remove(1), None) {
        Err(SubmitError::Exhausted) => {}
        other => panic!("expected Exhausted, got {other:?}"),
    }
    open.finish();
}
