//! Hibernation differential gates for the tiered session store.
//!
//! Serving with tiering on — sessions hibernated out of the table under
//! memory pressure and resumed from snapshots on later dispatches — must
//! be **observationally identical** to serving without tiering and to solo
//! runs: same stop reason, same counters, same chunk names, same
//! `(write …)` output, for every scheduler and worker count, including
//! sessions swapped out *across a mid-run chunk learn*. Tiering may change
//! when work happens, never what it computes.

use psme_core::Scheduler;
use psme_obs::TraceKind;
use psme_serve::{build_topology, serve, ServeConfig, SessionReport, SessionSpec, TierConfig};
use psme_tasks::{eight_puzzle, run_serial, scrambled, RunMode, RunReport};
use std::path::PathBuf;

/// Solo reference run for a spec (same idiom as `serve_isolation`).
fn solo(spec: &SessionSpec) -> RunReport {
    let mode = if spec.learning { RunMode::DuringChunking } else { RunMode::WithoutChunking };
    run_serial(&spec.task, mode, false).0
}

fn spec(seed: u64, moves: usize, learning: bool) -> SessionSpec {
    SessionSpec {
        name: format!("h{seed}-{moves}-{}", if learning { "learn" } else { "fixed" }),
        task: eight_puzzle(&scrambled(moves, seed)),
        learning,
    }
}

fn assert_session_matches_solo(sr: &SessionReport, solo: &RunReport, ctx: &str) {
    assert_eq!(sr.stop, Some(solo.stop), "{ctx}: stop reason");
    let (a, b) = (&sr.stats, &solo.stats);
    assert_eq!(a.decisions, b.decisions, "{ctx}: decisions");
    assert_eq!(a.elaboration_cycles, b.elaboration_cycles, "{ctx}: elaboration cycles");
    assert_eq!(a.impasses, b.impasses, "{ctx}: impasses");
    assert_eq!(a.chunks_built, b.chunks_built, "{ctx}: chunks built");
    assert_eq!(a.firings, b.firings, "{ctx}: firings");
    assert_eq!(a.wme_adds, b.wme_adds, "{ctx}: wme adds");
    assert_eq!(a.wme_removes, b.wme_removes, "{ctx}: wme removes");
    assert_eq!(a.update_tasks, b.update_tasks, "{ctx}: update tasks");
    let solo_chunks: Vec<String> =
        solo.chunks.iter().map(|c| psme_ops::sym_name(c.name).to_string()).collect();
    assert_eq!(sr.chunk_names, solo_chunks, "{ctx}: chunk names");
    assert_eq!(sr.output, solo.output, "{ctx}: (write …) output");
}

/// A batch sized to force swapping: 6 sessions through a 2-seat table,
/// sliced finely so every session is dispatched many times (and therefore
/// hibernated and resumed many times), half of them learning chunks
/// mid-run.
fn pressure_specs() -> Vec<SessionSpec> {
    (0..6).map(|seed| spec(seed + 400, 3, seed % 2 == 0)).collect()
}

fn pressure_config(workers: usize, scheduler: Scheduler) -> ServeConfig {
    ServeConfig {
        workers,
        scheduler,
        table_capacity: 2,
        slice_decisions: 2,
        tier: Some(TierConfig::default()),
        ..Default::default()
    }
}

/// Session ids of every `Hibernated` event, in trace-time order.
fn hibernated_seq(report: &psme_serve::ServeReport) -> Vec<u32> {
    report
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Hibernated))
        .map(|e| e.session)
        .collect()
}

/// The acceptance gate: hibernated/resumed sessions finish bit-for-bit
/// equal to continuously-live serving and to solo runs, under all three
/// schedulers and a worker sweep — including sessions that learned a chunk
/// between a hibernate and a resume.
#[test]
fn hibernated_sessions_match_live_and_solo_under_every_scheduler() {
    let specs = pressure_specs();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    assert!(
        solos.iter().any(|r| r.stats.chunks_built > 0),
        "the gate must include mid-run learning"
    );
    let topo = build_topology(&specs[0].task);

    // Continuously-live reference: same batch, tiering off, table wide
    // enough that nothing ever leaves it.
    let live = serve(
        topo.clone(),
        specs.clone(),
        ServeConfig { workers: 2, table_capacity: 16, ..Default::default() },
    );
    for (sr, solo) in live.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &format!("live/{}", sr.name));
    }

    for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
        for workers in [1, 3] {
            let report =
                serve(topo.clone(), specs.clone(), pressure_config(workers, sched));
            let tier = report.tier.as_ref().expect("tiered run reports tier counters");
            let ctx = format!("{sched:?}/{workers}w");
            // A lone work-stealing worker pops its own deque LIFO, so it
            // sticks with one session until it retires — at most one live
            // state, never any table pressure. That is the scheduler's
            // locality working as intended, so hibernation is only
            // *guaranteed* in the other five configurations: the locked
            // schedulers rotate FIFO through more sessions than seats, and
            // work stealing with more workers than seats self-hibernates on
            // checkin.
            let sticky = sched == Scheduler::WorkStealing && workers == 1;
            if !sticky {
                assert!(tier.hibernated > 0, "{ctx}: pressure must force hibernation");
                assert!(tier.resumed > 0, "{ctx}: hibernated sessions must resume");
                assert!(tier.snapshot_bytes_total > 0, "{ctx}: snapshots have bytes");
            }
            assert!(tier.peak_hot <= 2 + workers, "{ctx}: hot bound holds (soft under Running)");

            // Fully deterministic configurations (one worker, FIFO): every
            // learning session was swapped out at least twice while its run
            // (which learns chunks mid-way) was in flight — the
            // hibernate/resume pairs straddle the chunk build.
            if workers == 1 && !sticky {
                let hib = hibernated_seq(&report);
                for (i, sp) in specs.iter().enumerate() {
                    if sp.learning {
                        let times = hib.iter().filter(|&&s| s == i as u32).count();
                        assert!(
                            times >= 2,
                            "{ctx}: learning session {i} hibernated only {times}× — \
                             pressure too weak to straddle the chunk learn"
                        );
                    }
                }
            }

            // The differential proper: tiered == live == solo.
            for ((sr, lr), solo) in report.sessions.iter().zip(&live.sessions).zip(&solos) {
                assert_session_matches_solo(sr, solo, &format!("{ctx}/{}", sr.name));
                assert_eq!(sr.stats, lr.stats, "{ctx}/{}: tiered vs continuously-live", sr.name);
                assert_eq!(sr.output, lr.output, "{ctx}/{}: output vs live", sr.name);
                assert_eq!(
                    sr.chunk_names, lr.chunk_names,
                    "{ctx}/{}: chunks vs live",
                    sr.name
                );
            }
        }
    }
}

/// The durable tier: with a tiny warm bound and a disk directory, warm
/// snapshots spill to files and later resumes read them back — still
/// bit-for-bit equal to solo.
#[test]
fn durable_spill_and_disk_resume_preserve_sessions() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve_hibernate_durable");
    std::fs::create_dir_all(&dir).expect("create durable tier dir");
    let specs = pressure_specs();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    let topo = build_topology(&specs[0].task);
    let report = serve(
        topo,
        specs.clone(),
        ServeConfig {
            workers: 2,
            scheduler: Scheduler::SingleQueue,
            table_capacity: 2,
            slice_decisions: 2,
            tier: Some(TierConfig { warm_capacity: 1, durable_dir: Some(dir.clone()) }),
            ..Default::default()
        },
    );
    let tier = report.tier.as_ref().expect("tier counters");
    assert!(tier.spilled > 0, "warm bound of 1 must spill snapshots to disk");
    assert!(tier.durable_resumes > 0, "some resumes must read snapshot files back");
    assert!(
        std::fs::read_dir(&dir).expect("durable dir").next().is_some(),
        "snapshot files were written"
    );
    for (sr, solo) in report.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &format!("durable/{}", sr.name));
    }
}

/// LRU eviction order is deterministic: with one worker and the single
/// queue, the dispatch order is fixed, so the sequence of hibernated (and
/// resumed) session ids is identical across runs.
#[test]
fn lru_eviction_order_is_deterministic_for_fixed_dispatch() {
    let specs = pressure_specs();
    let topo = build_topology(&specs[0].task);
    let run = || {
        serve(topo.clone(), specs.clone(), pressure_config(1, Scheduler::SingleQueue))
    };
    let (a, b) = (run(), run());
    let (ha, hb) = (hibernated_seq(&a), hibernated_seq(&b));
    assert!(!ha.is_empty(), "pressure must force hibernation");
    assert_eq!(ha, hb, "hibernation order must be a pure function of dispatch order");
    let resumed = |r: &psme_serve::ServeReport| -> Vec<u32> {
        r.trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Resumed))
            .map(|e| e.session)
            .collect()
    };
    assert_eq!(resumed(&a), resumed(&b), "resume order likewise");
    assert_eq!(
        a.tier.as_ref().unwrap().hibernated,
        b.tier.as_ref().unwrap().hibernated,
        "counter totals agree"
    );
}

/// Tiering with ample capacity is a no-op: nothing hibernates, and the
/// results are identical to the untied path.
#[test]
fn ample_capacity_never_hibernates() {
    let specs: Vec<SessionSpec> = (0..4).map(|seed| spec(seed + 500, 2, seed == 0)).collect();
    let solos: Vec<RunReport> = specs.iter().map(solo).collect();
    let topo = build_topology(&specs[0].task);
    let report = serve(
        topo,
        specs.clone(),
        ServeConfig {
            workers: 2,
            table_capacity: 16,
            tier: Some(TierConfig::default()),
            ..Default::default()
        },
    );
    let tier = report.tier.as_ref().expect("tier counters");
    assert_eq!(tier.hibernated, 0, "no pressure, no hibernation");
    assert_eq!(tier.resumed, 0);
    for (sr, solo) in report.sessions.iter().zip(&solos) {
        assert_session_matches_solo(sr, solo, &format!("ample/{}", sr.name));
    }
}
