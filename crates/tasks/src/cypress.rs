//! Cypress-substitute: a synthetic algorithm-derivation task.
//!
//! The original Cypress-Soar (algorithm design, derives quicksort; 196
//! productions) depends on the never-released Designer/Cypress knowledge
//! base, so — per the substitution policy in DESIGN.md — this task
//! reproduces its *workload characteristics* instead: a derivation search
//! over a design tree where composite specification nodes (`sort`,
//! `search`) are refined by competing design rules (quicksort-scheme,
//! mergesort-scheme, insertion-scheme, …), every refinement choice ties and
//! is resolved in the selection space from a depth-dependent score table,
//! and chunks compile the per-depth design policy. States carry whole node
//! sets (large affect sets, long runs), and productions match deep context
//! (large CE counts).

use psme_ops::{intern, parse_program, parse_wme, ClassRegistry, Symbol};
use psme_soar::{declare_arch_classes, SoarTask};
use std::sync::Arc;

/// Task size knobs.
#[derive(Clone, Debug)]
pub struct CypressConfig {
    /// Number of root `sort` specifications to derive.
    pub roots: usize,
}

impl Default for CypressConfig {
    fn default() -> CypressConfig {
        CypressConfig { roots: 2 }
    }
}

const CORE_PRODUCTIONS: &str = "
(p cy*init-ps
   (goal ^id <g> ^type top)
  -->
   (make preference ^object ps-design ^role problem-space ^value acceptable ^goal <g>))

(p cy*init-state
   (goal ^id <g> ^problem-space ps-design)
  -->
   (make preference ^object s0 ^role state ^value acceptable ^goal <g>))

(p cy*propose-refine
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^node <n>)
   (node ^id <n> ^kind <k> ^depth <dp>)
   (kindinfo ^kind <k> ^class composite)
   (rule ^id <ru> ^kind <k> ^maxdepth > <dp>)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^node <n> ^rule <ru>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p cy*apply-refine
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^node <n> ^rule <ru>)
   (goal ^id <g> ^state <s>)
  -->
   (bind <s2> (genatom))
   (make op ^id <o> ^new-state <s2>)
   (make preference ^object <s2> ^role state ^value acceptable ^goal <g>)
   (make preference ^object <s> ^role state ^value reject ^goal <g>))

(p cy*make-child-1
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^node <n> ^rule <ru>)
   (op ^id <o> ^new-state <s2>)
   (rule ^id <ru> ^out1 <k1>)
   (node ^id <n> ^depth <dp>)
  -->
   (bind <c> (genatom))
   (bind <d2> (compute <dp> + 1))
   (make node ^id <c> ^kind <k1> ^depth <d2>)
   (make state ^id <s2> ^node <c>))

(p cy*make-child-2
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^node <n> ^rule <ru>)
   (op ^id <o> ^new-state <s2>)
   (rule ^id <ru> ^out2 <k2>)
   (node ^id <n> ^depth <dp>)
  -->
   (bind <c> (genatom))
   (bind <d2> (compute <dp> + 1))
   (make node ^id <c> ^kind <k2> ^depth <d2>)
   (make state ^id <s2> ^node <c>))

(p cy*make-child-3
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^node <n> ^rule <ru>)
   (op ^id <o> ^new-state <s2>)
   (rule ^id <ru> ^out3 <k3>)
   (node ^id <n> ^depth <dp>)
  -->
   (bind <c> (genatom))
   (bind <d2> (compute <dp> + 1))
   (make node ^id <c> ^kind <k3> ^depth <d2>)
   (make state ^id <s2> ^node <c>))

(p cy*copy-nodes
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^node <n>)
   (op ^id <o> ^new-state <s2>)
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^node { <m> <> <n> })
  -->
   (make state ^id <s2> ^node <m>))

(p cy*goal-test
   (goal ^id <g> ^state <s>)
  -{ (state ^id <s> ^node <n>)
     (node ^id <n> ^kind <k>)
     (kindinfo ^kind <k> ^class composite) }
  -->
   (write derived)
   (halt))

(p cy*eval-refinement
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (goal ^id <g2> ^supergoal <g1>)
   (goal ^id <g1> ^state <s>)
   (op ^id <o> ^node <n> ^rule <ru>)
   (state ^id <s> ^node <n>)
   (node ^id <n> ^kind <k> ^depth <dp>)
   (kindinfo ^kind <k> ^class composite)
   (rule ^id <ru> ^kind <k>)
   (scoretab ^rule <ru> ^depth <dp> ^value <v>)
  -->
   (make eval ^goal <g2> ^object <o> ^value <v>))
";

/// Rule table: (name, kind, outs, maxdepth).
fn rules() -> Vec<(&'static str, &'static str, Vec<&'static str>, u32)> {
    vec![
        ("rule-quicksort", "sort", vec!["partition", "sort", "sort"], 3),
        ("rule-mergesort", "sort", vec!["split-merge", "sort", "sort"], 3),
        ("rule-insertion", "sort", vec!["insert-prim", "search"], 3),
        ("rule-base-sort", "sort", vec!["base-prim"], 99),
        ("rule-binary-search", "search", vec!["compare-prim"], 99),
        ("rule-linear-search", "search", vec!["scan-prim"], 99),
        ("rule-hash-search", "search", vec!["hash-prim"], 99),
    ]
}

/// Depth-dependent design-quality scores: the winning scheme differs per
/// depth, so each depth's first tie yields a distinct chunk.
fn score(rule: &str, depth: u32) -> i64 {
    match (rule, depth) {
        ("rule-quicksort", 0) => 9,
        ("rule-quicksort", _) => 4,
        ("rule-mergesort", 1) => 9,
        ("rule-mergesort", _) => 3,
        ("rule-insertion", 2) => 9,
        ("rule-insertion", _) => 2,
        ("rule-base-sort", _) => 1,
        ("rule-binary-search", _) => 8,
        ("rule-hash-search", _) => 6,
        ("rule-linear-search", _) => 4,
        _ => 0,
    }
}

/// Build the Cypress-substitute task.
pub fn cypress_sub(cfg: &CypressConfig) -> SoarTask {
    let mut classes = ClassRegistry::new();
    declare_arch_classes(&mut classes);
    classes.declare_str("node", &["id", "kind", "depth"]);
    classes.declare_str("state", &["id", "node"]);
    classes.declare_str("rule", &["id", "kind", "out1", "out2", "out3", "maxdepth"]);
    classes.declare_str("scoretab", &["rule", "depth", "value"]);
    classes.declare_str("kindinfo", &["kind", "class"]);
    classes.declare_str("op", &["id", "node", "rule", "new-state"]);
    classes.declare_str("note", &["id", "tag"]);

    let mut src = String::from(CORE_PRODUCTIONS);
    // Monitors: one per kind and per rule (affect-set width, like the
    // paper's monitoring productions).
    let kinds = [
        "sort", "search", "partition", "split-merge", "insert-prim", "base-prim",
        "compare-prim", "scan-prim", "hash-prim",
    ];
    for k in kinds {
        src.push_str(&format!(
            "(p cy*monitor-kind-{k}
                (goal ^id <g> ^state <s>)
                (state ^id <s> ^node <n>)
                (node ^id <n> ^kind {k} ^depth <dp>)
               -->
                (make note ^id <s> ^tag mk-{k}))\n"
        ));
    }
    for (r, _, _, _) in rules() {
        src.push_str(&format!(
            "(p cy*monitor-rule-{r}
                (goal ^id <g> ^operator <o>)
                (op ^id <o> ^rule {r} ^node <n>)
                (node ^id <n> ^kind <k> ^depth <dp>)
               -->
                (make note ^id <o> ^tag mr-{r}))\n"
        ));
    }

    let productions: Vec<Arc<_>> = parse_program(&src, &mut classes)
        .expect("cypress productions parse")
        .into_iter()
        .map(Arc::new)
        .collect();

    let mut init = Vec::new();
    let mut identifiers: Vec<Symbol> = vec![intern("ps-design"), intern("s0")];
    let w = |s: &str, classes: &ClassRegistry| parse_wme(s, classes).unwrap();
    for k in kinds {
        let class = if k == "sort" || k == "search" { "composite" } else { "primitive" };
        init.push(w(&format!("(kindinfo ^kind {k} ^class {class})"), &classes));
    }
    for (name, kind, outs, maxdepth) in rules() {
        identifiers.push(intern(name));
        let mut s = format!("(rule ^id {name} ^kind {kind} ^maxdepth {maxdepth}");
        for (i, o) in outs.iter().enumerate() {
            s.push_str(&format!(" ^out{} {o}", i + 1));
        }
        s.push(')');
        init.push(w(&s, &classes));
        for depth in 0..=4u32 {
            init.push(w(
                &format!("(scoretab ^rule {name} ^depth {depth} ^value {})", score(name, depth)),
                &classes,
            ));
        }
    }
    for r in 0..cfg.roots {
        let n = format!("spec{r}");
        identifiers.push(intern(&n));
        init.push(w(&format!("(node ^id {n} ^kind sort ^depth 0)"), &classes));
        init.push(w(&format!("(state ^id s0 ^node {n})"), &classes));
    }

    SoarTask { name: "cypress-sub".into(), classes, productions, init_wmes: init, identifiers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_shape() {
        let t = cypress_sub(&CypressConfig::default());
        assert!(t.production_count() >= 25);
        // The derivation productions are context-heavy.
        assert!(t.avg_ces() >= 3.0, "{}", t.avg_ces());
        let biggest = t.productions.iter().map(|p| p.ce_count_flat()).max().unwrap();
        assert!(biggest >= 5, "largest production has {biggest} CEs");
        assert!(t.init_wmes.len() > 40);
    }
}
