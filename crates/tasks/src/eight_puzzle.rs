//! Eight-puzzle-Soar (the paper's task 2, 71 productions in the original).
//!
//! States are immutable objects whose `^binding` augmentations pair cells
//! with tiles; move operators are proposed for every tile adjacent to the
//! blank, ties impasse into the selection space, task `eval` productions
//! score moves by the means-ends heuristic (+1 into the tile's desired
//! cell, −1 out of it, 0 otherwise), and chunks learned from the ties
//! encode the greedy move-selection rule. Completion is detected with a
//! conjunctive negation — "no desired cell currently holds a wrong tile" —
//! exercising Soar's NCC extension to OPS5.

use psme_ops::{intern, parse_program, parse_wme, ClassRegistry, Symbol};
use psme_soar::{declare_arch_classes, SoarTask};
use std::sync::Arc;

/// A board: `board[row][col]`, 0 = blank, 1–8 = tiles.
pub type Board = [[u8; 3]; 3];

/// The classic 8-puzzle goal configuration.
pub fn goal_board() -> Board {
    [[1, 2, 3], [8, 0, 4], [7, 6, 5]]
}

/// Scramble the goal by a random walk of `moves` blank moves (never
/// immediately undoing), giving boards that the greedy means-ends strategy
/// solves.
pub fn scrambled(moves: usize, seed: u64) -> Board {
    let mut b = goal_board();
    let mut rng = psme_rete::testgen::XorShift::new(seed);
    let (mut br, mut bc) = blank_pos(&b);
    let mut last: Option<(usize, usize)> = None;
    for _ in 0..moves {
        let mut opts: Vec<(usize, usize)> = Vec::new();
        for (dr, dc) in [(0i32, 1i32), (0, -1), (1, 0), (-1, 0)] {
            let (r, c) = (br as i32 + dr, bc as i32 + dc);
            if (0..3).contains(&r) && (0..3).contains(&c) && last != Some((r as usize, c as usize))
            {
                opts.push((r as usize, c as usize));
            }
        }
        let (r, c) = opts[rng.below(opts.len())];
        b[br][bc] = b[r][c];
        b[r][c] = 0;
        last = Some((br, bc));
        (br, bc) = (r, c);
    }
    b
}

fn blank_pos(b: &Board) -> (usize, usize) {
    for (r, row) in b.iter().enumerate() {
        for (c, &cell) in row.iter().enumerate() {
            if cell == 0 {
                return (r, c);
            }
        }
    }
    unreachable!("board has a blank")
}

fn cell_name(r: usize, c: usize) -> String {
    format!("c{}{}", r + 1, c + 1)
}

fn tile_name(t: u8) -> String {
    if t == 0 {
        "tblank".to_string()
    } else {
        format!("t{t}")
    }
}

/// The hand-written core productions.
const CORE_PRODUCTIONS: &str = "
(p ep*init-ps
   (goal ^id <g> ^type top)
  -->
   (make preference ^object ps-eight ^role problem-space ^value acceptable ^goal <g>))

(p ep*init-state
   (goal ^id <g> ^problem-space ps-eight)
  -->
   (make preference ^object s0 ^role state ^value acceptable ^goal <g>))

(p ep*propose
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^binding <bb>)
   (binding ^id <bb> ^cell <cb> ^tile tblank)
   (cell ^id <cb> ^adjacent <ca>)
   (state ^id <s> ^binding <ba>)
   (binding ^id <ba> ^cell <ca> ^tile <t>)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^tile <t> ^from <ca> ^to <cb>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p ep*apply
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^tile <t> ^from <ca> ^to <cb>)
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^binding <bb>)
   (binding ^id <bb> ^cell <cb> ^tile tblank)
   (state ^id <s> ^binding <ba>)
   (binding ^id <ba> ^cell <ca> ^tile <t>)
  -->
   (bind <s2> (genatom))
   (bind <n1> (genatom))
   (bind <n2> (genatom))
   (make op ^id <o> ^new-state <s2>)
   (make binding ^id <n1> ^cell <cb> ^tile <t>)
   (make binding ^id <n2> ^cell <ca> ^tile tblank)
   (make state ^id <s2> ^binding <n1>)
   (make state ^id <s2> ^binding <n2>)
   (make preference ^object <s2> ^role state ^value acceptable ^goal <g>)
   (make preference ^object <s> ^role state ^value reject ^goal <g>))

(p ep*copy-unchanged
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^from <ca> ^to <cb>)
   (op ^id <o> ^new-state <s2>)
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^binding <b>)
   (binding ^id <b> ^cell { <> <ca> <> <cb> })
  -->
   (make state ^id <s2> ^binding <b>))

(p ep*goal-test
   (goal ^id <g> ^state <s>)
  -{ (desired ^tile <t> ^cell <c>)
     (state ^id <s> ^binding <b>)
     (binding ^id <b> ^cell <c> ^tile <> <t>) }
  -->
   (write solved)
   (halt))

(p ep*eval-toward
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (goal ^id <g2> ^supergoal <g1>)
   (goal ^id <g1> ^state <s>)
   (op ^id <o> ^tile <t> ^from <ca> ^to <cb>)
   (state ^id <s> ^binding <bb>)
   (binding ^id <bb> ^cell <cb> ^tile tblank)
   (state ^id <s> ^binding <ba>)
   (binding ^id <ba> ^cell <ca> ^tile <t>)
   (desired ^tile <t> ^cell <cb>)
  -->
   (make eval ^goal <g2> ^object <o> ^value 1))

(p ep*eval-away
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (goal ^id <g2> ^supergoal <g1>)
   (goal ^id <g1> ^state <s>)
   (op ^id <o> ^tile <t> ^from <ca> ^to <cb>)
   (state ^id <s> ^binding <bb>)
   (binding ^id <bb> ^cell <cb> ^tile tblank)
   (state ^id <s> ^binding <ba>)
   (binding ^id <ba> ^cell <ca> ^tile <t>)
   (desired ^tile <t> ^cell <ca>)
  -->
   (make eval ^goal <g2> ^object <o> ^value -1))

(p ep*eval-neutral
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (goal ^id <g2> ^supergoal <g1>)
   (goal ^id <g1> ^state <s>)
   (op ^id <o> ^tile <t> ^from <ca> ^to <cb>)
   (state ^id <s> ^binding <bb>)
   (binding ^id <bb> ^cell <cb> ^tile tblank)
   (state ^id <s> ^binding <ba>)
   (binding ^id <ba> ^cell <ca> ^tile <t>)
  -(desired ^tile <t> ^cell <cb>)
  -(desired ^tile <t> ^cell <ca>)
  -->
   (make eval ^goal <g2> ^object <o> ^value 0))
";

/// Build the Eight-puzzle-Soar task for an initial board.
pub fn eight_puzzle(initial: &Board) -> SoarTask {
    let mut classes = ClassRegistry::new();
    declare_arch_classes(&mut classes);
    classes.declare_str("cell", &["id", "adjacent"]);
    classes.declare_str("tile", &["id", "name"]);
    classes.declare_str("binding", &["id", "cell", "tile"]);
    classes.declare_str("state", &["id", "binding"]);
    classes.declare_str("op", &["id", "tile", "from", "to", "new-state"]);
    classes.declare_str("desired", &["tile", "cell"]);
    classes.declare_str("note", &["id", "tag", "cell"]);

    let mut src = String::from(CORE_PRODUCTIONS);
    // Monitor productions, in the spirit of the Strips monitor of Fig. 6-7:
    // one per tile and one per cell, each creating a note on the current
    // state (they add realistic match load and affect-set width).
    for t in 1..=8u8 {
        src.push_str(&format!(
            "(p ep*monitor-tile-{t}
                (goal ^id <g> ^state <s>)
                (state ^id <s> ^binding <b>)
                (binding ^id <b> ^tile t{t} ^cell <c>)
                (cell ^id <c> ^adjacent <c2>)
               -->
                (make note ^id <s> ^tag mtile{t} ^cell <c>))\n"
        ));
    }
    for r in 0..3 {
        for c in 0..3 {
            let cn = cell_name(r, c);
            src.push_str(&format!(
                "(p ep*monitor-cell-{cn}
                    (goal ^id <g> ^state <s>)
                    (state ^id <s> ^binding <b>)
                    (binding ^id <b> ^cell {cn} ^tile <t>)
                    (tile ^id <t> ^name <n>)
                   -->
                    (make note ^id <s> ^tag mcell{cn} ^cell {cn}))\n"
            ));
        }
    }

    let productions: Vec<Arc<_>> = parse_program(&src, &mut classes)
        .expect("eight-puzzle productions parse")
        .into_iter()
        .map(Arc::new)
        .collect();

    // Static structure + initial state.
    let mut init = Vec::new();
    let mut identifiers: Vec<Symbol> = vec![intern("ps-eight"), intern("s0")];
    let w = |s: &str, classes: &ClassRegistry| parse_wme(s, classes).unwrap();
    // Cells and 4-adjacency.
    for r in 0..3i32 {
        for c in 0..3i32 {
            let cn = cell_name(r as usize, c as usize);
            for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0)] {
                let (r2, c2) = (r + dr, c + dc);
                if (0..3).contains(&r2) && (0..3).contains(&c2) {
                    let cn2 = cell_name(r2 as usize, c2 as usize);
                    init.push(w(&format!("(cell ^id {cn} ^adjacent {cn2})"), &classes));
                }
            }
        }
    }
    // Tiles.
    for t in 0..=8u8 {
        let tn = tile_name(t);
        init.push(w(&format!("(tile ^id {tn} ^name {})", if t == 0 { "blank".into() } else { t.to_string() }), &classes));
    }
    // Desired configuration.
    let goal = goal_board();
    for (r, row) in goal.iter().enumerate() {
        for (c, &t) in row.iter().enumerate() {
            if t != 0 {
                init.push(w(
                    &format!("(desired ^tile {} ^cell {})", tile_name(t), cell_name(r, c)),
                    &classes,
                ));
            }
        }
    }
    // Initial state bindings.
    for (r, row) in initial.iter().enumerate() {
        for (c, &t) in row.iter().enumerate() {
            let b = format!("b0{}{}", r + 1, c + 1);
            identifiers.push(intern(&b));
            init.push(w(
                &format!("(binding ^id {b} ^cell {} ^tile {})", cell_name(r, c), tile_name(t)),
                &classes,
            ));
            init.push(w(&format!("(state ^id s0 ^binding {b})"), &classes));
        }
    }

    SoarTask { name: "eight-puzzle".into(), classes, productions, init_wmes: init, identifiers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_shape() {
        let t = eight_puzzle(&scrambled(3, 7));
        assert!(t.production_count() >= 25, "{}", t.production_count());
        assert!(t.avg_ces() >= 3.0);
        // 12 adjacency pairs ×2 + 9 tiles + 8 desired + 18 state wmes
        assert!(t.init_wmes.len() > 40);
    }

    #[test]
    fn scramble_is_reproducible_and_solvable_shape() {
        let a = scrambled(5, 42);
        let b = scrambled(5, 42);
        assert_eq!(a, b);
        let mut tiles: Vec<u8> = a.iter().flatten().copied().collect();
        tiles.sort_unstable();
        assert_eq!(tiles, (0..9).collect::<Vec<u8>>());
        assert_ne!(a, goal_board());
    }

    #[test]
    fn goal_board_is_already_solved_state() {
        // A task initialized at the goal should halt almost immediately.
        let task = eight_puzzle(&goal_board());
        let (report, _) = crate::harness::run_serial(&task, crate::harness::RunMode::WithoutChunking, false);
        assert_eq!(report.stop, psme_soar::StopReason::Halted);
        assert_eq!(report.output, vec!["solved"]);
        assert_eq!(report.stats.impasses, 0);
    }
}
