//! Strips-Soar (the paper's task 3): robot navigation through rooms and
//! doors, with door-opening operators. Includes the generated
//! `monitor-strips-state` production — the 40+-CE long-chain production of
//! Figure 6-7 that motivates the constrained bilinear networks of §6.2.

use psme_ops::{intern, parse_program, parse_wme, ClassRegistry, Symbol, Wme};
use psme_soar::{declare_arch_classes, SoarTask};
use std::collections::VecDeque;
use std::sync::Arc;

/// World shape.
#[derive(Clone, Debug)]
pub struct StripsConfig {
    /// Number of rooms (ring topology plus chords).
    pub rooms: usize,
    /// Doors that start closed (indices into the door list).
    pub closed_doors: Vec<usize>,
    /// Start room (0-based).
    pub start: usize,
    /// Target room (0-based).
    pub target: usize,
    /// Add the two chord doors across the ring (off for long-route
    /// benchmark worlds).
    pub chords: bool,
}

impl Default for StripsConfig {
    fn default() -> StripsConfig {
        StripsConfig { rooms: 6, closed_doors: vec![2], start: 0, target: 4, chords: true }
    }
}

/// Door list for a config: a ring `r0–r1–…–rN–r0` plus two chords.
pub fn doors_of(cfg: &StripsConfig) -> Vec<(usize, usize)> {
    let n = cfg.rooms;
    let mut doors: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    if cfg.chords && n >= 6 {
        doors.push((1, n - 2));
        doors.push((0, n / 2));
    }
    doors
}

fn bfs_dist(n: usize, doors: &[(usize, usize)], target: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[target] = 0;
    q.push_back(target);
    while let Some(r) = q.pop_front() {
        for &(a, b) in doors {
            for (x, y) in [(a, b), (b, a)] {
                if x == r && dist[y] == u32::MAX {
                    dist[y] = dist[r] + 1;
                    q.push_back(y);
                }
            }
        }
    }
    dist
}

const CORE_PRODUCTIONS: &str = "
(p st*init-ps
   (goal ^id <g> ^type top)
  -->
   (make preference ^object ps-strips ^role problem-space ^value acceptable ^goal <g>))

(p st*init-state
   (goal ^id <g> ^problem-space ps-strips)
  -->
   (make preference ^object s0 ^role state ^value acceptable ^goal <g>))

(p st*propose-go-fwd
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (door ^id <d> ^room1 <r> ^room2 <r2>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door <d> ^status open)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^kind go ^door <d> ^from <r> ^to <r2>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p st*propose-go-back
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (door ^id <d> ^room2 <r> ^room1 <r2>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door <d> ^status open)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^kind go ^door <d> ^from <r> ^to <r2>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p st*propose-open-fwd
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (door ^id <d> ^room1 <r> ^room2 <r2>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door <d> ^status closed)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^kind open ^door <d> ^from <r> ^to <r2>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p st*propose-open-back
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (door ^id <d> ^room2 <r> ^room1 <r2>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door <d> ^status closed)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^kind open ^door <d> ^from <r> ^to <r2>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p st*apply-go
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^kind go ^to <r2>)
   (goal ^id <g> ^state <s>)
  -->
   (bind <s2> (genatom))
   (make op ^id <o> ^new-state <s2>)
   (make state ^id <s2> ^robot-at <r2>)
   (make preference ^object <s2> ^role state ^value acceptable ^goal <g>)
   (make preference ^object <s> ^role state ^value reject ^goal <g>))

(p st*copy-dstatus-go
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^kind go)
   (op ^id <o> ^new-state <s2>)
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^dstatus <ds>)
  -->
   (make state ^id <s2> ^dstatus <ds>))

(p st*apply-open
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^kind open ^door <d> ^from <r>)
   (goal ^id <g> ^state <s>)
  -->
   (bind <s2> (genatom))
   (bind <nd> (genatom))
   (make op ^id <o> ^new-state <s2>)
   (make state ^id <s2> ^robot-at <r>)
   (make dstatus ^id <nd> ^door <d> ^status open)
   (make state ^id <s2> ^dstatus <nd>)
   (make preference ^object <s2> ^role state ^value acceptable ^goal <g>)
   (make preference ^object <s> ^role state ^value reject ^goal <g>))

(p st*copy-dstatus-open
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^kind open ^door <d>)
   (op ^id <o> ^new-state <s2>)
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door { <d2> <> <d> })
  -->
   (make state ^id <s2> ^dstatus <ds>))

(p st*goal-test
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (target ^room <r>)
  -->
   (write arrived)
   (halt))

(p st*eval-go
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (goal ^id <g2> ^supergoal <g1>)
   (goal ^id <g1> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (op ^id <o> ^kind go ^door <d> ^from <r> ^to <r2>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door <d> ^status open)
   (door ^id <d> ^room1 <ra> ^room2 <rb>)
   (dist ^room <r2> ^value <n>)
  -->
   (bind <v> (compute 20 - <n>))
   (make eval ^goal <g2> ^object <o> ^value <v>))

(p st*eval-open
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (goal ^id <g2> ^supergoal <g1>)
   (goal ^id <g1> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (op ^id <o> ^kind open ^door <d> ^from <r> ^to <r2>)
   (state ^id <s> ^dstatus <ds>)
   (dstatus ^id <ds> ^door <d> ^status closed)
   (door ^id <d> ^room1 <ra> ^room2 <rb>)
   (dist ^room <r2> ^value <n>)
  -->
   (bind <v> (compute 19 - <n>))
   (make eval ^goal <g2> ^object <o> ^value <v>))
";

/// Build the Strips-Soar task.
pub fn strips(cfg: &StripsConfig) -> SoarTask {
    assert!(cfg.rooms >= 3 && cfg.start < cfg.rooms && cfg.target < cfg.rooms);
    let doors = doors_of(cfg);
    let dist = bfs_dist(cfg.rooms, &doors, cfg.target);

    let mut classes = ClassRegistry::new();
    declare_arch_classes(&mut classes);
    classes.declare_str("room", &["id"]);
    classes.declare_str("door", &["id", "room1", "room2"]);
    classes.declare_str("dstatus", &["id", "door", "status"]);
    classes.declare_str("state", &["id", "robot-at", "dstatus"]);
    classes.declare_str("op", &["id", "kind", "door", "from", "to", "new-state"]);
    classes.declare_str("target", &["room"]);
    classes.declare_str("dist", &["room", "value"]);
    classes.declare_str("pspace", &["id", "name"]);
    classes.declare_str("note", &["id", "tag"]);

    let mut src = String::from(CORE_PRODUCTIONS);

    // The Figure 6-7 long-chain production: match the whole door-status
    // structure of the current state in one production (3 CEs per door,
    // plus the context header) — 41 CEs at 12 doors.
    src.push_str(
        "(p monitor-strips-state
   (goal ^id <g> ^problem-space <p>)
   (pspace ^id <p> ^name strips)
   (goal ^id <g> ^state <s>)
   (state ^id <s> ^robot-at <r>)
   (room ^id <r>)\n",
    );
    for (i, _) in doors.iter().enumerate() {
        src.push_str(&format!(
            "   (state ^id <s> ^dstatus <ds{i}>)
   (dstatus ^id <ds{i}> ^door {{ <d{i}> dr{i} }} ^status <st{i}>)
   (door ^id <d{i}> ^room1 <a{i}> ^room2 <b{i}>)\n"
        ));
    }
    src.push_str("  -->\n   (make note ^id <s> ^tag monitor))\n");

    // Per-door and per-room monitors (affect-set width).
    for (i, _) in doors.iter().enumerate() {
        src.push_str(&format!(
            "(p st*monitor-door-{i}
                (goal ^id <g> ^state <s>)
                (state ^id <s> ^dstatus <ds>)
                (dstatus ^id <ds> ^door dr{i} ^status <st>)
               -->
                (make note ^id <s> ^tag mdoor{i}))\n"
        ));
    }
    for r in 0..cfg.rooms {
        src.push_str(&format!(
            "(p st*monitor-room-{r}
                (goal ^id <g> ^state <s>)
                (state ^id <s> ^robot-at rm{r})
                (dist ^room rm{r} ^value <n>)
               -->
                (make note ^id <s> ^tag mroom{r}))\n"
        ));
    }

    let productions: Vec<Arc<_>> = parse_program(&src, &mut classes)
        .expect("strips productions parse")
        .into_iter()
        .map(Arc::new)
        .collect();

    let mut init = Vec::new();
    let mut identifiers: Vec<Symbol> = vec![intern("ps-strips"), intern("s0")];
    let w = |s: &str, classes: &ClassRegistry| -> Wme { parse_wme(s, classes).unwrap() };
    init.push(w("(pspace ^id ps-strips ^name strips)", &classes));
    for (r, d) in dist.iter().enumerate().take(cfg.rooms) {
        init.push(w(&format!("(room ^id rm{r})"), &classes));
        init.push(w(&format!("(dist ^room rm{r} ^value {d})"), &classes));
    }
    for (i, &(a, b)) in doors.iter().enumerate() {
        init.push(w(&format!("(door ^id dr{i} ^room1 rm{a} ^room2 rm{b})"), &classes));
        let status = if cfg.closed_doors.contains(&i) { "closed" } else { "open" };
        let ds = format!("ds0{i}");
        identifiers.push(intern(&ds));
        init.push(w(&format!("(dstatus ^id {ds} ^door dr{i} ^status {status})"), &classes));
        init.push(w(&format!("(state ^id s0 ^dstatus {ds})"), &classes));
    }
    init.push(w(&format!("(state ^id s0 ^robot-at rm{})", cfg.start), &classes));
    init.push(w(&format!("(target ^room rm{})", cfg.target), &classes));

    SoarTask { name: "strips".into(), classes, productions, init_wmes: init, identifiers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_shape_and_long_chain() {
        let t = strips(&StripsConfig::default());
        assert!(t.production_count() >= 25);
        let monitor = t
            .productions
            .iter()
            .find(|p| p.name == intern("monitor-strips-state"))
            .expect("long-chain production present");
        // 5 header + 3 per door (8 doors at 6 rooms) = 29 CEs.
        assert!(monitor.ce_count_flat() >= 25, "{}", monitor.ce_count_flat());
    }

    #[test]
    fn distances_reach_all_rooms() {
        let cfg = StripsConfig::default();
        let d = bfs_dist(cfg.rooms, &doors_of(&cfg), cfg.target);
        assert!(d.iter().all(|&x| x != u32::MAX));
        assert_eq!(d[cfg.target], 0);
    }

    #[test]
    fn trivial_world_halts_immediately() {
        let cfg = StripsConfig { rooms: 3, closed_doors: vec![], start: 1, target: 1, chords: true };
        let t = strips(&cfg);
        let (report, _) =
            crate::harness::run_serial(&t, crate::harness::RunMode::WithoutChunking, false);
        assert_eq!(report.stop, psme_soar::StopReason::Halted);
        assert_eq!(report.output, vec!["arrived"]);
    }
}
