//! # psme-tasks — the paper's task suites
//!
//! * [`mod@eight_puzzle`] — Eight-puzzle-Soar (§3, task 2);
//! * [`mod@strips`] — Strips-Soar robot planning (§3, task 3), including the
//!   long-chain `monitor-strips-state` production of Figure 6-7;
//! * [`cypress`] — the Cypress-substitute algorithm-derivation task (see
//!   DESIGN.md §3: the original Designer/Cypress knowledge base was never
//!   released, so this synthetic derivation task reproduces its workload
//!   characteristics: large CE counts, deep tie chains, long runs);
//! * [`harness`] — the without/during/after-chunking run harness.

pub mod cypress;
pub mod eight_puzzle;
pub mod harness;
pub mod strips;

pub use cypress::{cypress_sub, CypressConfig};
pub use eight_puzzle::{eight_puzzle, goal_board, scrambled, Board};
pub use harness::{run_parallel, run_serial, run_serial_with_orgs, RunMode, RunReport, DECISION_BUDGET};
pub use strips::{strips, StripsConfig};
