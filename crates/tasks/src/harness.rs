//! Run harness: the paper's three run modes (§3) over any engine.
//!
//! * *without chunking* — learning off;
//! * *during chunking* — learning on, chunks added at run time;
//! * *after chunking* — a fresh run on the same input with the previously
//!   learned chunks preloaded.

use psme_core::{EngineConfig, MatchEngine, ParallelEngine};
use psme_obs::Json;
use psme_ops::Production;
use psme_rete::{ReteNetwork, SerialEngine};
use psme_soar::{Agent, SoarTask};
use psme_rete::NetworkOrg;
use psme_ops::Symbol;
use std::sync::Arc;

/// The three run modes of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunMode {
    /// Chunking turned off.
    WithoutChunking,
    /// Learning while solving.
    DuringChunking,
    /// Re-run on the same input with previously learned chunks.
    AfterChunking,
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: psme_soar::StopReason,
    /// Agent counters.
    pub stats: psme_soar::AgentStats,
    /// Chunks learned in this run.
    pub chunks: Vec<Arc<Production>>,
    /// `(write …)` output.
    pub output: Vec<String>,
    /// Agent-side control-phase totals (match, conflict resolution,
    /// decide, chunk build, production addition) as JSON.
    pub agent_phases: Json,
    /// Engine-side phase totals (match / §5.1 surgery / §5.2 update) when
    /// the engine keeps a recorder — the parallel engine does.
    pub engine_phases: Option<Json>,
}

impl RunReport {
    /// The whole report as a JSON document.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        Json::obj([
            ("stop", Json::from(format!("{:?}", self.stop))),
            (
                "stats",
                Json::obj([
                    ("decisions", Json::from(s.decisions)),
                    ("elaboration_cycles", Json::from(s.elaboration_cycles)),
                    ("impasses", Json::from(s.impasses)),
                    ("chunks_built", Json::from(s.chunks_built)),
                    ("firings", Json::from(s.firings)),
                    ("wme_adds", Json::from(s.wme_adds)),
                    ("wme_removes", Json::from(s.wme_removes)),
                    ("update_tasks", Json::from(s.update_tasks)),
                ]),
            ),
            (
                "chunks",
                Json::arr(
                    self.chunks.iter().map(|c| Json::from(psme_ops::sym_name(c.name).to_string())),
                ),
            ),
            ("output", Json::arr(self.output.iter().map(|s| Json::from(s.as_str())))),
            ("agent_phases", self.agent_phases.clone()),
            (
                "engine_phases",
                self.engine_phases.clone().unwrap_or(Json::Null),
            ),
        ])
    }
}

/// Decision budget used by the harness.
pub const DECISION_BUDGET: u64 = 400;

fn run_agent<E: MatchEngine>(mut agent: Agent<E>, learning: bool) -> (RunReport, Agent<E>) {
    agent.learning = learning;
    let stop = agent.run(DECISION_BUDGET);
    let report = RunReport {
        stop,
        stats: agent.stats,
        chunks: agent.learned_chunks(),
        output: agent.output.clone(),
        agent_phases: agent.recorder.totals_json(),
        engine_phases: agent.engine.recorder().map(|r| r.totals_json()),
    };
    (report, agent)
}

/// Run a task on the serial engine with per-production network
/// organizations (the §7 adaptive-bilinear loop feeds diagnoses back in
/// through `orgs`).
pub fn run_serial_with_orgs(
    task: &SoarTask,
    mode: RunMode,
    capture: bool,
    orgs: &[(Symbol, NetworkOrg)],
) -> (RunReport, SerialEngine) {
    let preload = match mode {
        RunMode::AfterChunking => {
            let (r, _) = run_serial_with_orgs(task, RunMode::DuringChunking, false, orgs);
            r.chunks
        }
        _ => Vec::new(),
    };
    let mut engine = SerialEngine::new(ReteNetwork::new());
    engine.capture = capture;
    let mut agent = Agent::new(engine, task.classes.clone());
    for (name, org) in orgs {
        agent.org_overrides.insert(*name, org.clone());
    }
    task.install(&mut agent);
    for c in preload {
        agent.load_production(c).expect("preloaded chunk");
    }
    let learning = matches!(mode, RunMode::DuringChunking);
    let (report, agent) = run_agent(agent, learning);
    (report, agent.engine)
}

/// Run a task on the serial engine. Returns the report and the engine
/// (whose captured trace, when `capture` is set, feeds the simulator).
pub fn run_serial(task: &SoarTask, mode: RunMode, capture: bool) -> (RunReport, SerialEngine) {
    let preload = match mode {
        RunMode::AfterChunking => {
            let (r, _) = run_serial(task, RunMode::DuringChunking, false);
            r.chunks
        }
        _ => Vec::new(),
    };
    let mut engine = SerialEngine::new(ReteNetwork::new());
    engine.capture = capture;
    let mut agent = task.agent(engine);
    for c in preload {
        agent.load_production(c).expect("preloaded chunk");
    }
    let learning = matches!(mode, RunMode::DuringChunking);
    let (report, agent) = run_agent(agent, learning);
    (report, agent.engine)
}

/// Run a task on the PSM-E parallel engine.
pub fn run_parallel(
    task: &SoarTask,
    mode: RunMode,
    config: EngineConfig,
) -> (RunReport, ParallelEngine) {
    let preload = match mode {
        RunMode::AfterChunking => {
            let (r, _) = run_serial(task, RunMode::DuringChunking, false);
            r.chunks
        }
        _ => Vec::new(),
    };
    let engine = ParallelEngine::new(ReteNetwork::new(), config);
    let mut agent = task.agent(engine);
    for c in preload {
        agent.load_production(c).expect("preloaded chunk");
    }
    let learning = matches!(mode, RunMode::DuringChunking);
    let (report, agent) = run_agent(agent, learning);
    (report, agent.engine)
}
