//! Run harness: the paper's three run modes (§3) over any engine.
//!
//! * *without chunking* — learning off;
//! * *during chunking* — learning on, chunks added at run time;
//! * *after chunking* — a fresh run on the same input with the previously
//!   learned chunks preloaded.

use psme_core::{EngineConfig, MatchEngine, ParallelEngine};
use psme_ops::Production;
use psme_rete::{ReteNetwork, SerialEngine};
use psme_soar::{Agent, SoarTask};
use psme_rete::NetworkOrg;
use psme_ops::Symbol;
use std::sync::Arc;

/// The three run modes of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunMode {
    /// Chunking turned off.
    WithoutChunking,
    /// Learning while solving.
    DuringChunking,
    /// Re-run on the same input with previously learned chunks.
    AfterChunking,
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: psme_soar::StopReason,
    /// Agent counters.
    pub stats: psme_soar::AgentStats,
    /// Chunks learned in this run.
    pub chunks: Vec<Arc<Production>>,
    /// `(write …)` output.
    pub output: Vec<String>,
}

/// Decision budget used by the harness.
pub const DECISION_BUDGET: u64 = 400;

fn run_agent<E: MatchEngine>(mut agent: Agent<E>, learning: bool) -> (RunReport, Agent<E>) {
    agent.learning = learning;
    let stop = agent.run(DECISION_BUDGET);
    let report = RunReport {
        stop,
        stats: agent.stats,
        chunks: agent.learned_chunks(),
        output: agent.output.clone(),
    };
    (report, agent)
}

/// Run a task on the serial engine with per-production network
/// organizations (the §7 adaptive-bilinear loop feeds diagnoses back in
/// through `orgs`).
pub fn run_serial_with_orgs(
    task: &SoarTask,
    mode: RunMode,
    capture: bool,
    orgs: &[(Symbol, NetworkOrg)],
) -> (RunReport, SerialEngine) {
    let preload = match mode {
        RunMode::AfterChunking => {
            let (r, _) = run_serial_with_orgs(task, RunMode::DuringChunking, false, orgs);
            r.chunks
        }
        _ => Vec::new(),
    };
    let mut engine = SerialEngine::new(ReteNetwork::new());
    engine.capture = capture;
    let mut agent = Agent::new(engine, task.classes.clone());
    for (name, org) in orgs {
        agent.org_overrides.insert(*name, org.clone());
    }
    task.install(&mut agent);
    for c in preload {
        agent.load_production(c).expect("preloaded chunk");
    }
    let learning = matches!(mode, RunMode::DuringChunking);
    let (report, agent) = run_agent(agent, learning);
    (report, agent.engine)
}

/// Run a task on the serial engine. Returns the report and the engine
/// (whose captured trace, when `capture` is set, feeds the simulator).
pub fn run_serial(task: &SoarTask, mode: RunMode, capture: bool) -> (RunReport, SerialEngine) {
    let preload = match mode {
        RunMode::AfterChunking => {
            let (r, _) = run_serial(task, RunMode::DuringChunking, false);
            r.chunks
        }
        _ => Vec::new(),
    };
    let mut engine = SerialEngine::new(ReteNetwork::new());
    engine.capture = capture;
    let mut agent = task.agent(engine);
    for c in preload {
        agent.load_production(c).expect("preloaded chunk");
    }
    let learning = matches!(mode, RunMode::DuringChunking);
    let (report, agent) = run_agent(agent, learning);
    (report, agent.engine)
}

/// Run a task on the PSM-E parallel engine.
pub fn run_parallel(
    task: &SoarTask,
    mode: RunMode,
    config: EngineConfig,
) -> (RunReport, ParallelEngine) {
    let preload = match mode {
        RunMode::AfterChunking => {
            let (r, _) = run_serial(task, RunMode::DuringChunking, false);
            r.chunks
        }
        _ => Vec::new(),
    };
    let engine = ParallelEngine::new(ReteNetwork::new(), config);
    let mut agent = task.agent(engine);
    for c in preload {
        agent.load_production(c).expect("preloaded chunk");
    }
    let learning = matches!(mode, RunMode::DuringChunking);
    let (report, agent) = run_agent(agent, learning);
    (report, agent.engine)
}
