//! Full runs of the three paper tasks in all three run modes.

use psme_tasks::{
    cypress_sub, eight_puzzle, run_serial, scrambled, strips, CypressConfig, RunMode,
    StripsConfig,
};
use psme_soar::StopReason;

#[test]
fn eight_puzzle_solves_and_learns() {
    let task = eight_puzzle(&scrambled(4, 11));
    let (without, _) = run_serial(&task, RunMode::WithoutChunking, false);
    assert_eq!(without.stop, StopReason::Halted, "{:?}", without.stats);
    assert_eq!(without.output, vec!["solved"]);
    assert!(without.stats.impasses > 0, "ties occurred");
    assert_eq!(without.stats.chunks_built, 0);

    let (during, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert_eq!(during.stop, StopReason::Halted);
    assert!(during.stats.chunks_built > 0, "learned chunks");

    let (after, _) = run_serial(&task, RunMode::AfterChunking, false);
    assert_eq!(after.stop, StopReason::Halted);
    assert!(
        after.stats.impasses < without.stats.impasses,
        "chunks prevent impasses: {} vs {}",
        after.stats.impasses,
        without.stats.impasses
    );
    assert!(after.stats.decisions <= without.stats.decisions);
}

#[test]
fn strips_solves_and_learns() {
    let task = strips(&StripsConfig::default());
    let (without, _) = run_serial(&task, RunMode::WithoutChunking, false);
    assert_eq!(without.stop, StopReason::Halted, "{:?}", without.stats);
    assert_eq!(without.output, vec!["arrived"]);
    assert!(without.stats.impasses > 0);

    let (during, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert_eq!(during.stop, StopReason::Halted);
    assert!(during.stats.chunks_built > 0);

    let (after, _) = run_serial(&task, RunMode::AfterChunking, false);
    assert_eq!(after.stop, StopReason::Halted);
    assert!(after.stats.impasses < without.stats.impasses);
}

#[test]
fn strips_opens_closed_doors_when_needed() {
    // Close every ring door on the short path: the robot must open one.
    let cfg = StripsConfig { rooms: 6, closed_doors: vec![3, 4], start: 0, target: 4, chords: true };
    let task = strips(&cfg);
    let (r, _) = run_serial(&task, RunMode::WithoutChunking, false);
    assert_eq!(r.stop, StopReason::Halted, "{:?}", r.stats);
}

#[test]
fn cypress_derives_and_learns() {
    let task = cypress_sub(&CypressConfig::default());
    let (without, _) = run_serial(&task, RunMode::WithoutChunking, false);
    assert_eq!(without.stop, StopReason::Halted, "{:?}", without.stats);
    assert_eq!(without.output, vec!["derived"]);
    assert!(without.stats.impasses >= 3, "ties at several depths: {:?}", without.stats);

    let (during, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert_eq!(during.stop, StopReason::Halted);
    assert!(during.stats.chunks_built >= 3, "{:?}", during.stats);

    let (after, _) = run_serial(&task, RunMode::AfterChunking, false);
    assert_eq!(after.stop, StopReason::Halted);
    assert!(after.stats.impasses < without.stats.impasses);
}

#[test]
fn chunk_ce_counts_exceed_task_production_ce_counts() {
    // Table 5-1: "the chunks produced have about two to three times more
    // CEs than the original hand-coded Soar productions".
    let task = eight_puzzle(&scrambled(4, 21));
    let (during, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert!(during.stats.chunks_built > 0);
    let avg_chunk: f64 = during.chunks.iter().map(|c| c.ce_count_flat() as f64).sum::<f64>()
        / during.chunks.len() as f64;
    assert!(
        avg_chunk > 3.0,
        "chunks are substantial: avg {avg_chunk} CEs"
    );
}
