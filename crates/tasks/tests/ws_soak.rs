//! Work-stealing soak test: a full eight-puzzle run with learning on.
//!
//! This is the tentpole's end-to-end gate. Chunks are built and added to
//! the network *mid-run* (§5.1 surgery + §5.2 state update executed
//! through the work-stealing deques), so every layer of the scheduler —
//! injector seeding, owner pushes, batched child publication, steals
//! during the update phase — is exercised under a real workload. The
//! parallel run must agree with the serial reference bit-for-bit on every
//! agent-visible number.

use psme_core::{EngineConfig, Scheduler};
use psme_ops::sym_name;
use psme_tasks::{eight_puzzle, run_parallel, run_serial, scrambled, RunMode};

fn chunk_names(r: &psme_tasks::RunReport) -> Vec<String> {
    r.chunks.iter().map(|c| sym_name(c.name).to_string()).collect()
}

fn assert_reports_match(ser: &psme_tasks::RunReport, par: &psme_tasks::RunReport, ctx: &str) {
    assert_eq!(par.stop, ser.stop, "{ctx}: stop reason");
    let (s, p) = (&ser.stats, &par.stats);
    assert_eq!(p.decisions, s.decisions, "{ctx}: decisions");
    assert_eq!(p.elaboration_cycles, s.elaboration_cycles, "{ctx}: elaboration cycles");
    assert_eq!(p.impasses, s.impasses, "{ctx}: impasses");
    assert_eq!(p.chunks_built, s.chunks_built, "{ctx}: chunks built");
    assert_eq!(p.firings, s.firings, "{ctx}: firings");
    assert_eq!(p.wme_adds, s.wme_adds, "{ctx}: wme adds");
    assert_eq!(p.wme_removes, s.wme_removes, "{ctx}: wme removes");
    assert_eq!(p.update_tasks, s.update_tasks, "{ctx}: update tasks");
    assert_eq!(chunk_names(par), chunk_names(ser), "{ctx}: chunk names");
    assert_eq!(par.output, ser.output, "{ctx}: (write …) output");
}

#[test]
fn eight_puzzle_learning_run_matches_serial_under_work_stealing() {
    let task = eight_puzzle(&scrambled(4, 11));
    let (ser, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert!(ser.stats.chunks_built > 0, "the soak must actually learn");

    let (par, engine) = run_parallel(
        &task,
        RunMode::DuringChunking,
        EngineConfig { workers: 4, scheduler: Scheduler::WorkStealing, ..Default::default() },
    );
    assert_reports_match(&ser, &par, "during-chunking ws4");

    // The run went through the deques: tasks were handed out, and the
    // chunk-addition update phase ran in parallel.
    let totals = engine.metrics.total_counters();
    assert!(par.stats.update_tasks > 0, "mid-run chunk additions did match work");
    assert!(
        totals.get(psme_obs::Counter::Batches) > 0,
        "activations moved in batches: {totals:?}"
    );
    // The alpha discrimination index carried the run: jump-table probes
    // happened and the per-wme cost beat the linear scan's accounting.
    assert!(totals.get(psme_obs::Counter::AlphaProbes) > 0, "index probed: {totals:?}");
    assert!(
        totals.get(psme_obs::Counter::AlphaTestsSaved)
            > totals.get(psme_obs::Counter::AlphaCandidates),
        "indexed discrimination saved work over linear: {totals:?}"
    );
}

/// The learning soak agrees with the serial engine bit-for-bit under every
/// scheduler — the discrimination index (spliced mid-run by each chunk
/// addition) must be invisible to the agent under all three queue
/// organizations.
#[test]
fn eight_puzzle_learning_run_matches_serial_under_all_schedulers() {
    let task = eight_puzzle(&scrambled(4, 11));
    let (ser, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert!(ser.stats.chunks_built > 0, "the soak must actually learn");
    for sched in [Scheduler::SingleQueue, Scheduler::MultiQueue, Scheduler::WorkStealing] {
        let (par, _) = run_parallel(
            &task,
            RunMode::DuringChunking,
            EngineConfig { workers: 4, scheduler: sched, ..Default::default() },
        );
        assert_reports_match(&ser, &par, &format!("during-chunking {sched:?}4"));
    }
}

/// The learned chunks must transfer: a fresh work-stealing run preloaded
/// with them behaves exactly like the serial after-chunking run.
#[test]
fn eight_puzzle_after_chunking_matches_serial_under_work_stealing() {
    let task = eight_puzzle(&scrambled(4, 11));
    let (ser, _) = run_serial(&task, RunMode::AfterChunking, false);
    let (par, _) = run_parallel(
        &task,
        RunMode::AfterChunking,
        EngineConfig { workers: 8, scheduler: Scheduler::WorkStealing, ..Default::default() },
    );
    assert_reports_match(&ser, &par, "after-chunking ws8");
}

/// Worker-count sweep on the learning run: the agent-visible trajectory is
/// scheduler- and parallelism-independent.
#[test]
fn eight_puzzle_learning_is_deterministic_across_ws_worker_counts() {
    let task = eight_puzzle(&scrambled(4, 21));
    let (ser, _) = run_serial(&task, RunMode::DuringChunking, false);
    for workers in [1usize, 2, 8] {
        let (par, _) = run_parallel(
            &task,
            RunMode::DuringChunking,
            EngineConfig { workers, scheduler: Scheduler::WorkStealing, ..Default::default() },
        );
        assert_reports_match(&ser, &par, &format!("during-chunking ws{workers}"));
    }
}
