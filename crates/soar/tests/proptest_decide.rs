//! Property-based tests for the decision procedure: invariants that must
//! hold for any preference set and goal stack.

use proptest::prelude::*;
use psme_ops::{intern, Symbol, WmeId};
use psme_soar::{decide, Decision, GoalCtx, PrefValue, Preference, Role};

fn sym(i: u8) -> Symbol {
    intern(&format!("obj{i}"))
}

fn pref_strategy() -> impl Strategy<Value = Preference> {
    (0u8..6, 0u8..3, 0u8..4, prop::option::of(0u8..3)).prop_map(|(obj, role, val, state)| {
        Preference {
            wme: WmeId(0),
            object: sym(obj),
            role: match role {
                0 => Role::ProblemSpace,
                1 => Role::State,
                _ => Role::Operator,
            },
            value: match val {
                0 => PrefValue::Acceptable,
                1 => PrefValue::Reject,
                2 => PrefValue::Best,
                _ => PrefValue::Indifferent,
            },
            goal: intern("g1"),
            state: state.map(|s| intern(&format!("s{s}"))),
        }
    })
}

fn stack_strategy() -> impl Strategy<Value = Vec<GoalCtx>> {
    (prop::option::of(0u8..3), prop::option::of(0u8..3), prop::option::of(0u8..6)).prop_map(
        |(ps, st, op)| {
            // Slots fill left to right, as the architecture maintains them.
            let ps = ps.map(|i| intern(&format!("ps{i}")));
            let st = if ps.is_some() { st.map(|i| intern(&format!("s{i}"))) } else { None };
            let op = if st.is_some() { op.map(sym) } else { None };
            vec![GoalCtx { id: intern("g1"), level: 0, slots: [ps, st, op], impasse: None }]
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The winner of a Change decision is never a rejected candidate and is
    /// always acceptable (for the goal/role/scope it applies to).
    #[test]
    fn winners_are_acceptable_and_unrejected(
        stack in stack_strategy(),
        prefs in prop::collection::vec(pref_strategy(), 0..24),
    ) {
        if let Decision::Change { goal_idx, role, winner: Some(w) } = decide(&stack, &prefs) {
            let g = &stack[goal_idx];
            let scope_ok = |p: &&Preference| {
                p.goal == g.id && p.role == role && match p.state {
                    Some(s) => g.slot(Role::State) == Some(s),
                    None => true,
                }
            };
            prop_assert!(
                prefs.iter().filter(scope_ok).any(|p| p.value == PrefValue::Acceptable && p.object == w),
                "winner {w} has an acceptable preference"
            );
            prop_assert!(
                !prefs.iter().filter(scope_ok).any(|p| p.value == PrefValue::Reject && p.object == w),
                "winner {w} is not rejected"
            );
        }
    }

    /// Decisions are insensitive to preference order (the paper's parallel
    /// firing produces preferences in nondeterministic order).
    #[test]
    fn decision_is_order_independent(
        stack in stack_strategy(),
        prefs in prop::collection::vec(pref_strategy(), 0..24),
        rotate in 0usize..24,
    ) {
        let a = decide(&stack, &prefs);
        let mut shuffled = prefs.clone();
        let n = shuffled.len();
        if n > 0 {
            shuffled.rotate_left(rotate % n);
        }
        let b = decide(&stack, &shuffled);
        prop_assert_eq!(a, b);
    }

    /// Tie impasses list exactly the undominated candidates, sorted.
    #[test]
    fn tie_items_are_the_candidates(
        stack in stack_strategy(),
        prefs in prop::collection::vec(pref_strategy(), 0..24),
    ) {
        if let Decision::NewImpasse { parent_idx, key } = decide(&stack, &prefs) {
            let g = &stack[parent_idx];
            if key.kind == psme_soar::ImpasseKind::Tie {
                prop_assert!(key.items.len() >= 2);
                let mut sorted = key.items.clone();
                sorted.sort_by_key(|s| psme_ops::sym_name(*s));
                prop_assert_eq!(&key.items, &sorted, "items sorted deterministically");
                for item in &key.items {
                    let scope_ok = |p: &&Preference| {
                        p.goal == g.id && p.role == key.role && match p.state {
                            Some(s) => g.slot(Role::State) == Some(s),
                            None => true,
                        }
                    };
                    prop_assert!(prefs.iter().filter(scope_ok).any(
                        |p| p.value == PrefValue::Acceptable && p.object == *item));
                    prop_assert!(!prefs.iter().filter(scope_ok).any(
                        |p| p.value == PrefValue::Reject && p.object == *item));
                }
            }
        }
    }

    /// decide() never panics and always yields one of its variants, for any
    /// input (totality).
    #[test]
    fn decide_is_total(
        stack in stack_strategy(),
        prefs in prop::collection::vec(pref_strategy(), 0..32),
    ) {
        let _ = decide(&stack, &prefs);
    }
}
