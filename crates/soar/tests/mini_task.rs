//! End-to-end test of the full Soar loop on a miniature task:
//! proposal → operator tie → selection subgoal → evaluation → best
//! preference (a chunkable result) → chunk compiled at run time → operator
//! applied → halt. Then the after-chunking run shows the learned chunk
//! preventing the impasse, on both the serial and the parallel engine.

use psme_core::{EngineConfig, MatchEngine, ParallelEngine, Scheduler};
use psme_ops::{intern, parse_program, parse_wme, ClassRegistry};
use psme_rete::{ReteNetwork, SerialEngine};
use psme_soar::{declare_arch_classes, Agent, SoarTask, StopReason};
use std::sync::Arc;

/// The "fruit boxes" task: two boxes with different payoffs; opening the
/// fuller one is better. Forces exactly one operator tie.
fn fruit_task() -> SoarTask {
    let mut classes = ClassRegistry::new();
    declare_arch_classes(&mut classes);
    let src = "
(literalize box id owner contains)
(literalize op id box)

(p fruit*init-ps
   (goal ^id <g> ^type top)
  -->
   (make preference ^object ps-fruit ^role problem-space ^value acceptable ^goal <g>))

(p fruit*init-state
   (goal ^id <g> ^problem-space ps-fruit)
  -->
   (make preference ^object s0 ^role state ^value acceptable ^goal <g>))

(p fruit*propose
   (goal ^id <g> ^state <s>)
   (box ^id <b> ^owner <s>)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^box <b>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))

(p fruit*eval
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (op ^id <o> ^box <b>)
   (box ^id <b> ^contains <n>)
  -->
   (make eval ^goal <g2> ^object <o> ^value <n>))

(p fruit*apply
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^box <b>)
   (box ^id <b> ^contains <n>)
  -->
   (write took <n>)
   (halt))
";
    let productions = parse_program(src, &mut classes)
        .unwrap()
        .into_iter()
        .map(Arc::new)
        .collect();
    let init_wmes = vec![
        parse_wme("(box ^id b1 ^owner s0 ^contains 3)", &classes).unwrap(),
        parse_wme("(box ^id b2 ^owner s0 ^contains 7)", &classes).unwrap(),
    ];
    SoarTask {
        name: "fruit".into(),
        classes,
        productions,
        init_wmes,
        identifiers: vec![intern("ps-fruit"), intern("s0"), intern("b1"), intern("b2")],
    }
}

fn run_learning<E: MatchEngine>(engine: E) -> (Agent<E>, StopReason) {
    let task = fruit_task();
    let mut agent = task.agent(engine);
    agent.learning = true;
    let stop = agent.run(50);
    (agent, stop)
}

#[test]
fn during_chunking_run_solves_and_learns() {
    let (agent, stop) = run_learning(SerialEngine::new(ReteNetwork::new()));
    assert_eq!(stop, StopReason::Halted);
    assert_eq!(agent.output, vec!["took 7"], "picked the fuller box");
    assert_eq!(agent.stats.impasses, 1, "exactly one operator tie");
    assert_eq!(agent.stats.chunks_built, 1, "the tie produced one chunk");
    assert!(agent.stats.update_tasks > 0, "chunk state update ran through the matcher");
    assert!(agent.stats.decisions >= 4);

    // The chunk's shape: conditions in the supergoal (acceptable preference,
    // operator structure, box), action = best preference.
    let chunk = &agent.learned_chunks()[0];
    assert!(chunk.ce_count_flat() >= 3, "chunk has {} CEs", chunk.ce_count_flat());
    assert!(chunk
        .actions
        .iter()
        .any(|a| matches!(a, psme_ops::Action::Make { class, .. } if *class == intern("preference"))));
}

#[test]
fn without_chunking_run_still_solves() {
    let task = fruit_task();
    let mut agent = task.agent(SerialEngine::new(ReteNetwork::new()));
    agent.learning = false;
    let stop = agent.run(50);
    assert_eq!(stop, StopReason::Halted);
    assert_eq!(agent.output, vec!["took 7"]);
    assert_eq!(agent.stats.chunks_built, 0);
    assert_eq!(agent.stats.impasses, 1);
}

#[test]
fn after_chunking_run_avoids_the_impasse() {
    let (first, _) = run_learning(SerialEngine::new(ReteNetwork::new()));
    let chunks = first.learned_chunks();
    assert_eq!(chunks.len(), 1);

    // Fresh agent, same task, chunks preloaded.
    let task = fruit_task();
    let mut agent = task.agent(SerialEngine::new(ReteNetwork::new()));
    for c in chunks {
        agent.load_production(c).unwrap();
    }
    agent.learning = true; // nothing new should be learned
    let stop = agent.run(50);
    assert_eq!(stop, StopReason::Halted);
    assert_eq!(agent.output, vec!["took 7"]);
    assert_eq!(agent.stats.impasses, 0, "the chunk preempted the tie");
    assert_eq!(agent.stats.chunks_built, 0);
    assert!(
        agent.stats.decisions < first.stats.decisions,
        "after-chunking run is shorter: {} vs {}",
        agent.stats.decisions,
        first.stats.decisions
    );
}

#[test]
fn parallel_engine_runs_the_same_task() {
    let (serial_agent, s1) = run_learning(SerialEngine::new(ReteNetwork::new()));
    let (par_agent, s2) = run_learning(ParallelEngine::new(
        ReteNetwork::new(),
        EngineConfig { workers: 3, scheduler: Scheduler::MultiQueue, ..Default::default() },
    ));
    assert_eq!(s1, StopReason::Halted);
    assert_eq!(s2, StopReason::Halted);
    assert_eq!(serial_agent.output, par_agent.output);
    assert_eq!(serial_agent.stats.decisions, par_agent.stats.decisions);
    assert_eq!(serial_agent.stats.impasses, par_agent.stats.impasses);
    assert_eq!(serial_agent.stats.chunks_built, par_agent.stats.chunks_built);
}

#[test]
fn garbage_collection_reclaims_subgoal_structure() {
    let (agent, _) = run_learning(SerialEngine::new(ReteNetwork::new()));
    // After the run, no subgoal wmes survive: one goal in the stack, and no
    // eval wmes or subgoal goal-augmentations in WM.
    assert_eq!(agent.stack.len(), 1);
    agent.engine.with_store(|s| {
        for (_, w) in s.iter_alive() {
            assert_ne!(w.class, intern("eval"), "eval wme leaked: {w:?}");
        }
    });
    assert!(agent.stats.wme_removes > 0, "GC actually removed wmes");
}
