//! The decision procedure (§3): "If a decision can be reached about the
//! problem space, state or operator (the context element) to be used, then
//! the wmes related to the new context element are added to the system and
//! the older wmes are removed. If a decision cannot be reached, then an
//! impasse results and the system creates a subgoal to solve the impasse."
//!
//! Pure functions over the goal stack and the decoded preferences; the
//! agent performs the wme surgery the returned [`Decision`] prescribes.

use crate::arch::{PrefValue, Preference, Role};
use psme_ops::{sym_name, Symbol};

/// One goal in the context stack.
#[derive(Clone, Debug)]
pub struct GoalCtx {
    /// Goal identifier.
    pub id: Symbol,
    /// Depth (0 = top goal).
    pub level: u32,
    /// Current problem-space / state / operator.
    pub slots: [Option<Symbol>; 3],
    /// The impasse this goal was created for (`None` for the top goal).
    pub impasse: Option<ImpasseKey>,
}

impl GoalCtx {
    /// Slot accessor.
    pub fn slot(&self, r: Role) -> Option<Symbol> {
        self.slots[slot_index(r)]
    }

    /// Slot mutator.
    pub fn set_slot(&mut self, r: Role, v: Option<Symbol>) {
        self.slots[slot_index(r)] = v;
    }
}

/// Index of a role in the slot array.
pub fn slot_index(r: Role) -> usize {
    match r {
        Role::ProblemSpace => 0,
        Role::State => 1,
        Role::Operator => 2,
    }
}

/// Impasse identity: the same impasse persisting across decisions keeps its
/// subgoal; a different one replaces it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImpasseKey {
    /// Slot that could not be decided.
    pub role: Role,
    /// Tie (several candidates) or no-change (none).
    pub kind: ImpasseKind,
    /// Tied candidates (sorted), or the stuck operator for no-change.
    pub items: Vec<Symbol>,
}

/// Impasse flavor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImpasseKind {
    /// Multiple undominated candidates.
    Tie,
    /// No candidate (or no progress at the bottom goal).
    NoChange,
}

impl ImpasseKind {
    /// Wme symbol.
    pub fn symbol(self) -> Symbol {
        match self {
            ImpasseKind::Tie => psme_ops::intern("tie"),
            ImpasseKind::NoChange => psme_ops::intern("no-change"),
        }
    }
}

/// The outcome of scanning the context stack.
#[derive(Clone, PartialEq, Debug)]
pub enum Decision {
    /// Install `winner` (or vacate, when `None`) in `role` of goal
    /// `goal_idx`; everything below that goal is popped.
    Change {
        /// Stack index of the goal whose slot changes.
        goal_idx: usize,
        /// The changed slot.
        role: Role,
        /// New occupant.
        winner: Option<Symbol>,
    },
    /// Create a subgoal below `parent_idx` for `key` (replacing any
    /// existing deeper goals).
    NewImpasse {
        /// Stack index of the impassed goal.
        parent_idx: usize,
        /// The impasse.
        key: ImpasseKey,
    },
    /// Every slot is stable and the bottom goal has no open impasse work:
    /// the run is stuck (the agent halts).
    Stuck,
}

fn deterministic_pick(items: &[Symbol]) -> Symbol {
    *items
        .iter()
        .min_by(|a, b| sym_name(**a).cmp(&sym_name(**b)))
        .expect("non-empty candidate pool")
}

/// What one slot's preferences dictate.
#[derive(Clone, PartialEq, Debug)]
enum SlotOutcome {
    Keep,
    Change(Option<Symbol>),
    Impasse(ImpasseKey),
}

fn decide_slot(goal: &GoalCtx, role: Role, prefs: &[Preference]) -> SlotOutcome {
    let current = goal.slot(role);
    let relevant = |p: &&Preference| {
        p.goal == goal.id
            && p.role == role
            && match p.state {
                // State-scoped preferences (operator proposals) only count
                // while that state is current.
                Some(s) => goal.slot(Role::State) == Some(s),
                None => true,
            }
    };
    let mut acceptable: Vec<Symbol> = Vec::new();
    let mut rejects: Vec<Symbol> = Vec::new();
    let mut bests: Vec<Symbol> = Vec::new();
    let mut indiff: Vec<Symbol> = Vec::new();
    for p in prefs.iter().filter(relevant) {
        match p.value {
            PrefValue::Acceptable => acceptable.push(p.object),
            PrefValue::Reject => rejects.push(p.object),
            PrefValue::Best => bests.push(p.object),
            PrefValue::Indifferent => indiff.push(p.object),
        }
    }
    let mut candidates: Vec<Symbol> =
        acceptable.iter().copied().filter(|o| !rejects.contains(o)).collect();
    candidates.sort_by_key(|c| sym_name(*c));
    candidates.dedup();

    if candidates.is_empty() {
        return match current {
            Some(c) if rejects.contains(&c) => SlotOutcome::Change(None),
            Some(_) => SlotOutcome::Keep,
            None => SlotOutcome::Impasse(ImpasseKey {
                role,
                kind: ImpasseKind::NoChange,
                items: vec![],
            }),
        };
    }
    // The current occupant stays unless rejected or dominated.
    if let Some(c) = current {
        if candidates.contains(&c) && bests.iter().all(|b| rejects.contains(b) || *b == c) {
            return SlotOutcome::Keep;
        }
    }
    let live_bests: Vec<Symbol> =
        candidates.iter().copied().filter(|o| bests.contains(o)).collect();
    let pool = if live_bests.is_empty() { candidates } else { live_bests };
    let winner = if pool.len() == 1 {
        pool[0]
    } else if pool.iter().all(|o| indiff.contains(o)) || pool.len() > 1 && !bests.is_empty() {
        // All-indifferent ties and multiple-best ties resolve
        // deterministically (documented simplification of Soar's random
        // indifferent choice — determinism keeps runs reproducible).
        deterministic_pick(&pool)
    } else {
        return SlotOutcome::Impasse(ImpasseKey { role, kind: ImpasseKind::Tie, items: pool });
    };
    if current == Some(winner) {
        SlotOutcome::Keep
    } else {
        SlotOutcome::Change(Some(winner))
    }
}

/// Scan the context stack from the top goal down and produce the decision.
pub fn decide(stack: &[GoalCtx], prefs: &[Preference]) -> Decision {
    for (gi, goal) in stack.iter().enumerate() {
        for role in Role::ALL {
            match decide_slot(goal, role, prefs) {
                SlotOutcome::Keep => continue,
                SlotOutcome::Change(winner) => {
                    return Decision::Change { goal_idx: gi, role, winner }
                }
                SlotOutcome::Impasse(key) => {
                    // An existing subgoal for the same impasse continues its
                    // work; scanning proceeds into it.
                    if let Some(below) = stack.get(gi + 1) {
                        if below.impasse.as_ref() == Some(&key) {
                            break; // examine the subgoal's own slots next
                        }
                    }
                    return Decision::NewImpasse { parent_idx: gi, key };
                }
            }
        }
    }
    // Every goal is stable. The bottom goal makes no progress: an operator
    // no-change impasse if an operator is selected, else stuck.
    let bottom = stack.last().expect("non-empty goal stack");
    if let Some(op) = bottom.slot(Role::Operator) {
        let key =
            ImpasseKey { role: Role::Operator, kind: ImpasseKind::NoChange, items: vec![op] };
        if bottom.impasse.as_ref() != Some(&key) {
            return Decision::NewImpasse { parent_idx: stack.len() - 1, key };
        }
    }
    Decision::Stuck
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::intern;
    use psme_ops::WmeId;

    fn goal(id: &str, level: u32) -> GoalCtx {
        GoalCtx { id: intern(id), level, slots: [None, None, None], impasse: None }
    }

    fn pref(goal: &str, role: Role, value: PrefValue, object: &str) -> Preference {
        Preference {
            wme: WmeId(0),
            object: intern(object),
            role,
            value,
            goal: intern(goal),
            state: None,
        }
    }

    #[test]
    fn single_acceptable_wins() {
        let stack = vec![goal("g1", 0)];
        let prefs = vec![pref("g1", Role::ProblemSpace, PrefValue::Acceptable, "ps1")];
        assert_eq!(
            decide(&stack, &prefs),
            Decision::Change { goal_idx: 0, role: Role::ProblemSpace, winner: Some(intern("ps1")) }
        );
    }

    #[test]
    fn reject_removes_candidate() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        let prefs = vec![
            pref("g1", Role::State, PrefValue::Acceptable, "s1"),
            pref("g1", Role::State, PrefValue::Acceptable, "s2"),
            pref("g1", Role::State, PrefValue::Reject, "s1"),
        ];
        assert_eq!(
            decide(&stack, &prefs),
            Decision::Change { goal_idx: 0, role: Role::State, winner: Some(intern("s2")) }
        );
    }

    #[test]
    fn tie_impasses() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        let prefs = vec![
            pref("g1", Role::Operator, PrefValue::Acceptable, "o1"),
            pref("g1", Role::Operator, PrefValue::Acceptable, "o2"),
        ];
        match decide(&stack, &prefs) {
            Decision::NewImpasse { parent_idx: 0, key } => {
                assert_eq!(key.kind, ImpasseKind::Tie);
                assert_eq!(key.role, Role::Operator);
                assert_eq!(key.items, vec![intern("o1"), intern("o2")]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn best_resolves_tie() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        let prefs = vec![
            pref("g1", Role::Operator, PrefValue::Acceptable, "o1"),
            pref("g1", Role::Operator, PrefValue::Acceptable, "o2"),
            pref("g1", Role::Operator, PrefValue::Best, "o2"),
        ];
        assert_eq!(
            decide(&stack, &prefs),
            Decision::Change { goal_idx: 0, role: Role::Operator, winner: Some(intern("o2")) }
        );
    }

    #[test]
    fn existing_subgoal_continues_into_its_slots() {
        let mut stack = vec![goal("g1", 0), goal("g2", 1)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        let key = ImpasseKey {
            role: Role::Operator,
            kind: ImpasseKind::Tie,
            items: vec![intern("o1"), intern("o2")],
        };
        stack[1].impasse = Some(key);
        let prefs = vec![
            pref("g1", Role::Operator, PrefValue::Acceptable, "o1"),
            pref("g1", Role::Operator, PrefValue::Acceptable, "o2"),
            // The subgoal has its own problem-space preference.
            pref("g2", Role::ProblemSpace, PrefValue::Acceptable, "selection"),
        ];
        assert_eq!(
            decide(&stack, &prefs),
            Decision::Change { goal_idx: 1, role: Role::ProblemSpace, winner: Some(intern("selection")) }
        );
    }

    #[test]
    fn state_scoped_operator_prefs_expire() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s2")));
        let mut p = pref("g1", Role::Operator, PrefValue::Acceptable, "o-old");
        p.state = Some(intern("s1")); // proposed for the superseded state
        match decide(&stack, &[p]) {
            Decision::NewImpasse { key, .. } => assert_eq!(key.kind, ImpasseKind::NoChange),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bottom_goal_operator_no_change() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        stack[0].set_slot(Role::Operator, Some(intern("o1")));
        let prefs = vec![pref("g1", Role::Operator, PrefValue::Acceptable, "o1")];
        match decide(&stack, &prefs) {
            Decision::NewImpasse { parent_idx: 0, key } => {
                assert_eq!(key.kind, ImpasseKind::NoChange);
                assert_eq!(key.items, vec![intern("o1")]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejected_current_with_no_alternative_vacates() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        let prefs = vec![pref("g1", Role::ProblemSpace, PrefValue::Reject, "ps1")];
        assert_eq!(
            decide(&stack, &prefs),
            Decision::Change { goal_idx: 0, role: Role::ProblemSpace, winner: None }
        );
    }

    #[test]
    fn indifferent_candidates_resolve_deterministically() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        let prefs = vec![
            pref("g1", Role::Operator, PrefValue::Acceptable, "ob"),
            pref("g1", Role::Operator, PrefValue::Acceptable, "oa"),
            pref("g1", Role::Operator, PrefValue::Indifferent, "ob"),
            pref("g1", Role::Operator, PrefValue::Indifferent, "oa"),
        ];
        assert_eq!(
            decide(&stack, &prefs),
            Decision::Change { goal_idx: 0, role: Role::Operator, winner: Some(intern("oa")) }
        );
    }

    #[test]
    fn stuck_when_nothing_progresses() {
        let mut stack = vec![goal("g1", 0)];
        stack[0].set_slot(Role::ProblemSpace, Some(intern("ps1")));
        stack[0].set_slot(Role::State, Some(intern("s1")));
        // No operator candidates and no current operator → no-change impasse
        // first; with that subgoal installed and also stuck, Stuck.
        let key = ImpasseKey { role: Role::Operator, kind: ImpasseKind::NoChange, items: vec![] };
        match decide(&stack, &[]) {
            Decision::NewImpasse { key: k, .. } => assert_eq!(k, key),
            other => panic!("{other:?}"),
        }
        let mut g2 = goal("g2", 1);
        g2.impasse = Some(key);
        g2.set_slot(Role::ProblemSpace, Some(intern("ps-x")));
        g2.set_slot(Role::State, Some(intern("s-x")));
        let stack2 = vec![stack[0].clone(), g2];
        // The subgoal handles the impasse but itself has no operator and no
        // candidates → it impasses no-change in turn (new, deeper impasse).
        match decide(&stack2, &[]) {
            Decision::NewImpasse { parent_idx: 1, key } => {
                assert_eq!(key.kind, ImpasseKind::NoChange)
            }
            other => panic!("{other:?}"),
        }
    }
}
