//! Working-memory bookkeeping on top of the match engine's store: goal
//! levels, object levels, provenance records (for chunking's dependency
//! analysis) and the structural-duplicate index (Soar WM is a set).

use psme_ops::{intern, ClassRegistry, Symbol, Value, Wme, WmeId};
use psme_rete::util::{FxHashMap, FxHashSet};
use psme_rete::WmeStore;

/// Where a wme came from — the chunker backtraces through these.
#[derive(Clone, Debug)]
pub enum Provenance {
    /// Created by the architecture; `sources` are the wmes that caused it
    /// (e.g. a tie-impasse `^item` augmentation is caused by the candidate's
    /// acceptable preference).
    Arch {
        /// Causing wmes (may be empty — such wmes contribute no conditions).
        sources: Vec<WmeId>,
    },
    /// Created by a production firing; the instantiation's matched wmes.
    Fired {
        /// Matched wme ids of the creating instantiation.
        matched: Vec<WmeId>,
        /// The production that fired (the chunker grounds its negated CEs
        /// into chunk conditions).
        prod: Symbol,
    },
}

/// The bookkeeping ledger.
#[derive(Debug, Default)]
pub struct WmBook {
    /// Goal level of each live/expired wme (0 = top goal context).
    pub wme_level: FxHashMap<WmeId, u32>,
    /// Current (possibly promoted) level of each object identifier.
    pub obj_level: FxHashMap<Symbol, u32>,
    /// Level at which each object was originally created (promotion does
    /// not rewrite this — the chunker uses it to find subgoal-born objects).
    pub obj_native_level: FxHashMap<Symbol, u32>,
    /// Provenance per wme.
    pub provenance: FxHashMap<WmeId, Provenance>,
    /// Structural index of live wmes (set semantics).
    pub alive_index: FxHashMap<Wme, WmeId>,
    /// Symbols that denote object identifiers (variablized by chunking).
    pub identifiers: FxHashSet<Symbol>,
    /// Wmes that must never be garbage collected (task-static structure).
    pub pinned: FxHashSet<WmeId>,
}

impl WmBook {
    /// Fresh ledger.
    pub fn new() -> WmBook {
        WmBook::default()
    }

    /// Register an identifier symbol (task init objects, gensym'd ids).
    pub fn register_identifier(&mut self, s: Symbol) {
        self.identifiers.insert(s);
    }

    /// Is the symbol a known object identifier?
    pub fn is_identifier(&self, s: Symbol) -> bool {
        self.identifiers.contains(&s)
    }

    /// Record a newly added wme.
    pub fn note_add(&mut self, id: WmeId, wme: &Wme, level: u32, prov: Provenance, pinned: bool) {
        self.wme_level.insert(id, level);
        self.provenance.insert(id, prov);
        self.alive_index.insert(wme.clone(), id);
        if pinned {
            self.pinned.insert(id);
        }
    }

    /// Record a removal.
    pub fn note_remove(&mut self, id: WmeId, wme: &Wme) {
        if self.alive_index.get(wme) == Some(&id) {
            self.alive_index.remove(wme);
        }
        self.pinned.remove(&id);
        // Levels and provenance are kept: in-flight references (conflict-set
        // retractions, chunk backtraces within the same phase) may still
        // need them.
    }

    /// Goal level of a wme (0 — top context — when untracked).
    pub fn level_of(&self, id: WmeId) -> u32 {
        self.wme_level.get(&id).copied().unwrap_or(0)
    }

    /// Current level of an object (0 when untracked/static).
    pub fn level_of_obj(&self, s: Symbol) -> u32 {
        self.obj_level.get(&s).copied().unwrap_or(0)
    }

    /// Register a fresh object created at `level`.
    pub fn note_new_object(&mut self, s: Symbol, level: u32) {
        self.obj_level.entry(s).or_insert(level);
        self.obj_native_level.entry(s).or_insert(level);
        self.identifiers.insert(s);
    }

    /// Promote `obj` (and, transitively, the objects its augmentations
    /// reference) to `level` if it currently sits deeper. This is Soar's
    /// result promotion: a subgoal object linked into a supergoal structure
    /// becomes part of the supergoal context and must survive the subgoal's
    /// garbage collection.
    pub fn promote(&mut self, obj: Symbol, level: u32, store: &WmeStore, reg: &ClassRegistry) {
        let cur = self.level_of_obj(obj);
        if cur <= level {
            return;
        }
        self.obj_level.insert(obj, level);
        // Re-level this object's augmentation wmes and recurse into their
        // identifier values.
        let mut to_promote: Vec<Symbol> = Vec::new();
        for (wid, w) in store.iter_alive() {
            let Some(decl) = reg.get(w.class) else { continue };
            let Some(idf) = decl.field_of(intern("id")) else { continue };
            if w.field(idf) != Value::Sym(obj) {
                continue;
            }
            if self.level_of(wid) > level {
                self.wme_level.insert(wid, level);
            }
            for (i, v) in w.fields.iter().enumerate() {
                if i as u16 == idf {
                    continue;
                }
                if let Value::Sym(s) = v {
                    if self.is_identifier(*s) && self.level_of_obj(*s) > level {
                        to_promote.push(*s);
                    }
                }
            }
        }
        for s in to_promote {
            self.promote(s, level, store, reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("obj", &["id", "link", "color"]);
        r
    }

    #[test]
    fn add_remove_index() {
        let r = reg();
        let mut store = WmeStore::new();
        let mut b = WmBook::new();
        let w = psme_ops::parse_wme("(obj ^id o1 ^color red)", &r).unwrap();
        let (id, _) = store.add(w.clone());
        b.note_add(id, &w, 2, Provenance::Arch { sources: vec![] }, false);
        assert_eq!(b.alive_index.get(&w), Some(&id));
        assert_eq!(b.level_of(id), 2);
        b.note_remove(id, &w);
        assert!(!b.alive_index.contains_key(&w));
        // level survives removal for in-flight references
        assert_eq!(b.level_of(id), 2);
    }

    #[test]
    fn object_levels_and_identifiers() {
        let mut b = WmBook::new();
        let o = intern("o-77");
        assert_eq!(b.level_of_obj(o), 0);
        assert!(!b.is_identifier(o));
        b.note_new_object(o, 3);
        assert_eq!(b.level_of_obj(o), 3);
        assert!(b.is_identifier(o));
        // note_new_object is idempotent w.r.t. the native level
        b.note_new_object(o, 5);
        assert_eq!(b.obj_native_level[&o], 3);
    }

    #[test]
    fn promotion_is_transitive() {
        let r = reg();
        let mut store = WmeStore::new();
        let mut b = WmBook::new();
        let (o1, o2) = (intern("p1"), intern("p2"));
        b.note_new_object(o1, 2);
        b.note_new_object(o2, 2);
        // o1 links to o2.
        let w1 = psme_ops::parse_wme("(obj ^id p1 ^link p2)", &r).unwrap();
        let (id1, _) = store.add(w1.clone());
        b.note_add(id1, &w1, 2, Provenance::Arch { sources: vec![] }, false);
        let w2 = psme_ops::parse_wme("(obj ^id p2 ^color blue)", &r).unwrap();
        let (id2, _) = store.add(w2.clone());
        b.note_add(id2, &w2, 2, Provenance::Arch { sources: vec![] }, false);

        b.promote(o1, 0, &store, &r);
        assert_eq!(b.level_of_obj(o1), 0);
        assert_eq!(b.level_of_obj(o2), 0, "linked object promoted too");
        assert_eq!(b.level_of(id1), 0);
        assert_eq!(b.level_of(id2), 0);
        // native level unchanged (chunker needs the birth level)
        assert_eq!(b.obj_native_level[&o1], 2);
    }
}
