//! Chunking (§3, §5): "Chunking works by recording the wmes of each
//! instantiation and the wmes created by firing that instantiation. When a
//! wme is created that is accessible from any context, other than the most
//! recent context, chunking builds a new chunk … \[it\] performs a dependency
//! analysis by searching backward through the instantiation records to find
//! the wmes that existed before the result context that were used to
//! generate this result. It then constructs a new production whose LHS is
//! based on these wmes and whose RHS reconstructs the result."

use crate::wm::{Provenance, WmBook};
use psme_ops::{
    intern, Action, ClassRegistry, Cond, CondElem, FieldTest, Pred, Production, RhsBind, RhsExpr,
    RhsTerm, Symbol, Value, VarId, VarTable, WmeId,
};
use psme_rete::util::FxHashSet;
use psme_rete::WmeStore;
use std::collections::HashSet;

/// Builds chunks and deduplicates structurally identical ones.
#[derive(Debug, Default)]
pub struct Chunker {
    pub(crate) counter: u32,
    pub(crate) seen: HashSet<String>,
    /// Chunks built so far (in creation order).
    pub chunks: Vec<std::sync::Arc<Production>>,
}

/// The inputs to one chunk build.
pub struct ChunkRequest<'a> {
    /// The result wmes (created at a level above the firing goal).
    pub results: &'a [WmeId],
    /// Matched wmes of the creating instantiation.
    pub matched: &'a [WmeId],
    /// The production that created the results.
    pub prod: Symbol,
    /// The deepest level the conditions may come from (the result level).
    pub result_level: u32,
}

/// How a grounded negated-condition operand resolves.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GroundVal {
    /// A constant (or a non-identifier binding value).
    Const(Value),
    /// An identifier bound by the traced instantiation — becomes the
    /// chunk variable of that identifier if some positive condition binds
    /// it, otherwise the whole negation is dropped (ungroundable).
    Ident(Symbol),
    /// A negation-local variable (fresh in the chunk).
    Local(u16),
}

/// A negated CE grounded with a traced instantiation's bindings.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct GroundedNeg {
    class: Symbol,
    tests: Vec<(u16, Pred, GroundVal)>,
}

/// Ground the negated CEs of a traced instantiation (Soar includes the
/// negations of backtraced instantiations in the chunk so the learned rule
/// keeps the discriminations that gated the result — e.g. the "tile is not
/// headed to its desired cell" tests of a neutral move evaluation).
fn ground_negs(
    prod: &Production,
    matched: &[WmeId],
    store: &WmeStore,
    book: &WmBook,
    out: &mut Vec<GroundedNeg>,
) {
    if !prod.ces.iter().any(|ce| matches!(ce, CondElem::Neg(_))) {
        return;
    }
    let arcs: Vec<std::sync::Arc<psme_ops::Wme>> =
        matched.iter().map(|id| store.get(*id).clone()).collect();
    let refs: Vec<&psme_ops::Wme> = arcs.iter().map(|a| a.as_ref()).collect();
    if refs.len() != prod.num_pos as usize {
        return;
    }
    let bindings = prod.bindings_of(&refs);
    for ce in &prod.ces {
        let CondElem::Neg(c) = ce else { continue };
        let mut local_map: std::collections::HashMap<VarId, u16> = Default::default();
        let mut tests = Vec::new();
        let mut ok = true;
        for t in &c.tests {
            match *t {
                FieldTest::Const { field, pred, value } => {
                    tests.push((field, pred, GroundVal::Const(value)))
                }
                FieldTest::Var { field, pred, var } => {
                    match prod.bind_sites[var.0 as usize] {
                        psme_ops::BindSite::Pos { .. } => {
                            let v = bindings[var.0 as usize];
                            match v {
                                Value::Sym(s) if book.is_identifier(s) => {
                                    tests.push((field, pred, GroundVal::Ident(s)))
                                }
                                Value::Nil => ok = false,
                                other => tests.push((field, pred, GroundVal::Const(other))),
                            }
                        }
                        psme_ops::BindSite::NegLocal { .. } => {
                            let next = local_map.len() as u16;
                            let idx = *local_map.entry(var).or_insert(next);
                            tests.push((field, pred, GroundVal::Local(idx)));
                        }
                        psme_ops::BindSite::Rhs => ok = false,
                    }
                }
            }
            if !ok {
                break;
            }
        }
        if ok {
            let gn = GroundedNeg { class: c.class, tests };
            if !out.contains(&gn) {
                out.push(gn);
            }
        }
    }
}

impl Chunker {
    /// Fresh chunker.
    pub fn new() -> Chunker {
        Chunker::default()
    }

    /// Number of chunks built.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// `true` before the first chunk.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Backtrace, variablize and construct a chunk. Returns `None` when an
    /// identical chunk already exists or no supergoal conditions remain.
    pub fn build(
        &mut self,
        req: ChunkRequest<'_>,
        book: &WmBook,
        store: &WmeStore,
        reg: &ClassRegistry,
        lookup: &dyn Fn(Symbol) -> Option<std::sync::Arc<Production>>,
    ) -> Option<std::sync::Arc<Production>> {
        // ---- Dependency analysis (backtrace) ----
        let mut visited: FxHashSet<WmeId> = FxHashSet::default();
        let mut conditions: Vec<WmeId> = Vec::new();
        let mut neg_specs: Vec<GroundedNeg> = Vec::new();
        if let Some(p) = lookup(req.prod) {
            ground_negs(&p, req.matched, store, book, &mut neg_specs);
        }
        let mut traced_insts: FxHashSet<WmeId> = FxHashSet::default();
        let mut work: Vec<WmeId> = req.matched.to_vec();
        while let Some(w) = work.pop() {
            if !visited.insert(w) {
                continue;
            }
            if book.level_of(w) <= req.result_level {
                conditions.push(w);
                continue;
            }
            match book.provenance.get(&w) {
                Some(Provenance::Fired { matched, prod }) => {
                    // Ground this instantiation's negations once (keyed by
                    // any one wme it created — instantiations creating
                    // several wmes share the same matched set).
                    if traced_insts.insert(w) {
                        if let Some(p) = lookup(*prod) {
                            ground_negs(&p, matched, store, book, &mut neg_specs);
                        }
                    }
                    work.extend(matched.iter().copied());
                }
                Some(Provenance::Arch { sources }) => work.extend(sources.iter().copied()),
                // Untracked subgoal-internal wme: contributes nothing.
                None => {}
            }
        }
        if conditions.is_empty() {
            return None;
        }
        // Stable order: creation (time-tag) order.
        conditions.sort_by_key(|w| store.tag(*w));
        conditions.dedup();

        // ---- Action closure ----
        // Results that reference subgoal-born objects pull those objects'
        // augmentations into the action set (the chunk must be able to
        // rebuild the whole promoted structure).
        let mut action_wmes: Vec<WmeId> = req.results.to_vec();
        let mut closed: FxHashSet<WmeId> = action_wmes.iter().copied().collect();
        let mut i = 0;
        while i < action_wmes.len() {
            let w = store.get(action_wmes[i]).clone();
            let decl = reg.get(w.class)?;
            let idf = decl.field_of(intern("id"));
            for (fi, v) in w.fields.iter().enumerate() {
                if Some(fi as u16) == idf {
                    continue;
                }
                let Value::Sym(s) = v else { continue };
                if !book.is_identifier(*s) {
                    continue;
                }
                let native = book.obj_native_level.get(s).copied().unwrap_or(0);
                if native > req.result_level {
                    // subgoal-born object: include its augmentations
                    for (wid, ww) in store.iter_alive() {
                        if closed.contains(&wid) {
                            continue;
                        }
                        let Some(d2) = reg.get(ww.class) else { continue };
                        let Some(id2) = d2.field_of(intern("id")) else { continue };
                        if ww.field(id2) == Value::Sym(*s) {
                            closed.insert(wid);
                            action_wmes.push(wid);
                        }
                    }
                }
            }
            i += 1;
        }
        action_wmes.sort_by_key(|w| store.tag(*w));
        action_wmes.dedup();

        // ---- Variablization ----
        let mut vars = VarTable::new();
        let mut var_of: std::collections::HashMap<Symbol, VarId> = Default::default();
        let mut cond_ids: FxHashSet<Symbol> = FxHashSet::default();
        let mut ces: Vec<CondElem> = Vec::new();
        for &w in &conditions {
            let wme = store.get(w);
            let mut tests = Vec::new();
            for (fi, v) in wme.fields.iter().enumerate() {
                if v.is_nil() {
                    continue;
                }
                let test = match v {
                    Value::Sym(s) if book.is_identifier(*s) => {
                        cond_ids.insert(*s);
                        let var = *var_of
                            .entry(*s)
                            .or_insert_with(|| vars.var(intern(&format!("v*{s}"))));
                        FieldTest::Var { field: fi as u16, pred: Pred::Eq, var }
                    }
                    _ => FieldTest::Const { field: fi as u16, pred: Pred::Eq, value: *v },
                };
                tests.push(test);
            }
            ces.push(CondElem::Pos(Cond { class: wme.class, tests }));
        }

        // ---- Grounded negations ----
        // A negation survives only if every identifier it references is
        // bound by some positive condition; otherwise it is dropped
        // (conservative: the chunk stays overgeneral rather than wrong-way
        // restrictive — matching Soar's treatment of untraceable negations).
        let mut local_counter = 0u32;
        for gn in &neg_specs {
            // Pass 1: every referenced identifier must be bound by a
            // positive condition (locals are always fine).
            let groundable = gn.tests.iter().all(|(_, _, gv)| match gv {
                GroundVal::Ident(s) => var_of.contains_key(s),
                _ => true,
            });
            if !groundable {
                continue;
            }
            // Pass 2: build the tests (allocating chunk-local variables
            // only for kept negations — unused variables would fail
            // production validation).
            let mut tests = Vec::new();
            let mut local_vars: std::collections::HashMap<u16, VarId> = Default::default();
            for &(field, pred, ref gv) in &gn.tests {
                match gv {
                    GroundVal::Const(v) => tests.push(FieldTest::Const { field, pred, value: *v }),
                    GroundVal::Ident(s) => {
                        tests.push(FieldTest::Var { field, pred, var: var_of[s] })
                    }
                    GroundVal::Local(i) => {
                        let var = *local_vars.entry(*i).or_insert_with(|| {
                            local_counter += 1;
                            vars.var(intern(&format!("nl*{local_counter}")))
                        });
                        tests.push(FieldTest::Var { field, pred, var });
                    }
                }
            }
            ces.push(CondElem::Neg(Cond { class: gn.class, tests }));
        }

        // ---- Actions ----
        let mut binds: Vec<RhsBind> = Vec::new();
        let mut actions: Vec<Action> = Vec::new();
        for &w in &action_wmes {
            let wme = store.get(w);
            let mut fields = Vec::new();
            for (fi, v) in wme.fields.iter().enumerate() {
                if v.is_nil() {
                    continue;
                }
                let term = match v {
                    Value::Sym(s) if book.is_identifier(*s) => {
                        if let Some(var) = var_of.get(s) {
                            RhsTerm::Var(*var)
                        } else {
                            // Identifier absent from every condition: a new
                            // object the chunk must mint afresh.
                            let var = vars.var(intern(&format!("v*{s}")));
                            var_of.insert(*s, var);
                            binds.push(RhsBind { var, expr: RhsExpr::Genatom });
                            RhsTerm::Var(var)
                        }
                    }
                    _ => RhsTerm::Const(*v),
                };
                fields.push((fi as u16, term));
            }
            actions.push(Action::Make { class: wme.class, fields });
        }

        self.counter += 1;
        let name = intern(&format!("chunk-{}", self.counter));
        let prod = Production::new(name, ces, vars.into_names(), binds, actions).ok()?;

        // ---- Structural dedup (canonical rendering with vars renumbered
        // by first occurrence) ----
        let canon = canonical_form(&prod);
        if !self.seen.insert(canon) {
            self.counter -= 1;
            return None;
        }
        let arc = std::sync::Arc::new(prod);
        self.chunks.push(arc.clone());
        Some(arc)
    }
}

/// Render a production with variables numbered by first occurrence, so
/// structurally identical chunks compare equal regardless of gensym names.
fn canonical_form(p: &Production) -> String {
    use std::fmt::Write;
    let mut renumber: std::collections::HashMap<u16, usize> = Default::default();
    let mut next = 0usize;
    let mut num = |v: VarId, renumber: &mut std::collections::HashMap<u16, usize>| -> usize {
        *renumber.entry(v.0).or_insert_with(|| {
            let n = next;
            next += 1;
            n
        })
    };
    let mut s = String::new();
    for ce in &p.ces {
        if !ce.is_pos() {
            s.push('-');
        }
        for c in ce.conds() {
            write!(s, "({}", c.class).unwrap();
            for t in &c.tests {
                match *t {
                    FieldTest::Const { field, pred, value } => {
                        write!(s, " {field}:{pred:?}:{value}").unwrap()
                    }
                    FieldTest::Var { field, pred, var } => {
                        let n = num(var, &mut renumber);
                        write!(s, " {field}:{pred:?}:<{n}>").unwrap()
                    }
                }
            }
            s.push(')');
        }
    }
    s.push('>');
    for a in &p.actions {
        if let Action::Make { class, fields } = a {
            write!(s, "({class}").unwrap();
            for (f, t) in fields {
                match t {
                    RhsTerm::Const(v) => write!(s, " {f}:{v}").unwrap(),
                    RhsTerm::Var(v) => {
                        let n = num(*v, &mut renumber);
                        write!(s, " {f}:<{n}>").unwrap()
                    }
                }
            }
            s.push(')');
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wm::Provenance;

    fn setup() -> (ClassRegistry, WmeStore, WmBook) {
        let mut reg = ClassRegistry::new();
        reg.declare_str("state", &["id", "object"]);
        reg.declare_str("object", &["id", "kind"]);
        reg.declare_str("preference", &["object", "role", "value", "goal", "state"]);
        (reg, WmeStore::new(), WmBook::new())
    }

    fn add(
        store: &mut WmeStore,
        book: &mut WmBook,
        reg: &ClassRegistry,
        s: &str,
        level: u32,
        prov: Provenance,
    ) -> WmeId {
        let w = psme_ops::parse_wme(s, reg).unwrap();
        let (id, _) = store.add(w.clone());
        book.note_add(id, &w, level, prov, false);
        id
    }

    #[test]
    fn backtrace_collects_supergoal_conditions() {
        let (reg, mut store, mut book) = setup();
        for id in ["s1", "o1", "g1"] {
            book.register_identifier(intern(id));
            book.note_new_object(intern(id), 0);
        }
        // Supergoal structure (level 0).
        let w_state = add(&mut store, &mut book, &reg, "(state ^id s1 ^object o1)", 0, Provenance::Arch { sources: vec![] });
        let w_obj = add(&mut store, &mut book, &reg, "(object ^id o1 ^kind door)", 0, Provenance::Arch { sources: vec![] });
        // Subgoal intermediate (level 1), derived from both.
        let w_mid = add(
            &mut store,
            &mut book,
            &reg,
            "(object ^id o1 ^kind seen)",
            1,
            Provenance::Fired { matched: vec![w_state, w_obj], prod: intern("mid-maker") },
        );
        // Result (level 0) created by an instantiation matching the
        // intermediate.
        let w_res = add(
            &mut store,
            &mut book,
            &reg,
            "(preference ^object o1 ^role operator ^value best ^goal g1)",
            0,
            Provenance::Fired { matched: vec![w_mid], prod: intern("result-maker") },
        );
        let mut ch = Chunker::new();
        let p = ch
            .build(
                ChunkRequest { results: &[w_res], matched: &[w_mid], prod: intern("result-maker"), result_level: 0 },
                &book,
                &store,
                &reg,
                &|_| None,
            )
            .unwrap();
        // Conditions: the two supergoal wmes, traced through the subgoal
        // intermediate.
        assert_eq!(p.ces.len(), 2);
        assert_eq!(p.actions.len(), 1);
        // Identifiers became variables.
        assert!(p.var_names.len() >= 2);
        // A second structurally identical chunk is suppressed.
        let again = ch.build(
            ChunkRequest { results: &[w_res], matched: &[w_mid], prod: intern("result-maker"), result_level: 0 },
            &book,
            &store,
            &reg,
            &|_| None,
        );
        assert!(again.is_none());
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn new_objects_get_genatom_binds() {
        let (reg, mut store, mut book) = setup();
        book.register_identifier(intern("s9"));
        book.note_new_object(intern("s9"), 0);
        let cond_w = add(&mut store, &mut book, &reg, "(state ^id s9)", 0, Provenance::Arch { sources: vec![] });
        // The result references a subgoal-born object o-new (level 1).
        book.register_identifier(intern("o-new"));
        book.note_new_object(intern("o-new"), 1);
        let res = add(
            &mut store,
            &mut book,
            &reg,
            "(state ^id s9 ^object o-new)",
            0,
            Provenance::Fired { matched: vec![cond_w], prod: intern("result-maker") },
        );
        let aug = add(&mut store, &mut book, &reg, "(object ^id o-new ^kind fresh)", 1, Provenance::Arch { sources: vec![] });
        let _ = aug;
        let mut ch = Chunker::new();
        let p = ch
            .build(
                ChunkRequest { results: &[res], matched: &[cond_w], prod: intern("result-maker"), result_level: 0 },
                &book,
                &store,
                &reg,
                &|_| None,
            )
            .unwrap();
        // o-new is not bound by any condition → RHS genatom bind; its
        // augmentation is pulled into the actions.
        assert_eq!(p.rhs_binds.len(), 1);
        assert!(matches!(p.rhs_binds[0].expr, RhsExpr::Genatom));
        assert_eq!(p.actions.len(), 2, "result + closure augmentation");
    }

    #[test]
    fn canonical_form_ignores_gensym_names() {
        let mut reg = ClassRegistry::new();
        reg.declare_str("a", &["id", "x"]);
        let p1 = psme_ops::parse_production("(p c1 (a ^id <q>) --> (make a ^x <q>))", &mut reg).unwrap();
        let p2 = psme_ops::parse_production("(p c2 (a ^id <zz>) --> (make a ^x <zz>))", &mut reg).unwrap();
        assert_eq!(canonical_form(&p1), canonical_form(&p2));
        let p3 = psme_ops::parse_production("(p c3 (a ^id <q>) --> (make a ^x blue))", &mut reg).unwrap();
        assert_ne!(canonical_form(&p1), canonical_form(&p3));
    }
}
