//! Agent-shell hibernation: encode/restore everything an [`Agent`] keeps
//! *outside* the match engine.
//!
//! The engine half of a session snapshot is the rete journal
//! ([`psme_rete::snapshot`]): replaying it reconstructs working memory,
//! token memories and the chunk overlay. This module covers the other
//! half — the architecture's mutable shell: run counters, the context
//! stack, the conflict set (with per-instantiation refraction state, in
//! firing order), working-memory bookkeeping (goal levels, provenance,
//! identifiers, pins), the chunker (dedup set + built chunks), the gensym
//! counter, and the `(write …)` output log. A restored shell over a
//! replayed engine continues the run with decisions, firings and gensym
//! assignments identical to an agent that was never hibernated.
//!
//! Deliberately *not* persisted (rebuilt or reset on resume):
//!
//! * `classes` / `fields` — recomputed from the task spec exactly as the
//!   original construction did.
//! * `prods` — defaults and task productions are re-adopted by the caller
//!   (same canonical order as [`crate::task::SoarTask::install_adopted`]);
//!   chunk productions are re-inserted here from the chunker's log.
//!   Lookups are by name and all uses are structural, so fresh `Arc`s are
//!   observationally identical.
//! * `recorder` — telemetry only; spans from before hibernation are gone.
//! * `alive_index` — a pure function of the live store, rebuilt from the
//!   replayed engine (provably identical: WM-is-a-set guarantees at most
//!   one live wme per structural value).
//!
//! Encoding is byte-deterministic: hash-map/-set sections are sorted
//! (numerically, or by symbol *name* so bytes do not depend on intern
//! order), and symbols travel as strings.

use crate::agent::{Agent, AgentStats};
use crate::arch::Role;
use crate::decide::{GoalCtx, ImpasseKey, ImpasseKind};
use crate::wm::{Provenance, WmBook};
use psme_core::MatchEngine;
use psme_ops::{
    parse_production, production_text, sym_name, Instantiation, Symbol, TimeTag, Wme, WmeId,
};
use psme_rete::snapshot::{ByteReader, ByteWriter, SnapshotError};
use psme_rete::util::{FxHashMap, FxHashSet};
use std::sync::Arc;

fn write_sym_u32_map(w: &mut ByteWriter, map: &FxHashMap<Symbol, u32>) {
    let mut entries: Vec<(Arc<str>, u32)> =
        map.iter().map(|(&s, &v)| (sym_name(s), v)).collect();
    entries.sort();
    w.u64(entries.len() as u64);
    for (name, v) in entries {
        w.str(&name);
        w.u32(v);
    }
}

fn read_sym_u32_map(r: &mut ByteReader) -> Result<FxHashMap<Symbol, u32>, SnapshotError> {
    let n = r.count()?;
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let s = r.sym()?;
        let v = r.u32()?;
        map.insert(s, v);
    }
    Ok(map)
}

fn write_role(w: &mut ByteWriter, role: Role) {
    w.u8(match role {
        Role::ProblemSpace => 0,
        Role::State => 1,
        Role::Operator => 2,
    });
}

fn read_role(r: &mut ByteReader) -> Result<Role, SnapshotError> {
    match r.u8()? {
        0 => Ok(Role::ProblemSpace),
        1 => Ok(Role::State),
        2 => Ok(Role::Operator),
        t => Err(SnapshotError::Corrupt(format!("role tag {t}"))),
    }
}

fn write_opt_sym(w: &mut ByteWriter, s: Option<Symbol>) {
    match s {
        Some(s) => {
            w.bool(true);
            w.sym(s);
        }
        None => w.bool(false),
    }
}

fn read_opt_sym(r: &mut ByteReader) -> Result<Option<Symbol>, SnapshotError> {
    Ok(if r.bool()? { Some(r.sym()?) } else { None })
}

fn write_inst(w: &mut ByteWriter, inst: &Instantiation) {
    w.sym(inst.prod);
    w.u64(inst.wmes.len() as u64);
    for (&id, &tag) in inst.wmes.iter().zip(inst.tags.iter()) {
        w.u32(id.0);
        w.u64(tag.0);
    }
}

fn read_inst(r: &mut ByteReader) -> Result<Instantiation, SnapshotError> {
    let prod = r.sym()?;
    let n = r.count()?;
    let mut wmes = Vec::new();
    let mut tags = Vec::new();
    for _ in 0..n {
        wmes.push(WmeId(r.u32()?));
        tags.push(TimeTag(r.u64()?));
    }
    Ok(Instantiation { prod, wmes, tags })
}

fn write_provenance(w: &mut ByteWriter, p: &Provenance) {
    match p {
        Provenance::Arch { sources } => {
            w.u8(0);
            w.u64(sources.len() as u64);
            for id in sources {
                w.u32(id.0);
            }
        }
        Provenance::Fired { matched, prod } => {
            w.u8(1);
            w.u64(matched.len() as u64);
            for id in matched {
                w.u32(id.0);
            }
            w.sym(*prod);
        }
    }
}

fn read_provenance(r: &mut ByteReader) -> Result<Provenance, SnapshotError> {
    match r.u8()? {
        0 => {
            let n = r.count()?;
            let mut sources = Vec::new();
            for _ in 0..n {
                sources.push(WmeId(r.u32()?));
            }
            Ok(Provenance::Arch { sources })
        }
        1 => {
            let n = r.count()?;
            let mut matched = Vec::new();
            for _ in 0..n {
                matched.push(WmeId(r.u32()?));
            }
            Ok(Provenance::Fired { matched, prod: r.sym()? })
        }
        t => Err(SnapshotError::Corrupt(format!("provenance tag {t}"))),
    }
}

/// Encode an agent's architecture shell into `w` (see module docs for what
/// is covered and what is rebuilt instead).
pub fn encode_shell<E: MatchEngine>(agent: &Agent<E>, w: &mut ByteWriter) {
    // Counters and scalars.
    let st = &agent.stats;
    for v in [
        st.decisions,
        st.elaboration_cycles,
        st.impasses,
        st.chunks_built,
        st.firings,
        st.wme_adds,
        st.wme_removes,
        st.update_tasks,
        st.reorganizations,
    ] {
        w.u64(v);
    }
    w.bool(agent.learning);
    w.bool(agent.halt_requested);
    w.u64(agent.gensym_counter);
    w.u64(agent.max_elab_cycles);
    w.org(&agent.org);
    {
        let mut overrides: Vec<(Arc<str>, &psme_rete::NetworkOrg)> =
            agent.org_overrides.iter().map(|(&s, o)| (sym_name(s), o)).collect();
        overrides.sort_by(|a, b| a.0.cmp(&b.0));
        w.u64(overrides.len() as u64);
        for (name, org) in overrides {
            w.str(&name);
            w.org(org);
        }
    }
    // Output log.
    w.u64(agent.output.len() as u64);
    for line in &agent.output {
        w.str(line);
    }
    // Context stack, top to bottom in place.
    w.u64(agent.stack.len() as u64);
    for g in &agent.stack {
        w.sym(g.id);
        w.u32(g.level);
        for s in g.slots {
            write_opt_sym(w, s);
        }
        match &g.impasse {
            None => w.bool(false),
            Some(k) => {
                w.bool(true);
                write_role(w, k.role);
                w.u8(match k.kind {
                    ImpasseKind::Tie => 0,
                    ImpasseKind::NoChange => 1,
                });
                w.u64(k.items.len() as u64);
                for &item in &k.items {
                    w.sym(item);
                }
            }
        }
    }
    // Conflict set, in insertion (= firing) order with refraction flags.
    let entries: Vec<_> = agent.cs.entries().collect();
    w.u64(entries.len() as u64);
    for (inst, spec, fired) in entries {
        write_inst(w, inst);
        w.u64(spec as u64);
        w.bool(fired);
    }
    // WM bookkeeping. Map/set sections sorted for byte determinism; the
    // level/provenance maps include dead wmes on purpose (in-flight
    // references — CS retractions, chunk backtraces — still read them).
    let book = &agent.book;
    {
        let mut lv: Vec<(u32, u32)> = book.wme_level.iter().map(|(k, &v)| (k.0, v)).collect();
        lv.sort_unstable();
        w.u64(lv.len() as u64);
        for (id, level) in lv {
            w.u32(id);
            w.u32(level);
        }
    }
    write_sym_u32_map(w, &book.obj_level);
    write_sym_u32_map(w, &book.obj_native_level);
    {
        let mut pv: Vec<(u32, &Provenance)> =
            book.provenance.iter().map(|(k, v)| (k.0, v)).collect();
        pv.sort_unstable_by_key(|e| e.0);
        w.u64(pv.len() as u64);
        for (id, p) in pv {
            w.u32(id);
            write_provenance(w, p);
        }
    }
    {
        let mut ids: Vec<Arc<str>> = book.identifiers.iter().map(|&s| sym_name(s)).collect();
        ids.sort();
        w.u64(ids.len() as u64);
        for name in ids {
            w.str(&name);
        }
    }
    {
        let mut pins: Vec<u32> = book.pinned.iter().map(|id| id.0).collect();
        pins.sort_unstable();
        w.u64(pins.len() as u64);
        for id in pins {
            w.u32(id);
        }
    }
    // Chunker: counter, dedup texts (sorted — it is a set), chunks in
    // creation order as printed source.
    w.u32(agent.chunker.counter);
    {
        let mut seen: Vec<&String> = agent.chunker.seen.iter().collect();
        seen.sort();
        w.u64(seen.len() as u64);
        for s in seen {
            w.str(s);
        }
    }
    w.u64(agent.chunker.chunks.len() as u64);
    for chunk in &agent.chunker.chunks {
        w.str(&production_text(chunk, &agent.classes));
    }
}

/// Restore a shell encoded by [`encode_shell`] into `agent`, which must be
/// freshly constructed over the session's replayed engine with its default
/// and task productions already adopted (the [`crate::task::SoarTask`]
/// canonical order). Chunk productions are re-parsed and re-registered
/// here.
pub fn decode_shell<E: MatchEngine>(
    agent: &mut Agent<E>,
    r: &mut ByteReader,
) -> Result<(), SnapshotError> {
    agent.stats = AgentStats {
        decisions: r.u64()?,
        elaboration_cycles: r.u64()?,
        impasses: r.u64()?,
        chunks_built: r.u64()?,
        firings: r.u64()?,
        wme_adds: r.u64()?,
        wme_removes: r.u64()?,
        update_tasks: r.u64()?,
        reorganizations: r.u64()?,
    };
    agent.learning = r.bool()?;
    agent.halt_requested = r.bool()?;
    agent.gensym_counter = r.u64()?;
    agent.max_elab_cycles = r.u64()?;
    agent.org = r.org()?;
    agent.org_overrides = {
        let n = r.count()?;
        let mut map = FxHashMap::default();
        for _ in 0..n {
            let s = r.sym()?;
            let org = r.org()?;
            map.insert(s, org);
        }
        map
    };
    agent.output = {
        let n = r.count()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(r.str()?);
        }
        out
    };
    agent.stack = {
        let n = r.count()?;
        let mut stack = Vec::new();
        for _ in 0..n {
            let id = r.sym()?;
            let level = r.u32()?;
            let slots = [read_opt_sym(r)?, read_opt_sym(r)?, read_opt_sym(r)?];
            let impasse = if r.bool()? {
                let role = read_role(r)?;
                let kind = match r.u8()? {
                    0 => ImpasseKind::Tie,
                    1 => ImpasseKind::NoChange,
                    t => return Err(SnapshotError::Corrupt(format!("impasse tag {t}"))),
                };
                let m = r.count()?;
                let mut items = Vec::new();
                for _ in 0..m {
                    items.push(r.sym()?);
                }
                Some(ImpasseKey { role, kind, items })
            } else {
                None
            };
            stack.push(GoalCtx { id, level, slots, impasse });
        }
        stack
    };
    agent.cs = {
        let n = r.count()?;
        let mut cs = psme_ops::ConflictSet::new();
        for _ in 0..n {
            let inst = read_inst(r)?;
            let spec = r.count()?;
            let fired = r.bool()?;
            cs.restore_entry(inst, spec, fired);
        }
        cs
    };
    let mut book = WmBook::new();
    {
        let n = r.count()?;
        for _ in 0..n {
            let id = WmeId(r.u32()?);
            let level = r.u32()?;
            book.wme_level.insert(id, level);
        }
    }
    book.obj_level = read_sym_u32_map(r)?;
    book.obj_native_level = read_sym_u32_map(r)?;
    {
        let n = r.count()?;
        for _ in 0..n {
            let id = WmeId(r.u32()?);
            let prov = read_provenance(r)?;
            book.provenance.insert(id, prov);
        }
    }
    {
        let n = r.count()?;
        for _ in 0..n {
            let s = r.sym()?;
            book.identifiers.insert(s);
        }
    }
    {
        let n = r.count()?;
        for _ in 0..n {
            book.pinned.insert(WmeId(r.u32()?));
        }
    }
    // The structural live index is a pure function of the replayed store.
    book.alive_index = agent.engine.with_store(|s| {
        let mut idx: FxHashMap<Wme, WmeId> = FxHashMap::default();
        for (id, w) in s.iter_alive() {
            idx.insert((**w).clone(), id);
        }
        idx
    });
    agent.book = book;
    agent.chunker.counter = r.u32()?;
    agent.chunker.seen = {
        let n = r.count()?;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            seen.insert(r.str()?);
        }
        seen
    };
    {
        let n = r.count()?;
        let mut chunks = Vec::new();
        for _ in 0..n {
            let text = r.str()?;
            let p = parse_production(&text, &mut agent.classes).map_err(|e| {
                SnapshotError::Corrupt(format!("chunk does not parse: {e}"))
            })?;
            chunks.push(Arc::new(p));
        }
        // Chunks were compiled into the overlay by the journal replay; the
        // shell only re-registers them for firing/specificity lookups.
        for c in &chunks {
            agent.prods.insert(c.name, c.clone());
        }
        agent.chunker.chunks = chunks;
    }
    Ok(())
}

/// A structural digest of the agent shell (everything [`encode_shell`]
/// covers, plus nothing else). Test helper: two shells with equal digests
/// are behaviorally interchangeable.
pub fn shell_digest<E: MatchEngine>(agent: &Agent<E>) -> u64 {
    let mut w = ByteWriter::new();
    encode_shell(agent, &mut w);
    psme_rete::snapshot::fnv1a64(&w.into_inner())
}

/// Verify an invariant the conflict-set encoding relies on: every fired
/// record refers to a present instantiation ([`psme_ops::ConflictSet`]
/// clears refraction on removal, so this holds by construction).
#[doc(hidden)]
pub fn cs_fired_subset_of_present<E: MatchEngine>(agent: &Agent<E>) -> bool {
    // entries() reports `fired` per present entry, so a dangling fired
    // record is invisible to the snapshot; assert it cannot exist by
    // round-tripping the count through take_unfired semantics instead.
    let present: FxHashSet<&Instantiation> =
        agent.cs.entries().map(|(i, _, _)| i).collect();
    agent.cs.entries().filter(|&(_, _, fired)| fired).all(|(i, _, _)| present.contains(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SoarTask;
    use psme_ops::{intern, parse_program, parse_wme, ClassRegistry};
    use psme_rete::{JournaledSession, ReteNetwork, SerialEngine, Topology};

    /// A miniature task whose run crosses an operator tie and learns a
    /// chunk, so the shell has a deep stack, provenance and chunker state
    /// to round-trip (same shape as the `mini_task` integration test).
    fn fruit_task() -> SoarTask {
        let mut classes = ClassRegistry::new();
        crate::arch::declare_arch_classes(&mut classes);
        let src = "
(literalize box id owner contains)
(literalize op id box)
(p fruit*init-ps
   (goal ^id <g> ^type top)
  -->
   (make preference ^object ps-fruit ^role problem-space ^value acceptable ^goal <g>))
(p fruit*init-state
   (goal ^id <g> ^problem-space ps-fruit)
  -->
   (make preference ^object s0 ^role state ^value acceptable ^goal <g>))
(p fruit*propose
   (goal ^id <g> ^state <s>)
   (box ^id <b> ^owner <s>)
  -->
   (bind <o> (genatom))
   (make op ^id <o> ^box <b>)
   (make preference ^object <o> ^role operator ^value acceptable ^goal <g> ^state <s>))
(p fruit*eval
   (goal ^id <g2> ^impasse tie)
   (goal ^id <g2> ^item <o>)
   (op ^id <o> ^box <b>)
   (box ^id <b> ^contains <n>)
  -->
   (make eval ^goal <g2> ^object <o> ^value <n>))
(p fruit*apply
   (goal ^id <g> ^operator <o>)
   (op ^id <o> ^box <b>)
   (box ^id <b> ^contains <n>)
  -->
   (write took <n>)
   (halt))
";
        let productions =
            parse_program(src, &mut classes).unwrap().into_iter().map(Arc::new).collect();
        let init_wmes = vec![
            parse_wme("(box ^id b1 ^owner s0 ^contains 3)", &classes).unwrap(),
            parse_wme("(box ^id b2 ^owner s0 ^contains 7)", &classes).unwrap(),
        ];
        SoarTask {
            name: "fruit".into(),
            classes,
            productions,
            init_wmes,
            identifiers: vec![intern("ps-fruit"), intern("s0"), intern("b1"), intern("b2")],
        }
    }

    fn freeze_base(task: &SoarTask) -> Arc<psme_rete::Topology> {
        let mut scratch =
            Agent::new(SerialEngine::new(ReteNetwork::new()), task.classes.clone());
        task.install_productions(&mut scratch);
        let (net, _) = scratch.engine.into_parts();
        Topology::freeze(net)
    }

    fn journaled_agent(
        task: &SoarTask,
        topo: Arc<psme_rete::Topology>,
    ) -> Agent<JournaledSession> {
        let mut agent = Agent::new(JournaledSession::fresh(topo, true), task.classes.clone());
        agent.learning = true;
        task.install_adopted(&mut agent);
        agent
    }

    #[test]
    fn shell_round_trips_through_bytes() {
        let task = fruit_task();
        let topo = freeze_base(&task);
        let mut agent = journaled_agent(&task, topo.clone());
        // Stop partway: mid-run, past the tie impasse (subgoal on the
        // stack, evals in flight) but before the halt.
        agent.run(3);
        assert!(!agent.halt_requested, "must hibernate mid-run for the test to bite");
        assert!(cs_fired_subset_of_present(&agent));

        let mut w = ByteWriter::new();
        encode_shell(&agent, &mut w);
        let bytes = w.into_inner();
        // Byte-deterministic: encoding twice gives identical bytes.
        let mut w2 = ByteWriter::new();
        encode_shell(&agent, &mut w2);
        assert_eq!(bytes, w2.into_inner());

        // Resume: replay the journal, re-adopt productions, rebuild shell.
        let journal = agent.engine.journal().unwrap().clone();
        let resumed_engine = JournaledSession::resume(topo, journal).unwrap();
        let mut resumed = Agent::new(resumed_engine, task.classes.clone());
        task.adopt_productions(&mut resumed);
        let mut r = ByteReader::new(&bytes);
        decode_shell(&mut resumed, &mut r).unwrap();
        r.expect_done().unwrap();
        assert_eq!(shell_digest(&agent), shell_digest(&resumed));
        assert_eq!(
            psme_rete::session_digest(&agent.engine.eng),
            psme_rete::session_digest(&resumed.engine.eng)
        );

        // And both continue to the identical outcome.
        let a = agent.run(50);
        let b = resumed.run(50);
        assert_eq!(a, b);
        assert_eq!(agent.output, vec!["took 7"]);
        assert_eq!(agent.stats.decisions, resumed.stats.decisions);
        assert_eq!(agent.stats.firings, resumed.stats.firings);
        assert_eq!(agent.stats.chunks_built, resumed.stats.chunks_built);
        assert_eq!(agent.output, resumed.output);
        assert_eq!(shell_digest(&agent), shell_digest(&resumed));
        assert_eq!(
            psme_rete::session_digest(&agent.engine.eng),
            psme_rete::session_digest(&resumed.engine.eng)
        );
    }

    #[test]
    fn hibernating_after_a_chunk_restores_the_chunker() {
        let task = fruit_task();
        let topo = freeze_base(&task);
        let mut agent = journaled_agent(&task, topo.clone());
        let stop = agent.run(50);
        assert_eq!(stop, crate::agent::StopReason::Halted);
        assert_eq!(agent.stats.chunks_built, 1);

        let mut w = ByteWriter::new();
        encode_shell(&agent, &mut w);
        let bytes = w.into_inner();
        let journal = agent.engine.journal().unwrap().clone();
        let mut resumed =
            Agent::new(JournaledSession::resume(topo, journal).unwrap(), task.classes.clone());
        task.adopt_productions(&mut resumed);
        decode_shell(&mut resumed, &mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(resumed.chunker.chunks.len(), 1);
        assert_eq!(
            resumed.learned_chunks()[0].name,
            agent.learned_chunks()[0].name
        );
        assert!(resumed.prods.contains_key(&agent.learned_chunks()[0].name));
        assert_eq!(shell_digest(&agent), shell_digest(&resumed));
    }

    #[test]
    fn truncated_shell_is_a_typed_error() {
        let task = fruit_task();
        let topo = freeze_base(&task);
        let mut agent = journaled_agent(&task, topo.clone());
        agent.run(3);
        let mut w = ByteWriter::new();
        encode_shell(&agent, &mut w);
        let bytes = w.into_inner();
        for cut in [0usize, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut fresh = journaled_agent(&task, topo.clone());
            let mut r = ByteReader::new(&bytes[..cut]);
            let err = decode_shell(&mut fresh, &mut r);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }
}
