//! The Soar agent: elaborate–decide loop, parallel firing of the conflict
//! set, impasse-driven subgoaling, reachability garbage collection, and
//! chunk integration through the engine's run-time production addition.

use crate::arch::{decode_preference, ArchFields, PrefValue, Preference, Role};
use crate::chunk::{ChunkRequest, Chunker};
use crate::decide::{decide, Decision, GoalCtx};
use crate::wm::{Provenance, WmBook};
use psme_core::MatchEngine;
use psme_obs::{ControlPhase, Recorder};
use psme_ops::{
    intern, ClassRegistry, ConcreteAction, ConflictSet, Production, Symbol, Value,
    Wme, WmeId,
};
use psme_rete::util::{FxHashMap, FxHashSet};
use psme_rete::{ChainDetector, CsDelta, NetworkOrg, ReorgConfig};
use std::sync::Arc;

/// Run counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Decision cycles executed.
    pub decisions: u64,
    /// Elaboration cycles executed.
    pub elaboration_cycles: u64,
    /// Impasses (subgoals created).
    pub impasses: u64,
    /// Chunks built and added at run time.
    pub chunks_built: u64,
    /// Production firings.
    pub firings: u64,
    /// Wmes added / removed over the run.
    pub wme_adds: u64,
    /// Wmes removed by decisions and GC.
    pub wme_removes: u64,
    /// Match tasks spent in chunk state updates (Figure 6-9's phase).
    pub update_tasks: u64,
    /// Adaptive mid-run join reorganizations committed.
    pub reorganizations: u64,
}

/// Why a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// A production executed `(halt)` — the task reached its goal test.
    Halted,
    /// The decision procedure made no progress.
    Stuck,
    /// The decision budget ran out.
    DecisionLimit,
    /// An elaboration phase failed to quiesce within the cycle budget.
    ElaborationRunaway,
    /// The run was ended from outside the agent — a serving client closed
    /// the session, or the server shut down with the session still open.
    Closed,
}

/// A Soar agent over any match engine.
pub struct Agent<E: MatchEngine> {
    /// The match engine (serial or PSM-E parallel).
    pub engine: E,
    /// Class declarations (task + architecture).
    pub classes: ClassRegistry,
    /// Architecture field indices.
    pub fields: ArchFields,
    /// WM bookkeeping.
    pub book: WmBook,
    /// The context stack (index = level).
    pub stack: Vec<GoalCtx>,
    /// The conflict set.
    pub cs: ConflictSet,
    /// Chunking on/off ("without chunking" vs "during chunking" runs).
    pub learning: bool,
    /// The chunk builder.
    pub chunker: Chunker,
    /// Run counters.
    pub stats: AgentStats,
    /// `(write …)` output lines.
    pub output: Vec<String>,
    pub(crate) prods: FxHashMap<Symbol, Arc<Production>>,
    pub(crate) gensym_counter: u64,
    pub(crate) halt_requested: bool,
    /// Network organization used for newly added productions.
    pub org: NetworkOrg,
    /// Per-production organization overrides (the §7 adaptive-bilinear
    /// loop sets these from trace diagnosis).
    pub org_overrides: FxHashMap<Symbol, NetworkOrg>,
    /// Online chain-dominance detector; `Some` arms adaptive mid-run
    /// reorganization (see [`Agent::enable_adaptive_reorg`]).
    pub reorg_detector: Option<ChainDetector>,
    /// Elaboration-cycle budget per phase (runaway guard).
    pub max_elab_cycles: u64,
    /// Control-thread span recorder: match, conflict resolution, decide and
    /// chunk-build phases as seen from the agent loop. (The parallel
    /// engine's own recorder separately splits §5.1 network surgery from
    /// the §5.2 state update; reporting layers absorb both.)
    pub recorder: Recorder,
}

impl<E: MatchEngine> Agent<E> {
    /// Create an agent. `classes` must already contain the task classes;
    /// the architecture classes are declared here.
    pub fn new(engine: E, mut classes: ClassRegistry) -> Agent<E> {
        let fields = crate::arch::declare_arch_classes(&mut classes);
        Agent {
            engine,
            classes,
            fields,
            book: WmBook::new(),
            stack: Vec::new(),
            cs: ConflictSet::new(),
            learning: false,
            chunker: Chunker::new(),
            stats: AgentStats::default(),
            output: Vec::new(),
            prods: FxHashMap::default(),
            gensym_counter: 0,
            halt_requested: false,
            org: NetworkOrg::Linear,
            org_overrides: FxHashMap::default(),
            reorg_detector: None,
            max_elab_cycles: 400,
            recorder: Recorder::new(),
        }
    }

    /// Arm adaptive mid-run reorganization: the engine starts accumulating
    /// per-node match costs, and [`Agent::step`] polls the detector at each
    /// quiescent decision boundary, rebuilding flagged linear chains
    /// bilinearly in place.
    pub fn enable_adaptive_reorg(&mut self, cfg: ReorgConfig) {
        self.engine.set_cost_profiling(true);
        self.reorg_detector = Some(ChainDetector::new(cfg));
    }

    /// Poll the chain detector (if armed) and act on its decision. Runs at
    /// the quiescent boundary between the elaboration and decision phases —
    /// exactly where a chunk add would run, so the same §5.2 machinery
    /// applies. A failed rebuild rolls back and the old chain keeps
    /// matching; the decided org override still steers any future rebuild
    /// of the same production (e.g. on session resume).
    fn maybe_reorganize(&mut self) {
        let Some(mut det) = self.reorg_detector.take() else { return };
        let stride = det.config().poll_stride.max(1);
        if !self.stats.decisions.is_multiple_of(stride) {
            self.reorg_detector = Some(det);
            return;
        }
        if let Some(d) = self.engine.poll_reorg(&mut det) {
            let span = self.recorder.start(ControlPhase::NetworkSurgery);
            match self.engine.reorganize_production(d.prod_idx, d.org.clone()) {
                Ok(out) => {
                    self.stats.reorganizations += 1;
                    self.stats.update_tasks += out.update_tasks;
                    self.org_overrides.insert(d.name, d.org);
                }
                Err(_) => {
                    // Rolled back; keep matching on the old chain.
                }
            }
            self.recorder.finish_seq(span, self.stats.decisions);
        }
        self.reorg_detector = Some(det);
    }

    /// Mint a fresh identifier.
    pub fn gensym(&mut self, prefix: &str) -> Symbol {
        self.gensym_counter += 1;
        intern(&format!("{prefix}*{:04}", self.gensym_counter))
    }

    /// Load a production (task, default, or chunk). Runs the state update
    /// so it is immediately available; its instantiations enter the CS.
    pub fn load_production(&mut self, p: Arc<Production>) -> Result<(), String> {
        for a in &p.actions {
            if matches!(a, psme_ops::Action::Remove { .. } | psme_ops::Action::Modify { .. }) {
                return Err(format!("{}: Soar productions only add wmes", p.name));
            }
        }
        let org = self.org_overrides.get(&p.name).cloned().unwrap_or_else(|| self.org.clone());
        // From the agent's viewpoint the whole run-time addition is one
        // surgery span; the parallel engine's own recorder splits the §5.1
        // compile from the §5.2 state update.
        let span = self.recorder.start(ControlPhase::NetworkSurgery);
        let out = self.engine.add_production(p.clone(), org).map_err(|e| e.to_string())?;
        self.recorder.finish_seq(span, self.stats.decisions);
        self.stats.update_tasks += out.update_tasks;
        self.prods.insert(p.name, p);
        self.merge_cs(out.cs);
        Ok(())
    }

    /// Register a production that is *already compiled* into the engine's
    /// network (a shared-topology base production). Only the agent-side
    /// bookkeeping happens — no network surgery, no state update. With empty
    /// working memory this is observationally identical to
    /// [`Self::load_production`], which compiles against empty memories and
    /// finds zero instantiations.
    pub fn adopt_production(&mut self, p: Arc<Production>) {
        self.prods.insert(p.name, p);
    }

    /// Register a task object identifier (so chunking variablizes it).
    pub fn register_identifier(&mut self, s: Symbol) {
        self.book.register_identifier(s);
        self.book.note_new_object(s, 0);
    }

    /// Install task-static wmes (pinned: never garbage collected) and run
    /// the match once.
    pub fn add_init_wmes(&mut self, wmes: Vec<Wme>) {
        let mut changes = Vec::with_capacity(wmes.len());
        for w in wmes {
            if self.book.alive_index.contains_key(&w) {
                continue;
            }
            let (id, _) = self.engine.add_wme(w.clone());
            self.book.note_add(id, &w, 0, Provenance::Arch { sources: vec![] }, true);
            self.stats.wme_adds += 1;
            changes.push((id, 1));
        }
        let out = self.engine.run_changes(changes);
        self.merge_cs(out.cs);
    }

    /// Create the top goal; returns its identifier.
    pub fn push_top_goal(&mut self) -> Symbol {
        assert!(self.stack.is_empty(), "top goal already exists");
        let g = self.gensym("g");
        self.book.note_new_object(g, 0);
        self.stack.push(GoalCtx { id: g, level: 0, slots: [None, None, None], impasse: None });
        let w = crate::arch::goal_aug(&self.classes, &self.fields, g, self.fields.goal_type, Value::sym("top"));
        let (id, _) = self.engine.add_wme(w.clone());
        self.book.note_add(id, &w, 0, Provenance::Arch { sources: vec![] }, false);
        self.stats.wme_adds += 1;
        let out = self.engine.run_changes(vec![(id, 1)]);
        self.merge_cs(out.cs);
        g
    }

    fn merge_cs(&mut self, delta: CsDelta) {
        for i in delta.removed {
            self.cs.remove(&i);
        }
        for i in delta.added {
            let spec = self.prods.get(&i.prod).map(|p| p.test_count()).unwrap_or(0);
            self.cs.add(i, spec);
        }
    }

    fn goal_level(&self, g: Symbol) -> Option<u32> {
        self.stack.iter().find(|gc| gc.id == g).map(|gc| gc.level)
    }

    /// Compute the goal level a new wme belongs to.
    fn wme_level_for(&mut self, w: &Wme, firing_level: u32) -> u32 {
        let goal_cls = intern("goal");
        let pref_cls = intern("preference");
        let eval_cls = intern("eval");
        if w.class == goal_cls {
            if let Some(g) = w.field(self.fields.goal_id).as_sym() {
                return self.goal_level(g).unwrap_or(firing_level);
            }
        }
        if w.class == pref_cls {
            if let Some(g) = w.field(self.fields.pref_goal).as_sym() {
                return self.goal_level(g).unwrap_or(firing_level);
            }
        }
        if w.class == eval_cls {
            if let Some(g) = w.field(0).as_sym() {
                return self.goal_level(g).unwrap_or(firing_level);
            }
        }
        if let Some(decl) = self.classes.get(w.class) {
            if let Some(idf) = decl.field_of(intern("id")) {
                if let Some(id) = w.field(idf).as_sym() {
                    if let Some(&l) = self.book.obj_level.get(&id) {
                        return l;
                    }
                    self.book.note_new_object(id, firing_level);
                    return firing_level;
                }
            }
        }
        firing_level
    }

    /// Fire every unfired instantiation once; batch the wme changes; match;
    /// integrate any chunks. Returns `false` at quiescence.
    fn elaborate_once(&mut self) -> bool {
        let unfired = self.cs.take_unfired();
        if unfired.is_empty() {
            return false;
        }
        let mut changes: Vec<(WmeId, i32)> = Vec::new();
        let mut pending_chunks: Vec<Arc<Production>> = Vec::new();
        for inst in unfired {
            let Some(prod) = self.prods.get(&inst.prod).cloned() else { continue };
            self.stats.firings += 1;
            let wme_arcs: Vec<Arc<Wme>> = self
                .engine
                .with_store(|s| inst.wmes.iter().map(|id| s.get(*id).clone()).collect());
            let refs: Vec<&Wme> = wme_arcs.iter().map(|a| a.as_ref()).collect();
            let firing_level =
                inst.wmes.iter().map(|id| self.book.level_of(*id)).max().unwrap_or(0);
            let mut bindings = prod.bindings_of(&refs);
            let mut counter = self.gensym_counter;
            let actions = prod.eval_rhs(&mut bindings, &mut || {
                counter += 1;
                intern(&format!("x*{counter:04}"))
            });
            self.gensym_counter = counter;

            let mut results: Vec<WmeId> = Vec::new();
            let mut result_level = 0u32;
            for act in actions {
                match act {
                    ConcreteAction::Make(class, fields) => {
                        let Some(decl) = self.classes.get(class).cloned() else { continue };
                        let w = Wme::with_fields(&decl, &fields);
                        if self.book.alive_index.contains_key(&w) {
                            continue; // WM is a set
                        }
                        // Fresh gensym'd ids become identifiers.
                        for (_, v) in &fields {
                            if let Value::Sym(s) = v {
                                if psme_ops::sym_name(*s).contains('*') {
                                    self.book.register_identifier(*s);
                                }
                            }
                        }
                        let level = self.wme_level_for(&w, firing_level);
                        let (wid, _) = self.engine.add_wme(w.clone());
                        self.book.note_add(
                            wid,
                            &w,
                            level,
                            Provenance::Fired { matched: inst.wmes.clone(), prod: inst.prod },
                            false,
                        );
                        self.stats.wme_adds += 1;
                        changes.push((wid, 1));
                        // Promote linked deeper objects into this level.
                        let (store_promotions, classes) = (&mut self.book, &self.classes);
                        self.engine.with_store(|s| {
                            for v in w.fields.iter() {
                                if let Value::Sym(sym) = v {
                                    if store_promotions.is_identifier(*sym)
                                        && store_promotions.level_of_obj(*sym) > level
                                    {
                                        store_promotions.promote(*sym, level, s, classes);
                                    }
                                }
                            }
                        });
                        if level < firing_level {
                            results.push(wid);
                            result_level = result_level.max(level);
                        }
                    }
                    ConcreteAction::Write(s) => self.output.push(s),
                    ConcreteAction::Halt => self.halt_requested = true,
                    ConcreteAction::RemoveCe(_) | ConcreteAction::ModifyCe(_, _) => {
                        debug_assert!(false, "rejected at load time");
                    }
                }
            }
            if self.learning && !results.is_empty() {
                let span = self.recorder.start(ControlPhase::ChunkBuild);
                let req = ChunkRequest {
                    results: &results,
                    matched: &inst.wmes,
                    prod: inst.prod,
                    result_level,
                };
                let prods = &self.prods;
                let lookup = |name: psme_ops::Symbol| prods.get(&name).cloned();
                let built = self.engine.with_store(|s| {
                    self.chunker.build(req, &self.book, s, &self.classes, &lookup)
                });
                self.recorder.finish_seq(span, self.stats.decisions);
                if let Some(chunk) = built {
                    pending_chunks.push(chunk);
                }
            }
        }
        let span = self.recorder.start(ControlPhase::Match);
        let out = self.engine.run_changes(changes);
        self.recorder.finish_seq(span, self.stats.decisions);
        let span = self.recorder.start(ControlPhase::ConflictResolution);
        self.merge_cs(out.cs);
        self.recorder.finish_seq(span, self.stats.decisions);
        // "Soar adds chunks only at the end of an elaboration cycle, i.e.,
        // when the match is quiescent" (§5.1).
        for chunk in pending_chunks {
            self.stats.chunks_built += 1;
            self.load_production(chunk).expect("chunks are valid productions");
        }
        self.stats.elaboration_cycles += 1;
        true
    }

    /// Run elaboration cycles to quiescence.
    fn elaboration_phase(&mut self) -> Result<(), StopReason> {
        let mut cycles = 0u64;
        while self.elaborate_once() {
            if self.halt_requested {
                return Ok(());
            }
            cycles += 1;
            if cycles > self.max_elab_cycles {
                return Err(StopReason::ElaborationRunaway);
            }
        }
        Ok(())
    }

    fn collect_preferences(&self) -> Vec<Preference> {
        let f = &self.fields;
        self.engine.with_store(|s| {
            s.iter_alive().filter_map(|(id, w)| decode_preference(id, w, f)).collect()
        })
    }

    /// The decision phase: apply the decision procedure, perform the wme
    /// surgery and reachability GC. Returns `false` when stuck.
    fn decision_phase(&mut self) -> bool {
        let prefs = self.collect_preferences();
        let d = decide(&self.stack, &prefs);
        self.stats.decisions += 1;
        match d {
            Decision::Stuck => false,
            Decision::Change { goal_idx, role, winner } => {
                self.stack.truncate(goal_idx + 1);
                {
                    let g = &mut self.stack[goal_idx];
                    g.set_slot(role, winner);
                    g.impasse = g.impasse.take(); // unchanged for this goal
                    // Later roles are reinitialized on a context change.
                    match role {
                        Role::ProblemSpace => {
                            g.set_slot(Role::State, None);
                            g.set_slot(Role::Operator, None);
                        }
                        Role::State => g.set_slot(Role::Operator, None),
                        Role::Operator => {}
                    }
                }
                let mut adds: Vec<(Wme, u32, Provenance)> = Vec::new();
                if let Some(w) = winner {
                    let g = &self.stack[goal_idx];
                    let field = match role {
                        Role::ProblemSpace => self.fields.goal_problem_space,
                        Role::State => self.fields.goal_state,
                        Role::Operator => self.fields.goal_operator,
                    };
                    let wme = crate::arch::goal_aug(&self.classes, &self.fields, g.id, field, Value::Sym(w));
                    // The slot wme's provenance points at the preferences
                    // that put the winner there, so chunks can trace through
                    // context slots.
                    let sources: Vec<WmeId> = prefs
                        .iter()
                        .filter(|p| p.goal == g.id && p.role == role && p.object == w)
                        .map(|p| p.wme)
                        .collect();
                    adds.push((wme, g.level, Provenance::Arch { sources }));
                }
                self.apply_decision_changes(adds);
                true
            }
            Decision::NewImpasse { parent_idx, key } => {
                self.stack.truncate(parent_idx + 1);
                self.stats.impasses += 1;
                let parent_id = self.stack[parent_idx].id;
                let level = self.stack.len() as u32;
                let g2 = self.gensym("g");
                self.book.note_new_object(g2, level);
                self.stack.push(GoalCtx {
                    id: g2,
                    level,
                    slots: [None, None, None],
                    impasse: Some(key.clone()),
                });
                let f = &self.fields;
                let reg = &self.classes;
                let mut adds: Vec<(Wme, u32, Provenance)> = vec![
                    (
                        crate::arch::goal_aug(reg, f, g2, f.goal_supergoal, Value::Sym(parent_id)),
                        level,
                        Provenance::Arch { sources: vec![] },
                    ),
                    (
                        crate::arch::goal_aug(reg, f, g2, f.goal_impasse, Value::Sym(key.kind.symbol())),
                        level,
                        Provenance::Arch { sources: vec![] },
                    ),
                    (
                        crate::arch::goal_aug(reg, f, g2, f.goal_role, Value::Sym(key.role.symbol())),
                        level,
                        Provenance::Arch { sources: vec![] },
                    ),
                ];
                for item in &key.items {
                    // An item augmentation is caused by the preferences that
                    // made the item a candidate — the chunker backtraces
                    // through this into the supergoal.
                    let sources: Vec<WmeId> = prefs
                        .iter()
                        .filter(|p| {
                            p.goal == parent_id
                                && p.role == key.role
                                && p.object == *item
                                && matches!(p.value, PrefValue::Acceptable | PrefValue::Best)
                        })
                        .map(|p| p.wme)
                        .collect();
                    adds.push((
                        crate::arch::goal_aug(reg, f, g2, f.goal_item, Value::Sym(*item)),
                        level,
                        Provenance::Arch { sources },
                    ));
                }
                self.apply_decision_changes(adds);
                true
            }
        }
    }

    /// Install decision-phase wmes, garbage-collect, and run one match.
    fn apply_decision_changes(&mut self, adds: Vec<(Wme, u32, Provenance)>) {
        let mut changes: Vec<(WmeId, i32)> = Vec::new();
        for id in self.gc_removals() {
            let w = self.engine.with_store(|s| s.get(id).clone());
            if self.engine.remove_wme(id) {
                self.book.note_remove(id, &w);
                self.stats.wme_removes += 1;
                changes.push((id, -1));
            }
        }
        for (w, level, prov) in adds {
            if self.book.alive_index.contains_key(&w) {
                continue;
            }
            let (id, _) = self.engine.add_wme(w.clone());
            self.book.note_add(id, &w, level, prov, false);
            self.stats.wme_adds += 1;
            changes.push((id, 1));
        }
        let out = self.engine.run_changes(changes);
        self.merge_cs(out.cs);
    }

    /// Reachability GC: "the decision module keeps track of which wmes are
    /// accessible from the context stack, and automatically garbage
    /// collects inaccessible wmes" (§3).
    fn gc_removals(&self) -> Vec<WmeId> {
        let goal_cls = intern("goal");
        let pref_cls = intern("preference");
        let eval_cls = intern("eval");
        let stack_ids: FxHashSet<Symbol> = self.stack.iter().map(|g| g.id).collect();
        let state_of: FxHashMap<Symbol, Option<Symbol>> =
            self.stack.iter().map(|g| (g.id, g.slot(Role::State))).collect();
        let f = &self.fields;
        self.engine.with_store(|store| {
            // 1. Roots: goal ids, slot values, kept goal-augmentation values.
            let mut reachable: FxHashSet<Symbol> = stack_ids.clone();
            for g in &self.stack {
                for s in g.slots.iter().flatten() {
                    reachable.insert(*s);
                }
            }
            // Which goal wmes survive? (Also seeds reachability from their
            // values: supergoal links, impasse items.)
            let goal_wme_keep = |w: &Wme| -> bool {
                let Some(gid) = w.field(f.goal_id).as_sym() else { return false };
                let Some(g) = self.stack.iter().find(|g| g.id == gid) else { return false };
                // Slot augmentations must match the current slot.
                for (role, field) in [
                    (Role::ProblemSpace, f.goal_problem_space),
                    (Role::State, f.goal_state),
                    (Role::Operator, f.goal_operator),
                ] {
                    let v = w.field(field);
                    if !v.is_nil() && v.as_sym() != g.slot(role) {
                        return false;
                    }
                }
                true
            };
            for (_, w) in store.iter_alive().filter(|(_, w)| w.class == goal_cls) {
                if goal_wme_keep(w) {
                    for v in w.fields.iter() {
                        if let Value::Sym(s) = v {
                            reachable.insert(*s);
                        }
                    }
                }
            }
            // 2. Valid preferences make their objects reachable, unless a
            // valid reject cancels them.
            let prefs: Vec<Preference> = store
                .iter_alive()
                .filter_map(|(id, w)| decode_preference(id, w, f))
                .collect();
            let scope_ok = |p: &Preference| -> bool {
                stack_ids.contains(&p.goal)
                    && match p.state {
                        Some(s) => state_of.get(&p.goal).copied().flatten() == Some(s),
                        None => true,
                    }
            };
            let rejected: FxHashSet<(Symbol, Symbol)> = prefs
                .iter()
                .filter(|p| p.value == PrefValue::Reject && scope_ok(p))
                .map(|p| (p.goal, p.object))
                .collect();
            for p in &prefs {
                if scope_ok(p)
                    && p.value != PrefValue::Reject
                    && !rejected.contains(&(p.goal, p.object))
                {
                    reachable.insert(p.object);
                }
            }
            // 3. Fixpoint over object augmentations.
            loop {
                let mut grew = false;
                for (_, w) in store.iter_alive() {
                    if w.class == goal_cls || w.class == pref_cls || w.class == eval_cls {
                        continue;
                    }
                    let Some(decl) = self.classes.get(w.class) else { continue };
                    let Some(idf) = decl.field_of(intern("id")) else { continue };
                    let Some(id) = w.field(idf).as_sym() else { continue };
                    if !reachable.contains(&id) {
                        continue;
                    }
                    for (i, v) in w.fields.iter().enumerate() {
                        if i as u16 == idf {
                            continue;
                        }
                        if let Value::Sym(s) = v {
                            if self.book.is_identifier(*s) && reachable.insert(*s) {
                                grew = true;
                            }
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            // 4. Sweep.
            let mut removals = Vec::new();
            for (wid, w) in store.iter_alive() {
                if self.book.pinned.contains(&wid) {
                    continue;
                }
                let keep = if w.class == goal_cls {
                    goal_wme_keep(w)
                } else if w.class == pref_cls {
                    match decode_preference(wid, w, f) {
                        Some(p) => scope_ok(&p) && reachable.contains(&p.object),
                        None => false,
                    }
                } else if w.class == eval_cls {
                    w.field(0).as_sym().map(|g| stack_ids.contains(&g)).unwrap_or(false)
                } else if let Some(decl) = self.classes.get(w.class) {
                    match decl.field_of(intern("id")) {
                        Some(idf) => match w.field(idf).as_sym() {
                            Some(id) => reachable.contains(&id),
                            None => true,
                        },
                        None => true, // id-less classes are task-static
                    }
                } else {
                    true
                };
                if !keep {
                    removals.push(wid);
                }
            }
            removals
        })
    }

    /// One elaborate–decide step of the [`Self::run`] loop. Returns
    /// `Some(reason)` when the run is over, `None` to continue. The serving
    /// layer interleaves many agents by calling this directly (one decision
    /// cycle per call), so the step must leave the agent resumable.
    pub fn step(&mut self, max_decisions: u64) -> Option<StopReason> {
        assert!(!self.stack.is_empty(), "push_top_goal first");
        if let Err(r) = self.elaboration_phase() {
            return Some(r);
        }
        if self.reorg_detector.is_some() {
            self.maybe_reorganize();
        }
        if self.halt_requested {
            return Some(StopReason::Halted);
        }
        if self.stats.decisions >= max_decisions {
            return Some(StopReason::DecisionLimit);
        }
        let span = self.recorder.start(ControlPhase::Decide);
        let progressed = self.decision_phase();
        self.recorder.finish_seq(span, self.stats.decisions);
        if !progressed {
            return Some(StopReason::Stuck);
        }
        None
    }

    /// Run the elaborate–decide loop for up to `max_decisions` decisions.
    pub fn run(&mut self, max_decisions: u64) -> StopReason {
        loop {
            if let Some(r) = self.step(max_decisions) {
                return r;
            }
        }
    }

    /// Chunks learned so far (for after-chunking runs).
    pub fn learned_chunks(&self) -> Vec<Arc<Production>> {
        self.chunker.chunks.clone()
    }

    /// Current live wme count.
    pub fn wm_size(&self) -> usize {
        self.engine.with_store(|s| s.live_count())
    }
}

/// Convenience alias used in examples and task code.
pub type Outcome = (StopReason, AgentStats);

impl<E: MatchEngine> std::fmt::Debug for Agent<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Agent(stack={}, decisions={}, chunks={}, wm={})",
            self.stack.len(),
            self.stats.decisions,
            self.stats.chunks_built,
            self.wm_size()
        )
    }
}

// Re-exported for tests needing direct access.
pub use crate::decide::slot_index;
