//! Task packaging: classes, productions, initial working memory.

use crate::agent::Agent;
use psme_core::MatchEngine;
use psme_ops::{ClassRegistry, Production, Symbol, Wme};
use std::sync::Arc;

/// A complete Soar task, installable into any agent.
#[derive(Clone)]
pub struct SoarTask {
    /// Task name (matches the paper's task names where applicable).
    pub name: String,
    /// Class declarations (architecture classes included).
    pub classes: ClassRegistry,
    /// Task productions.
    pub productions: Vec<Arc<Production>>,
    /// Initial (pinned) wmes: the task's static object structure.
    pub init_wmes: Vec<Wme>,
    /// Object identifiers appearing in the initial structure (registered so
    /// chunking variablizes them).
    pub identifiers: Vec<Symbol>,
}

impl SoarTask {
    /// Install into an agent: identifiers, default + task productions,
    /// initial wmes, top goal. Returns the top goal id.
    pub fn install<E: MatchEngine>(&self, agent: &mut Agent<E>) -> Symbol {
        self.install_productions(agent);
        agent.add_init_wmes(self.init_wmes.clone());
        agent.push_top_goal()
    }

    /// The compile half of [`Self::install`]: identifiers plus default +
    /// task productions, in the canonical load order (defaults first). The
    /// serving layer uses this alone to build a shared base network, then
    /// freezes it into a [`psme_rete::Topology`].
    pub fn install_productions<E: MatchEngine>(&self, agent: &mut Agent<E>) {
        for &id in &self.identifiers {
            agent.register_identifier(id);
        }
        let mut classes = agent.classes.clone();
        for p in crate::defaults::default_productions(&mut classes) {
            agent.load_production(p).expect("default productions load");
        }
        for p in &self.productions {
            agent
                .load_production(p.clone())
                .unwrap_or_else(|e| panic!("task {} production failed to load: {e}", self.name));
        }
    }

    /// Install into an agent whose engine already contains the task's
    /// compiled base network (a session over a shared topology): productions
    /// are adopted — bookkeeping only, no network surgery — in the same
    /// canonical order as [`Self::install_productions`], then initial wmes
    /// and the top goal are created in this session's own match state.
    /// Returns the top goal id.
    pub fn install_adopted<E: MatchEngine>(&self, agent: &mut Agent<E>) -> Symbol {
        self.adopt_productions(agent);
        agent.add_init_wmes(self.init_wmes.clone());
        agent.push_top_goal()
    }

    /// The adopt half of [`Self::install_adopted`] alone: identifiers and
    /// default + task productions (canonical order), with no working-memory
    /// changes. Used when resuming a hibernated session, whose working
    /// memory is reconstructed by journal replay instead of recreated.
    pub fn adopt_productions<E: MatchEngine>(&self, agent: &mut Agent<E>) {
        for &id in &self.identifiers {
            agent.register_identifier(id);
        }
        let mut classes = agent.classes.clone();
        for p in crate::defaults::default_productions(&mut classes) {
            agent.adopt_production(p);
        }
        for p in &self.productions {
            agent.adopt_production(p.clone());
        }
    }

    /// Build a fresh agent over the given engine and install the task.
    pub fn agent<E: MatchEngine>(&self, engine: E) -> Agent<E> {
        let mut a = Agent::new(engine, self.classes.clone());
        self.install(&mut a);
        a
    }

    /// Number of task productions (the paper quotes production counts per
    /// task).
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    /// Average flat CE count of the task productions (Table 5-1 column 2).
    pub fn avg_ces(&self) -> f64 {
        if self.productions.is_empty() {
            return 0.0;
        }
        let total: usize = self.productions.iter().map(|p| p.ce_count_flat()).sum();
        total as f64 / self.productions.len() as f64
    }
}

impl std::fmt::Debug for SoarTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SoarTask({}: {} productions, {} init wmes)",
            self.name,
            self.productions.len(),
            self.init_wmes.len()
        )
    }
}
