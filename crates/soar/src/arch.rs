//! Architecture-defined classes, symbols and preference decoding.
//!
//! Soar-4-era working memory (the paper's §3): every augmentation is its own
//! wme — `(goal ^id g1 ^state s1)` style records with one augmentation
//! attribute set besides `^id`. Preferences are ordinary wmes of class
//! `preference` read by the decision procedure.

use psme_ops::{intern, ClassRegistry, Symbol, Value, Wme, WmeId};

/// Context roles, in decision order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// The problem-space slot.
    ProblemSpace,
    /// The state slot.
    State,
    /// The operator slot.
    Operator,
}

impl Role {
    /// All roles, in the order the decision procedure examines them.
    pub const ALL: [Role; 3] = [Role::ProblemSpace, Role::State, Role::Operator];

    /// The goal-class attribute and preference `^role` symbol.
    pub fn symbol(self) -> Symbol {
        match self {
            Role::ProblemSpace => intern("problem-space"),
            Role::State => intern("state"),
            Role::Operator => intern("operator"),
        }
    }

    /// Parse from a symbol.
    pub fn from_symbol(s: Symbol) -> Option<Role> {
        Role::ALL.into_iter().find(|r| r.symbol() == s)
    }
}

/// Preference values supported by the decision procedure (a Soar-4 subset:
/// acceptable, reject, best, indifferent — the tasks in the paper resolve
/// everything else through subgoals and chunks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefValue {
    /// Candidate for the slot.
    Acceptable,
    /// Removed from candidacy.
    Reject,
    /// Preferred over all non-best candidates.
    Best,
    /// Equally good as other indifferent candidates (deterministic pick).
    Indifferent,
}

impl PrefValue {
    /// Wme symbol.
    pub fn symbol(self) -> Symbol {
        match self {
            PrefValue::Acceptable => intern("acceptable"),
            PrefValue::Reject => intern("reject"),
            PrefValue::Best => intern("best"),
            PrefValue::Indifferent => intern("indifferent"),
        }
    }

    /// Parse from a symbol.
    pub fn from_symbol(s: Symbol) -> Option<PrefValue> {
        [PrefValue::Acceptable, PrefValue::Reject, PrefValue::Best, PrefValue::Indifferent]
            .into_iter()
            .find(|v| v.symbol() == s)
    }
}

/// A decoded preference wme.
#[derive(Clone, Copy, Debug)]
pub struct Preference {
    /// The wme carrying it.
    pub wme: WmeId,
    /// Candidate object.
    pub object: Symbol,
    /// Which slot it concerns.
    pub role: Role,
    /// The preference value.
    pub value: PrefValue,
    /// The goal it applies to.
    pub goal: Symbol,
    /// Optional scope: only valid while this is the goal's current state
    /// (operator proposals are per-state).
    pub state: Option<Symbol>,
}

/// Field indices of the architecture classes (kept in one place so the
/// architecture code never hard-codes numbers).
#[derive(Clone, Copy, Debug)]
pub struct ArchFields {
    /// `goal` class: id, supergoal, problem-space, state, operator, impasse,
    /// role, item, type.
    pub goal_id: u16,
    pub goal_supergoal: u16,
    pub goal_problem_space: u16,
    pub goal_state: u16,
    pub goal_operator: u16,
    pub goal_impasse: u16,
    pub goal_role: u16,
    pub goal_item: u16,
    pub goal_type: u16,
    /// `preference` class: object, role, value, goal, state.
    pub pref_object: u16,
    pub pref_role: u16,
    pub pref_value: u16,
    pub pref_goal: u16,
    pub pref_state: u16,
}

/// The architecture's class declarations, registered into a task's registry.
pub fn declare_arch_classes(reg: &mut ClassRegistry) -> ArchFields {
    reg.declare_str(
        "goal",
        &["id", "supergoal", "problem-space", "state", "operator", "impasse", "role", "item", "type"],
    );
    reg.declare_str("preference", &["object", "role", "value", "goal", "state"]);
    reg.declare_str("eval", &["goal", "object", "value"]);
    let g = reg.get(intern("goal")).unwrap().clone();
    let p = reg.get(intern("preference")).unwrap().clone();
    let f = |d: &psme_ops::ClassDecl, n: &str| d.field_of(intern(n)).unwrap();
    ArchFields {
        goal_id: f(&g, "id"),
        goal_supergoal: f(&g, "supergoal"),
        goal_problem_space: f(&g, "problem-space"),
        goal_state: f(&g, "state"),
        goal_operator: f(&g, "operator"),
        goal_impasse: f(&g, "impasse"),
        goal_role: f(&g, "role"),
        goal_item: f(&g, "item"),
        goal_type: f(&g, "type"),
        pref_object: f(&p, "object"),
        pref_role: f(&p, "role"),
        pref_value: f(&p, "value"),
        pref_goal: f(&p, "goal"),
        pref_state: f(&p, "state"),
    }
}

/// Decode a `preference` wme (ignores malformed ones).
pub fn decode_preference(id: WmeId, w: &Wme, f: &ArchFields) -> Option<Preference> {
    if w.class != intern("preference") {
        return None;
    }
    let object = w.field(f.pref_object).as_sym()?;
    let role = Role::from_symbol(w.field(f.pref_role).as_sym()?)?;
    let value = PrefValue::from_symbol(w.field(f.pref_value).as_sym()?)?;
    let goal = w.field(f.pref_goal).as_sym()?;
    let state = w.field(f.pref_state).as_sym();
    Some(Preference { wme: id, object, role, value, goal, state })
}

/// Build a goal-augmentation wme: `(goal ^id <id> ^<attr> <value>)`.
pub fn goal_aug(reg: &ClassRegistry, f: &ArchFields, id: Symbol, attr_field: u16, value: Value) -> Wme {
    let decl = reg.get(intern("goal")).unwrap();
    Wme::with_fields(decl, &[(f.goal_id, Value::Sym(id)), (attr_field, value)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_round_trip() {
        for r in Role::ALL {
            assert_eq!(Role::from_symbol(r.symbol()), Some(r));
        }
        assert_eq!(Role::from_symbol(intern("bogus")), None);
    }

    #[test]
    fn pref_values_round_trip() {
        for v in [PrefValue::Acceptable, PrefValue::Reject, PrefValue::Best, PrefValue::Indifferent] {
            assert_eq!(PrefValue::from_symbol(v.symbol()), Some(v));
        }
    }

    #[test]
    fn decode_preference_wme() {
        let mut reg = ClassRegistry::new();
        let f = declare_arch_classes(&mut reg);
        let w = psme_ops::parse_wme(
            "(preference ^object o1 ^role operator ^value acceptable ^goal g1 ^state s1)",
            &reg,
        )
        .unwrap();
        let p = decode_preference(WmeId(0), &w, &f).unwrap();
        assert_eq!(p.object, intern("o1"));
        assert_eq!(p.role, Role::Operator);
        assert_eq!(p.value, PrefValue::Acceptable);
        assert_eq!(p.goal, intern("g1"));
        assert_eq!(p.state, Some(intern("s1")));

        // Malformed: missing role.
        let bad = psme_ops::parse_wme("(preference ^object o1 ^goal g1)", &reg).unwrap();
        assert!(decode_preference(WmeId(1), &bad, &f).is_none());
    }

    #[test]
    fn goal_aug_builder() {
        let mut reg = ClassRegistry::new();
        let f = declare_arch_classes(&mut reg);
        let w = goal_aug(&reg, &f, intern("g1"), f.goal_state, Value::sym("s1"));
        assert_eq!(w.field(f.goal_id), Value::sym("g1"));
        assert_eq!(w.field(f.goal_state), Value::sym("s1"));
    }
}
