//! Architecture-provided *default productions* — the selection problem
//! space. When an operator tie impasses, task-specific `eval` productions
//! score each `^item`; these defaults turn the scores into a supergoal
//! preference (the chunkable result).

use psme_ops::{parse_program, ClassRegistry, Production};
use std::sync::Arc;

/// Source of the default productions.
///
/// The selection space resolves a tie pairwise, as real Soar's default
/// productions do: a strictly dominated item is *rejected* in the
/// supergoal, and equally scored items are made *indifferent*. Both are
/// results, so chunking compiles them into productions whose conditions
/// mention **both** competitors' structures — the learned rule only rejects
/// a candidate when a better one is actually present.
///
/// Note the synchronization property: all `eval` wmes for a tie appear
/// within one elaboration cycle (each comes from a single production
/// firing), so these comparisons always see complete information.
pub const DEFAULT_PRODUCTIONS: &str = "
(p default*reject-worse
   (goal ^id <g> ^impasse tie)
   (goal ^id <g> ^role <r>)
   (goal ^id <g> ^supergoal <sg>)
   (goal ^id <g> ^item <o1>)
   (eval ^goal <g> ^object <o1> ^value <v1>)
   (eval ^goal <g> ^object <o2> ^value > <v1>)
   (preference ^object <o1> ^role <r> ^value acceptable ^goal <sg> ^state <ss>)
  -->
   (make preference ^object <o1> ^role <r> ^value reject ^goal <sg> ^state <ss>))

(p default*indifferent-equal
   (goal ^id <g> ^impasse tie)
   (goal ^id <g> ^role <r>)
   (goal ^id <g> ^supergoal <sg>)
   (goal ^id <g> ^item <o1>)
   (eval ^goal <g> ^object <o1> ^value <v1>)
   (eval ^goal <g> ^object { <o2> <> <o1> } ^value <v1>)
   (preference ^object <o1> ^role <r> ^value acceptable ^goal <sg> ^state <ss>)
  -->
   (make preference ^object <o1> ^role <r> ^value indifferent ^goal <sg> ^state <ss>))
";

/// Parse the default productions against a registry that already has the
/// architecture classes declared.
pub fn default_productions(classes: &mut ClassRegistry) -> Vec<Arc<Production>> {
    parse_program(DEFAULT_PRODUCTIONS, classes)
        .expect("default productions parse")
        .into_iter()
        .map(Arc::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::declare_arch_classes;

    #[test]
    fn defaults_parse_and_validate() {
        let mut reg = ClassRegistry::new();
        declare_arch_classes(&mut reg);
        let prods = default_productions(&mut reg);
        assert_eq!(prods.len(), 2);
        for p in &prods {
            assert_eq!(p.ces.len(), 7);
            assert_eq!(p.num_pos, 7);
            assert!(p.var_names.len() >= 6);
        }
    }
}
