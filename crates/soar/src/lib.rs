//! # psme-soar — the Soar architecture (§3 of the paper)
//!
//! A Soar-4-era architecture over the match engines of `psme-core`:
//!
//! * **Decide** ([`mod@decide`]): the elaborate–decide loop. Elaboration fires
//!   *all* unfired conflict-set instantiations each cycle (batching the wme
//!   changes before matching, as the paper's measurements assume) until
//!   quiescence; the decision procedure then fills problem-space / state /
//!   operator slots from preferences or declares an impasse.
//! * **Universal subgoaling**: tie and no-change impasses push subgoals;
//!   the architecture provides the selection space's default productions
//!   ([`defaults`]), task productions provide `eval` scores.
//! * **Working memory** ([`wm`], [`agent`]): Soar productions only add
//!   wmes; the decision phase garbage-collects wmes unreachable from the
//!   context stack.
//! * **Chunking** ([`chunk`]): results (wmes created above the firing goal)
//!   are backtraced to supergoal conditions, variablized, and compiled into
//!   the Rete **at run time** via the §5.1/§5.2 machinery — exercising the
//!   very capability the paper adds to PSM-E.
//!
//! Documented simplifications versus 1988 Soar (see DESIGN.md): preference
//! vocabulary reduced to acceptable/reject/best/indifferent; multiple-best
//! and all-indifferent ties resolve deterministically; chunks contain only
//! positive conditions.

pub mod agent;
pub mod arch;
pub mod chunk;
pub mod decide;
pub mod defaults;
pub mod hibernate;
pub mod task;
pub mod wm;

pub use agent::{Agent, AgentStats, StopReason};
pub use arch::{declare_arch_classes, ArchFields, PrefValue, Preference, Role};
pub use chunk::{ChunkRequest, Chunker};
pub use decide::{decide, Decision, GoalCtx, ImpasseKey, ImpasseKind};
pub use defaults::{default_productions, DEFAULT_PRODUCTIONS};
pub use hibernate::{decode_shell, encode_shell, shell_digest};
pub use task::SoarTask;
pub use wm::{Provenance, WmBook};
