//! Read and build interfaces over a Rete network.
//!
//! The node-processing semantics ([`crate::process`]), the §5.2 state
//! update ([`crate::update`]) and the serial engine are generic over
//! [`ReteView`] so they run unchanged against either a plain
//! [`ReteNetwork`] or a [`crate::session::SessionNet`] — a shared frozen
//! base topology plus a session-private chunk overlay. The distinction the
//! trait captures is exactly the overlay's: node/production lookup may
//! resolve into an overlay region, and successor traversal must consult
//! overlay *splice deltas* in addition to a node's own edge list (the base
//! is immutable, so a session records the edges a chunk would have spliced
//! into it as out-of-band deltas).

use crate::alpha::AlphaStats;
use crate::build::{AddResult, BuildError};
use crate::network::{NetworkOrg, ProdInfo, ReteNetwork};
use crate::node::{BetaNode, NodeId, Side};
use psme_ops::{Production, Wme};
use std::sync::Arc;

/// Read access to a (possibly overlaid) Rete network.
pub trait ReteView {
    /// Borrow a node (base or overlay).
    fn node(&self, id: NodeId) -> &BetaNode;

    /// Total beta nodes visible, including the root and any overlay.
    fn num_nodes(&self) -> usize;

    /// Successor edges spliced onto `id` by an overlay, in splice order.
    /// Always empty for a monolithic network (splices land directly in
    /// `out_edges` there); propagation iterates `out_edges` then these, so
    /// the combined order equals the monolithic append order.
    fn extra_out_edges(&self, id: NodeId) -> &[(NodeId, Side)];

    /// Per-production bookkeeping for the P node index `prod`.
    fn prod_info(&self, prod: u32) -> &ProdInfo;

    /// Total productions visible (base + overlay).
    fn num_prods(&self) -> usize;

    /// Push one wme through the constant-test network, emitting every
    /// successor edge of every matching alpha memory — including overlay
    /// splices and overlay-private memories, in the same order a monolithic
    /// network would emit them.
    fn classify_wme(&self, w: &Wme, hit: &mut dyn FnMut(NodeId, Side)) -> AlphaStats;
}

/// A network that also supports run-time production addition (§5.1).
pub trait ReteBuild: ReteView {
    /// Compile `prod` into the network (or its overlay region). The caller
    /// runs the §5.2 state update afterwards; on error the network is
    /// rolled back unchanged.
    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddResult, BuildError>;
}

impl ReteView for ReteNetwork {
    #[inline]
    fn node(&self, id: NodeId) -> &BetaNode {
        ReteNetwork::node(self, id)
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        ReteNetwork::num_nodes(self)
    }

    #[inline]
    fn extra_out_edges(&self, _id: NodeId) -> &[(NodeId, Side)] {
        &[]
    }

    #[inline]
    fn prod_info(&self, prod: u32) -> &ProdInfo {
        &self.prods[prod as usize]
    }

    #[inline]
    fn num_prods(&self) -> usize {
        self.prods.len()
    }

    fn classify_wme(&self, w: &Wme, hit: &mut dyn FnMut(NodeId, Side)) -> AlphaStats {
        self.alpha.classify(w, |m| {
            for &(child, side) in &m.successors {
                hit(child, side);
            }
        })
    }
}

impl ReteBuild for ReteNetwork {
    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddResult, BuildError> {
        ReteNetwork::add_production(self, prod, org)
    }
}
