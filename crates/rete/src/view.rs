//! Read and build interfaces over a Rete network.
//!
//! The node-processing semantics ([`crate::process`]), the §5.2 state
//! update ([`crate::update`]) and the serial engine are generic over
//! [`ReteView`] so they run unchanged against either a plain
//! [`ReteNetwork`] or a [`crate::session::SessionNet`] — a shared frozen
//! base topology plus a session-private chunk overlay. The distinction the
//! trait captures is exactly the overlay's: node/production lookup may
//! resolve into an overlay region, and successor traversal must consult
//! overlay *splice deltas* in addition to a node's own edge list (the base
//! is immutable, so a session records the edges a chunk would have spliced
//! into it as out-of-band deltas).

use crate::alpha::AlphaStats;
use crate::build::{AddResult, BuildError};
use crate::network::{NetworkOrg, ProdInfo, ReteNetwork};
use crate::node::{BetaNode, NodeId, Side};
use psme_ops::{Production, Wme};
use std::sync::Arc;

/// Read access to a (possibly overlaid) Rete network.
pub trait ReteView {
    /// Borrow a node (base or overlay).
    fn node(&self, id: NodeId) -> &BetaNode;

    /// Total beta nodes visible, including the root and any overlay.
    fn num_nodes(&self) -> usize;

    /// Successor edges spliced onto `id` by an overlay, in splice order.
    /// Always empty for a monolithic network (splices land directly in
    /// `out_edges` there); propagation iterates `out_edges` then these, so
    /// the combined order equals the monolithic append order.
    fn extra_out_edges(&self, id: NodeId) -> &[(NodeId, Side)];

    /// Per-production bookkeeping for the P node index `prod`.
    fn prod_info(&self, prod: u32) -> &ProdInfo;

    /// Total productions visible (base + overlay).
    fn num_prods(&self) -> usize;

    /// Push one wme through the constant-test network, emitting every
    /// successor edge of every matching alpha memory — including overlay
    /// splices and overlay-private memories, in the same order a monolithic
    /// network would emit them.
    fn classify_wme(&self, w: &Wme, hit: &mut dyn FnMut(NodeId, Side)) -> AlphaStats;

    /// `false` when `id` was retired by an adaptive reorganization and its
    /// incoming edges must be skipped during propagation. A monolithic
    /// network physically unplugs retired nodes, so the default constant
    /// `true` compiles away; a session overlay cannot mutate frozen base
    /// edge lists and instead masks retired targets through this hook.
    #[inline]
    fn edge_live(&self, _id: NodeId) -> bool {
        true
    }
}

/// Result of [`ReteBuild::reorg_build`]: the freshly compiled replacement
/// subnetwork for a production being reorganized, not yet committed. The
/// caller runs the §5.2 state update over `first_new..` and then either
/// commits (swapping the production over and retiring the old chain) — the
/// old chain is untouched until commit, so a failed build rolls back to the
/// exact pre-reorg network.
#[derive(Clone, Debug)]
pub struct ReorgBuild {
    /// Production being reorganized (index preserved across the rebuild).
    pub prod_idx: u32,
    /// The organization the replacement subnetwork was compiled with.
    pub org: NetworkOrg,
    /// First node id of the replacement subnetwork (§5.2 `min_node`).
    pub first_new: NodeId,
    /// Replacement terminal node.
    pub p_node: NodeId,
    /// Positive-CE slot map of the replacement P node.
    pub pos_slots: Vec<u16>,
    /// Two-input nodes newly created by the rebuild.
    pub new_two_input: u32,
    /// Two-input nodes shared with existing chains (incl. the old prefix).
    pub shared_two_input: u32,
}

/// A network that also supports run-time production addition (§5.1) and
/// mid-run reorganization of an existing production (§7 made online).
pub trait ReteBuild: ReteView {
    /// Compile `prod` into the network (or its overlay region). The caller
    /// runs the §5.2 state update afterwards; on error the network is
    /// rolled back unchanged.
    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddResult, BuildError>;

    /// Recompile production `prod_idx` with a new organization, appending
    /// the replacement subnetwork like a chunk add but **reusing the
    /// production's index**. The old chain stays fully wired (the §5.2
    /// state update needs its boundary memories); nothing observable
    /// changes until [`Self::reorg_commit`]. On error the network is rolled
    /// back unchanged.
    fn reorg_build(&mut self, prod_idx: u32, org: NetworkOrg) -> Result<ReorgBuild, BuildError>;

    /// Commit a reorganization after the state update: swap the
    /// production's bookkeeping to the replacement subnetwork, strip the
    /// production's name from its old chain, and retire every old-chain
    /// node no production references anymore to an inert pool. Returns the
    /// retired node ids (sorted) — the caller purges their token memories.
    /// Infallible by construction.
    fn reorg_commit(&mut self, rb: ReorgBuild) -> Vec<NodeId>;
}

/// Collect the join-chain ancestry of `p_node` (the node itself, its
/// parents and beta right-sources, transitively), excluding the root —
/// exactly the node set a production's compilation touched.
pub(crate) fn chain_ancestors<N: ReteView + ?Sized>(net: &N, p_node: NodeId) -> Vec<NodeId> {
    use crate::node::{RightSrc, ROOT};
    let mut seen = vec![p_node];
    let mut stack = vec![p_node];
    while let Some(id) = stack.pop() {
        let n = net.node(id);
        let mut push = |next: NodeId| {
            if next != ROOT && !seen.contains(&next) {
                seen.push(next);
                stack.push(next);
            }
        };
        push(n.parent);
        if let Some(RightSrc::Beta(b)) = n.right {
            push(b);
        }
    }
    seen.sort_unstable();
    seen
}

impl ReteView for ReteNetwork {
    #[inline]
    fn node(&self, id: NodeId) -> &BetaNode {
        ReteNetwork::node(self, id)
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        ReteNetwork::num_nodes(self)
    }

    #[inline]
    fn extra_out_edges(&self, _id: NodeId) -> &[(NodeId, Side)] {
        &[]
    }

    #[inline]
    fn prod_info(&self, prod: u32) -> &ProdInfo {
        &self.prods[prod as usize]
    }

    #[inline]
    fn num_prods(&self) -> usize {
        self.prods.len()
    }

    fn classify_wme(&self, w: &Wme, hit: &mut dyn FnMut(NodeId, Side)) -> AlphaStats {
        self.alpha.classify(w, |m| {
            for &(child, side) in &m.successors {
                hit(child, side);
            }
        })
    }
}

impl ReteBuild for ReteNetwork {
    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddResult, BuildError> {
        ReteNetwork::add_production(self, prod, org)
    }

    fn reorg_build(&mut self, prod_idx: u32, org: NetworkOrg) -> Result<ReorgBuild, BuildError> {
        ReteNetwork::reorg_build(self, prod_idx, org)
    }

    fn reorg_commit(&mut self, rb: ReorgBuild) -> Vec<NodeId> {
        ReteNetwork::reorg_commit(self, rb)
    }
}
