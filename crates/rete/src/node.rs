//! Beta (two-input) nodes of the Rete network.
//!
//! The paper's network has and-nodes, not-nodes, memory nodes and P nodes
//! (§2.2). As in PSM-E, memory nodes are not separate code — token storage
//! lives in the global hashed memory tables keyed per destination node
//! (§6.1) — so the beta network is a DAG of `Join`, `Neg` and `Prod` nodes.
//!
//! Two generalizations (both used by the paper's own constructs):
//!
//! * a node's right input can come from an *alpha* memory (classic Rete) or
//!   from another *beta* node — beta-right `Neg` nodes implement Soar's
//!   conjunctive negations, and beta-right `Join` nodes are the spine joins
//!   of the constrained bilinear networks of Figure 6-8;
//! * tokens are flat wme vectors whose slot meanings are given by each
//!   node's `coverage` (the flat condition indices it has matched), so the
//!   same token type flows through linear chains, NCC subnetworks and
//!   bilinear group chains.

use crate::alpha::AlphaMemId;
use psme_ops::{Pred, Symbol};

/// Index of a beta node. Ids are assigned in creation order and never
/// reused; a production added at run time always gets ids greater than any
/// existing node — the property the state-update algorithm of §5.2 relies
/// on.
pub type NodeId = u32;

/// The distinguished root. Its single output token is the empty token.
pub const ROOT: NodeId = 0;

/// Which input of a two-input node an activation arrives on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// Token from the parent beta node.
    Left,
    /// Token from the right source (alpha memory or beta subnetwork).
    Right,
}

/// Right-input source of a two-input node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RightSrc {
    /// A constant-test alpha memory (tokens are single wmes).
    Alpha(AlphaMemId),
    /// Another beta node (NCC subnetworks, bilinear spine joins).
    Beta(NodeId),
}

/// Node behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// The network root (exactly one, id [`ROOT`]).
    Root,
    /// And-node: joins left tokens with right tokens.
    Join,
    /// Not-node: passes left tokens with zero matching right tokens.
    /// With a beta right source this is a conjunctive negation.
    Neg,
    /// Terminal production node; adds/removes conflict-set instantiations.
    Prod {
        /// Index into the network's production table.
        prod: u32,
    },
}

/// A non-equality variable consistency test evaluated per candidate pair.
/// (Equality tests are folded into the memory hash keys instead.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct JoinTest {
    /// Slot in the left token.
    pub left_slot: u16,
    /// Field of that wme.
    pub left_field: u16,
    /// Slot in the right token (0 for alpha-right).
    pub right_slot: u16,
    /// Field of that wme.
    pub right_field: u16,
    /// Predicate (never `Eq`; those become key parts).
    pub pred: Pred,
}

/// One component of a memory hash key. Left and right key specs are
/// parallel: matching tokens produce equal key vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyPart {
    /// The value of `token[slot].field`.
    Val {
        /// Token slot.
        slot: u16,
        /// Wme field.
        field: u16,
    },
    /// The wme id at `slot` (identity constraints of bilinear/NCC joins).
    Id {
        /// Token slot.
        slot: u16,
    },
}

/// How to assemble a join's output token from the input pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergeSrc {
    /// Copy left token slot.
    L(u16),
    /// Copy right token slot.
    R(u16),
}

/// A beta node.
#[derive(Clone, Debug)]
pub struct BetaNode {
    /// This node's id.
    pub id: NodeId,
    /// Behaviour.
    pub kind: NodeKind,
    /// Left input (parent) node.
    pub parent: NodeId,
    /// Right input source (`None` for `Root`/`Prod`).
    pub right: Option<RightSrc>,
    /// Non-equality consistency tests.
    pub tests: Vec<JoinTest>,
    /// Key spec applied to left tokens.
    pub left_key: Vec<KeyPart>,
    /// Key spec applied to right tokens (parallel to `left_key`).
    pub right_key: Vec<KeyPart>,
    /// Flat condition indices covered by this node's *output* tokens.
    pub coverage: Vec<u16>,
    /// Flat condition indices of right-input tokens.
    pub right_coverage: Vec<u16>,
    /// Output-token assembly plan (Join only).
    pub merge: Vec<MergeSrc>,
    /// Successor edges: `(node, which input of that node)`.
    pub out_edges: Vec<(NodeId, Side)>,
    /// Names of the productions whose compilation touched this node
    /// (length > 1 means the node is shared).
    pub prod_names: Vec<Symbol>,
}

impl BetaNode {
    /// Is this a two-input node (the paper's task-granularity unit)?
    pub fn is_two_input(&self) -> bool {
        matches!(self.kind, NodeKind::Join | NodeKind::Neg)
    }

    /// Is this node shared between several productions?
    pub fn is_shared(&self) -> bool {
        self.prod_names.len() > 1
    }

    /// Structural signature for node sharing: two candidate children of the
    /// same parent with equal signatures compute identical outputs.
    pub fn signature(&self) -> NodeSignature {
        NodeSignature {
            kind: match self.kind {
                NodeKind::Root => 0,
                NodeKind::Join => 1,
                NodeKind::Neg => 2,
                NodeKind::Prod { .. } => 3,
            },
            parent: self.parent,
            right: self.right,
            tests: self.tests.clone(),
            left_key: self.left_key.clone(),
            right_key: self.right_key.clone(),
        }
    }
}

/// Sharing signature (see [`BetaNode::signature`]). `Prod` nodes are never
/// shared, which the build code enforces by always creating them fresh.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeSignature {
    kind: u8,
    parent: NodeId,
    right: Option<RightSrc>,
    tests: Vec<JoinTest>,
    left_key: Vec<KeyPart>,
    right_key: Vec<KeyPart>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(kind: NodeKind, tests: Vec<JoinTest>) -> BetaNode {
        BetaNode {
            id: 1,
            kind,
            parent: ROOT,
            right: Some(RightSrc::Alpha(AlphaMemId(0))),
            tests,
            left_key: vec![],
            right_key: vec![],
            coverage: vec![0],
            right_coverage: vec![0],
            merge: vec![MergeSrc::R(0)],
            out_edges: vec![],
            prod_names: vec![],
        }
    }

    #[test]
    fn two_input_classification() {
        assert!(node(NodeKind::Join, vec![]).is_two_input());
        assert!(node(NodeKind::Neg, vec![]).is_two_input());
        assert!(!node(NodeKind::Prod { prod: 0 }, vec![]).is_two_input());
    }

    #[test]
    fn signatures_distinguish_tests() {
        let t = JoinTest { left_slot: 0, left_field: 1, right_slot: 0, right_field: 2, pred: Pred::Ne };
        let a = node(NodeKind::Join, vec![]);
        let b = node(NodeKind::Join, vec![t]);
        let c = node(NodeKind::Join, vec![t]);
        assert_ne!(a.signature(), b.signature());
        assert_eq!(b.signature(), c.signature());
    }

    #[test]
    fn shared_flag_tracks_prod_names() {
        let mut n = node(NodeKind::Join, vec![]);
        assert!(!n.is_shared());
        n.prod_names.push(psme_ops::intern("p1"));
        assert!(!n.is_shared());
        n.prod_names.push(psme_ops::intern("p2"));
        assert!(n.is_shared());
    }
}
