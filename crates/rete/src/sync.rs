//! Instrumented test-and-test-and-set spin lock.
//!
//! The paper measures lock contention as "the number of times a process
//! spins on a lock before it gets access" (§6.1, Figures 6-2/6-3). To
//! reproduce those metrics we need a lock that *counts its own spins*;
//! `parking_lot` and `std` locks hide that. This is a classic TTAS lock with
//! exponential backoff (Rust Atomics and Locks, ch. 4), returning the spin
//! count on acquisition.

use std::cell::UnsafeCell;
use std::hint;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A spin lock protecting `T`, whose `lock` reports how many spins it took.
pub struct SpinLock<T> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: standard spin-lock argument — `data` is only reachable through a
// guard that holds the lock, so aliasing is excluded; `T: Send` suffices for
// the lock to be shared.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> SpinLock<T> {
        SpinLock { locked: AtomicBool::new(false), data: UnsafeCell::new(value) }
    }

    /// Acquire, returning the guard and the number of spin iterations that
    /// were needed (0 when uncontended).
    pub fn lock(&self) -> (SpinGuard<'_, T>, u64) {
        let mut spins: u64 = 0;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return (SpinGuard { lock: self }, spins);
            }
            // Test-and-test-and-set: spin on a plain load to avoid cache-line
            // ping-pong, with a small bounded backoff.
            let mut backoff = 1u32;
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                for _ in 0..backoff {
                    hint::spin_loop();
                }
                backoff = (backoff * 2).min(64);
            }
        }
    }

    /// Try to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// RAII guard for [`SpinLock`].
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_reports_zero_spins() {
        let l = SpinLock::new(5);
        let (g, spins) = l.lock();
        assert_eq!(*g, 5);
        assert_eq!(spins, 0);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let (_g, _) = l.lock();
        assert!(l.try_lock().is_none());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut l = SpinLock::new(1);
        *l.get_mut() = 2;
        assert_eq!(*l.lock().0, 2);
    }

    #[test]
    fn counter_under_contention_is_exact() {
        let l = Arc::new(SpinLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let (mut g, _) = l.lock();
                        *g += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*l.lock().0, 40_000);
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = SpinLock::new(());
        drop(l.lock());
        assert!(l.try_lock().is_some());
    }
}
