//! Run-time update of state for newly added productions (§5.2).
//!
//! "The empty memories must be updated with PIs representing the partial
//! matches of the WM contents to the new production … The updating must be
//! confined to only the new nodes. … All nodes in the network have
//! incrementally assigned unique ID numbers and a newly added node is always
//! assigned an ID greater than any other existing node … the task queues are
//! changed to ignore tasks with IDs less than the first new node \[and\] the
//! last shared node must be specially executed in order to pass down all of
//! the PIs that it has stored as state."
//!
//! Our rendition: [`seed_update`] produces the seed activations —
//! re-emissions of every *boundary* (last-shared) node's stored tokens into
//! its new children, plus right activations obtained by re-running all of
//! working memory through the alpha network with the `min_node` filter set
//! to the first new node. Any engine (serial or parallel — the update phase
//! parallelizes, Figure 6-9) then drains those seeds with the same filter.

use crate::memory::MemoryTable;
use crate::node::{NodeId, RightSrc, Side, ROOT};
use crate::process::{process_wme_change, Activation};
use crate::token::{Token, WmeStore};
use crate::view::ReteView;

/// Enumerate the output tokens (with stored weights — all 1 at the
/// quiescent point this runs at) an *old* node currently stores, by reading
/// the memory of one of its old consumers (every old non-root node has at
/// least one, because chains terminate in P nodes which store their inputs).
///
/// On an overlay view the consumer may be reached through a splice edge
/// (base node → overlay child), so both edge lists are consulted.
fn outputs_of_old_node<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    node: NodeId,
    first_new: NodeId,
) -> Vec<(Token, i32)> {
    if node == ROOT {
        return vec![(Token::empty(), 1)];
    }
    let n = net.node(node);
    for &(child, side) in n.out_edges.iter().chain(net.extra_out_edges(node)) {
        // A consumer masked into a session's retired pool has a purged
        // memory — reading it would seed nothing. Skip to a live one.
        if child < first_new && net.edge_live(child) {
            return match side {
                Side::Left => mem.left_tokens_of(child),
                Side::Right => mem.right_tokens_of(child),
            };
        }
    }
    panic!(
        "old node {node} has no old consumer — network invariant violated \
         (every pre-existing node is on some pre-existing production's chain)"
    );
}

/// Build the seed activations for updating all nodes `>= first_new`.
///
/// The caller must be at a quiescent point (no cycle in flight) and must
/// afterwards process the seeds **and** one alpha re-run of all live wmes
/// with `min_node = first_new`; [`update_seeds`] bundles both.
pub fn seed_update<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    first_new: NodeId,
) -> Vec<Activation> {
    let mut seeds = Vec::new();
    for id in first_new..net.num_nodes() as NodeId {
        let n = net.node(id);
        // Left seeds: the last shared node "specially executed" to pass its
        // stored PIs into its new child. (New parents feed their new
        // children during the update run itself; the root's single empty
        // token is implicit in right-activation processing.)
        if n.parent < first_new && n.parent != ROOT {
            for (t, w) in outputs_of_old_node(net, mem, n.parent, first_new) {
                seeds.push(Activation { node: id, side: Side::Left, token: t, delta: w });
            }
        }
        // Right seeds from an old beta source (a chunk sharing part of an
        // NCC subnetwork or bilinear group chain).
        if let Some(RightSrc::Beta(b)) = n.right {
            if b < first_new {
                for (t, w) in outputs_of_old_node(net, mem, b, first_new) {
                    seeds.push(Activation { node: id, side: Side::Right, token: t, delta: w });
                }
            }
        }
    }
    seeds
}

/// Convenience: all update seeds *including* the alpha re-run of working
/// memory (returned as ready activations). Engines that want to parallelize
/// the alpha re-run itself should instead call [`seed_update`] and run
/// [`process_wme_change`] per live wme as tasks.
///
/// The re-run routes through whatever classifier the network is configured
/// with: when the discrimination index is on, each live wme probes the
/// spliced jump table (which already contains the new production's alpha
/// memories) instead of scanning the class linearly; the `min_node` filter
/// then confines emission to the new nodes either way.
pub fn update_seeds<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    store: &WmeStore,
    first_new: NodeId,
) -> Vec<Activation> {
    let mut seeds = seed_update(net, mem, first_new);
    for (id, _) in store.iter_alive() {
        process_wme_change(net, store, id, 1, first_new, &mut |a| seeds.push(a));
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkOrg, ReteNetwork};
    use crate::serial::SerialEngine;
    use psme_ops::{parse_production, parse_wme, ClassRegistry};
    use std::sync::Arc;

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r.declare_str("b", &["x", "y"]);
        r
    }

    #[test]
    fn boundary_seeds_come_from_shared_parent_memory() {
        let mut r = reg();
        let mut e = SerialEngine::new(ReteNetwork::new());
        let p1 = parse_production("(p base (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        e.add_production(Arc::new(p1), NetworkOrg::Linear).unwrap();
        // Three (a,b) pairs in WM.
        for i in 0..3 {
            e.apply_changes(
                vec![
                    parse_wme(&format!("(a ^x {i})"), &r).unwrap(),
                    parse_wme(&format!("(b ^x {i})"), &r).unwrap(),
                ],
                vec![],
            );
        }
        // Extend the shared chain: the boundary is the (a⋈b) join, whose 3
        // stored tokens must seed the new node's left input.
        let p2 =
            parse_production("(p ext (a ^x <v>) (b ^x <v>) (a ^y <v>) --> (halt))", &mut r).unwrap();
        let first_new = e.net.num_nodes() as NodeId;
        let res = e.net.add_production(Arc::new(p2), NetworkOrg::Linear).unwrap();
        assert_eq!(res.first_new, first_new);
        let seeds = seed_update(&e.net, &e.state.mem, first_new);
        let left_seeds: Vec<_> = seeds.iter().filter(|a| a.side == Side::Left).collect();
        assert_eq!(left_seeds.len(), 3, "one per stored boundary token");
        assert!(left_seeds.iter().all(|a| a.node >= first_new));
        assert!(left_seeds.iter().all(|a| a.token.len() == 2));
    }

    #[test]
    fn first_level_nodes_get_no_left_seeds() {
        let mut r = reg();
        let mut e = SerialEngine::new(ReteNetwork::new());
        let p1 = parse_production("(p base (a ^x 1) --> (halt))", &mut r).unwrap();
        e.add_production(Arc::new(p1), NetworkOrg::Linear).unwrap();
        e.apply_changes(vec![parse_wme("(a ^x 2)", &r).unwrap()], vec![]);
        // A production with a fresh first CE: its first-level join's left
        // input is the implicit root token, so only alpha re-runs seed it.
        let p2 = parse_production("(p fresh (b ^x 2) --> (halt))", &mut r).unwrap();
        let first_new = e.net.num_nodes() as NodeId;
        e.net.add_production(Arc::new(p2), NetworkOrg::Linear).unwrap();
        let seeds = seed_update(&e.net, &e.state.mem, first_new);
        assert!(seeds.iter().all(|a| a.side != Side::Left), "{seeds:?}");
    }

    #[test]
    fn alpha_rerun_agrees_with_linear_oracle() {
        // The §5.2 re-run of working memory must produce identical seeds
        // whether it routes through the spliced jump table or the linear
        // scan — on a wm populated *before* the production was added.
        let mut r = reg();
        let mut engines: Vec<SerialEngine> = (0..2)
            .map(|i| {
                let mut net = ReteNetwork::new();
                net.alpha.use_index = i == 0;
                SerialEngine::new(net)
            })
            .collect();
        let p1 = parse_production("(p base (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        let p2 = parse_production("(p ext (a ^x <v>) (b ^y <v>) --> (halt))", &mut r).unwrap();
        let mut all_seeds = Vec::new();
        for e in &mut engines {
            e.add_production(Arc::new(p1.clone()), NetworkOrg::Linear).unwrap();
            for i in 0..3 {
                e.apply_changes(
                    vec![
                        parse_wme(&format!("(a ^x {i} ^y {i})"), &r).unwrap(),
                        parse_wme(&format!("(b ^x {i} ^y {i})"), &r).unwrap(),
                    ],
                    vec![],
                );
            }
            let first_new = e.net.num_nodes() as NodeId;
            e.net.add_production(Arc::new(p2.clone()), NetworkOrg::Linear).unwrap();
            e.net.alpha.validate_index().unwrap();
            all_seeds.push(update_seeds(&e.net, &e.state.mem, &e.state.store, first_new));
        }
        assert!(!all_seeds[0].is_empty(), "the update must have work to do");
        assert_eq!(all_seeds[0], all_seeds[1], "indexed vs linear update seeds");
    }

    #[test]
    fn update_seeds_bundles_alpha_rerun() {
        let mut r = reg();
        let mut e = SerialEngine::new(ReteNetwork::new());
        let p1 = parse_production("(p base (a ^x <v>) --> (halt))", &mut r).unwrap();
        e.add_production(Arc::new(p1), NetworkOrg::Linear).unwrap();
        e.apply_changes(
            vec![parse_wme("(a ^x 1)", &r).unwrap(), parse_wme("(b ^x 1)", &r).unwrap()],
            vec![],
        );
        let p2 = parse_production("(p nb (b ^x <v>) --> (halt))", &mut r).unwrap();
        let first_new = e.net.num_nodes() as NodeId;
        e.net.add_production(Arc::new(p2), NetworkOrg::Linear).unwrap();
        let seeds = update_seeds(&e.net, &e.state.mem, &e.state.store, first_new);
        // The (b ^x 1) wme reaches the new node's right input; the (a …)
        // wme is filtered out (its successors are all old).
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].side, Side::Right);
        assert!(seeds[0].node >= first_new);
    }
}
